#!/usr/bin/env bash
# Full local gate: formatting, release build, the whole test suite, and
# lint-clean clippy. Everything runs offline — external dependencies are
# vendored under vendor/, so no registry access is needed (or attempted).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --check
cargo build --release --workspace --offline
cargo test -q --workspace --offline
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "check.sh: fmt + build + tests + clippy all green"
