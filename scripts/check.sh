#!/usr/bin/env bash
# Full local gate: release build, the whole test suite, and lint-clean
# clippy. Everything runs offline — external dependencies are vendored
# under vendor/, so no registry access is needed (or attempted).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --workspace --offline
cargo test -q --workspace --offline
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "check.sh: build + tests + clippy all green"
