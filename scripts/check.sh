#!/usr/bin/env bash
# Full local gate: formatting, release build, lint-clean clippy, the
# invariant linter (plus its fixture self-test), the whole test suite,
# and an end-to-end resume/diff smoke test through the CLI binary. Everything runs offline — external dependencies are
# vendored under vendor/, so no registry access is needed (or attempted).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --check
cargo build --release --workspace --offline
cargo clippy --workspace --all-targets --offline -- -D warnings

# Invariant linter gate (crates/lint): the workspace must be clean, and
# each rule-class fixture must still trip its rule — if a fixture exits 0
# the gate itself has rotted and the run fails.
LINT=target/release/lint
"$LINT" || { echo "check.sh: workspace lint failed" >&2; exit 1; }
for fixture in r1 r2 r3 r4 r5 r5-index r6 r7 r7-backend r7-serve r8 \
               r9-alloc r10-growth r11-swallow cfg-liveness suppression; do
    if "$LINT" --root "crates/lint/tests/fixtures/$fixture" >/dev/null; then
        echo "check.sh: lint fixture $fixture no longer trips its rule" >&2
        exit 1
    fi
done
"$LINT" --root crates/lint/tests/fixtures/clean >/dev/null \
    || { echo "check.sh: lint flags the clean fixture" >&2; exit 1; }
"$LINT" --root crates/lint/tests/fixtures/baselined >/dev/null \
    || { echo "check.sh: lint baseline grandfathering broke" >&2; exit 1; }

# JSON output smoke test: the machine-readable schema must carry the rule
# and summary keys CI consumers grep for (exit 1 is expected — findings).
JSON_OUT=$("$LINT" --root crates/lint/tests/fixtures/r6 --format json || true)
echo "$JSON_OUT" | grep -q '"rule": "lock-order"' \
    || { echo "check.sh: lint JSON output lost its finding schema" >&2; exit 1; }
echo "$JSON_OUT" | grep -q '"summary": {"failing": 1' \
    || { echo "check.sh: lint JSON output lost its summary schema" >&2; exit 1; }

# Incremental-cache smoke test: a second run over the unchanged workspace
# must be a full hit (every file entry plus the global entry) and report
# byte-identical findings.
LINT_CACHE=$(mktemp -d)
"$LINT" --cache --cache-dir "$LINT_CACHE" >/dev/null 2>"$LINT_CACHE/cold.err" \
    || { echo "check.sh: cached workspace lint failed cold" >&2; exit 1; }
"$LINT" --cache --cache-dir "$LINT_CACHE" >"$LINT_CACHE/warm.out" 2>"$LINT_CACHE/warm.err" \
    || { echo "check.sh: cached workspace lint failed warm" >&2; exit 1; }
grep -q "files hit, global hit" "$LINT_CACHE/warm.err" \
    || { echo "check.sh: second lint run over an unchanged tree missed the cache" >&2; exit 1; }
"$LINT" >"$LINT_CACHE/nocache.out" \
    || { echo "check.sh: workspace lint failed" >&2; exit 1; }
cmp "$LINT_CACHE/warm.out" "$LINT_CACHE/nocache.out" \
    || { echo "check.sh: cached lint findings differ from uncached" >&2; exit 1; }
rm -rf "$LINT_CACHE"

cargo test -q --workspace --offline

# High-concurrency smoke: the stress battery in release mode hammers the
# sharded lock topology at 1/4/64 workers (fault on and off, plus a
# 64-worker abort+resume) and requires byte-identical reports throughout.
cargo test -q -p analysis --test stress --release --offline

# Crash-point fuzzer at a reduced case count: kill the disk at fuzzed
# byte boundaries (with torn/rot/ENOSPC chaos mixed in), fsck, resume,
# and require the report byte-identical to the fault-free baseline.
PROPTEST_CASES=4 cargo test -q -p analysis --test diskfault --release --offline

# Resume smoke test: run the tiny sweep to completion, then again with a
# simulated kill plus a resume, and require byte-identical JSON reports.
BIN=target/release/cookiewall-study
SMOKE=$(mktemp -d)
trap 'rm -rf "$SMOKE"' EXIT

"$BIN" run --scale tiny --json "$SMOKE/clean.json" >/dev/null 2>&1
"$BIN" run --scale tiny --store "$SMOKE/epoch0" --checkpoint-every 8 \
    --abort-after 100 >/dev/null 2>&1
"$BIN" run --resume "$SMOKE/epoch0" --json "$SMOKE/resumed.json" >/dev/null 2>&1
cmp "$SMOKE/clean.json" "$SMOKE/resumed.json" \
    || { echo "check.sh: resumed report differs from uninterrupted run" >&2; exit 1; }

# fsck smoke test: rot one shard byte, require fsck to quarantine exactly
# that cell, then resume — the re-crawled report must still match the
# uninterrupted run byte for byte.
printf '\xff' | dd of="$SMOKE/epoch0/shards/shard-0.bin" bs=1 seek=2 conv=notrunc 2>/dev/null
"$BIN" fsck "$SMOKE/epoch0" --json "$SMOKE/fsck.json" >/dev/null
grep -q '"quarantined_cells": 1' "$SMOKE/fsck.json" \
    || { echo "check.sh: fsck did not quarantine the rotted cell" >&2; exit 1; }
"$BIN" run --resume "$SMOKE/epoch0" --json "$SMOKE/scrubbed.json" >/dev/null 2>&1
cmp "$SMOKE/clean.json" "$SMOKE/scrubbed.json" \
    || { echo "check.sh: post-fsck resume differs from uninterrupted run" >&2; exit 1; }

# Diff smoke test: an epoch-1 snapshot must show churn against epoch 0.
"$BIN" run --scale tiny --epoch 1 --store "$SMOKE/epoch1" >/dev/null 2>&1
"$BIN" diff "$SMOKE/epoch0" "$SMOKE/epoch1" >"$SMOKE/churn.txt" 2>/dev/null
grep -q "Longitudinal churn" "$SMOKE/churn.txt" \
    || { echo "check.sh: diff produced no churn report" >&2; exit 1; }

# Serve smoke test: the same seeded Zipf stream over the sealed epoch-0
# snapshot must replay to an identical chain digest on a second run, and
# the latency ledger must report a p99 per query class.
"$BIN" serve "$SMOKE/epoch0" "$SMOKE/epoch1" --requests 200 --seed 7 \
    --readers 3 >"$SMOKE/serve1.txt"
"$BIN" serve "$SMOKE/epoch0" "$SMOKE/epoch1" --requests 200 --seed 7 \
    --readers 3 >"$SMOKE/serve2.txt"
cmp "$SMOKE/serve1.txt" "$SMOKE/serve2.txt" \
    || { echo "check.sh: serve replay is not deterministic" >&2; exit 1; }
grep -q "digest=" "$SMOKE/serve1.txt" \
    || { echo "check.sh: serve printed no chain digest" >&2; exit 1; }
grep -q "p99_us=" "$SMOKE/serve1.txt" \
    || { echo "check.sh: serve printed no p99 latency" >&2; exit 1; }

# Stats smoke test: the sealed index must cover the whole checkpointed
# store, and the JSON schema must carry the keys CI consumers grep for.
"$BIN" stats "$SMOKE/epoch0" --json "$SMOKE/stats.json" >/dev/null
grep -q '"coverage_percent":100.0' "$SMOKE/stats.json" \
    || { echo "check.sh: sealed index does not cover the store" >&2; exit 1; }
grep -q '"quarantined"' "$SMOKE/stats.json" \
    || { echo "check.sh: stats JSON lost its schema" >&2; exit 1; }

# Unknown flags must be rejected, not silently ignored.
if "$BIN" run --scael tiny >/dev/null 2>&1; then
    echo "check.sh: unknown flag was silently accepted" >&2; exit 1
fi

# Worker-scaling benches (table1/worker_scaling up to 64 workers,
# store/journaled_worker_scaling + store/concurrent_puts): record the
# high-worker numbers in the PR description when the lock topology moves.
cargo bench -p bench --bench table1 --offline -- --noplot
cargo bench -p bench --bench store --offline -- --noplot

# Serve bench: 3 reader threads × Zipf(1.1) against a live second-epoch
# ingest; every served answer is verified byte-identical to direct
# evaluation against the sealed store, and real p50/p99 print per class.
cargo bench -p bench --bench serve --offline -- --noplot

# Lint bench: cold vs warm-cache engine runs over the workspace; the
# bench itself asserts warm >=3x faster than cold and byte-identical
# findings at --jobs 1 vs --jobs 8.
cargo bench -p bench --bench lint --offline -- --noplot

echo "check.sh: fmt + build + clippy + lint + tests + stress + fuzzer + benches + resume/fsck/diff/serve/stats smoke all green"
