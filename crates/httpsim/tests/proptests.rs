//! Property-based tests for httpsim invariants.

use httpsim::{domain_match, registrable_domain, same_site, Cookie, CookieJar, Region, Url};
use proptest::prelude::*;

fn hostname() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-z][a-z0-9]{0,8}(\\.[a-z][a-z0-9]{0,8}){1,3}").unwrap()
}

proptest! {
    /// URL parsing never panics on arbitrary input.
    #[test]
    fn url_parse_no_panic(s in "\\PC{0,120}") {
        let _ = Url::parse(&s);
    }

    /// Display → parse is the identity for valid URLs.
    #[test]
    fn url_display_roundtrip(host in hostname(), path in "(/[a-z0-9]{1,6}){0,4}/?", q in proptest::option::of("[a-z]=[0-9]{1,3}")) {
        let mut s = format!("https://{host}{path}");
        if path.is_empty() { s.push('/'); }
        if let Some(q) = &q { s.push('?'); s.push_str(q); }
        let u = Url::parse(&s).expect("constructed URL must parse");
        let again = Url::parse(&u.to_string()).expect("display must reparse");
        prop_assert_eq!(u, again);
    }

    /// join() against a base always yields a URL on some host, and an
    /// absolute reference wins entirely.
    #[test]
    fn join_absolute_wins(host in hostname(), reference in hostname()) {
        let base = Url::parse(&format!("https://{host}/a/b")).unwrap();
        let joined = base.join(&format!("https://{reference}/x")).unwrap();
        prop_assert_eq!(joined.host(), reference.as_str());
    }

    /// same_site is reflexive and symmetric.
    #[test]
    fn same_site_reflexive_symmetric(a in hostname(), b in hostname()) {
        prop_assert!(same_site(&a, &a));
        prop_assert_eq!(same_site(&a, &b), same_site(&b, &a));
    }

    /// domain_match(host, host) always holds, and a match implies the
    /// domain is a dot-boundary suffix.
    #[test]
    fn domain_match_invariants(host in hostname(), domain in hostname()) {
        prop_assert!(domain_match(&host, &host));
        if domain_match(&host, &domain) {
            let dotted = format!(".{}", domain);
            let ok = host == domain || host.ends_with(&dotted);
            prop_assert!(ok);
        }
    }

    /// registrable_domain is idempotent: applying it to its own output is
    /// the identity.
    #[test]
    fn registrable_domain_idempotent(host in hostname()) {
        if let Some(rd) = registrable_domain(&host) {
            prop_assert_eq!(registrable_domain(rd), Some(rd));
            // It is always a suffix of the host on a label boundary.
            let dotted = format!(".{}", rd);
            let ok = host == rd || host.ends_with(&dotted);
            prop_assert!(ok);
        }
    }

    /// Set-Cookie parsing never panics, and any accepted cookie matches its
    /// own origin URL (scheme permitting).
    #[test]
    fn set_cookie_never_panics_and_self_matches(header in "\\PC{0,150}", host in hostname()) {
        let origin = Url::parse(&format!("https://{host}/")).unwrap();
        if let Some(c) = Cookie::parse_set_cookie(&header, &origin) {
            if !c.is_immediately_expired() && c.path == "/" {
                prop_assert!(c.matches_url(&origin), "cookie {:?} must match its origin", c);
            }
        }
    }

    /// Jar: storing N valid distinct-name cookies yields N entries, and
    /// every one is returned for the origin.
    #[test]
    fn jar_store_counts(host in hostname(), n in 1usize..20) {
        let origin = Url::parse(&format!("https://{host}/")).unwrap();
        let mut jar = CookieJar::new();
        let headers: Vec<String> = (0..n).map(|i| format!("name{i}=v{i}")).collect();
        let accepted = jar.store_response_cookies(headers.iter().map(|s| s.as_str()), &origin);
        prop_assert_eq!(accepted, n);
        prop_assert_eq!(jar.cookies_for(&origin).len(), n);
        // Breakdown totals match the jar size.
        let b = jar.breakdown(origin.host(), |_| false);
        prop_assert_eq!(b.total() as usize, n);
        prop_assert_eq!(b.tracking, 0.0);
    }

    /// Jar replacement: storing the same (name, domain, path) twice keeps
    /// one cookie with the latest value.
    #[test]
    fn jar_replacement(host in hostname(), v1 in "[a-z0-9]{1,8}", v2 in "[a-z0-9]{1,8}") {
        let origin = Url::parse(&format!("https://{host}/")).unwrap();
        let mut jar = CookieJar::new();
        jar.store_response_cookies([format!("k={v1}").as_str()], &origin);
        jar.store_response_cookies([format!("k={v2}").as_str()], &origin);
        prop_assert_eq!(jar.len(), 1);
        prop_assert_eq!(jar.cookies_for(&origin)[0].value.clone(), v2);
    }
}

#[test]
fn regions_cover_regimes() {
    use httpsim::PrivacyRegime;
    let regimes: Vec<PrivacyRegime> = Region::ALL.iter().map(|r| r.regime()).collect();
    assert!(regimes.contains(&PrivacyRegime::Gdpr));
    assert!(regimes.contains(&PrivacyRegime::Ccpa));
    assert!(regimes.contains(&PrivacyRegime::Lgpd));
    assert!(regimes.contains(&PrivacyRegime::None));
}
