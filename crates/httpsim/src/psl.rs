//! Public-suffix handling and registrable-domain (eTLD+1) computation.
//!
//! First-party vs. third-party cookie attribution (§4.3 of the paper) hinges
//! on comparing *registrable domains*: `ads.tracker.example.de` and
//! `www.example.de` are the same party iff their eTLD+1 matches. We embed the
//! slice of the Mozilla Public Suffix List relevant to this study: the
//! generic TLDs, the country TLDs of every vantage point, and the
//! second-level registries (`co.uk`, `com.au`, `com.br`, `co.za`, `co.in`,
//! …) under them.

/// Plain public suffixes (single- and multi-label).
const SUFFIXES: &[&str] = &[
    // Generic TLDs.
    "com", "net", "org", "info", "biz", "io", "dev", "app", "club", "online", "site", "shop",
    "news", "blog", "cloud", "xyz", "eu", // Vantage-point and neighbouring ccTLDs.
    "de", "at", "ch", "se", "fr", "it", "nl", "es", "pt", "be", "dk", "fi", "no", "pl", "uk", "us",
    "br", "za", "in", "au", "nz", "ca", "mx", "jp", "cn", // Second-level registries.
    "co.uk", "org.uk", "ac.uk", "gov.uk", "me.uk", "com.au", "net.au", "org.au", "edu.au",
    "gov.au", "com.br", "net.br", "org.br", "gov.br", "co.za", "org.za", "web.za", "net.za",
    "co.in", "net.in", "org.in", "gen.in", "firm.in", "co.nz", "net.nz", "org.nz", "com.mx",
    "org.mx", "co.jp", "ne.jp", "or.jp", "com.cn", "net.cn", "org.cn",
];

/// Is `candidate` (lowercased, no trailing dot) exactly a public suffix?
pub fn is_public_suffix(candidate: &str) -> bool {
    SUFFIXES.contains(&candidate)
}

/// The public suffix of `host`: the longest suffix of its labels that is a
/// known public suffix. Unknown TLDs fall back to the last label, per PSL
/// convention (`*` default rule).
pub fn public_suffix(host: &str) -> &str {
    let host = host.trim_end_matches('.');
    // Try progressively shorter suffixes, longest (most labels) first.
    let mut start_indices: Vec<usize> = vec![0];
    for (i, b) in host.bytes().enumerate() {
        if b == b'.' {
            start_indices.push(i + 1);
        }
    }
    for &start in &start_indices {
        let cand = &host[start..];
        if is_public_suffix(cand) {
            return cand;
        }
    }
    // Default rule: the last label.
    match host.rfind('.') {
        Some(i) => &host[i + 1..],
        None => host,
    }
}

/// The registrable domain (eTLD+1) of `host`: the public suffix plus one
/// label. Returns `None` if `host` *is* a public suffix (no registrable
/// part), e.g. `de` or `co.uk`.
pub fn registrable_domain(host: &str) -> Option<&str> {
    let host = host.trim_end_matches('.');
    let suffix = public_suffix(host);
    if suffix.len() == host.len() {
        return None;
    }
    // Byte position where the suffix starts (host ends with ".{suffix}").
    let prefix = &host[..host.len() - suffix.len() - 1];
    let label_start = prefix.rfind('.').map(|i| i + 1).unwrap_or(0);
    Some(&host[label_start..])
}

/// Do two hosts belong to the same site (same registrable domain)?
///
/// This is the paper's first-party test: a cookie is first-party iff its
/// domain is same-site with the visited page.
pub fn same_site(a: &str, b: &str) -> bool {
    match (registrable_domain(a), registrable_domain(b)) {
        (Some(ra), Some(rb)) => ra.eq_ignore_ascii_case(rb),
        // If either side is a bare suffix, fall back to exact host equality.
        _ => a.eq_ignore_ascii_case(b),
    }
}

/// RFC 6265 §5.1.3 domain-matching: does request-host `host` domain-match
/// the cookie `domain` attribute? True when identical, or when `host` ends
/// with `.domain`.
pub fn domain_match(host: &str, domain: &str) -> bool {
    let host = host.to_ascii_lowercase();
    let domain = domain.trim_start_matches('.').to_ascii_lowercase();
    if host == domain {
        return true;
    }
    host.ends_with(&domain) && host.as_bytes()[host.len() - domain.len() - 1] == b'.'
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suffix_lookup() {
        assert_eq!(public_suffix("www.spiegel.de"), "de");
        assert_eq!(public_suffix("foo.co.uk"), "co.uk");
        assert_eq!(public_suffix("a.b.com.au"), "com.au");
        assert_eq!(public_suffix("example.com"), "com");
        assert_eq!(public_suffix("weird.unknowntld"), "unknowntld");
    }

    #[test]
    fn registrable() {
        assert_eq!(registrable_domain("www.spiegel.de"), Some("spiegel.de"));
        assert_eq!(registrable_domain("spiegel.de"), Some("spiegel.de"));
        assert_eq!(registrable_domain("news.bbc.co.uk"), Some("bbc.co.uk"));
        assert_eq!(registrable_domain("a.b.c.example.com"), Some("example.com"));
        assert_eq!(registrable_domain("de"), None);
        assert_eq!(registrable_domain("co.uk"), None);
        assert_eq!(registrable_domain("single"), None);
    }

    #[test]
    fn same_site_test() {
        assert!(same_site("www.zeit.de", "zeit.de"));
        assert!(same_site("ads.zeit.de", "shop.zeit.de"));
        assert!(!same_site("zeit.de", "spiegel.de"));
        assert!(!same_site("azeit.de", "zeit.de"), "no substring confusion");
        assert!(!same_site("tracker.example.com", "site.de"));
        assert!(same_site("de", "de"), "bare suffix: exact equality");
        assert!(!same_site("de", "at"));
    }

    #[test]
    fn domain_matching() {
        assert!(domain_match("www.example.de", "example.de"));
        assert!(domain_match("example.de", "example.de"));
        assert!(domain_match("a.b.example.de", ".example.de"));
        assert!(!domain_match("badexample.de", "example.de"));
        assert!(!domain_match("example.de", "www.example.de"));
        assert!(
            domain_match("X.EXAMPLE.DE", "example.de"),
            "case-insensitive"
        );
    }

    #[test]
    fn trailing_dots() {
        assert_eq!(registrable_domain("www.zeit.de."), Some("zeit.de"));
        assert_eq!(public_suffix("zeit.de."), "de");
    }
}
