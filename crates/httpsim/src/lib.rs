//! # httpsim — the simulated HTTP layer of the cookiewall study
//!
//! The paper's measurements run OpenWPM/Firefox against the live Internet.
//! This crate is the substitute substrate: a deterministic, in-process web
//! with the pieces cookie measurement actually touches:
//!
//! * [`Url`] parsing and reference resolution,
//! * public-suffix / registrable-domain logic ([`registrable_domain`],
//!   [`same_site`]) — the basis for first- vs. third-party attribution,
//! * RFC 6265-subset [`Cookie`] parsing and a [`CookieJar`] with
//!   domain/path/secure matching and the party/tracking
//!   [`CookieBreakdown`] reported in Figures 4 and 5,
//! * the eight vantage-point [`Region`]s and their privacy regimes,
//! * a [`Network`] of [`Server`] trait objects with redirect following —
//!   the slot where `webgen` plugs in the synthetic web population,
//! * a deterministic fault-injection layer ([`FaultPlan`],
//!   [`FaultyServer`]) modelling the hostile real Web: connection resets,
//!   transient 5xx, stalled and truncated transfers, dead origins.
//!
//! ## Example
//!
//! ```
//! use httpsim::{CookieJar, Network, Region, Request, Response, Url};
//!
//! let net = Network::new();
//! net.register_fn("news.example.de", |req: &Request| {
//!     if req.region.is_eu() {
//!         Response::html("<div id=banner>Cookies?</div>").with_cookie("sid=1")
//!     } else {
//!         Response::html("<h1>News</h1>").with_cookie("sid=1")
//!     }
//! });
//!
//! let url = Url::parse("https://news.example.de/").unwrap();
//! let resp = net.dispatch(&Request::navigation(url.clone(), Region::Germany));
//! assert!(resp.body_text().contains("banner"));
//!
//! let mut jar = CookieJar::new();
//! jar.store_response_cookies(resp.set_cookies.iter().map(|s| s.as_str()), &url);
//! assert_eq!(jar.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cookie;
mod fault;
mod geo;
mod http;
mod jar;
mod net;
mod psl;
mod url;

pub use cookie::{classify_party, Cookie, CookieParty, SameSite};
pub use fault::{FaultConfig, FaultCounts, FaultKind, FaultPlan, FaultyServer};
pub use geo::{PrivacyRegime, Region};
pub use http::{Method, Request, Response, TransportFault, DEFAULT_USER_AGENT};
pub use jar::{CookieBreakdown, CookieJar};
pub use net::{content_hash, Network, NetworkStats, Server, MAX_REDIRECTS};
pub use psl::{domain_match, is_public_suffix, public_suffix, registrable_domain, same_site};
pub use url::{Url, UrlParseError};
