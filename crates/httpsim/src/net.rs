//! The simulated network: a host → server registry with request dispatch,
//! redirect following, and traffic metrics.
//!
//! This is the stand-in for the live Internet the paper crawls. Servers are
//! trait objects so `webgen` can plug an entire synthetic web population in,
//! and tests can plug in single closures.

use crate::http::{Request, Response};
use crate::url::Url;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A simulated origin server.
///
/// `handle` must be pure with respect to the request (any randomness must be
/// derived deterministically from request fields) so measurements are
/// reproducible; interior state for counters is fine.
pub trait Server: Send + Sync {
    /// Produce the response for `req`.
    fn handle(&self, req: &Request) -> Response;
}

impl<F> Server for F
where
    F: Fn(&Request) -> Response + Send + Sync,
{
    fn handle(&self, req: &Request) -> Response {
        self(req)
    }
}

/// Counters the network keeps per run; cheap to read, updated atomically.
#[derive(Debug, Default)]
pub struct NetworkStats {
    /// Requests dispatched (including redirect hops).
    pub requests: AtomicU64,
    /// Requests that hit no registered host.
    pub unresolved: AtomicU64,
    /// Redirect hops followed.
    pub redirects: AtomicU64,
}

impl NetworkStats {
    /// Requests dispatched so far.
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }
    /// Unresolved-host count so far.
    pub fn unresolved(&self) -> u64 {
        self.unresolved.load(Ordering::Relaxed)
    }
    /// Redirect hops so far.
    pub fn redirects(&self) -> u64 {
        self.redirects.load(Ordering::Relaxed)
    }
}

/// Maximum redirect hops before giving up, mirroring browser limits.
pub const MAX_REDIRECTS: usize = 10;

/// Host → server registry.
///
/// Lookup resolves exact hosts first, then walks up parent domains so one
/// server can own a whole registrable domain including its subdomains
/// (`pt.climate-data.org` → server registered for `climate-data.org`).
#[derive(Clone, Default)]
pub struct Network {
    inner: Arc<NetworkInner>,
}

#[derive(Default)]
struct NetworkInner {
    servers: Mutex<HashMap<String, Arc<dyn Server>>>,
    stats: NetworkStats,
}

impl Network {
    /// Empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register `server` for `host` (and implicitly its subdomains, unless
    /// a more specific registration exists). Replaces a previous
    /// registration for the same host.
    pub fn register(&self, host: &str, server: Arc<dyn Server>) {
        self.inner
            .servers
            .lock()
            .insert(host.to_ascii_lowercase(), server);
    }

    /// Convenience: register a closure server.
    pub fn register_fn<F>(&self, host: &str, f: F)
    where
        F: Fn(&Request) -> Response + Send + Sync + 'static,
    {
        self.register(host, Arc::new(f));
    }

    /// Number of registered hosts.
    pub fn host_count(&self) -> usize {
        self.inner.servers.lock().len()
    }

    /// Is any server registered that would answer for `host`?
    pub fn resolves(&self, host: &str) -> bool {
        self.lookup(host).is_some()
    }

    fn lookup(&self, host: &str) -> Option<Arc<dyn Server>> {
        let servers = self.inner.servers.lock();
        let host = host.to_ascii_lowercase();
        // Exact, then parent domains.
        let mut candidate = host.as_str();
        loop {
            if let Some(s) = servers.get(candidate) {
                return Some(Arc::clone(s));
            }
            match candidate.find('.') {
                Some(i) => candidate = &candidate[i + 1..],
                None => return None,
            }
        }
    }

    /// Dispatch one request without following redirects.
    ///
    /// Unresolved hosts produce a 404-like failure response with status 0
    /// (connection error), which is how the crawler distinguishes "blocked
    /// or dead" from "served an error page".
    pub fn dispatch(&self, req: &Request) -> Response {
        self.inner.stats.requests.fetch_add(1, Ordering::Relaxed);
        match self.lookup(req.url.host()) {
            Some(server) => server.handle(req),
            None => {
                self.inner.stats.unresolved.fetch_add(1, Ordering::Relaxed);
                Response::connection_error()
            }
        }
    }

    /// Dispatch and follow up to [`MAX_REDIRECTS`] redirect hops. Returns
    /// the final response and the URL it came from.
    pub fn dispatch_following(&self, req: &Request) -> (Response, Url) {
        let mut current = req.clone();
        for _ in 0..MAX_REDIRECTS {
            let resp = self.dispatch(&current);
            if !resp.is_redirect() {
                return (resp, current.url);
            }
            self.inner.stats.redirects.fetch_add(1, Ordering::Relaxed);
            let loc = resp.location.as_deref().unwrap_or("/");
            match current.url.join(loc) {
                Ok(next) => current.url = next,
                Err(_) => return (resp, current.url),
            }
        }
        (Response::not_found(), current.url)
    }

    /// Traffic counters.
    pub fn stats(&self) -> &NetworkStats {
        &self.inner.stats
    }
}

/// Stable 64-bit FNV-1a hash of response content.
///
/// Used as the region-invariant half of shared-fetch cache keys: two
/// vantage points that received byte-identical documents hash equal, so
/// downstream parse/analysis work can be shared between them.
pub fn content_hash(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geo::Region;

    fn req(url: &str) -> Request {
        Request::navigation(Url::parse(url).unwrap(), Region::Germany)
    }

    #[test]
    fn register_and_dispatch() {
        let net = Network::new();
        net.register_fn("site.de", |_| Response::html("<p>hi</p>"));
        let r = net.dispatch(&req("https://site.de/"));
        assert_eq!(r.status, 200);
        assert_eq!(r.body_text(), "<p>hi</p>");
    }

    #[test]
    fn subdomain_falls_back_to_parent() {
        let net = Network::new();
        net.register_fn("climate-data.org", |r| {
            Response::html(format!("host={}", r.url.host()))
        });
        let r = net.dispatch(&req("https://pt.climate-data.org/x"));
        assert_eq!(r.body_text(), "host=pt.climate-data.org");
        // More specific registration wins.
        net.register_fn("pt.climate-data.org", |_| Response::html("specific"));
        let r = net.dispatch(&req("https://pt.climate-data.org/x"));
        assert_eq!(r.body_text(), "specific");
    }

    #[test]
    fn unresolved_host_status_zero() {
        let net = Network::new();
        let r = net.dispatch(&req("https://nothing.example/"));
        assert_eq!(r.status, 0);
        assert_eq!(net.stats().unresolved(), 1);
    }

    #[test]
    fn follows_redirects() {
        let net = Network::new();
        net.register_fn("a.de", |_| Response::redirect("https://b.de/land"));
        net.register_fn("b.de", |r| Response::html(format!("path={}", r.url.path())));
        let (resp, final_url) = net.dispatch_following(&req("https://a.de/"));
        assert_eq!(resp.body_text(), "path=/land");
        assert_eq!(final_url.to_string(), "https://b.de/land");
        assert_eq!(net.stats().redirects(), 1);
    }

    #[test]
    fn redirect_loop_bounded() {
        let net = Network::new();
        net.register_fn("loop.de", |_| Response::redirect("https://loop.de/again"));
        let (resp, _) = net.dispatch_following(&req("https://loop.de/"));
        assert_eq!(resp.status, 404);
        assert!(net.stats().requests() <= MAX_REDIRECTS as u64 + 1);
    }

    #[test]
    fn relative_redirect_resolved() {
        let net = Network::new();
        net.register_fn("rel.de", |r| {
            if r.url.path() == "/" {
                Response::redirect("/home")
            } else {
                Response::html("home")
            }
        });
        let (resp, final_url) = net.dispatch_following(&req("https://rel.de/"));
        assert_eq!(resp.body_text(), "home");
        assert_eq!(final_url.path(), "/home");
    }

    #[test]
    fn clones_share_servers_and_stats() {
        // The crawl scheduler hands one Network to many workers; a clone
        // must be a handle onto the same registry and counters, not a copy.
        let net = Network::new();
        let clone = net.clone();
        net.register_fn("shared.de", |_| Response::html("ok"));
        assert!(clone.resolves("shared.de"));
        clone.dispatch(&req("https://shared.de/"));
        assert_eq!(net.stats().requests(), 1);
    }

    #[test]
    fn content_hash_is_stable_and_discriminating() {
        assert_eq!(content_hash(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(content_hash(b"<html>"), content_hash(b"<html>"));
        assert_ne!(content_hash(b"<html>"), content_hash(b"<htmk>"));
    }
}
