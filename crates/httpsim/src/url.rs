//! URL parsing and reference resolution.
//!
//! A purpose-built subset of the WHATWG URL standard covering what a web
//! crawl manipulates: scheme, host, optional port, path, query. Userinfo and
//! fragments are parsed but dropped (fragments never reach the server).

use std::fmt;

/// Parse failure for a URL string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UrlParseError {
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for UrlParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid URL: {}", self.message)
    }
}

impl std::error::Error for UrlParseError {}

fn err(message: impl Into<String>) -> UrlParseError {
    UrlParseError {
        message: message.into(),
    }
}

/// An absolute `http`/`https` URL.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Url {
    scheme: String,
    host: String,
    port: Option<u16>,
    path: String,
    query: Option<String>,
}

impl Url {
    /// Parse an absolute URL. A bare hostname like `example.de` is accepted
    /// and treated as `https://example.de/`, matching how crawl target lists
    /// are written.
    // lint:allow(r9) — Url owns its components; zero-copy URL parsing is the ROADMAP item 1 headline item
    pub fn parse(input: &str) -> Result<Self, UrlParseError> {
        let input = input.trim();
        if input.is_empty() {
            return Err(err("empty input"));
        }
        let (scheme, rest) = match input.split_once("://") {
            Some((s, r)) => {
                let s = s.to_ascii_lowercase();
                if s != "http" && s != "https" {
                    return Err(err(format!("unsupported scheme {s:?}")));
                }
                (s, r)
            }
            None => {
                if input.contains("://") || input.starts_with("//") {
                    return Err(err("malformed scheme separator"));
                }
                ("https".to_string(), input)
            }
        };
        // Strip fragment first, then split query.
        let rest = rest.split('#').next().unwrap_or("");
        let (authority_path, query) = match rest.split_once('?') {
            Some((ap, q)) => (ap, Some(q.to_string())),
            None => (rest, None),
        };
        let (authority, path) = match authority_path.find('/') {
            Some(i) => (&authority_path[..i], &authority_path[i..]),
            None => (authority_path, "/"),
        };
        // Drop userinfo if present.
        let authority = authority.rsplit('@').next().unwrap_or(authority);
        let (host, port) = match authority.rsplit_once(':') {
            Some((h, p)) if p.chars().all(|c| c.is_ascii_digit()) && !p.is_empty() => {
                let port: u32 = p.parse().map_err(|_| err("bad port"))?;
                if port == 0 || port > 65535 {
                    return Err(err("port out of range"));
                }
                (h, Some(port as u16))
            }
            _ => (authority, None),
        };
        let host = host.trim_end_matches('.').to_ascii_lowercase();
        if host.is_empty() {
            return Err(err("empty host"));
        }
        if !host
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '.')
        {
            return Err(err(format!("invalid host {host:?}")));
        }
        if host.split('.').any(|label| label.is_empty()) {
            return Err(err(format!("empty label in host {host:?}")));
        }
        Ok(Url {
            scheme,
            host,
            port,
            path: normalize_path(path),
            query,
        })
    }

    /// Scheme, `http` or `https`.
    pub fn scheme(&self) -> &str {
        &self.scheme
    }

    /// Lowercased hostname.
    pub fn host(&self) -> &str {
        &self.host
    }

    /// Explicit port, if any.
    pub fn port(&self) -> Option<u16> {
        self.port
    }

    /// Effective port (explicit, or scheme default).
    pub fn effective_port(&self) -> u16 {
        self.port
            .unwrap_or(if self.scheme == "https" { 443 } else { 80 })
    }

    /// Path, always starting with `/`, dot-segments resolved.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Raw query string without the `?`, if any.
    pub fn query(&self) -> Option<&str> {
        self.query.as_deref()
    }

    /// True for `https`.
    pub fn is_secure(&self) -> bool {
        self.scheme == "https"
    }

    /// Resolve `reference` against this URL: absolute URLs pass through,
    /// `//host/x` is protocol-relative, `/x` is host-relative, anything else
    /// is path-relative.
    // lint:allow(r9) — Url owns its components; zero-copy URL parsing is the ROADMAP item 1 headline item
    pub fn join(&self, reference: &str) -> Result<Url, UrlParseError> {
        let reference = reference.trim();
        if reference.is_empty() {
            return Ok(self.clone());
        }
        if reference.contains("://") {
            return Url::parse(reference);
        }
        if let Some(rest) = reference.strip_prefix("//") {
            return Url::parse(&format!("{}://{}", self.scheme, rest));
        }
        let (ref_path, query) = match reference.split_once('?') {
            Some((p, q)) => (p, Some(q.split('#').next().unwrap_or("").to_string())),
            None => (reference.split('#').next().unwrap_or(""), None),
        };
        let path = if let Some(p) = ref_path.strip_prefix('/') {
            format!("/{p}")
        } else if ref_path.is_empty() {
            self.path.clone()
        } else {
            // Path-relative: replace the last segment.
            match self.path.rfind('/') {
                Some(i) => format!("{}{}", &self.path[..=i], ref_path),
                None => format!("/{ref_path}"),
            }
        };
        Ok(Url {
            scheme: self.scheme.clone(),
            host: self.host.clone(),
            port: self.port,
            path: normalize_path(&path),
            query,
        })
    }

    /// The origin URL (scheme + host + port, path `/`).
    pub fn origin(&self) -> Url {
        Url {
            scheme: self.scheme.clone(),
            host: self.host.clone(),
            port: self.port,
            path: "/".to_string(),
            query: None,
        }
    }
}

impl fmt::Display for Url {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}://{}", self.scheme, self.host)?;
        if let Some(p) = self.port {
            write!(f, ":{p}")?;
        }
        write!(f, "{}", self.path)?;
        if let Some(q) = &self.query {
            write!(f, "?{q}")?;
        }
        Ok(())
    }
}

impl std::str::FromStr for Url {
    type Err = UrlParseError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Url::parse(s)
    }
}

/// Resolve `.` and `..` segments and collapse `//` runs.
// lint:allow(r9) — Url owns its components; zero-copy URL parsing is the ROADMAP item 1 headline item
fn normalize_path(path: &str) -> String {
    let mut segments: Vec<&str> = Vec::new();
    for seg in path.split('/') {
        match seg {
            "" | "." => {}
            ".." => {
                segments.pop();
            }
            s => segments.push(s),
        }
    }
    let trailing_slash = path.ends_with('/') || path.ends_with("/.") || path.ends_with("/..");
    let mut out = String::from("/");
    out.push_str(&segments.join("/"));
    if trailing_slash && out.len() > 1 {
        out.push('/');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_url() {
        let u = Url::parse("https://www.spiegel.de:8443/politik/index.html?a=1#frag").unwrap();
        assert_eq!(u.scheme(), "https");
        assert_eq!(u.host(), "www.spiegel.de");
        assert_eq!(u.port(), Some(8443));
        assert_eq!(u.path(), "/politik/index.html");
        assert_eq!(u.query(), Some("a=1"));
        assert_eq!(
            u.to_string(),
            "https://www.spiegel.de:8443/politik/index.html?a=1"
        );
    }

    #[test]
    fn bare_hostname_defaults_to_https() {
        let u = Url::parse("heise.de").unwrap();
        assert_eq!(u.to_string(), "https://heise.de/");
        assert!(u.is_secure());
        assert_eq!(u.effective_port(), 443);
    }

    #[test]
    fn http_scheme_and_default_port() {
        let u = Url::parse("http://example.com").unwrap();
        assert_eq!(u.effective_port(), 80);
        assert!(!u.is_secure());
    }

    #[test]
    fn case_normalization() {
        let u = Url::parse("HTTPS://WWW.Example.DE/Path").unwrap();
        assert_eq!(u.host(), "www.example.de");
        assert_eq!(u.path(), "/Path", "path case preserved");
    }

    #[test]
    fn rejects_bad_input() {
        assert!(Url::parse("").is_err());
        assert!(Url::parse("ftp://x.de").is_err());
        assert!(Url::parse("https://").is_err());
        assert!(Url::parse("https://ex ample.com").is_err());
        assert!(Url::parse("https://a..b.com").is_err());
        assert!(Url::parse("https://h:0/").is_err());
        assert!(Url::parse("https://h:99999/").is_err());
    }

    #[test]
    fn join_variants() {
        let base = Url::parse("https://site.de/a/b/page.html?x=1").unwrap();
        assert_eq!(
            base.join("https://other.com/z").unwrap().to_string(),
            "https://other.com/z"
        );
        assert_eq!(
            base.join("//cdn.example/lib.js").unwrap().to_string(),
            "https://cdn.example/lib.js"
        );
        assert_eq!(
            base.join("/root.css").unwrap().to_string(),
            "https://site.de/root.css"
        );
        assert_eq!(
            base.join("sibling.js").unwrap().to_string(),
            "https://site.de/a/b/sibling.js"
        );
        assert_eq!(
            base.join("../up.js").unwrap().to_string(),
            "https://site.de/a/up.js"
        );
        assert_eq!(base.join("").unwrap().to_string(), base.to_string());
        assert_eq!(
            base.join("?only=query").unwrap().to_string(),
            "https://site.de/a/b/page.html?only=query"
        );
    }

    #[test]
    fn path_normalization() {
        assert_eq!(Url::parse("https://h//a//b/").unwrap().path(), "/a/b/");
        assert_eq!(Url::parse("https://h/a/./b").unwrap().path(), "/a/b");
        assert_eq!(Url::parse("https://h/a/../../b").unwrap().path(), "/b");
        assert_eq!(Url::parse("https://h/..").unwrap().path(), "/");
    }

    #[test]
    fn origin() {
        let u = Url::parse("https://a.b.c:1234/x/y?q=1").unwrap();
        assert_eq!(u.origin().to_string(), "https://a.b.c:1234/");
    }

    #[test]
    fn userinfo_dropped_fragment_dropped() {
        let u = Url::parse("https://user:pw@host.de/p#frag").unwrap();
        assert_eq!(u.host(), "host.de");
        assert_eq!(u.path(), "/p");
    }

    #[test]
    fn display_roundtrip() {
        for s in [
            "https://example.de/",
            "http://a.example.com/x?y=z",
            "https://h:8080/deep/path/",
        ] {
            let u = Url::parse(s).unwrap();
            assert_eq!(Url::parse(&u.to_string()).unwrap(), u);
        }
    }
}
