//! Geography: vantage-point regions and privacy regimes.
//!
//! The paper measures from eight AWS regions chosen to cover GDPR, CCPA,
//! LGPD, and unregulated jurisdictions. Servers in the simulated web vary
//! their behaviour on the *visitor's* region — exactly the geo-targeting
//! that produces the per-VP deltas in Table 1.

use std::fmt;

/// The eight measurement regions of the study (§3, "Vantage Points").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Region {
    /// Frankfurt, Germany (GDPR).
    Germany,
    /// Stockholm, Sweden (GDPR).
    Sweden,
    /// Ashburn, US East (no comprehensive federal law).
    UsEast,
    /// San Francisco, US West (CCPA).
    UsWest,
    /// São Paulo, Brazil (LGPD).
    Brazil,
    /// Cape Town, South Africa (POPIA, lightly enforced).
    SouthAfrica,
    /// Mumbai, India (no comprehensive law at measurement time).
    India,
    /// Sydney, Australia (Privacy Act, no consent mandate).
    Australia,
}

/// Data-protection regime relevant to cookie consent at the VP's location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrivacyRegime {
    /// EU General Data Protection Regulation: opt-in consent.
    Gdpr,
    /// California Consumer Privacy Act: opt-out.
    Ccpa,
    /// Brazilian Lei Geral de Proteção de Dados.
    Lgpd,
    /// No comprehensive regulation (or none relevant to cookie banners).
    None,
}

impl Region {
    /// All eight regions in the paper's Table 1 order.
    pub const ALL: [Region; 8] = [
        Region::UsEast,
        Region::UsWest,
        Region::Brazil,
        Region::Germany,
        Region::Sweden,
        Region::SouthAfrica,
        Region::India,
        Region::Australia,
    ];

    /// Is this vantage point inside the EU (GDPR territory)?
    pub fn is_eu(self) -> bool {
        matches!(self, Region::Germany | Region::Sweden)
    }

    /// The privacy regime at this location.
    pub fn regime(self) -> PrivacyRegime {
        match self {
            Region::Germany | Region::Sweden => PrivacyRegime::Gdpr,
            Region::UsWest => PrivacyRegime::Ccpa,
            Region::Brazil => PrivacyRegime::Lgpd,
            Region::UsEast | Region::SouthAfrica | Region::India | Region::Australia => {
                PrivacyRegime::None
            }
        }
    }

    /// ISO 3166-1 alpha-2 country code of the VP.
    pub fn country_code(self) -> &'static str {
        match self {
            Region::Germany => "DE",
            Region::Sweden => "SE",
            Region::UsEast | Region::UsWest => "US",
            Region::Brazil => "BR",
            Region::SouthAfrica => "ZA",
            Region::India => "IN",
            Region::Australia => "AU",
        }
    }

    /// The country-code TLD associated with the VP's country (Table 1's
    /// "ccTLD" column groups detections by this).
    pub fn cc_tld(self) -> &'static str {
        match self {
            Region::Germany => "de",
            Region::Sweden => "se",
            Region::UsEast | Region::UsWest => "us",
            Region::Brazil => "br",
            Region::SouthAfrica => "za",
            Region::India => "in",
            Region::Australia => "au",
        }
    }

    /// The most commonly spoken language in the VP's country, as an ISO 639
    /// code (Table 1's "Language" column groups detections by this).
    pub fn main_language(self) -> &'static str {
        match self {
            Region::Germany => "de",
            Region::Sweden => "sv",
            Region::UsEast | Region::UsWest => "en",
            Region::Brazil => "pt",
            Region::SouthAfrica => "en",
            Region::India => "en",
            Region::Australia => "en",
        }
    }

    /// Human-readable VP label, matching Table 1 rows.
    pub fn label(self) -> &'static str {
        match self {
            Region::UsEast => "US East",
            Region::UsWest => "US West",
            Region::Brazil => "Brazil",
            Region::Germany => "Germany",
            Region::Sweden => "Sweden",
            Region::SouthAfrica => "South Africa",
            Region::India => "India",
            Region::Australia => "Australia",
        }
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_distinct_regions() {
        let mut labels: Vec<&str> = Region::ALL.iter().map(|r| r.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 8);
    }

    #[test]
    fn eu_and_regimes() {
        assert!(Region::Germany.is_eu());
        assert!(Region::Sweden.is_eu());
        assert_eq!(
            Region::ALL.iter().filter(|r| r.is_eu()).count(),
            2,
            "exactly two EU vantage points"
        );
        assert_eq!(Region::Germany.regime(), PrivacyRegime::Gdpr);
        assert_eq!(Region::UsWest.regime(), PrivacyRegime::Ccpa);
        assert_eq!(Region::UsEast.regime(), PrivacyRegime::None);
        assert_eq!(Region::Brazil.regime(), PrivacyRegime::Lgpd);
    }

    #[test]
    fn table1_metadata() {
        assert_eq!(Region::Germany.cc_tld(), "de");
        assert_eq!(Region::Germany.main_language(), "de");
        assert_eq!(Region::Australia.main_language(), "en");
        assert_eq!(Region::Sweden.main_language(), "sv");
        assert_eq!(Region::Brazil.country_code(), "BR");
    }
}
