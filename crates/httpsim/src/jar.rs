//! Cookie jar: per-profile cookie storage with RFC 6265 matching.
//!
//! OpenWPM records every cookie a visit stores; the jar is our equivalent
//! ledger. It enforces the uniqueness key (name, domain, path), expiry, and
//! produces the party/tracking breakdowns the paper's figures are built
//! from.

use crate::cookie::{classify_party, Cookie, CookieParty};
use crate::psl::registrable_domain;
use crate::url::Url;
use std::collections::HashSet;

/// A cookie store for one browser profile.
#[derive(Debug, Clone, Default)]
pub struct CookieJar {
    cookies: Vec<Cookie>,
}

/// Cookie counts broken down the way Figures 4 and 5 report them.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CookieBreakdown {
    /// Cookies whose domain is same-site with the page.
    pub first_party: f64,
    /// Cookies from other sites.
    pub third_party: f64,
    /// Cookies whose domain appears on the tracker blocklist
    /// (justdomains-style classification, §4.3).
    pub tracking: f64,
}

impl CookieBreakdown {
    /// Total number of cookies (first + third party).
    pub fn total(&self) -> f64 {
        self.first_party + self.third_party
    }
}

impl CookieJar {
    /// Empty jar.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of stored cookies.
    pub fn len(&self) -> usize {
        self.cookies.len()
    }

    /// True if no cookies are stored.
    pub fn is_empty(&self) -> bool {
        self.cookies.is_empty()
    }

    /// Store a cookie, replacing any existing cookie with the same
    /// (name, domain, path) key. An immediately-expired cookie deletes the
    /// stored one (the standard deletion idiom).
    pub fn store(&mut self, cookie: Cookie) {
        self.cookies.retain(|c| {
            !(c.name == cookie.name && c.domain == cookie.domain && c.path == cookie.path)
        });
        if !cookie.is_immediately_expired() {
            self.cookies.push(cookie);
        }
    }

    /// Parse and store every `Set-Cookie` header in `headers` received from
    /// `origin`. Returns how many were accepted.
    pub fn store_response_cookies<'a>(
        &mut self,
        headers: impl IntoIterator<Item = &'a str>,
        origin: &Url,
    ) -> usize {
        let mut accepted = 0;
        for h in headers {
            if let Some(c) = Cookie::parse_set_cookie(h, origin) {
                let deleted = c.is_immediately_expired();
                self.store(c);
                if !deleted {
                    accepted += 1;
                }
            }
        }
        accepted
    }

    /// Cookies that would be sent on a request to `url`, in storage order.
    pub fn cookies_for(&self, url: &Url) -> Vec<&Cookie> {
        self.cookies.iter().filter(|c| c.matches_url(url)).collect()
    }

    /// The `Cookie:` header value for a request to `url`, or `None` if no
    /// cookies match.
    // lint:allow(r9) — the Cookie header must be rendered per request; buffer reuse across requests is ROADMAP item 1
    pub fn cookie_header(&self, url: &Url) -> Option<String> {
        let cookies = self.cookies_for(url);
        if cookies.is_empty() {
            return None;
        }
        Some(
            cookies
                .iter()
                .map(|c| format!("{}={}", c.name, c.value))
                .collect::<Vec<_>>()
                .join("; "),
        )
    }

    /// Iterate all stored cookies.
    pub fn iter(&self) -> impl Iterator<Item = &Cookie> {
        self.cookies.iter()
    }

    /// Remove every cookie whose domain is same-site with `site_host` —
    /// the "delete your cookies for this website" step a user must perform
    /// to revoke a cookiewall acceptance (§5 of the paper).
    pub fn clear_site(&mut self, site_host: &str) {
        self.cookies
            .retain(|c| !crate::psl::same_site(&c.domain, site_host));
    }

    /// Remove everything.
    pub fn clear(&mut self) {
        self.cookies.clear();
    }

    /// Drop session cookies (those without `Max-Age`/`Expires`) — what a
    /// browser restart does. Persistent cookies, like the consent cookie a
    /// cookiewall stores for a year, survive.
    pub fn expire_session_cookies(&mut self) {
        self.cookies.retain(|c| c.max_age.is_some());
    }

    /// Break stored cookies down into first-party / third-party / tracking
    /// relative to a page at `page_host`, using `is_tracker` as the
    /// blocklist oracle (domain → listed?).
    pub fn breakdown(
        &self,
        page_host: &str,
        mut is_tracker: impl FnMut(&str) -> bool,
    ) -> CookieBreakdown {
        let mut b = CookieBreakdown::default();
        for c in &self.cookies {
            match classify_party(c, page_host) {
                CookieParty::FirstParty => b.first_party += 1.0,
                CookieParty::ThirdParty => b.third_party += 1.0,
            }
            if is_tracker(&c.domain) {
                b.tracking += 1.0;
            }
        }
        b
    }

    /// Distinct registrable domains that set cookies — a quick proxy for
    /// "how many parties touched this visit".
    pub fn distinct_sites(&self) -> usize {
        self.cookies
            .iter()
            .filter_map(|c| registrable_domain(&c.domain))
            .collect::<HashSet<_>>()
            .len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(s: &str) -> Url {
        Url::parse(s).unwrap()
    }

    #[test]
    fn store_and_retrieve() {
        let mut jar = CookieJar::new();
        let o = u("https://www.site.de/");
        jar.store_response_cookies(["a=1", "b=2; Domain=site.de"], &o);
        assert_eq!(jar.len(), 2);
        let got = jar.cookies_for(&u("https://www.site.de/page"));
        assert_eq!(got.len(), 2);
        // Host-only cookie not sent to sibling subdomain; domain cookie is.
        let sibling = jar.cookies_for(&u("https://shop.site.de/"));
        assert_eq!(sibling.len(), 1);
        assert_eq!(sibling[0].name, "b");
    }

    #[test]
    fn replacement_by_key() {
        let mut jar = CookieJar::new();
        let o = u("https://a.de/");
        jar.store_response_cookies(["x=old"], &o);
        jar.store_response_cookies(["x=new"], &o);
        assert_eq!(jar.len(), 1);
        assert_eq!(jar.cookies_for(&o)[0].value, "new");
        // Same name, different path = different cookie.
        jar.store_response_cookies(["x=scoped; Path=/p"], &o);
        assert_eq!(jar.len(), 2);
    }

    #[test]
    fn deletion_via_expiry() {
        let mut jar = CookieJar::new();
        let o = u("https://a.de/");
        jar.store_response_cookies(["x=1"], &o);
        assert_eq!(jar.len(), 1);
        jar.store_response_cookies(["x=; Max-Age=0"], &o);
        assert_eq!(jar.len(), 0);
    }

    #[test]
    fn cookie_header_format() {
        let mut jar = CookieJar::new();
        let o = u("https://a.de/");
        jar.store_response_cookies(["a=1", "b=2"], &o);
        assert_eq!(jar.cookie_header(&o).unwrap(), "a=1; b=2");
        assert_eq!(jar.cookie_header(&u("https://other.de/")), None);
    }

    #[test]
    fn breakdown_parties_and_tracking() {
        let mut jar = CookieJar::new();
        jar.store_response_cookies(["fp=1"], &u("https://www.news.de/"));
        jar.store_response_cookies(["ad=2; Domain=adnet.com"], &u("https://cdn.adnet.com/p"));
        jar.store_response_cookies(["cdn=3"], &u("https://static.cdnhost.net/x"));
        let trackers: HashSet<&str> = ["adnet.com"].into_iter().collect();
        let b = jar.breakdown("www.news.de", |d| {
            registrable_domain(d).is_some_and(|r| trackers.contains(r))
        });
        assert_eq!(b.first_party, 1.0);
        assert_eq!(b.third_party, 2.0);
        assert_eq!(b.tracking, 1.0);
        assert_eq!(b.total(), 3.0);
        assert_eq!(jar.distinct_sites(), 3);
    }

    #[test]
    fn clear_site_only_removes_that_site() {
        let mut jar = CookieJar::new();
        jar.store_response_cookies(["a=1"], &u("https://www.wall.de/"));
        jar.store_response_cookies(["b=2; Domain=wall.de"], &u("https://wall.de/"));
        jar.store_response_cookies(["c=3"], &u("https://other.de/"));
        jar.clear_site("wall.de");
        assert_eq!(jar.len(), 1);
        assert_eq!(jar.iter().next().unwrap().name, "c");
    }

    #[test]
    fn restart_drops_only_session_cookies() {
        let mut jar = CookieJar::new();
        let o = u("https://a.de/");
        jar.store_response_cookies(["sid=1", "consent=yes; Max-Age=31536000"], &o);
        assert_eq!(jar.len(), 2);
        jar.expire_session_cookies();
        assert_eq!(jar.len(), 1);
        assert_eq!(jar.iter().next().unwrap().name, "consent");
    }

    #[test]
    fn rejected_cookies_not_counted() {
        let mut jar = CookieJar::new();
        let n = jar.store_response_cookies(
            ["ok=1", "bad; Domain=elsewhere.com", "=alsobad"],
            &u("https://a.de/"),
        );
        assert_eq!(n, 1);
        assert_eq!(jar.len(), 1);
    }
}
