//! Cookies: the RFC 6265 subset the measurement pipeline depends on.
//!
//! Covers `Set-Cookie` parsing with the attributes that influence storage
//! and matching (`Domain`, `Path`, `Max-Age`, `Expires` [simplified],
//! `Secure`, `HttpOnly`, `SameSite`), host-only semantics, and the party
//! classification used throughout §4.3/§4.4 of the paper.

use crate::psl::same_site;
use crate::url::Url;
use std::fmt;

/// `SameSite` attribute values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SameSite {
    /// Sent on all requests (requires `Secure` in real browsers; we do not
    /// enforce that coupling).
    None,
    /// Sent on same-site requests and top-level navigations.
    #[default]
    Lax,
    /// Sent only on same-site requests.
    Strict,
}

impl SameSite {
    fn parse(v: &str) -> Option<Self> {
        match v.trim().to_ascii_lowercase().as_str() {
            "none" => Some(SameSite::None),
            "lax" => Some(SameSite::Lax),
            "strict" => Some(SameSite::Strict),
            _ => None,
        }
    }
}

/// A stored cookie.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cookie {
    /// Cookie name (case-sensitive).
    pub name: String,
    /// Cookie value.
    pub value: String,
    /// Domain the cookie is scoped to (no leading dot). For host-only
    /// cookies this is the exact request host.
    pub domain: String,
    /// True when no `Domain` attribute was given: the cookie only matches
    /// the exact host that set it.
    pub host_only: bool,
    /// Path scope, defaulting to `/`.
    pub path: String,
    /// Lifetime in seconds from creation, `None` for session cookies.
    /// (The simulator has no wall clock; expiry is relative to the visit
    /// sequence number.)
    pub max_age: Option<i64>,
    /// `Secure` attribute.
    pub secure: bool,
    /// `HttpOnly` attribute.
    pub http_only: bool,
    /// `SameSite` attribute.
    pub same_site: SameSite,
}

impl Cookie {
    /// Parse one `Set-Cookie` header value received from `origin`.
    ///
    /// Returns `None` for unparseable or rejected cookies (empty name,
    /// domain not matching the origin — the "domain attribute must
    /// domain-match the request host" rule that stops cross-site planting).
    // lint:allow(r9) — the jar owns cookie fields; zero-copy Set-Cookie parsing is part of ROADMAP item 1
    pub fn parse_set_cookie(header: &str, origin: &Url) -> Option<Cookie> {
        let mut parts = header.split(';');
        let nv = parts.next()?;
        let (name, value) = nv.split_once('=')?;
        let name = name.trim();
        if name.is_empty() {
            return None;
        }
        let mut cookie = Cookie {
            name: name.to_string(),
            value: value.trim().trim_matches('"').to_string(),
            domain: origin.host().to_string(),
            host_only: true,
            path: "/".to_string(),
            max_age: None,
            secure: false,
            http_only: false,
            same_site: SameSite::default(),
        };
        for attr in parts {
            let (k, v) = match attr.split_once('=') {
                Some((k, v)) => (k.trim().to_ascii_lowercase(), v.trim()),
                None => (attr.trim().to_ascii_lowercase(), ""),
            };
            match k.as_str() {
                "domain" => {
                    let d = v.trim_start_matches('.').to_ascii_lowercase();
                    if d.is_empty() {
                        continue;
                    }
                    // Reject cookies for domains the origin doesn't live in.
                    if !crate::psl::domain_match(origin.host(), &d) {
                        return None;
                    }
                    // Reject cookies scoped to a bare public suffix.
                    crate::psl::registrable_domain(&d)?;
                    cookie.domain = d;
                    cookie.host_only = false;
                }
                "path" if v.starts_with('/') => {
                    cookie.path = v.to_string();
                }
                "max-age" => {
                    if let Ok(secs) = v.parse::<i64>() {
                        cookie.max_age = Some(secs);
                    }
                }
                "expires" => {
                    // Simplified: any Expires makes the cookie persistent
                    // with a long lifetime; an epoch-ish date expires it.
                    if v.contains("1970") || v.contains("1969") {
                        cookie.max_age = Some(0);
                    } else if cookie.max_age.is_none() {
                        cookie.max_age = Some(86400 * 365);
                    }
                }
                "secure" => cookie.secure = true,
                "httponly" => cookie.http_only = true,
                "samesite" => {
                    if let Some(ss) = SameSite::parse(v) {
                        cookie.same_site = ss;
                    }
                }
                _ => {}
            }
        }
        Some(cookie)
    }

    /// True if this cookie is already expired at creation (`Max-Age<=0`).
    pub fn is_immediately_expired(&self) -> bool {
        matches!(self.max_age, Some(a) if a <= 0)
    }

    /// RFC 6265 path-match.
    pub fn path_matches(&self, request_path: &str) -> bool {
        if self.path == request_path {
            return true;
        }
        request_path.starts_with(&self.path)
            && (self.path.ends_with('/')
                || request_path.as_bytes().get(self.path.len()) == Some(&b'/'))
    }

    /// Should this cookie be sent on a request to `url`?
    pub fn matches_url(&self, url: &Url) -> bool {
        if self.secure && !url.is_secure() {
            return false;
        }
        let host_ok = if self.host_only {
            url.host().eq_ignore_ascii_case(&self.domain)
        } else {
            crate::psl::domain_match(url.host(), &self.domain)
        };
        host_ok && self.path_matches(url.path())
    }

    /// Is this cookie first-party with respect to a page at `page_host`?
    /// (Same registrable domain.)
    pub fn is_first_party_for(&self, page_host: &str) -> bool {
        same_site(&self.domain, page_host)
    }
}

impl fmt::Display for Cookie {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}={}; Domain={}", self.name, self.value, self.domain)
    }
}

/// Party classification of a cookie relative to the visited page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CookieParty {
    /// Same registrable domain as the page.
    FirstParty,
    /// Different registrable domain.
    ThirdParty,
}

/// Classify `cookie` relative to a page hosted at `page_host`.
pub fn classify_party(cookie: &Cookie, page_host: &str) -> CookieParty {
    if cookie.is_first_party_for(page_host) {
        CookieParty::FirstParty
    } else {
        CookieParty::ThirdParty
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn origin(s: &str) -> Url {
        Url::parse(s).unwrap()
    }

    #[test]
    fn parses_basic_cookie() {
        let o = origin("https://www.zeit.de/index");
        let c = Cookie::parse_set_cookie("sid=abc123", &o).unwrap();
        assert_eq!(c.name, "sid");
        assert_eq!(c.value, "abc123");
        assert_eq!(c.domain, "www.zeit.de");
        assert!(c.host_only);
        assert_eq!(c.path, "/");
        assert!(!c.secure);
        assert_eq!(c.same_site, SameSite::Lax);
    }

    #[test]
    fn parses_attributes() {
        let o = origin("https://shop.example.de/a/b");
        let c = Cookie::parse_set_cookie(
            "pref=\"x\"; Domain=.example.de; Path=/a; Max-Age=3600; Secure; HttpOnly; SameSite=None",
            &o,
        )
        .unwrap();
        assert_eq!(c.value, "x", "quotes stripped");
        assert_eq!(c.domain, "example.de");
        assert!(!c.host_only);
        assert_eq!(c.path, "/a");
        assert_eq!(c.max_age, Some(3600));
        assert!(c.secure && c.http_only);
        assert_eq!(c.same_site, SameSite::None);
    }

    #[test]
    fn rejects_foreign_domain() {
        let o = origin("https://site.de/");
        assert!(Cookie::parse_set_cookie("x=1; Domain=other.de", &o).is_none());
        assert!(Cookie::parse_set_cookie("x=1; Domain=te.de", &o).is_none());
        // Public-suffix-wide cookies rejected.
        assert!(Cookie::parse_set_cookie("x=1; Domain=de", &o).is_none());
    }

    #[test]
    fn parent_domain_allowed() {
        let o = origin("https://sub.site.de/");
        let c = Cookie::parse_set_cookie("x=1; Domain=site.de", &o).unwrap();
        assert_eq!(c.domain, "site.de");
    }

    #[test]
    fn rejects_nameless() {
        let o = origin("https://a.de/");
        assert!(Cookie::parse_set_cookie("=v", &o).is_none());
        assert!(Cookie::parse_set_cookie("novalue", &o).is_none());
    }

    #[test]
    fn empty_value_ok() {
        let o = origin("https://a.de/");
        let c = Cookie::parse_set_cookie("flag=", &o).unwrap();
        assert_eq!(c.value, "");
    }

    #[test]
    fn path_matching() {
        let o = origin("https://a.de/x/y");
        let c = Cookie::parse_set_cookie("n=1; Path=/x", &o).unwrap();
        assert!(c.path_matches("/x"));
        assert!(c.path_matches("/x/y"));
        assert!(!c.path_matches("/xy"));
        assert!(!c.path_matches("/"));
        let root = Cookie::parse_set_cookie("n=1", &o).unwrap();
        assert!(root.path_matches("/anything"));
    }

    #[test]
    fn url_matching_secure_and_host_only() {
        let o = origin("https://www.a.de/");
        let host_only = Cookie::parse_set_cookie("h=1", &o).unwrap();
        assert!(host_only.matches_url(&origin("https://www.a.de/p")));
        assert!(!host_only.matches_url(&origin("https://sub.www.a.de/")));
        assert!(!host_only.matches_url(&origin("https://a.de/")));

        let domain_wide = Cookie::parse_set_cookie("d=1; Domain=a.de", &o).unwrap();
        assert!(domain_wide.matches_url(&origin("https://other.a.de/")));

        let secure = Cookie::parse_set_cookie("s=1; Secure", &o).unwrap();
        assert!(!secure.matches_url(&origin("http://www.a.de/")));
    }

    #[test]
    fn expiry_parsing() {
        let o = origin("https://a.de/");
        let session = Cookie::parse_set_cookie("s=1", &o).unwrap();
        assert_eq!(session.max_age, None);
        let expired =
            Cookie::parse_set_cookie("g=x; Expires=Thu, 01 Jan 1970 00:00:00 GMT", &o).unwrap();
        assert!(expired.is_immediately_expired());
        let neg = Cookie::parse_set_cookie("n=1; Max-Age=-5", &o).unwrap();
        assert!(neg.is_immediately_expired());
        let persistent =
            Cookie::parse_set_cookie("p=1; Expires=Fri, 31 Dec 2038 23:59:59 GMT", &o).unwrap();
        assert!(persistent.max_age.unwrap() > 0);
    }

    #[test]
    fn party_classification() {
        let o = origin("https://cdn.tracker.com/pixel");
        let c = Cookie::parse_set_cookie("uid=7; Domain=tracker.com", &o).unwrap();
        assert_eq!(classify_party(&c, "www.zeit.de"), CookieParty::ThirdParty);
        assert_eq!(
            classify_party(&c, "api.tracker.com"),
            CookieParty::FirstParty
        );
    }
}
