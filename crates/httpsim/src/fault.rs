//! Deterministic fault injection: the hostile-Web model.
//!
//! The paper's crawl contends with unreachable hosts, timeouts, bot walls,
//! and transient server errors; BannerClick re-visits failed sites before
//! counting them out. The simulated network is perfectly reliable, so this
//! module supplies the chaos: a [`FaultPlan`] decides — as a *pure
//! function* of `(seed, region, domain, attempt)` — whether a navigation
//! is answered by the origin or by an injected failure.
//!
//! ## Fault classes
//!
//! * **Transient** faults are drawn per `(region, domain)` cell: the
//!   cell's first one or two navigation attempts fail (connection reset,
//!   5xx, a stalled response that blows the caller's virtual-time budget,
//!   a truncated body, or a flapping mix of those), after which the cell
//!   is healthy forever. A crawler that retries past the window observes
//!   *exactly* the responses a fault-free run would.
//! * **Permanent** faults are drawn per domain: every attempt from every
//!   region fails the same way — the "dead origin" a circuit breaker
//!   exists for.
//!
//! ## The byte-identity invariant
//!
//! An injected fault never invokes the wrapped origin server. Origin-side
//! state (per-site visit counters that seed cookie noise) therefore
//! advances only on attempts that really succeed, so a transient-faulted
//! crawl with retries converges to the byte-identical fault-free report.

use crate::geo::Region;
use crate::http::{Request, Response, TransportFault};
use crate::net::Server;
use crate::psl::registrable_domain;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Configuration of the fault layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Seed every fault decision derives from; two runs with the same seed
    /// (and rates) inject byte-identical faults.
    pub seed: u64,
    /// Probability that a `(region, domain)` cell starts with a transient
    /// fault window (recovers after one or two attempts).
    pub transient_rate: f64,
    /// Probability that a domain is permanently faulted — every attempt
    /// from every region fails until the end of the run.
    pub permanent_rate: f64,
    /// Virtual latency of a stalled response, in milliseconds. Must exceed
    /// the browser's timeout budget to surface as a timeout.
    pub stall_ms: u64,
}

impl FaultConfig {
    /// A config with the given seed and everything else at defaults
    /// (rates zero — injects nothing until a rate is raised).
    pub fn new(seed: u64) -> Self {
        FaultConfig {
            seed,
            transient_rate: 0.0,
            permanent_rate: 0.0,
            stall_ms: 45_000,
        }
    }

    /// True when no fault can ever fire (all rates zero) — callers treat
    /// this exactly like "no fault layer installed".
    pub fn is_noop(&self) -> bool {
        self.transient_rate <= 0.0 && self.permanent_rate <= 0.0
    }
}

/// The failure an individual faulted attempt observes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// TCP-level connection reset: no response bytes at all.
    ConnectionReset,
    /// The origin answered with this 5xx status.
    ServerError(u16),
    /// The response stalls past any reasonable deadline (virtual latency
    /// [`FaultConfig::stall_ms`]).
    Stall,
    /// The body stops mid-transfer (content-length mismatch).
    TruncatedBody,
}

/// Running totals of injected faults, for the chaos summary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Connection resets injected.
    pub resets: u64,
    /// 5xx responses injected.
    pub server_errors: u64,
    /// Stalled responses injected.
    pub stalls: u64,
    /// Truncated bodies injected.
    pub truncated: u64,
}

impl FaultCounts {
    /// Total faults injected across all kinds.
    pub fn total(&self) -> u64 {
        self.resets + self.server_errors + self.stalls + self.truncated
    }
}

/// splitmix64 finalizer: decorrelates the FNV prefix hash below.
fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Stable hash of a decision lane: seed plus labelled parts.
fn lane_hash(seed: u64, parts: &[&str]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ seed;
    for part in parts {
        for b in part.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^= 0x1f;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    mix(h)
}

/// Map a hash to the unit interval, uniformly.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// How one `(region, domain)` cell misbehaves, if at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CellFault {
    /// Every attempt fails with `kind`.
    Permanent(FaultKind),
    /// Attempts `0..window` fail; `flapping` cells alternate reset/5xx
    /// across the window instead of repeating one kind.
    Transient {
        window: u32,
        kind: FaultKind,
        flapping: bool,
    },
}

/// A seeded fault schedule over the whole (region × domain) matrix.
///
/// Decisions are pure functions of `(seed, region, domain, attempt)`; the
/// only state is the per-cell attempt counter (each navigation to a cell
/// advances it) and the injection totals for the chaos summary.
pub struct FaultPlan {
    config: FaultConfig,
    attempts: Mutex<HashMap<(Region, String), u32>>,
    resets: AtomicU64,
    server_errors: AtomicU64,
    stalls: AtomicU64,
    truncated: AtomicU64,
}

impl FaultPlan {
    /// A plan executing `config`.
    pub fn new(config: FaultConfig) -> Self {
        FaultPlan {
            config,
            attempts: Mutex::new(HashMap::new()),
            resets: AtomicU64::new(0),
            server_errors: AtomicU64::new(0),
            stalls: AtomicU64::new(0),
            truncated: AtomicU64::new(0),
        }
    }

    /// The configuration this plan executes.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Injection totals so far.
    pub fn injected(&self) -> FaultCounts {
        FaultCounts {
            resets: self.resets.load(Ordering::Relaxed),
            server_errors: self.server_errors.load(Ordering::Relaxed),
            stalls: self.stalls.load(Ordering::Relaxed),
            truncated: self.truncated.load(Ordering::Relaxed),
        }
    }

    /// Key a host down to the unit fault decisions apply to.
    fn fault_domain(host: &str) -> &str {
        registrable_domain(host).unwrap_or(host)
    }

    /// Claim the next attempt ordinal for a cell (stateful: each
    /// navigation to the cell advances its counter by one).
    // lint:allow(r9) — fault label allocated only on the faulted attempt; ROADMAP item 1
    pub fn next_attempt(&self, region: Region, host: &str) -> u32 {
        let key = (region, Self::fault_domain(host).to_string());
        let mut attempts = self.attempts.lock();
        let slot = attempts.entry(key).or_insert(0);
        let attempt = *slot;
        *slot += 1;
        attempt
    }

    /// How a cell misbehaves, as a pure function of the seed.
    fn cell_fault(&self, region: Region, domain: &str) -> Option<CellFault> {
        let perm = lane_hash(self.config.seed, &["perm", domain]);
        if unit(perm) < self.config.permanent_rate {
            let kind = match perm % 3 {
                0 => FaultKind::ConnectionReset,
                1 => FaultKind::ServerError(503),
                _ => FaultKind::Stall,
            };
            return Some(CellFault::Permanent(kind));
        }
        let cell = lane_hash(self.config.seed, &["cell", region.label(), domain]);
        if unit(cell) < self.config.transient_rate {
            let window = 1 + ((cell >> 8) % 2) as u32;
            let (kind, flapping) = match (cell >> 16) % 5 {
                0 => (FaultKind::ConnectionReset, false),
                1 => (
                    FaultKind::ServerError(500 + [0, 2, 3][(cell >> 24) as usize % 3]),
                    false,
                ),
                2 => (FaultKind::Stall, false),
                3 => (FaultKind::TruncatedBody, false),
                _ => (FaultKind::ConnectionReset, true),
            };
            return Some(CellFault::Transient {
                window,
                kind,
                flapping,
            });
        }
        None
    }

    /// The fault (if any) attempt `attempt` of `(region, host)` observes.
    /// Pure: same inputs, same answer, on every plan with this seed.
    pub fn fault_for(&self, region: Region, host: &str, attempt: u32) -> Option<FaultKind> {
        let domain = Self::fault_domain(host);
        match self.cell_fault(region, domain)? {
            CellFault::Permanent(kind) => Some(kind),
            CellFault::Transient {
                window,
                kind,
                flapping,
            } => {
                if attempt >= window {
                    return None;
                }
                if flapping {
                    // A flapping host fails differently on consecutive
                    // attempts: reset, then an overloaded 502.
                    Some(if attempt.is_multiple_of(2) {
                        FaultKind::ConnectionReset
                    } else {
                        FaultKind::ServerError(502)
                    })
                } else {
                    Some(kind)
                }
            }
        }
    }

    /// Is `host` permanently faulted (every attempt, every region)?
    pub fn is_permanently_faulted(&self, host: &str) -> bool {
        matches!(
            self.cell_fault(Region::ALL[0], Self::fault_domain(host)),
            Some(CellFault::Permanent(_))
        )
    }

    /// Length of the transient fault window of a cell (0 = healthy or
    /// permanently faulted — permanence is reported separately).
    pub fn transient_window(&self, region: Region, host: &str) -> u32 {
        match self.cell_fault(region, Self::fault_domain(host)) {
            Some(CellFault::Transient { window, .. }) => window,
            _ => 0,
        }
    }

    /// Build the response a faulted attempt observes, counting it. The
    /// origin server is *not* consulted: origin-side state must advance
    /// exactly as in a fault-free run (see the module invariant).
    pub fn synthesize(&self, kind: FaultKind) -> Response {
        match kind {
            FaultKind::ConnectionReset => {
                self.resets.fetch_add(1, Ordering::Relaxed);
                let mut resp = Response::connection_error();
                resp.transport = Some(TransportFault::ConnectionReset);
                resp
            }
            FaultKind::ServerError(status) => {
                self.server_errors.fetch_add(1, Ordering::Relaxed);
                let mut resp =
                    Response::html("<html><body><h1>Service unavailable</h1></body></html>");
                resp.status = status;
                resp
            }
            FaultKind::Stall => {
                self.stalls.fetch_add(1, Ordering::Relaxed);
                let mut resp = Response::html("<html><head><title>…");
                resp.latency_ms = self.config.stall_ms;
                resp
            }
            FaultKind::TruncatedBody => {
                self.truncated.fetch_add(1, Ordering::Relaxed);
                let mut resp = Response::html("<html><head><title>partial transf");
                resp.transport = Some(TransportFault::TruncatedBody);
                resp
            }
        }
    }
}

impl std::fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultPlan")
            .field("config", &self.config)
            .field("injected", &self.injected())
            .finish()
    }
}

/// A [`Server`] decorator that consults a [`FaultPlan`] before letting a
/// top-level navigation through to the wrapped origin. Subresource
/// requests always pass through: the fault model targets the navigation
/// (connection establishment and main-document transfer), which is where
/// the crawl's retry policy sits.
pub struct FaultyServer {
    inner: Arc<dyn Server>,
    plan: Arc<FaultPlan>,
}

impl FaultyServer {
    /// Wrap `inner` with the fault schedule of `plan`.
    pub fn new(inner: Arc<dyn Server>, plan: Arc<FaultPlan>) -> Self {
        FaultyServer { inner, plan }
    }
}

impl Server for FaultyServer {
    fn handle(&self, req: &Request) -> Response {
        if req.initiator_host.is_none() {
            let host = req.url.host();
            let attempt = self.plan.next_attempt(req.region, host);
            if let Some(kind) = self.plan.fault_for(req.region, host, attempt) {
                return self.plan.synthesize(kind);
            }
        }
        self.inner.handle(req)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::url::Url;

    fn chaos(seed: u64, transient: f64, permanent: f64) -> FaultPlan {
        FaultPlan::new(FaultConfig {
            seed,
            transient_rate: transient,
            permanent_rate: permanent,
            stall_ms: 45_000,
        })
    }

    #[test]
    fn noop_config_never_faults() {
        let plan = chaos(7, 0.0, 0.0);
        for region in Region::ALL {
            for attempt in 0..4 {
                assert_eq!(plan.fault_for(region, "site.de", attempt), None);
            }
        }
        assert!(plan.config().is_noop());
    }

    #[test]
    fn decisions_are_deterministic_across_plans() {
        let a = chaos(1234, 0.5, 0.1);
        let b = chaos(1234, 0.5, 0.1);
        for region in [Region::Germany, Region::India] {
            for i in 0..40 {
                let host = format!("site-{i}.example.de");
                for attempt in 0..4 {
                    assert_eq!(
                        a.fault_for(region, &host, attempt),
                        b.fault_for(region, &host, attempt),
                        "{host} attempt {attempt}"
                    );
                }
            }
        }
    }

    #[test]
    fn transient_windows_close() {
        let plan = chaos(99, 1.0, 0.0);
        for region in Region::ALL {
            for i in 0..30 {
                let host = format!("s{i}.de");
                let window = plan.transient_window(region, &host);
                assert!((1..=2).contains(&window), "{host}: window {window}");
                for attempt in 0..window {
                    assert!(plan.fault_for(region, &host, attempt).is_some());
                }
                for attempt in window..window + 4 {
                    assert_eq!(plan.fault_for(region, &host, attempt), None);
                }
            }
        }
    }

    #[test]
    fn permanent_faults_hold_for_every_region_and_attempt() {
        let plan = chaos(5, 0.0, 1.0);
        assert!(plan.is_permanently_faulted("always-down.com"));
        let first = plan.fault_for(Region::Germany, "always-down.com", 0);
        assert!(first.is_some());
        for region in Region::ALL {
            for attempt in 0..6 {
                assert_eq!(plan.fault_for(region, "always-down.com", attempt), first);
            }
        }
    }

    #[test]
    fn attempt_counter_is_per_cell() {
        let plan = chaos(1, 0.0, 0.0);
        assert_eq!(plan.next_attempt(Region::Germany, "a.de"), 0);
        assert_eq!(plan.next_attempt(Region::Germany, "a.de"), 1);
        assert_eq!(plan.next_attempt(Region::Sweden, "a.de"), 0);
        assert_eq!(plan.next_attempt(Region::Germany, "b.de"), 0);
        // Subdomains share their registrable domain's counter.
        assert_eq!(plan.next_attempt(Region::Germany, "www.a.de"), 2);
    }

    #[test]
    fn synthesized_responses_carry_fault_markers() {
        let plan = chaos(3, 0.0, 0.0);
        let reset = plan.synthesize(FaultKind::ConnectionReset);
        assert_eq!(reset.status, 0);
        assert_eq!(reset.transport, Some(TransportFault::ConnectionReset));
        let err = plan.synthesize(FaultKind::ServerError(503));
        assert_eq!(err.status, 503);
        assert_eq!(err.transport, None);
        let stall = plan.synthesize(FaultKind::Stall);
        assert_eq!(stall.latency_ms, 45_000);
        let cut = plan.synthesize(FaultKind::TruncatedBody);
        assert_eq!(cut.transport, Some(TransportFault::TruncatedBody));
        let counts = plan.injected();
        assert_eq!(counts.total(), 4);
        assert_eq!(
            (
                counts.resets,
                counts.server_errors,
                counts.stalls,
                counts.truncated
            ),
            (1, 1, 1, 1)
        );
    }

    #[test]
    fn faulty_server_never_consults_origin_during_fault() {
        use std::sync::atomic::AtomicU64;
        let hits = Arc::new(AtomicU64::new(0));
        let hits2 = Arc::clone(&hits);
        let origin: Arc<dyn Server> = Arc::new(move |_req: &Request| {
            hits2.fetch_add(1, Ordering::Relaxed);
            Response::html("<p>origin</p>")
        });
        let plan = Arc::new(chaos(42, 1.0, 0.0));
        let server = FaultyServer::new(origin, Arc::clone(&plan));
        let url = Url::parse("https://faulted.example/").unwrap();
        let region = Region::Germany;
        let window = plan.transient_window(region, url.host());
        assert!(window >= 1);
        for _ in 0..window {
            let resp = server.handle(&Request::navigation(url.clone(), region));
            let faulted = resp.status == 0
                || resp.status >= 500
                || resp.latency_ms > 0
                || resp.transport.is_some();
            assert!(faulted, "inside the window every attempt fails");
            assert_eq!(
                hits.load(Ordering::Relaxed),
                0,
                "origin must not see faulted attempts"
            );
        }
        let resp = server.handle(&Request::navigation(url.clone(), region));
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body_text(), "<p>origin</p>");
        assert_eq!(hits.load(Ordering::Relaxed), 1);
        // Subresources bypass the fault layer entirely.
        let sub = server.handle(&Request::subresource(
            url.clone(),
            region,
            "faulted.example",
        ));
        assert_eq!(sub.status, 200);
    }
}
