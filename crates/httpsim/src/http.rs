//! HTTP request/response model for the simulated network.
//!
//! Requests carry the context a geo-targeting, consent-aware web server
//! actually reacts to: the URL, the visitor's region, the `Cookie` header,
//! a user agent, and the top-level page that initiated the fetch (for
//! third-party attribution on the server side).

use crate::geo::Region;
use crate::url::Url;
use bytes::Bytes;

/// Request method; the crawl only ever issues GET and POST (login form).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Idempotent fetch.
    Get,
    /// Form submission (SMP login).
    Post,
}

/// An outbound HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Method.
    pub method: Method,
    /// Target URL.
    pub url: Url,
    /// Visitor's region (the vantage point making the request).
    pub region: Region,
    /// `Cookie:` header value, if the jar produced one.
    pub cookie_header: Option<String>,
    /// User agent string. Sites with bot detection inspect this.
    pub user_agent: String,
    /// Host of the top-level page that triggered this fetch (None for the
    /// top-level navigation itself).
    pub initiator_host: Option<String>,
    /// Form/body parameters for POST requests.
    pub body_params: Vec<(String, String)>,
}

impl Request {
    /// A top-level GET navigation from `region` to `url`.
    // lint:allow(r9) — request/response structs own their URL and body by design; ROADMAP item 1
    pub fn navigation(url: Url, region: Region) -> Self {
        Request {
            method: Method::Get,
            url,
            region,
            cookie_header: None,
            user_agent: DEFAULT_USER_AGENT.to_string(),
            initiator_host: None,
            body_params: Vec::new(),
        }
    }

    /// A subresource GET triggered by a page on `initiator_host`.
    // lint:allow(r9) — request/response structs own their URL and body by design; ROADMAP item 1
    pub fn subresource(url: Url, region: Region, initiator_host: &str) -> Self {
        Request {
            initiator_host: Some(initiator_host.to_string()),
            ..Request::navigation(url, region)
        }
    }

    /// Value of a cookie named `name` in the `Cookie` header, if present.
    pub fn cookie(&self, name: &str) -> Option<&str> {
        let header = self.cookie_header.as_deref()?;
        header.split(';').find_map(|pair| {
            let (k, v) = pair.trim().split_once('=')?;
            (k == name).then_some(v)
        })
    }

    /// True if any cookie named `name` is present.
    pub fn has_cookie(&self, name: &str) -> bool {
        self.cookie(name).is_some()
    }
}

/// The user agent OpenWPM's instrumented Firefox presents (abridged).
pub const DEFAULT_USER_AGENT: &str =
    "Mozilla/5.0 (X11; Linux x86_64; rv:102.0) Gecko/20100101 Firefox/102.0";

/// A transport-level failure observed while receiving a response — the
/// kind of breakage a status code cannot express. Injected by the fault
/// layer ([`crate::FaultPlan`]); a reliable network never sets it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportFault {
    /// The connection was reset before a response arrived.
    ConnectionReset,
    /// The body stopped mid-transfer (content-length mismatch).
    TruncatedBody,
}

/// An inbound HTTP response.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code (200, 301, 404, …).
    pub status: u16,
    /// `Set-Cookie` header values, one per cookie.
    pub set_cookies: Vec<String>,
    /// `Location` header for redirects.
    pub location: Option<String>,
    /// Content type (`text/html`, `application/javascript`, …).
    pub content_type: String,
    /// Response body.
    pub body: Bytes,
    /// Simulated transfer time in *virtual* milliseconds. Ordinary servers
    /// answer instantaneously (0); the fault layer uses large values to
    /// model stalled responses against a caller's timeout budget.
    pub latency_ms: u64,
    /// Transport-level failure, if the transfer broke below HTTP.
    pub transport: Option<TransportFault>,
}

impl Response {
    // lint:allow(r9) — request/response structs own their URL and body by design; ROADMAP item 1
    fn base(status: u16, content_type: &str, body: Bytes) -> Self {
        Response {
            status,
            set_cookies: Vec::new(),
            location: None,
            content_type: content_type.to_string(),
            body,
            latency_ms: 0,
            transport: None,
        }
    }

    /// A 200 HTML page.
    pub fn html(body: impl Into<Bytes>) -> Self {
        Self::base(200, "text/html; charset=utf-8", body.into())
    }

    /// A 200 JavaScript resource.
    pub fn script(body: impl Into<Bytes>) -> Self {
        Self::base(200, "application/javascript", body.into())
    }

    /// An empty 204 (tracking pixels, beacons).
    pub fn no_content() -> Self {
        Self::base(204, "text/plain", Bytes::new())
    }

    /// A 404.
    pub fn not_found() -> Self {
        Self::base(
            404,
            "text/html",
            Bytes::from_static(b"<html><body><h1>404</h1></body></html>"),
        )
    }

    /// The status-0 pseudo-response for a connection-level failure (no
    /// server reachable, or the fault layer reset the connection).
    pub fn connection_error() -> Self {
        Self::base(0, "", Bytes::new())
    }

    /// A 302 redirect to `location`.
    pub fn redirect(location: impl Into<String>) -> Self {
        let mut resp = Self::base(302, "text/html", Bytes::new());
        resp.location = Some(location.into());
        resp
    }

    /// Builder-style: add a `Set-Cookie` header.
    pub fn with_cookie(mut self, set_cookie: impl Into<String>) -> Self {
        self.set_cookies.push(set_cookie.into());
        self
    }

    /// True for 3xx with a Location header.
    pub fn is_redirect(&self) -> bool {
        (300..400).contains(&self.status) && self.location.is_some()
    }

    /// Body as UTF-8 text (lossy).
    pub fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_cookie_lookup() {
        let mut r = Request::navigation(Url::parse("https://a.de/").unwrap(), Region::Germany);
        assert_eq!(r.cookie("x"), None);
        r.cookie_header = Some("a=1; consent=accepted; b=2".to_string());
        assert_eq!(r.cookie("consent"), Some("accepted"));
        assert_eq!(r.cookie("a"), Some("1"));
        assert!(!r.has_cookie("missing"));
    }

    #[test]
    fn subresource_carries_initiator() {
        let r = Request::subresource(
            Url::parse("https://tracker.com/p.js").unwrap(),
            Region::UsEast,
            "news.de",
        );
        assert_eq!(r.initiator_host.as_deref(), Some("news.de"));
        assert_eq!(r.method, Method::Get);
    }

    #[test]
    fn response_builders() {
        let r = Response::html("<p>x</p>")
            .with_cookie("sid=1")
            .with_cookie("t=2");
        assert_eq!(r.status, 200);
        assert_eq!(r.set_cookies.len(), 2);
        assert_eq!(r.body_text(), "<p>x</p>");
        assert!(Response::redirect("/next").is_redirect());
        assert!(!Response::not_found().is_redirect());
        assert_eq!(Response::no_content().status, 204);
    }
}
