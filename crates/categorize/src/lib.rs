//! # categorize — website category classification
//!
//! The paper assigns each cookiewall website a content category using
//! FortiGuard's web-filter database (§4.1, Figure 1). FortiGuard is a
//! proprietary lookup service: domain in, category out. This crate
//! reproduces that interface with the same taxonomy slice the paper
//! reports, backed by (1) an explicit registry — populated from the
//! synthetic population's ground truth, playing the role of FortiGuard's
//! curated database — and (2) a keyword heuristic over the domain name as
//! fallback for unregistered domains, mirroring how category databases
//! bootstrap coverage.
//!
//! ## Example
//!
//! ```
//! use categorize::{Category, CategoryDb};
//!
//! let mut db = CategoryDb::new();
//! db.register("tagesblatt-beispiel.de", Category::NewsAndMedia);
//! assert_eq!(db.lookup("tagesblatt-beispiel.de"), Some(Category::NewsAndMedia));
//! assert_eq!(db.lookup("www.tagesblatt-beispiel.de"), Some(Category::NewsAndMedia));
//! // Fallback: the name itself signals the category.
//! assert_eq!(db.lookup("super-shopping-deals.com"), Some(Category::Shopping));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;

/// The category taxonomy — the FortiGuard categories Figure 1 reports,
/// plus the long-tail buckets the paper folds into "other".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Category {
    /// News outlets, magazines, broadcasters. The paper's largest bucket
    /// (more than one fourth of cookiewall sites).
    NewsAndMedia,
    /// Company sites, B2B services (9% in the paper).
    Business,
    /// Information technology, software, reviews (7%).
    InformationTechnology,
    /// Online shops and marketplaces.
    Shopping,
    /// Streaming, cinema, celebrity, music.
    Entertainment,
    /// Sport news and clubs.
    Sports,
    /// Travel, booking, tourism boards.
    Travel,
    /// Schools, universities, learning platforms.
    Education,
    /// Health, medicine, wellness.
    Health,
    /// Banks, insurance, personal finance.
    Finance,
    /// Games and gaming media.
    Games,
    /// Reference, portals, everything else.
    GeneralInterest,
}

impl Category {
    /// All categories, in the order Figure 1 lists its slices.
    pub const ALL: [Category; 12] = [
        Category::NewsAndMedia,
        Category::Business,
        Category::InformationTechnology,
        Category::Shopping,
        Category::Entertainment,
        Category::Sports,
        Category::Travel,
        Category::Education,
        Category::Health,
        Category::Finance,
        Category::Games,
        Category::GeneralInterest,
    ];

    /// Human-readable label matching the paper's figure legend style.
    pub fn label(self) -> &'static str {
        match self {
            Category::NewsAndMedia => "News and Media",
            Category::Business => "Business",
            Category::InformationTechnology => "Information Technology",
            Category::Shopping => "Shopping",
            Category::Entertainment => "Entertainment",
            Category::Sports => "Sports",
            Category::Travel => "Travel",
            Category::Education => "Education",
            Category::Health => "Health",
            Category::Finance => "Finance",
            Category::Games => "Games",
            Category::GeneralInterest => "General Interest",
        }
    }

    /// Domain-name keywords that signal this category (fallback heuristic).
    fn keywords(self) -> &'static [&'static str] {
        match self {
            Category::NewsAndMedia => &[
                "news",
                "zeitung",
                "nachrichten",
                "tagblatt",
                "tagesblatt",
                "kurier",
                "anzeiger",
                "post",
                "journal",
                "presse",
                "bote",
                "blatt",
                "giornale",
                "nyheter",
                "tidning",
                "herald",
                "gazette",
                "times",
                "echo",
            ],
            Category::Business => &[
                "business",
                "consulting",
                "agentur",
                "firma",
                "gmbh",
                "handel",
                "industrie",
                "wirtschaft",
                "corp",
                "company",
            ],
            Category::InformationTechnology => &[
                "tech", "software", "computer", "digital", "cloud", "hosting", "code", "dev",
                "linux", "mobil",
            ],
            Category::Shopping => &["shop", "store", "kaufen", "deals", "shopping", "market"],
            Category::Entertainment => &[
                "kino",
                "film",
                "musik",
                "stars",
                "promi",
                "tv",
                "streaming",
                "celeb",
            ],
            Category::Sports => &["sport", "fussball", "football", "bundesliga", "fitness"],
            Category::Travel => &["reise", "travel", "urlaub", "hotel", "flug", "tour"],
            Category::Education => &["schule", "uni", "lernen", "education", "akademie", "kurs"],
            Category::Health => &[
                "gesundheit",
                "health",
                "apotheke",
                "arzt",
                "medizin",
                "klinik",
            ],
            Category::Finance => &[
                "bank",
                "finanz",
                "versicherung",
                "boerse",
                "geld",
                "finance",
                "kredit",
            ],
            Category::Games => &["spiele", "games", "gaming", "zocken"],
            Category::GeneralInterest => &[],
        }
    }
}

impl std::fmt::Display for Category {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The category database: explicit registrations plus keyword fallback.
#[derive(Debug, Clone, Default)]
pub struct CategoryDb {
    by_domain: HashMap<String, Category>,
}

impl CategoryDb {
    /// Empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register `domain` (registrable domain, lowercased) as `category`.
    pub fn register(&mut self, domain: &str, category: Category) {
        self.by_domain.insert(domain.to_ascii_lowercase(), category);
    }

    /// Number of registered domains.
    pub fn len(&self) -> usize {
        self.by_domain.len()
    }

    /// True if no domains are registered.
    pub fn is_empty(&self) -> bool {
        self.by_domain.is_empty()
    }

    /// Look up `host`. Tries the exact host, then each parent domain, then
    /// falls back to [`classify_by_keywords`]. Returns `None` only when even
    /// the heuristic has no signal.
    pub fn lookup(&self, host: &str) -> Option<Category> {
        let host = host.to_ascii_lowercase();
        let mut candidate = host.as_str();
        loop {
            if let Some(&cat) = self.by_domain.get(candidate) {
                return Some(cat);
            }
            match candidate.find('.') {
                Some(i) => candidate = &candidate[i + 1..],
                None => break,
            }
        }
        classify_by_keywords(&host)
    }

    /// Look up with a guaranteed answer, defaulting to
    /// [`Category::GeneralInterest`] — how the analysis pipeline consumes
    /// it (every site lands in some Figure 1 bucket).
    pub fn lookup_or_default(&self, host: &str) -> Category {
        self.lookup(host).unwrap_or(Category::GeneralInterest)
    }
}

/// Classify a hostname purely by name keywords. Checks categories in
/// taxonomy order and returns the first hit.
pub fn classify_by_keywords(host: &str) -> Option<Category> {
    let host = host.to_ascii_lowercase();
    Category::ALL
        .into_iter()
        .find(|&cat| cat.keywords().iter().any(|k| host.contains(k)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_and_subdomain_walk() {
        let mut db = CategoryDb::new();
        db.register("spiegel-beispiel.de", Category::NewsAndMedia);
        assert_eq!(
            db.lookup("www.spiegel-beispiel.de"),
            Some(Category::NewsAndMedia)
        );
        assert_eq!(
            db.lookup("spiegel-beispiel.de"),
            Some(Category::NewsAndMedia)
        );
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn explicit_registration_beats_keywords() {
        let mut db = CategoryDb::new();
        // Name says "shop" but the registry knows better.
        db.register("computershop-blog.de", Category::InformationTechnology);
        assert_eq!(
            db.lookup("computershop-blog.de"),
            Some(Category::InformationTechnology)
        );
    }

    #[test]
    fn keyword_fallback() {
        let db = CategoryDb::new();
        assert_eq!(
            db.lookup("abendnachrichten24.de"),
            Some(Category::NewsAndMedia)
        );
        assert_eq!(db.lookup("meine-reisewelt.de"), Some(Category::Travel));
        assert_eq!(db.lookup("fussball-heute.de"), Some(Category::Sports));
        // Taxonomy order resolves multi-keyword names: "echo" (news) wins
        // over "sport" because NewsAndMedia is checked first.
        assert_eq!(
            db.lookup("sportecho-online.de"),
            Some(Category::NewsAndMedia)
        );
        assert_eq!(db.lookup("qqqqq.de"), None);
        assert_eq!(db.lookup_or_default("qqqqq.de"), Category::GeneralInterest);
    }

    #[test]
    fn taxonomy_is_stable() {
        assert_eq!(Category::ALL.len(), 12);
        let mut labels: Vec<_> = Category::ALL.iter().map(|c| c.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 12, "labels unique");
        assert_eq!(Category::NewsAndMedia.to_string(), "News and Media");
    }

    #[test]
    fn case_insensitive() {
        let mut db = CategoryDb::new();
        db.register("MiXeD.De", Category::Finance);
        assert_eq!(db.lookup("mixed.de"), Some(Category::Finance));
        assert_eq!(db.lookup("WWW.MIXED.DE"), Some(Category::Finance));
    }
}
