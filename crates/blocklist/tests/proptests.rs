//! Property-based tests for the filter-list engine.

use blocklist::{parse_line, FilterEngine, FilterLine, TrackerDb};
use httpsim::Url;
use proptest::prelude::*;

fn hostname() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-z][a-z0-9]{0,8}(\\.[a-z][a-z0-9]{0,8}){1,3}").unwrap()
}

proptest! {
    /// Arbitrary bytes never panic the rule parser.
    #[test]
    fn parse_line_no_panic(line in "\\PC{0,120}") {
        let _ = parse_line(&line);
    }

    /// A generated domain-anchor rule blocks the domain and its subdomains,
    /// and nothing else.
    #[test]
    fn domain_anchor_soundness(domain in hostname(), other in hostname()) {
        let rule = format!("||{domain}^");
        let FilterLine::Network(f) = parse_line(&rule) else {
            return Err(TestCaseError::fail("rule must parse"));
        };
        let self_url = Url::parse(&format!("https://{domain}/x")).unwrap();
        let self_hit = f.matches(&self_url, None);
        prop_assert!(self_hit);
        let sub_url = Url::parse(&format!("https://a.{domain}/x")).unwrap();
        let sub_hit = f.matches(&sub_url, None);
        prop_assert!(sub_hit);
        // Unrelated hosts match only if they genuinely end with ".domain".
        let other_url = Url::parse(&format!("https://{other}/x")).unwrap();
        let expected = other == domain || other.ends_with(&format!(".{domain}"));
        prop_assert_eq!(f.matches(&other_url, None), expected);
    }

    /// An engine never blocks a URL that an exception rule covers.
    #[test]
    fn exceptions_always_win(domain in hostname()) {
        let mut engine = FilterEngine::new();
        engine.add_list(&format!("||{domain}^\n@@||{domain}^"));
        let url = Url::parse(&format!("https://{domain}/asset.js")).unwrap();
        prop_assert!(!engine.decide(&url, Some("page.de")).is_blocked());
    }

    /// Fragment (wildcard) rules: a rule built from substrings of a URL
    /// always matches that URL.
    #[test]
    fn fragment_rule_matches_source(host in hostname(), path in "[a-z]{1,8}") {
        let url = Url::parse(&format!("https://{host}/{path}.js")).unwrap();
        let rule = format!("*{host}*{path}*");
        let FilterLine::Network(f) = parse_line(&rule) else {
            return Err(TestCaseError::fail("rule must parse"));
        };
        prop_assert!(f.matches(&url, None));
    }

    /// The tracker DB classifies every listed domain and all its
    /// subdomains, and never classifies unlisted registrable domains.
    #[test]
    fn tracker_db_subdomain_closure(sub in "[a-z]{1,6}", idx in 0usize..50) {
        let db = TrackerDb::justdomains();
        let listed = blocklist::data::JUSTDOMAINS[idx % blocklist::data::JUSTDOMAINS.len()];
        prop_assert!(db.is_tracking_domain(listed));
        let sub_hit = db.is_tracking_domain(&format!("{sub}.{listed}"));
        prop_assert!(sub_hit);
        let miss = db.is_tracking_domain(&format!("{sub}-not-a-tracker.example"));
        prop_assert!(!miss);
    }
}

#[test]
fn engine_is_deterministic() {
    let a = FilterEngine::ublock_with_annoyances();
    let b = FilterEngine::ublock_with_annoyances();
    let urls = [
        "https://cdn.contentpass.net/wall.js",
        "https://doubleclick.net/t.js",
        "https://example.de/app.js",
    ];
    for u in urls {
        let url = Url::parse(u).unwrap();
        assert_eq!(
            a.decide(&url, Some("x.de")),
            b.decide(&url, Some("x.de")),
            "{u}"
        );
    }
}
