//! Embedded filter-list and blocklist data.
//!
//! Three datasets mirror the three external lists the paper relies on:
//!
//! * [`JUSTDOMAINS`] — the justdomains-style tracker *domain* list used to
//!   classify cookies as tracking cookies (§4.3). In the real study this is
//!   the EasyList/EasyPrivacy domains-only distillation; here it is the
//!   canonical tracker population of the synthetic web. `webgen` draws its
//!   tracker ecosystem from exactly this list (plus unlisted long-tail
//!   domains), which reproduces the property that *most but not all*
//!   third-party cookies are classified as tracking.
//! * [`easylist_lite`] — request-blocking rules for the ad/tracker hosts.
//! * [`ANNOYANCES_LIST`] — the (by default disabled) uBlock "Annoyances"
//!   rules that block cookie banners and cookiewalls served from known
//!   CMP/SMP domains (§4.5, footnote 7 quotes this rule style).

/// Well-known infrastructure hosts of the synthetic web. These constants are
/// shared with `webgen` so the generator and the filter lists cannot drift
/// apart.
pub mod hosts {
    /// CDN host serving the contentpass-style SMP cookiewall assets.
    pub const CONTENTPASS_CDN: &str = "cdn.contentpass.net";
    /// contentpass-style SMP account/login host.
    pub const CONTENTPASS_ACCOUNT: &str = "pay.contentpass.net";
    /// CDN host serving the freechoice-style SMP cookiewall assets.
    pub const FREECHOICE_CDN: &str = "cdn.freechoice.club";
    /// freechoice-style SMP account host.
    pub const FREECHOICE_ACCOUNT: &str = "account.freechoice.club";
    /// Generic CMP delivery host (banner markup for many regular banners).
    pub const OPENCMP_CDN: &str = "cdn.opencmp.net";
    /// Second CMP provider host.
    pub const CONSENTMANAGER: &str = "delivery.consentmanager.net";
    /// Third CMP provider host.
    pub const USERCENTRICS: &str = "app.usercentrics.eu";
}

/// Tracker domains (registrable domains). Cookie domains matching one of
/// these are counted as tracking cookies.
pub const JUSTDOMAINS: &[&str] = &[
    // Ad exchanges and demand platforms.
    "doubleclick.net",
    "adnxs.com",
    "criteo.com",
    "rubiconproject.com",
    "pubmatic.com",
    "openx.net",
    "adsrvr.org",
    "casalemedia.com",
    "smartadserver.com",
    "adform.net",
    "yieldlab.net",
    "adition.com",
    "theadex.com",
    "stroeerdigitalgroup.de",
    "adup-tech.com",
    "mediamath.com",
    "bidswitch.net",
    "contextweb.com",
    "spotxchange.com",
    "teads.tv",
    // Trackers and audience measurement.
    "scorecardresearch.com",
    "quantserve.com",
    "chartbeat.com",
    "hotjar-metrics.io",
    "taboola.com",
    "outbrain.com",
    "krxd.net",
    "bluekai.com",
    "demdex.net",
    "agkn.com",
    "exelator.com",
    "eyeota.net",
    "mathtag.com",
    "tapad.com",
    "rlcdn.com",
    "turn-profile.com",
    "adelphic.net",
    "zemanta.com",
    "ioam.de",
    "meetrics.net",
    // Retargeting and social pixels.
    "adroll.com",
    "facebook-pixel.net",
    "pixel-sync.org",
    "beacon-tracking.net",
    "id5-sync.com",
    "usertrace.io",
    "datacollector.ws",
    "audiencegraph.net",
    "retargetly.biz",
    "clickid-match.com",
];

/// Request-blocking rules for the ad/tracker ecosystem (EasyList role).
/// Generated from [`JUSTDOMAINS`] plus a handful of pattern rules, exposed
/// as list text so it exercises the parser like a downloaded list would.
pub fn easylist_lite() -> String {
    let mut out = String::from(
        "! Title: EasyList Lite (synthetic)\n\
         ! Request blocking for the tracker population of the simulated web\n",
    );
    for d in JUSTDOMAINS {
        out.push_str("||");
        out.push_str(d);
        out.push_str("^$third-party\n");
    }
    out.push_str("*ad-delivery*\n*pixel.gif*\n*beacon?id=*\n");
    out
}

/// The "Annoyances" rules blocking cookie banners and cookiewalls served
/// from CMP/SMP infrastructure — the list the paper enables in uBlock
/// Origin to bypass 70% of cookiewalls (§4.5).
pub const ANNOYANCES_LIST: &str = "\
! Title: Annoyances — cookie notices & pay-or-okay walls (synthetic)
! Network rules for cookiewall/CMP delivery hosts (cf. paper footnote 7)
*cdn.contentpass.net/*
||contentpass.net^$third-party
*cdn.freechoice.club/*
||freechoice.club^$third-party
*cdn.opencmp.net/*
||consentmanager.net^$third-party
||usercentrics.eu^$third-party
! Element hiding for leftover first-party shells
##div[data-cmp-shell]
##.cmp-placeholder
! Never break SMP account/login pages themselves
@@||pay.contentpass.net^
@@||account.freechoice.club^
";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::{parse_line, FilterLine};

    #[test]
    fn justdomains_are_registrable_and_unique() {
        let mut seen = std::collections::HashSet::new();
        for d in JUSTDOMAINS {
            assert!(
                httpsim::registrable_domain(d) == Some(*d),
                "{d} must be a bare registrable domain"
            );
            assert!(seen.insert(*d), "{d} duplicated");
        }
        assert!(JUSTDOMAINS.len() >= 50);
    }

    #[test]
    fn easylist_parses_cleanly() {
        let text = easylist_lite();
        let mut network = 0;
        for line in text.lines() {
            match parse_line(line) {
                FilterLine::Network(_) => network += 1,
                FilterLine::Ignored => {}
                FilterLine::Cosmetic(c) => panic!("unexpected cosmetic rule {c:?}"),
            }
        }
        assert_eq!(network, JUSTDOMAINS.len() + 3);
    }

    #[test]
    fn annoyances_parses_with_exceptions_and_cosmetics() {
        let mut network = 0;
        let mut cosmetic = 0;
        let mut exceptions = 0;
        for line in ANNOYANCES_LIST.lines() {
            match parse_line(line) {
                FilterLine::Network(f) => {
                    network += 1;
                    if f.exception {
                        exceptions += 1;
                    }
                }
                FilterLine::Cosmetic(_) => cosmetic += 1,
                FilterLine::Ignored => {}
            }
        }
        assert_eq!(network, 9);
        assert_eq!(exceptions, 2);
        assert_eq!(cosmetic, 2);
    }

    #[test]
    fn host_constants_live_under_listed_domains() {
        // The CDN hosts must be covered by the Annoyances rules.
        for host in [
            hosts::CONTENTPASS_CDN,
            hosts::FREECHOICE_CDN,
            hosts::OPENCMP_CDN,
        ] {
            let covered = ANNOYANCES_LIST.lines().any(|l| {
                l.contains(host) || {
                    matches!(parse_line(l), FilterLine::Network(f)
                    if !f.exception && f.matches(
                        &httpsim::Url::parse(&format!("https://{host}/x.js")).unwrap(),
                        Some("somepage.de")))
                }
            });
            assert!(covered, "{host} not covered by Annoyances");
        }
    }
}
