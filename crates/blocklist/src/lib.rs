//! # blocklist — filter lists, content blocking, and tracker classification
//!
//! Two of the paper's external dependencies live here:
//!
//! * **uBlock Origin + EasyList/Annoyances** (§4.5): [`FilterEngine`]
//!   compiles EasyList-syntax rules and answers, per request, whether a
//!   content blocker would cancel it. [`FilterEngine::ublock_default`]
//!   mirrors the extension's out-of-the-box lists;
//!   [`FilterEngine::ublock_with_annoyances`] mirrors the paper's
//!   measurement configuration (Annoyances enabled, footnote 6).
//! * **justdomains** (§4.3): [`TrackerDb`] is the domains-only tracker list
//!   used to classify cookies as *tracking cookies*.
//!
//! The embedded lists ([`data`]) are the canonical tracker/CMP/SMP
//! population of the synthetic web — `webgen` builds sites out of the same
//! host constants, so generator and lists stay consistent by construction.
//!
//! ## Example
//!
//! ```
//! use blocklist::{FilterEngine, TrackerDb};
//! use httpsim::Url;
//!
//! let engine = FilterEngine::ublock_with_annoyances();
//! let wall_js = Url::parse("https://cdn.contentpass.net/wall.js").unwrap();
//! assert!(engine.decide(&wall_js, Some("zeitung.de")).is_blocked());
//!
//! let trackers = TrackerDb::justdomains();
//! assert!(trackers.is_tracking_domain("ads.criteo.com"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod data;
mod engine;
mod filter;

pub use engine::{BlockDecision, FilterEngine, TrackerDb};
pub use filter::{parse_line, CosmeticFilter, FilterLine, NetworkFilter, Pattern};
