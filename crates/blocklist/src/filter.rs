//! Adblock filter parsing and matching.
//!
//! Implements the EasyList syntax subset that matters for cookiewall
//! blocking (§4.5 of the paper — uBlock Origin with the Annoyances lists):
//!
//! * `||domain.example^` — domain anchor (the domain and its subdomains);
//! * `*fragment*` / plain fragments — substring match on the full URL
//!   (`*cdn.opencmp.net/*` style, as quoted in the paper's footnote 7);
//! * `|https://exact.example/path` — left-anchored match;
//! * `@@` prefix — exception rule (overrides blocking rules);
//! * `!` prefix — comment;
//! * `example.de##.selector` / `##.selector` — cosmetic (element-hiding)
//!   rules, global or scoped to a site;
//! * trailing `$options` are parsed and ignored except for
//!   `$third-party`, which restricts the rule to cross-site loads.

use httpsim::{same_site, Url};

/// A parsed network filter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetworkFilter {
    /// Match kind.
    pub pattern: Pattern,
    /// True for `@@` exception rules.
    pub exception: bool,
    /// `$third-party`: match only when the request is cross-site w.r.t.
    /// the initiating page.
    pub third_party_only: bool,
    /// Original rule text (for reporting which rule fired).
    pub raw: String,
}

/// The matching strategy of a network filter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Pattern {
    /// `||domain^`: the request host is `domain` or a subdomain.
    DomainAnchor(String),
    /// `|prefix`: the URL string starts with `prefix`.
    LeftAnchor(String),
    /// Wildcard fragments: every fragment must appear in order in the URL.
    Fragments(Vec<String>),
}

/// A parsed cosmetic (element-hiding) filter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CosmeticFilter {
    /// Hosts the rule applies to (empty = all sites).
    pub domains: Vec<String>,
    /// CSS selector to hide.
    pub selector: String,
}

/// One line of a filter list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FilterLine {
    /// A network (request-blocking) rule.
    Network(NetworkFilter),
    /// A cosmetic (element-hiding) rule.
    Cosmetic(CosmeticFilter),
    /// Comment or empty line.
    Ignored,
}

/// Parse one filter-list line.
pub fn parse_line(line: &str) -> FilterLine {
    let line = line.trim();
    if line.is_empty() || line.starts_with('!') || line.starts_with('[') {
        return FilterLine::Ignored;
    }
    // Cosmetic rules: [domains]##selector
    if let Some(idx) = line.find("##") {
        let (domains, selector) = line.split_at(idx);
        let selector = &selector[2..];
        if selector.is_empty() {
            return FilterLine::Ignored;
        }
        let domains: Vec<String> = domains
            .split(',')
            .map(|d| d.trim().to_ascii_lowercase())
            .filter(|d| !d.is_empty())
            .collect();
        return FilterLine::Cosmetic(CosmeticFilter {
            domains,
            selector: selector.to_string(),
        });
    }
    // Network rules.
    let raw = line.to_string();
    let (exception, rest) = match line.strip_prefix("@@") {
        Some(r) => (true, r),
        None => (false, line),
    };
    // Split off $options.
    let (body, options) = match rest.rsplit_once('$') {
        // Careful: '$' may legitimately appear in a URL fragment; only treat
        // it as an options separator if what follows looks like options.
        Some((b, opts))
            if opts.split(',').all(|o| {
                o.chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '=' || c == '~')
            }) && !opts.is_empty() =>
        {
            (b, Some(opts))
        }
        _ => (rest, None),
    };
    let third_party_only = options
        .map(|o| o.split(',').any(|o| o == "third-party" || o == "3p"))
        .unwrap_or(false);
    if body.is_empty() {
        return FilterLine::Ignored;
    }
    let pattern = if let Some(domain_part) = body.strip_prefix("||") {
        let domain = domain_part
            .trim_end_matches('^')
            .trim_end_matches('/')
            .to_ascii_lowercase();
        if domain.is_empty() {
            return FilterLine::Ignored;
        }
        Pattern::DomainAnchor(domain)
    } else if let Some(prefix) = body.strip_prefix('|') {
        if prefix.is_empty() {
            return FilterLine::Ignored;
        }
        Pattern::LeftAnchor(prefix.to_string())
    } else {
        let fragments: Vec<String> = body
            .split('*')
            .filter(|f| !f.is_empty())
            .map(|f| f.trim_end_matches('^').to_string())
            .filter(|f| !f.is_empty())
            .collect();
        if fragments.is_empty() {
            return FilterLine::Ignored;
        }
        Pattern::Fragments(fragments)
    };
    FilterLine::Network(NetworkFilter {
        pattern,
        exception,
        third_party_only,
        raw,
    })
}

impl NetworkFilter {
    /// Does this filter match a request to `url` initiated by a page on
    /// `initiator_host` (`None` for top-level navigations)?
    // lint:allow(r9) — compatibility wrapper: the engine's list scan calls matches_rendered, which allocates nothing (ROADMAP item 1)
    pub fn matches(&self, url: &Url, initiator_host: Option<&str>) -> bool {
        self.matches_rendered(url, &url.to_string(), initiator_host)
    }

    /// Same as [`NetworkFilter::matches`] with the rendered URL supplied
    /// by the caller, so a scan over a whole filter list renders the URL
    /// once per request instead of once per filter.
    pub fn matches_rendered(
        &self,
        url: &Url,
        rendered: &str,
        initiator_host: Option<&str>,
    ) -> bool {
        if self.third_party_only {
            match initiator_host {
                // Top-level loads are never third-party.
                None => return false,
                Some(init) => {
                    if same_site(url.host(), init) {
                        return false;
                    }
                }
            }
        }
        match &self.pattern {
            Pattern::DomainAnchor(domain) => httpsim::domain_match(url.host(), domain),
            Pattern::LeftAnchor(prefix) => rendered.starts_with(prefix.as_str()),
            Pattern::Fragments(fragments) => {
                let mut pos = 0;
                for f in fragments {
                    match rendered[pos..].find(f.as_str()) {
                        Some(i) => pos += i + f.len(),
                        None => return false,
                    }
                }
                true
            }
        }
    }
}

impl CosmeticFilter {
    /// Does this rule apply on a page hosted at `host`?
    pub fn applies_to(&self, host: &str) -> bool {
        self.domains.is_empty() || self.domains.iter().any(|d| httpsim::domain_match(host, d))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(line: &str) -> NetworkFilter {
        match parse_line(line) {
            FilterLine::Network(f) => f,
            other => panic!("expected network filter for {line:?}, got {other:?}"),
        }
    }

    fn url(s: &str) -> Url {
        Url::parse(s).unwrap()
    }

    #[test]
    fn comments_and_blank_ignored() {
        assert_eq!(parse_line(""), FilterLine::Ignored);
        assert_eq!(parse_line("! comment"), FilterLine::Ignored);
        assert_eq!(parse_line("[Adblock Plus 2.0]"), FilterLine::Ignored);
    }

    #[test]
    fn domain_anchor() {
        let f = net("||consentmanager.net^");
        assert!(f.matches(&url("https://consentmanager.net/x.js"), None));
        assert!(f.matches(&url("https://cdn.consentmanager.net/delivery/cmp.js"), None));
        assert!(!f.matches(&url("https://notconsentmanager.net/"), None));
        assert!(!f.matches(&url("https://consentmanager.net.evil.com/"), None));
    }

    #[test]
    fn wildcard_fragments() {
        // The exact style quoted in the paper's footnote.
        let f = net("*cdn.opencmp.net/*");
        assert!(f.matches(&url("https://cdn.opencmp.net/banner.js"), None));
        assert!(!f.matches(&url("https://opencmp.net/banner.js"), None));
        let multi = net("*ads*track*");
        assert!(multi.matches(&url("https://ads.example/track.gif"), None));
        assert!(
            !multi.matches(&url("https://track.example/ads.gif"), None),
            "fragments must appear in order"
        );
    }

    #[test]
    fn left_anchor() {
        let f = net("|https://exact.example/path");
        assert!(f.matches(&url("https://exact.example/path/deep"), None));
        assert!(!f.matches(
            &url("https://other.example/https://exact.example/path"),
            None
        ));
    }

    #[test]
    fn exception_rules() {
        let f = net("@@||goodsite.de^");
        assert!(f.exception);
        assert!(f.matches(&url("https://goodsite.de/app.js"), None));
    }

    #[test]
    fn third_party_option() {
        let f = net("||widgets.example^$third-party");
        assert!(f.third_party_only);
        // Cross-site: match.
        assert!(f.matches(&url("https://widgets.example/w.js"), Some("news.de")));
        // Same-site: no match.
        assert!(!f.matches(
            &url("https://widgets.example/w.js"),
            Some("cdn.widgets.example")
        ));
        // Top-level navigation: no match.
        assert!(!f.matches(&url("https://widgets.example/"), None));
    }

    #[test]
    fn options_ignored_but_parsed() {
        let f = net("||adhost.com^$script,image");
        assert!(!f.third_party_only);
        assert!(f.matches(&url("https://adhost.com/a.js"), None));
    }

    #[test]
    fn cosmetic_rules() {
        let c = match parse_line("##.cookiewall-overlay") {
            FilterLine::Cosmetic(c) => c,
            other => panic!("{other:?}"),
        };
        assert!(c.domains.is_empty());
        assert!(c.applies_to("any.de"));

        let scoped = match parse_line("zeitung.de,magazin.de##.cmp-box") {
            FilterLine::Cosmetic(c) => c,
            other => panic!("{other:?}"),
        };
        assert!(scoped.applies_to("zeitung.de"));
        assert!(scoped.applies_to("www.magazin.de"));
        assert!(!scoped.applies_to("other.de"));
        assert_eq!(scoped.selector, ".cmp-box");
    }

    #[test]
    fn degenerate_rules_ignored() {
        assert_eq!(parse_line("||"), FilterLine::Ignored);
        assert_eq!(parse_line("|"), FilterLine::Ignored);
        assert_eq!(parse_line("***"), FilterLine::Ignored);
        assert_eq!(parse_line("##"), FilterLine::Ignored);
        assert_eq!(parse_line("@@"), FilterLine::Ignored);
    }
}
