//! The content-blocker engine: compiled filter lists + request decisions.
//!
//! This is the uBlock Origin stand-in the browser simulator consults before
//! every subresource fetch. Exceptions (`@@`) override blocking rules, as in
//! real engines.

use crate::data;
use crate::filter::{parse_line, CosmeticFilter, FilterLine, NetworkFilter};
use httpsim::Url;
use std::collections::HashSet;

/// Outcome of consulting the engine for one request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlockDecision {
    /// Request may proceed.
    Allowed,
    /// Request must be cancelled; carries the rule text that fired.
    Blocked(String),
}

impl BlockDecision {
    /// True for [`BlockDecision::Blocked`].
    pub fn is_blocked(&self) -> bool {
        matches!(self, BlockDecision::Blocked(_))
    }
}

/// A compiled set of filter lists.
#[derive(Debug, Clone, Default)]
pub struct FilterEngine {
    blocking: Vec<NetworkFilter>,
    exceptions: Vec<NetworkFilter>,
    cosmetic: Vec<CosmeticFilter>,
}

impl FilterEngine {
    /// Empty engine (blocks nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Engine with the default uBlock-style configuration: EasyList-style
    /// ad/tracker blocking only — Annoyances **disabled**, as it ships by
    /// default (the paper had to enable it explicitly, footnote 6).
    pub fn ublock_default() -> Self {
        let mut e = Self::new();
        e.add_list(&data::easylist_lite());
        e
    }

    /// Engine with the paper's measurement configuration: EasyList-style
    /// rules **plus** the Annoyances list that blocks cookiewalls.
    pub fn ublock_with_annoyances() -> Self {
        let mut e = Self::ublock_default();
        e.add_list(data::ANNOYANCES_LIST);
        e
    }

    /// Parse and add every rule in `list_text`. Returns the number of rules
    /// added (network + cosmetic).
    pub fn add_list(&mut self, list_text: &str) -> usize {
        let mut added = 0;
        for line in list_text.lines() {
            match parse_line(line) {
                FilterLine::Network(f) => {
                    if f.exception {
                        self.exceptions.push(f);
                    } else {
                        self.blocking.push(f);
                    }
                    added += 1;
                }
                FilterLine::Cosmetic(c) => {
                    self.cosmetic.push(c);
                    added += 1;
                }
                FilterLine::Ignored => {}
            }
        }
        added
    }

    /// Number of compiled rules.
    pub fn rule_count(&self) -> usize {
        self.blocking.len() + self.exceptions.len() + self.cosmetic.len()
    }

    /// Decide whether a request to `url`, initiated by a page on
    /// `initiator_host` (`None` for top-level navigations), should be
    /// blocked.
    // lint:allow(r9) — the URL is rendered once per request (hoisted out of the per-filter loop); the cloned rule text is the block verdict itself — ROADMAP item 1
    pub fn decide(&self, url: &Url, initiator_host: Option<&str>) -> BlockDecision {
        // Rendered once here: every anchored/fragment pattern below reads
        // the same string, so the scan allocates per request, not per
        // filter.
        let rendered = url.to_string();
        // Exceptions win outright.
        if self
            .exceptions
            .iter()
            .any(|f| f.matches_rendered(url, &rendered, initiator_host))
        {
            return BlockDecision::Allowed;
        }
        for f in &self.blocking {
            if f.matches_rendered(url, &rendered, initiator_host) {
                return BlockDecision::Blocked(f.raw.clone());
            }
        }
        BlockDecision::Allowed
    }

    /// Selectors that should be hidden on a page at `host`.
    pub fn hide_selectors(&self, host: &str) -> Vec<&str> {
        self.cosmetic
            .iter()
            .filter(|c| c.applies_to(host))
            .map(|c| c.selector.as_str())
            .collect()
    }
}

/// The justdomains tracker-domain oracle (§4.3's tracking-cookie
/// classifier): a cookie is a tracking cookie iff its domain's registrable
/// domain is on the list.
#[derive(Debug, Clone)]
pub struct TrackerDb {
    domains: HashSet<&'static str>,
}

impl TrackerDb {
    /// Build from the embedded justdomains data.
    pub fn justdomains() -> Self {
        TrackerDb {
            domains: data::JUSTDOMAINS.iter().copied().collect(),
        }
    }

    /// Number of listed domains.
    pub fn len(&self) -> usize {
        self.domains.len()
    }

    /// True if the list is empty (never for the embedded data).
    pub fn is_empty(&self) -> bool {
        self.domains.is_empty()
    }

    /// Is `host` (or its registrable domain) a listed tracker?
    pub fn is_tracking_domain(&self, host: &str) -> bool {
        let host = host.to_ascii_lowercase();
        if self.domains.contains(host.as_str()) {
            return true;
        }
        httpsim::registrable_domain(&host).is_some_and(|rd| self.domains.contains(rd))
    }
}

impl Default for TrackerDb {
    fn default() -> Self {
        Self::justdomains()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::hosts;

    fn u(s: &str) -> Url {
        Url::parse(s).unwrap()
    }

    #[test]
    fn default_engine_blocks_trackers_not_walls() {
        let e = FilterEngine::ublock_default();
        assert!(e
            .decide(&u("https://stats.doubleclick.net/pixel"), Some("news.de"))
            .is_blocked());
        // Annoyances disabled by default: SMP CDN is allowed.
        assert_eq!(
            e.decide(
                &u(&format!("https://{}/wall.js", hosts::CONTENTPASS_CDN)),
                Some("news.de")
            ),
            BlockDecision::Allowed
        );
    }

    #[test]
    fn annoyances_blocks_smp_cdns() {
        let e = FilterEngine::ublock_with_annoyances();
        for host in [
            hosts::CONTENTPASS_CDN,
            hosts::FREECHOICE_CDN,
            hosts::OPENCMP_CDN,
        ] {
            let d = e.decide(&u(&format!("https://{host}/wall.js")), Some("zeitung.de"));
            assert!(d.is_blocked(), "{host} should be blocked");
        }
    }

    #[test]
    fn exceptions_protect_account_pages() {
        let e = FilterEngine::ublock_with_annoyances();
        // Top-level visit to the SMP account host must not be blocked even
        // though ||contentpass.net^ would otherwise cover it.
        assert_eq!(
            e.decide(
                &u(&format!("https://{}/login", hosts::CONTENTPASS_ACCOUNT)),
                None
            ),
            BlockDecision::Allowed
        );
        assert_eq!(
            e.decide(
                &u(&format!("https://{}/login", hosts::CONTENTPASS_ACCOUNT)),
                Some("zeitung.de")
            ),
            BlockDecision::Allowed
        );
    }

    #[test]
    fn first_party_tracker_requests_allowed_by_3p_rules() {
        let e = FilterEngine::ublock_default();
        // $third-party rules let a tracker load resources from itself.
        assert_eq!(
            e.decide(
                &u("https://doubleclick.net/self.js"),
                Some("ads.doubleclick.net")
            ),
            BlockDecision::Allowed
        );
    }

    #[test]
    fn pattern_rules_fire() {
        let e = FilterEngine::ublock_default();
        assert!(e
            .decide(
                &u("https://cdn.random.de/ad-delivery/slot1.js"),
                Some("x.de")
            )
            .is_blocked());
        assert!(e
            .decide(&u("https://img.random.de/pixel.gif?uid=1"), Some("x.de"))
            .is_blocked());
    }

    #[test]
    fn cosmetic_selectors_scoped() {
        let e = FilterEngine::ublock_with_annoyances();
        let sels = e.hide_selectors("any-site.de");
        assert!(sels.contains(&"div[data-cmp-shell]"));
        assert!(sels.contains(&".cmp-placeholder"));
    }

    #[test]
    fn tracker_db_classification() {
        let db = TrackerDb::justdomains();
        assert!(db.len() >= 50);
        assert!(db.is_tracking_domain("doubleclick.net"));
        assert!(db.is_tracking_domain("stats.g.doubleclick.net"));
        assert!(!db.is_tracking_domain("doubleclick.net.example.org"));
        assert!(!db.is_tracking_domain("www.spiegel.de"));
        assert!(
            !db.is_tracking_domain("cdn.contentpass.net"),
            "SMP is not a listed tracker"
        );
    }

    #[test]
    fn rule_counts() {
        let e = FilterEngine::ublock_with_annoyances();
        assert!(e.rule_count() > data::JUSTDOMAINS.len());
        let empty = FilterEngine::new();
        assert_eq!(empty.rule_count(), 0);
        assert_eq!(
            empty.decide(&u("https://doubleclick.net/x"), Some("a.de")),
            BlockDecision::Allowed
        );
    }
}
