//! Property-based tests for webdom.
//!
//! The central invariant: serialize → parse is a *fixpoint*. A freshly
//! parsed document may differ from its source (error recovery, implicit
//! elements), but once serialized, re-parsing must reproduce the exact same
//! serialization. We check this both for arbitrary junk input (tokenizer
//! robustness) and for structurally valid generated trees (tree fidelity,
//! including shadow roots).

use proptest::prelude::*;
use webdom::{decode_entities, encode_entities, normalize_whitespace, parse, Document, ShadowMode};

/// Strategy: text without markup metacharacters (used for generated trees).
fn plain_text() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[ a-zA-Z0-9äöüßéè€$£,.:;!?%/-]{0,40}").unwrap()
}

fn tag_name() -> impl Strategy<Value = &'static str> {
    prop::sample::select(vec![
        "div", "span", "p", "section", "article", "button", "a", "em", "strong", "ul", "li",
    ])
}

#[derive(Debug, Clone)]
enum GenNode {
    Text(String),
    Element {
        tag: &'static str,
        id_attr: Option<u32>,
        classes: Vec<u8>,
        shadow: Option<(bool, Vec<GenNode>)>,
        children: Vec<GenNode>,
    },
}

fn gen_node() -> impl Strategy<Value = GenNode> {
    let leaf = prop_oneof![
        plain_text().prop_map(GenNode::Text),
        (tag_name(), proptest::option::of(0u32..100)).prop_map(|(tag, id_attr)| {
            GenNode::Element {
                tag,
                id_attr,
                classes: vec![],
                shadow: None,
                children: vec![],
            }
        }),
    ];
    leaf.prop_recursive(4, 24, 4, |inner| {
        (
            tag_name(),
            proptest::option::of(0u32..100),
            prop::collection::vec(0u8..5, 0..3),
            proptest::option::of((any::<bool>(), prop::collection::vec(inner.clone(), 0..3))),
            prop::collection::vec(inner, 0..4),
        )
            .prop_map(
                |(tag, id_attr, classes, shadow, children)| GenNode::Element {
                    tag,
                    id_attr,
                    classes,
                    shadow,
                    children,
                },
            )
    })
}

fn build(doc: &mut Document, parent: webdom::NodeId, node: &GenNode) {
    match node {
        GenNode::Text(t) => {
            let n = doc.create_text(t);
            doc.append_child(parent, n);
        }
        GenNode::Element {
            tag,
            id_attr,
            classes,
            shadow,
            children,
        } => {
            let e = doc.create_element(tag);
            doc.append_child(parent, e);
            if let Some(id) = id_attr {
                doc.set_attr(e, "id", &format!("id{id}"));
            }
            if !classes.is_empty() {
                let cls: Vec<String> = classes.iter().map(|c| format!("c{c}")).collect();
                doc.set_attr(e, "class", &cls.join(" "));
            }
            if let Some((open, shadow_children)) = shadow {
                let mode = if *open {
                    ShadowMode::Open
                } else {
                    ShadowMode::Closed
                };
                let sr = doc.attach_shadow(e, mode);
                for c in shadow_children {
                    build(doc, sr, c);
                }
            }
            for c in children {
                build(doc, e, c);
            }
        }
    }
}

proptest! {
    /// Arbitrary bytes never panic the parser, and serialization reaches a
    /// fixpoint after one parse.
    #[test]
    fn parse_any_input_fixpoint(input in "\\PC{0,300}") {
        let d1 = parse(&input);
        let html1 = d1.to_html();
        let d2 = parse(&html1);
        let html2 = d2.to_html();
        prop_assert_eq!(html1, html2);
    }

    /// Generated trees round-trip: one parse normalizes (HTML auto-close
    /// may flatten programmatically built invalid nestings like <p><p>),
    /// after which serialization is a fixpoint; shadow hosts and visible
    /// text always survive.
    #[test]
    fn generated_tree_roundtrip(nodes in prop::collection::vec(gen_node(), 0..5)) {
        let mut d = Document::new();
        let html = d.create_element("html");
        let body = d.create_element("body");
        let root = d.root();
        d.append_child(root, html);
        d.append_child(html, body);
        for n in &nodes {
            build(&mut d, body, n);
        }
        let out1 = d.to_html();
        let d2 = parse(&out1);
        let out2 = d2.to_html();
        let d3 = parse(&out2);
        let out3 = d3.to_html();
        prop_assert_eq!(&out2, &out3, "serialize∘parse is a fixpoint");
        prop_assert_eq!(d.shadow_hosts().len(), d2.shadow_hosts().len());
        // Text *content and order* are preserved by the round trip.
        // Inter-word spacing can legitimately change: auto-close may move a
        // text node out of a flattened paragraph (exactly what WHATWG tree
        // construction does for invalid nestings), altering block
        // boundaries.
        let body2 = d2.body().expect("body survives");
        let squash = |s: String| s.chars().filter(|c| !c.is_whitespace()).collect::<String>();
        prop_assert_eq!(squash(d.visible_text(body)), squash(d2.visible_text(body2)));
    }

    /// Entity encoding always decodes back to the original.
    #[test]
    fn entity_roundtrip(s in "\\PC{0,200}") {
        prop_assert_eq!(decode_entities(&encode_entities(&s)), s);
    }

    /// Whitespace normalization is idempotent and never produces doubled
    /// spaces or boundary whitespace.
    #[test]
    fn normalize_whitespace_idempotent(s in "\\PC{0,200}") {
        let once = normalize_whitespace(&s);
        prop_assert_eq!(&normalize_whitespace(&once), &once);
        prop_assert!(!once.contains("  "));
        prop_assert!(!once.starts_with(' ') && !once.ends_with(' '));
    }

    /// Selector parsing never panics on arbitrary input.
    #[test]
    fn selector_parse_no_panic(s in "\\PC{0,80}") {
        let _ = webdom::SelectorList::parse(&s);
    }

    /// Valid simple selectors always parse and match what they built.
    #[test]
    fn selector_finds_built_id(id in 0u32..1000) {
        let html = format!("<div id=\"x{id}\" class=\"k\"><span>t</span></div>");
        let d = parse(&html);
        let sel = format!("div#x{id}.k > span");
        let hits = d.select(d.root(), &sel).expect("valid selector");
        prop_assert_eq!(hits.len(), 1);
    }
}
