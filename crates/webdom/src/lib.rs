//! # webdom — HTML parsing and DOM trees for the cookiewall study
//!
//! A self-contained HTML parser and DOM implementation providing exactly the
//! browser surface the paper's measurement pipeline needs:
//!
//! * tolerant HTML tokenizer and tree builder ([`parse`]),
//! * an arena [`Document`] with elements, attributes, text, and comments,
//! * **shadow DOM** — open and closed roots, attached programmatically or
//!   via declarative `<template shadowrootmode>` markup, deliberately opaque
//!   to normal traversal and selectors (the limitation the paper's §3
//!   workaround pierces),
//! * a CSS selector subset ([`Document::select`]) and an XPath subset
//!   ([`Document::xpath`]) — both deliberately blind to shadow roots,
//!   exactly as §3 observes for real locators,
//! * inline-style parsing for overlay heuristics ([`Style`]),
//! * visible-text extraction ([`Document::visible_text`]) — the
//!   BeautifulSoup role in the original pipeline,
//! * serialization that round-trips, including shadow roots
//!   ([`Document::to_html`]),
//! * subtree cloning with an id map ([`Document::clone_subtree_mapped`]) —
//!   the primitive behind the shadow-DOM interaction workaround.
//!
//! ## Example
//!
//! ```
//! use webdom::parse;
//!
//! let doc = parse(r#"<div id="cmp" style="position:fixed">
//!     <p>Nur 2,99 € pro Monat ohne Werbung lesen, oder akzeptieren.</p>
//!     <button class="accept">Akzeptieren</button>
//! </div>"#);
//! let cmp = doc.get_element_by_id("cmp").unwrap();
//! assert!(doc.style(cmp).is_overlay_positioned());
//! assert!(doc.visible_text(cmp).contains("2,99 €"));
//! let buttons = doc.select(cmp, "button.accept").unwrap();
//! assert_eq!(buttons.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod entity;
mod parser;
mod selector;
mod serialize;
mod style;
mod text;
mod tokenizer;
mod tree;
mod xpath;

pub use entity::{decode_entities, encode_entities};
pub use parser::{parse, parse_fragment_into};
pub use selector::{
    AttrOp, Combinator, Compound, Selector, SelectorList, SelectorParseError, Simple,
};
pub use style::{Style, OVERLAY_POSITIONS};
pub use text::normalize_whitespace;
pub use tokenizer::{tokenize, Token};
pub use tree::{
    is_void_element, AncestorIter, ChildIter, DescendantIter, Document, ElementData, Node, NodeId,
    NodeKind, ShadowMode, ShadowRootRef,
};
pub use xpath::{XPath, XPathError};
