//! CSS selector engine (subset).
//!
//! Grammar supported — the subset banner-detection code and cosmetic adblock
//! filters actually use:
//!
//! ```text
//! selector-list  = selector ("," selector)*
//! selector       = compound (combinator compound)*
//! combinator     = " " (descendant) | ">" (child)
//! compound       = [tag | "*"] simple*
//! simple         = "#id" | ".class" | "[attr]" | "[attr=value]"
//!                | "[attr^=value]" | "[attr*=value]" | "[attr$=value]"
//! ```
//!
//! Matching never descends into shadow roots or iframes — by design, the
//! same opacity real CSS selectors (and Selenium lookups, per the paper §3)
//! exhibit.

use crate::tree::{Document, ElementData, NodeId};
use std::fmt;

/// Error produced when a selector string cannot be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelectorParseError {
    /// Human-readable description of the failure.
    pub message: String,
    /// Byte offset in the input where parsing failed.
    pub at: usize,
}

impl fmt::Display for SelectorParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "selector parse error at byte {}: {}",
            self.at, self.message
        )
    }
}

impl std::error::Error for SelectorParseError {}

/// How an attribute value must relate to the expected string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttrOp {
    /// `[attr]` — attribute present.
    Exists,
    /// `[attr=v]` — exact match.
    Equals(String),
    /// `[attr^=v]` — prefix match.
    StartsWith(String),
    /// `[attr*=v]` — substring match.
    Contains(String),
    /// `[attr$=v]` — suffix match.
    EndsWith(String),
}

/// One simple selector inside a compound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Simple {
    /// `#id`.
    Id(String),
    /// `.class`.
    Class(String),
    /// `[name op value]`.
    Attr {
        /// Lowercased attribute name.
        name: String,
        /// Required relationship to the value.
        op: AttrOp,
    },
}

/// A compound selector: optional tag plus simple selectors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Compound {
    /// Lowercased tag name, or `None` for `*` / absent.
    pub tag: Option<String>,
    /// Simple selectors that must all match.
    pub simples: Vec<Simple>,
}

impl Compound {
    /// Does element `e` satisfy every constraint of this compound?
    pub fn matches(&self, e: &ElementData) -> bool {
        if let Some(tag) = &self.tag {
            if e.tag != *tag {
                return false;
            }
        }
        self.simples.iter().all(|s| match s {
            Simple::Id(id) => e.id() == Some(id.as_str()),
            Simple::Class(c) => e.has_class(c),
            Simple::Attr { name, op } => match e.attr(name) {
                None => false,
                Some(v) => match op {
                    AttrOp::Exists => true,
                    AttrOp::Equals(x) => v == x,
                    AttrOp::StartsWith(x) => v.starts_with(x.as_str()),
                    AttrOp::Contains(x) => v.contains(x.as_str()),
                    AttrOp::EndsWith(x) => v.ends_with(x.as_str()),
                },
            },
        })
    }
}

/// Relationship between adjacent compounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Combinator {
    /// Whitespace: any ancestor.
    Descendant,
    /// `>`: direct parent.
    Child,
}

/// One full selector: a chain of compounds joined by combinators, matched
/// right-to-left like real engines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Selector {
    /// `(combinator_to_previous, compound)`; first entry's combinator is
    /// ignored.
    pub parts: Vec<(Combinator, Compound)>,
}

/// A comma-separated selector list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelectorList {
    /// The alternatives; an element matching any of them matches the list.
    pub selectors: Vec<Selector>,
}

impl SelectorList {
    /// Parse a selector list.
    pub fn parse(input: &str) -> Result<Self, SelectorParseError> {
        Parser::new(input).parse_list()
    }

    /// True if element `id` in `doc` matches any selector in the list.
    pub fn matches(&self, doc: &Document, id: NodeId) -> bool {
        self.selectors.iter().any(|s| s.matches(doc, id))
    }
}

impl Selector {
    /// Match this selector against element `id` (right-to-left with ancestor
    /// backtracking for descendant combinators).
    pub fn matches(&self, doc: &Document, id: NodeId) -> bool {
        let Some(e) = doc.element(id) else {
            return false;
        };
        let last = self.parts.len() - 1;
        if !self.parts[last].1.matches(e) {
            return false;
        }
        self.match_ancestors(doc, id, last)
    }

    fn match_ancestors(&self, doc: &Document, id: NodeId, part_idx: usize) -> bool {
        if part_idx == 0 {
            return true;
        }
        let (comb, _) = self.parts[part_idx];
        let target = &self.parts[part_idx - 1].1;
        match comb {
            Combinator::Child => {
                let Some(parent) = doc.node(id).parent else {
                    return false;
                };
                match doc.element(parent) {
                    Some(pe) if target.matches(pe) => {
                        self.match_ancestors(doc, parent, part_idx - 1)
                    }
                    _ => false,
                }
            }
            Combinator::Descendant => {
                let mut cursor = doc.node(id).parent;
                while let Some(anc) = cursor {
                    if let Some(ae) = doc.element(anc) {
                        if target.matches(ae) && self.match_ancestors(doc, anc, part_idx - 1) {
                            return true;
                        }
                    }
                    cursor = doc.node(anc).parent;
                }
                false
            }
        }
    }
}

impl Document {
    /// All elements in the light DOM under `scope` (inclusive) matching the
    /// selector string.
    ///
    /// # Errors
    /// Returns [`SelectorParseError`] if the selector is malformed.
    pub fn select(&self, scope: NodeId, selector: &str) -> Result<Vec<NodeId>, SelectorParseError> {
        let list = SelectorList::parse(selector)?;
        Ok(self
            .descendant_elements(scope)
            .filter(|&id| list.matches(self, id))
            .collect())
    }

    /// First match of `selector` under `scope`, like `querySelector`.
    pub fn select_first(
        &self,
        scope: NodeId,
        selector: &str,
    ) -> Result<Option<NodeId>, SelectorParseError> {
        let list = SelectorList::parse(selector)?;
        Ok(self
            .descendant_elements(scope)
            .find(|&id| list.matches(self, id)))
    }
}

struct Parser<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser {
            input,
            bytes: input.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, message: impl Into<String>) -> SelectorParseError {
        SelectorParseError {
            message: message.into(),
            at: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) -> bool {
        let start = self.pos;
        while self.peek().is_some_and(|b| b.is_ascii_whitespace()) {
            self.pos += 1;
        }
        self.pos != start
    }

    fn parse_list(&mut self) -> Result<SelectorList, SelectorParseError> {
        let mut selectors = Vec::new();
        loop {
            self.skip_ws();
            selectors.push(self.parse_selector()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                None => break,
                Some(c) => return Err(self.error(format!("unexpected byte {:?}", c as char))),
            }
        }
        if selectors.is_empty() {
            return Err(self.error("empty selector list"));
        }
        Ok(SelectorList { selectors })
    }

    fn parse_selector(&mut self) -> Result<Selector, SelectorParseError> {
        let mut parts = Vec::new();
        let first = self.parse_compound()?;
        parts.push((Combinator::Descendant, first));
        loop {
            let had_ws = self.skip_ws();
            match self.peek() {
                Some(b'>') => {
                    self.pos += 1;
                    self.skip_ws();
                    let c = self.parse_compound()?;
                    parts.push((Combinator::Child, c));
                }
                Some(b',') | None => break,
                Some(_) if had_ws => {
                    let c = self.parse_compound()?;
                    parts.push((Combinator::Descendant, c));
                }
                Some(c) => {
                    return Err(self.error(format!("unexpected byte {:?} in selector", c as char)))
                }
            }
        }
        Ok(Selector { parts })
    }

    fn parse_compound(&mut self) -> Result<Compound, SelectorParseError> {
        let mut tag = None;
        let mut simples = Vec::new();
        let mut any = false;
        if self.peek() == Some(b'*') {
            self.pos += 1;
            any = true;
        } else if self.peek().is_some_and(|b| b.is_ascii_alphanumeric()) {
            tag = Some(self.parse_ident().to_ascii_lowercase());
            any = true;
        }
        loop {
            match self.peek() {
                Some(b'#') => {
                    self.pos += 1;
                    let id = self.parse_ident();
                    if id.is_empty() {
                        return Err(self.error("expected identifier after '#'"));
                    }
                    simples.push(Simple::Id(id));
                }
                Some(b'.') => {
                    self.pos += 1;
                    let class = self.parse_ident();
                    if class.is_empty() {
                        return Err(self.error("expected identifier after '.'"));
                    }
                    simples.push(Simple::Class(class));
                }
                Some(b'[') => {
                    self.pos += 1;
                    simples.push(self.parse_attr()?);
                }
                _ => break,
            }
            any = true;
        }
        if !any {
            return Err(self.error("expected a compound selector"));
        }
        Ok(Compound { tag, simples })
    }

    fn parse_ident(&mut self) -> String {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_')
        {
            self.pos += 1;
        }
        self.input[start..self.pos].to_string()
    }

    fn parse_attr(&mut self) -> Result<Simple, SelectorParseError> {
        self.skip_ws();
        let name = self.parse_ident().to_ascii_lowercase();
        if name.is_empty() {
            return Err(self.error("expected attribute name"));
        }
        self.skip_ws();
        let op_kind = match self.peek() {
            Some(b']') => {
                self.pos += 1;
                return Ok(Simple::Attr {
                    name,
                    op: AttrOp::Exists,
                });
            }
            Some(b'=') => {
                self.pos += 1;
                b'='
            }
            Some(op @ (b'^' | b'*' | b'$')) => {
                self.pos += 1;
                if self.peek() != Some(b'=') {
                    return Err(self.error("expected '=' after attribute operator"));
                }
                self.pos += 1;
                op
            }
            _ => return Err(self.error("expected ']', '=', '^=', '*=' or '$='")),
        };
        self.skip_ws();
        let value = match self.peek() {
            Some(q @ (b'"' | b'\'')) => {
                self.pos += 1;
                let start = self.pos;
                while self.peek().is_some_and(|b| b != q) {
                    self.pos += 1;
                }
                if self.peek().is_none() {
                    return Err(self.error("unterminated quoted attribute value"));
                }
                let v = self.input[start..self.pos].to_string();
                self.pos += 1;
                v
            }
            _ => {
                let start = self.pos;
                while self
                    .peek()
                    .is_some_and(|b| b != b']' && !b.is_ascii_whitespace())
                {
                    self.pos += 1;
                }
                self.input[start..self.pos].to_string()
            }
        };
        self.skip_ws();
        if self.peek() != Some(b']') {
            return Err(self.error("expected ']'"));
        }
        self.pos += 1;
        let op = match op_kind {
            b'=' => AttrOp::Equals(value),
            b'^' => AttrOp::StartsWith(value),
            b'*' => AttrOp::Contains(value),
            b'$' => AttrOp::EndsWith(value),
            _ => unreachable!(),
        };
        Ok(Simple::Attr { name, op })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn doc() -> Document {
        parse(
            r#"<div id="cmp" class="overlay modal">
                 <section class="inner">
                   <button class="btn accept" data-role="accept">OK</button>
                   <a href="https://pay.example/sub" class="btn">Subscribe</a>
                 </section>
               </div>
               <div class="content"><button>Unrelated</button></div>"#,
        )
    }

    #[test]
    fn tag_id_class() {
        let d = doc();
        let r = d.root();
        assert_eq!(d.select(r, "div").unwrap().len(), 2);
        assert_eq!(d.select(r, "#cmp").unwrap().len(), 1);
        assert_eq!(d.select(r, ".btn").unwrap().len(), 2);
        assert_eq!(d.select(r, "button.accept").unwrap().len(), 1);
        assert_eq!(d.select(r, "div.overlay.modal").unwrap().len(), 1);
        assert_eq!(
            d.select(r, "*").unwrap().len(),
            d.descendant_elements(r).count()
        );
    }

    #[test]
    fn attribute_selectors() {
        let d = doc();
        let r = d.root();
        assert_eq!(d.select(r, "[data-role]").unwrap().len(), 1);
        assert_eq!(d.select(r, "[data-role=accept]").unwrap().len(), 1);
        assert_eq!(d.select(r, "[data-role='accept']").unwrap().len(), 1);
        assert_eq!(d.select(r, "a[href^=\"https://pay\"]").unwrap().len(), 1);
        assert_eq!(d.select(r, "a[href*=example]").unwrap().len(), 1);
        assert_eq!(d.select(r, "a[href$=sub]").unwrap().len(), 1);
        assert_eq!(d.select(r, "a[href$=nope]").unwrap().len(), 0);
    }

    #[test]
    fn combinators() {
        let d = doc();
        let r = d.root();
        assert_eq!(d.select(r, "#cmp button").unwrap().len(), 1);
        assert_eq!(d.select(r, "#cmp > section > button").unwrap().len(), 1);
        assert_eq!(
            d.select(r, "#cmp > button").unwrap().len(),
            0,
            "button is a grandchild, not a child"
        );
        assert_eq!(d.select(r, "div section .btn").unwrap().len(), 2);
    }

    #[test]
    fn selector_groups() {
        let d = doc();
        let r = d.root();
        assert_eq!(d.select(r, "#cmp, .content").unwrap().len(), 2);
        assert_eq!(d.select(r, "a , button").unwrap().len(), 3);
    }

    #[test]
    fn select_first_in_document_order() {
        let d = doc();
        let first = d.select_first(d.root(), "button").unwrap().unwrap();
        assert_eq!(d.attr(first, "data-role"), Some("accept"));
    }

    #[test]
    fn scoped_selection() {
        let d = doc();
        let content = d.select_first(d.root(), ".content").unwrap().unwrap();
        assert_eq!(d.select(content, "button").unwrap().len(), 1);
        assert_eq!(d.select(content, ".accept").unwrap().len(), 0);
    }

    #[test]
    fn does_not_pierce_shadow() {
        let d = parse(
            r#"<div id="h"><template shadowrootmode="open"><button class="x">B</button></template></div>"#,
        );
        assert_eq!(d.select(d.root(), ".x").unwrap().len(), 0);
        // But selecting *inside* the shadow root scope works.
        let h = d.get_element_by_id("h").unwrap();
        let sr = d.shadow_root(h).unwrap();
        assert_eq!(d.select(sr.root, ".x").unwrap().len(), 1);
    }

    #[test]
    fn parse_errors() {
        assert!(SelectorList::parse("").is_err());
        assert!(SelectorList::parse("#").is_err());
        assert!(SelectorList::parse("div[").is_err());
        assert!(SelectorList::parse("div[a=\"x]").is_err());
        assert!(SelectorList::parse("div >").is_err());
        assert!(SelectorList::parse(",div").is_err());
        let err = SelectorList::parse("div[a").unwrap_err();
        assert!(err.to_string().contains("selector parse error"));
    }

    #[test]
    fn case_handling() {
        let d = parse(r#"<DIV ID="Mixed" CLASS="Foo"></DIV>"#);
        // Tag matching is case-insensitive (both lowered); id/class values
        // are case-sensitive.
        assert_eq!(d.select(d.root(), "DIV").unwrap().len(), 1);
        assert_eq!(d.select(d.root(), "#Mixed").unwrap().len(), 1);
        assert_eq!(d.select(d.root(), "#mixed").unwrap().len(), 0);
        assert_eq!(d.select(d.root(), ".Foo").unwrap().len(), 1);
        assert_eq!(d.select(d.root(), ".foo").unwrap().len(), 0);
    }
}
