//! HTML tokenizer.
//!
//! Produces a flat token stream (start tags with attributes, end tags, text,
//! comments, doctype) from raw HTML. The grammar is the practically-relevant
//! subset of the WHATWG tokenizer: quoted and unquoted attribute values,
//! self-closing tags, raw-text elements (`script`, `style`), comments, and
//! entity decoding in text and attribute values. Error recovery follows the
//! browser convention of never failing — malformed input degrades to text.

use crate::entity::decode_entities;

/// One HTML token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// `<tag attr="v">`; `self_closing` records a trailing `/`.
    StartTag {
        /// Lowercased tag name.
        name: String,
        /// Attributes in source order, values entity-decoded.
        attrs: Vec<(String, String)>,
        /// Trailing `/` present.
        self_closing: bool,
    },
    /// `</tag>`.
    EndTag {
        /// Lowercased tag name.
        name: String,
    },
    /// Text run, entity-decoded.
    Text(String),
    /// `<!-- … -->` contents.
    Comment(String),
    /// `<!DOCTYPE …>` contents (rarely needed, kept for fidelity).
    Doctype(String),
}

/// Tokenize `input` into a vector of tokens.
pub fn tokenize(input: &str) -> Vec<Token> {
    Tokenizer::new(input).run()
}

struct Tokenizer<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
    tokens: Vec<Token>,
}

impl<'a> Tokenizer<'a> {
    fn new(input: &'a str) -> Self {
        Tokenizer {
            input,
            bytes: input.as_bytes(),
            pos: 0,
            tokens: Vec::new(),
        }
    }

    fn run(mut self) -> Vec<Token> {
        while self.pos < self.bytes.len() {
            if self.bytes[self.pos] == b'<' {
                self.consume_markup();
            } else {
                self.consume_text();
            }
        }
        self.tokens
    }

    fn peek(&self, offset: usize) -> Option<u8> {
        self.bytes.get(self.pos + offset).copied()
    }

    fn starts_with_ci(&self, s: &str) -> bool {
        self.input[self.pos..]
            .get(..s.len())
            .is_some_and(|p| p.eq_ignore_ascii_case(s))
    }

    fn consume_text(&mut self) {
        let start = self.pos;
        while self.pos < self.bytes.len() && self.bytes[self.pos] != b'<' {
            self.pos += 1;
        }
        let raw = &self.input[start..self.pos];
        if !raw.is_empty() {
            self.push_text(decode_entities(raw));
        }
    }

    fn push_text(&mut self, text: String) {
        // Merge adjacent text tokens so `a < b` style recovery doesn't
        // fragment runs.
        if let Some(Token::Text(prev)) = self.tokens.last_mut() {
            prev.push_str(&text);
        } else {
            self.tokens.push(Token::Text(text));
        }
    }

    fn consume_markup(&mut self) {
        debug_assert_eq!(self.bytes[self.pos], b'<');
        match self.peek(1) {
            Some(b'!') => {
                if self.starts_with_ci("<!--") {
                    self.consume_comment();
                } else if self.starts_with_ci("<!doctype") {
                    self.consume_doctype();
                } else {
                    // Bogus markup declaration: skip to '>'.
                    self.skip_until(b'>');
                }
            }
            Some(b'/') => self.consume_end_tag(),
            Some(c) if c.is_ascii_alphabetic() => self.consume_start_tag(),
            _ => {
                // Lone '<' is text, per spec recovery.
                self.pos += 1;
                self.push_text("<".to_string());
            }
        }
    }

    fn skip_until(&mut self, byte: u8) {
        while self.pos < self.bytes.len() && self.bytes[self.pos] != byte {
            self.pos += 1;
        }
        if self.pos < self.bytes.len() {
            self.pos += 1; // consume the delimiter
        }
    }

    fn consume_comment(&mut self) {
        self.pos += 4; // "<!--"
        let start = self.pos;
        let end = self.input[self.pos..]
            .find("-->")
            .map(|i| self.pos + i)
            .unwrap_or(self.bytes.len());
        self.tokens
            .push(Token::Comment(self.input[start..end].to_string()));
        self.pos = (end + 3).min(self.bytes.len());
    }

    fn consume_doctype(&mut self) {
        self.pos += 2; // "<!"
        let start = self.pos;
        while self.pos < self.bytes.len() && self.bytes[self.pos] != b'>' {
            self.pos += 1;
        }
        self.tokens
            .push(Token::Doctype(self.input[start..self.pos].to_string()));
        if self.pos < self.bytes.len() {
            self.pos += 1;
        }
    }

    fn consume_end_tag(&mut self) {
        self.pos += 2; // "</"
        let name = self.consume_tag_name();
        // Skip anything up to '>' (attributes on end tags are ignored).
        self.skip_until(b'>');
        if !name.is_empty() {
            self.tokens.push(Token::EndTag { name });
        }
    }

    fn consume_tag_name(&mut self) -> String {
        let start = self.pos;
        while self
            .peek(0)
            .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b':')
        {
            self.pos += 1;
        }
        self.input[start..self.pos].to_ascii_lowercase()
    }

    fn skip_whitespace(&mut self) {
        while self.peek(0).is_some_and(|b| b.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn consume_start_tag(&mut self) {
        self.pos += 1; // '<'
        let name = self.consume_tag_name();
        let mut attrs = Vec::new();
        let mut self_closing = false;
        loop {
            self.skip_whitespace();
            match self.peek(0) {
                None => break,
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(b'/') => {
                    self.pos += 1;
                    if self.peek(0) == Some(b'>') {
                        self.pos += 1;
                        self_closing = true;
                        break;
                    }
                    // stray '/': ignore
                }
                Some(_) => {
                    if let Some(attr) = self.consume_attribute() {
                        attrs.push(attr);
                    }
                }
            }
        }
        let raw_text = matches!(name.as_str(), "script" | "style" | "textarea" | "title");
        self.tokens.push(Token::StartTag {
            name: name.clone(),
            attrs,
            self_closing,
        });
        if raw_text && !self_closing {
            self.consume_raw_text(&name);
        }
    }

    fn consume_attribute(&mut self) -> Option<(String, String)> {
        let start = self.pos;
        while self
            .peek(0)
            .is_some_and(|b| !b.is_ascii_whitespace() && b != b'=' && b != b'>' && b != b'/')
        {
            self.pos += 1;
        }
        if self.pos == start {
            // Unexpected byte (e.g. stray quote); skip it to make progress.
            self.pos += 1;
            return None;
        }
        let name = self.input[start..self.pos].to_ascii_lowercase();
        self.skip_whitespace();
        if self.peek(0) != Some(b'=') {
            return Some((name, String::new())); // boolean attribute
        }
        self.pos += 1; // '='
        self.skip_whitespace();
        let value = match self.peek(0) {
            Some(q @ (b'"' | b'\'')) => {
                self.pos += 1;
                let vstart = self.pos;
                while self.peek(0).is_some_and(|b| b != q) {
                    self.pos += 1;
                }
                let v = &self.input[vstart..self.pos];
                if self.peek(0).is_some() {
                    self.pos += 1; // closing quote
                }
                decode_entities(v)
            }
            _ => {
                let vstart = self.pos;
                while self
                    .peek(0)
                    .is_some_and(|b| !b.is_ascii_whitespace() && b != b'>')
                {
                    self.pos += 1;
                }
                decode_entities(&self.input[vstart..self.pos])
            }
        };
        Some((name, value))
    }

    /// Consume raw text up to the matching `</tag` for script/style etc.
    /// Raw text is emitted undecoded (entities are not active in scripts).
    fn consume_raw_text(&mut self, tag: &str) {
        let close = format!("</{tag}");
        let rest = &self.input[self.pos..];
        let lower = rest.to_ascii_lowercase();
        let end_rel = lower.find(&close).unwrap_or(rest.len());
        if end_rel > 0 {
            self.tokens.push(Token::Text(rest[..end_rel].to_string()));
        }
        self.pos += end_rel;
        if self.pos < self.bytes.len() {
            // Consume "</tag ... >".
            self.pos += close.len();
            self.skip_until(b'>');
            self.tokens.push(Token::EndTag {
                name: tag.to_string(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn start(name: &str, attrs: &[(&str, &str)]) -> Token {
        Token::StartTag {
            name: name.into(),
            attrs: attrs
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            self_closing: false,
        }
    }

    #[test]
    fn simple_tags_and_text() {
        let toks = tokenize("<div>hello</div>");
        assert_eq!(
            toks,
            vec![
                start("div", &[]),
                Token::Text("hello".into()),
                Token::EndTag { name: "div".into() },
            ]
        );
    }

    #[test]
    fn attributes_all_quoting_styles() {
        let toks = tokenize(r#"<a href="x" id='y' data-n=3 hidden>"#);
        match &toks[0] {
            Token::StartTag { name, attrs, .. } => {
                assert_eq!(name, "a");
                assert_eq!(
                    attrs,
                    &vec![
                        ("href".to_string(), "x".to_string()),
                        ("id".to_string(), "y".to_string()),
                        ("data-n".to_string(), "3".to_string()),
                        ("hidden".to_string(), String::new()),
                    ]
                );
            }
            other => panic!("expected start tag, got {other:?}"),
        }
    }

    #[test]
    fn self_closing_and_case() {
        let toks = tokenize("<BR/><IMG SRC=x>");
        assert_eq!(
            toks[0],
            Token::StartTag {
                name: "br".into(),
                attrs: vec![],
                self_closing: true
            }
        );
        match &toks[1] {
            Token::StartTag { name, attrs, .. } => {
                assert_eq!(name, "img");
                assert_eq!(attrs[0].0, "src");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn entities_in_text_and_attrs() {
        let toks = tokenize(r#"<span title="3,99&nbsp;&euro;">nur 2,99 &euro;/Monat</span>"#);
        match &toks[0] {
            Token::StartTag { attrs, .. } => {
                assert_eq!(attrs[0].1, "3,99\u{a0}€");
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(toks[1], Token::Text("nur 2,99 €/Monat".into()));
    }

    #[test]
    fn comments_and_doctype() {
        let toks = tokenize("<!DOCTYPE html><!-- x --><p>t</p>");
        assert_eq!(toks[0], Token::Doctype("DOCTYPE html".into()));
        assert_eq!(toks[1], Token::Comment(" x ".into()));
    }

    #[test]
    fn script_raw_text_not_tokenized() {
        let toks = tokenize("<script>if (a < b) { x = \"<div>\"; }</script><p>after</p>");
        assert_eq!(toks[0], start("script", &[]));
        assert_eq!(toks[1], Token::Text("if (a < b) { x = \"<div>\"; }".into()));
        assert_eq!(
            toks[2],
            Token::EndTag {
                name: "script".into()
            }
        );
        assert_eq!(toks[3], start("p", &[]));
    }

    #[test]
    fn style_raw_text() {
        let toks = tokenize("<style>a > b { color: red }</style>");
        assert_eq!(toks[1], Token::Text("a > b { color: red }".into()));
    }

    #[test]
    fn malformed_recovers_as_text() {
        let toks = tokenize("a < b and c <3 d");
        assert_eq!(toks, vec![Token::Text("a < b and c <3 d".into())]);
    }

    #[test]
    fn unterminated_comment_and_tag() {
        let toks = tokenize("<!-- never closed");
        assert_eq!(toks, vec![Token::Comment(" never closed".into())]);
        let toks = tokenize("<div attr");
        assert!(matches!(toks[0], Token::StartTag { .. }));
    }

    #[test]
    fn unterminated_script() {
        let toks = tokenize("<script>var x = 1;");
        assert_eq!(toks[1], Token::Text("var x = 1;".into()));
        assert_eq!(toks.len(), 2, "no phantom end tag");
    }

    #[test]
    fn end_tag_with_junk_attrs() {
        let toks = tokenize("<div>x</div id=5>");
        assert_eq!(toks[2], Token::EndTag { name: "div".into() });
    }

    #[test]
    fn adjacent_text_merged() {
        let toks = tokenize("x < y");
        assert_eq!(toks.len(), 1);
    }
}
