//! Tree builder: token stream → [`Document`].
//!
//! Implements a pragmatic subset of the WHATWG tree-construction algorithm:
//! a stack of open elements, void-element handling, implicit `<html>`/`<body>`
//! insertion, tolerant end-tag matching (unwind to the nearest matching open
//! element, ignore unmatched closers), and **declarative shadow DOM** —
//! a `<template shadowrootmode="open|closed">` becomes a shadow root attached
//! to its parent element, which is how the synthetic sites in this study ship
//! shadow-DOM-embedded cookiewalls over plain HTML.

use crate::tokenizer::{tokenize, Token};
use crate::tree::{is_void_element, Document, NodeId, ShadowMode};

/// Parse an HTML string into a [`Document`].
///
/// Never fails: malformed HTML degrades the way browsers degrade it.
pub fn parse(html: &str) -> Document {
    let tokens = tokenize(html);
    let mut doc = Document::new();
    let mut builder = TreeBuilder::new(&mut doc);
    for token in tokens {
        builder.process(token);
    }
    builder.finish();
    doc
}

/// Parse an HTML *fragment* (no implicit html/body wrapping) and append the
/// resulting nodes under `parent` in an existing document.
///
/// Used by the browser simulator for script-driven DOM injection
/// (`element.innerHTML = …` equivalents).
pub fn parse_fragment_into(doc: &mut Document, parent: NodeId, html: &str) {
    let tokens = tokenize(html);
    let mut builder = TreeBuilder::fragment(doc, parent);
    for token in tokens {
        builder.process(token);
    }
    builder.finish();
}

struct TreeBuilder<'a> {
    doc: &'a mut Document,
    /// Stack of open elements; bottom is the insertion root.
    stack: Vec<NodeId>,
    /// True when building a full document (implicit html/body synthesis).
    full_document: bool,
    /// Set when inside a `<template shadowrootmode>`: (host element,
    /// shadow root id) so the matching `</template>` pops correctly.
    shadow_templates: Vec<NodeId>,
    html_seen: bool,
    body_seen: bool,
    head_seen: bool,
}

impl<'a> TreeBuilder<'a> {
    fn new(doc: &'a mut Document) -> Self {
        let root = doc.root();
        TreeBuilder {
            doc,
            stack: vec![root],
            full_document: true,
            shadow_templates: Vec::new(),
            html_seen: false,
            body_seen: false,
            head_seen: false,
        }
    }

    fn fragment(doc: &'a mut Document, parent: NodeId) -> Self {
        TreeBuilder {
            doc,
            stack: vec![parent],
            full_document: false,
            shadow_templates: Vec::new(),
            html_seen: true,
            body_seen: true,
            head_seen: true,
        }
    }

    fn top(&self) -> NodeId {
        *self.stack.last().expect("stack never empty")
    }

    /// Ensure implicit structure exists before inserting content in a full
    /// document: `<html>` then `<body>` (unless we're in head-only content).
    fn ensure_body_context(&mut self, for_head_content: bool) {
        if !self.full_document {
            return;
        }
        if !self.html_seen {
            let html = self.doc.create_element("html");
            let root = self.doc.root();
            self.doc.append_child(root, html);
            self.stack.push(html);
            self.html_seen = true;
        }
        if for_head_content {
            return;
        }
        if !self.body_seen {
            // Close any open <head>.
            if self.head_seen {
                while self.stack.len() > 1 && self.doc.tag(self.top()) != Some("html") {
                    self.stack.pop();
                }
            }
            let html_el = *self
                .stack
                .iter()
                .find(|&&id| self.doc.tag(id) == Some("html"))
                .unwrap_or(&self.top());
            let body = self.doc.create_element("body");
            self.doc.append_child(html_el, body);
            // Truncate the stack down to html, then push body.
            while self.stack.len() > 1 && self.doc.tag(self.top()) != Some("html") {
                self.stack.pop();
            }
            self.stack.push(body);
            self.body_seen = true;
        }
    }

    fn process(&mut self, token: Token) {
        match token {
            Token::Doctype(_) => {}
            Token::Comment(text) => {
                let node = self.doc.create_comment(&text);
                let top = self.top();
                self.doc.append_child(top, node);
            }
            Token::Text(text) => {
                let at_top_level =
                    self.top() == self.doc.root() || self.doc.tag(self.top()) == Some("html");
                if at_top_level && text.chars().all(|c| c.is_whitespace()) {
                    // Inter-element whitespace outside body: drop, like the
                    // "in html"/"before body" insertion modes do.
                    return;
                }
                // Only synthesize <body> when text appears at the top level;
                // text inside <head>/<title> etc. stays where it is.
                if at_top_level {
                    self.ensure_body_context(false);
                }
                let node = self.doc.create_text(&text);
                let top = self.top();
                self.doc.append_child(top, node);
            }
            Token::StartTag {
                name,
                attrs,
                self_closing,
            } => self.start_tag(&name, attrs, self_closing),
            Token::EndTag { name } => self.end_tag(&name),
        }
    }

    fn start_tag(&mut self, name: &str, attrs: Vec<(String, String)>, self_closing: bool) {
        match name {
            "html" if self.full_document => {
                if !self.html_seen {
                    let html = self.doc.create_element("html");
                    for (k, v) in &attrs {
                        self.doc.set_attr(html, k, v);
                    }
                    let root = self.doc.root();
                    self.doc.append_child(root, html);
                    self.stack.push(html);
                    self.html_seen = true;
                }
                return;
            }
            "head" if self.full_document => {
                self.ensure_body_context(true);
                if !self.head_seen {
                    let head = self.doc.create_element("head");
                    let top = self.top();
                    self.doc.append_child(top, head);
                    self.stack.push(head);
                    self.head_seen = true;
                }
                return;
            }
            "body" if self.full_document => {
                self.ensure_body_context(true);
                if !self.body_seen {
                    // Pop back to html.
                    while self.stack.len() > 1 && self.doc.tag(self.top()) != Some("html") {
                        self.stack.pop();
                    }
                    let body = self.doc.create_element("body");
                    for (k, v) in &attrs {
                        self.doc.set_attr(body, k, v);
                    }
                    let top = self.top();
                    self.doc.append_child(top, body);
                    self.stack.push(body);
                    self.body_seen = true;
                }
                return;
            }
            _ => {}
        }

        let head_content = matches!(name, "meta" | "link" | "title" | "base");
        self.ensure_body_context(head_content && !self.body_seen);

        // Declarative shadow DOM: <template shadowrootmode=…> attaches a
        // shadow root to the current insertion point's *parent-to-be*, i.e.
        // the element currently on top of the stack.
        if name == "template" {
            let mode = attrs
                .iter()
                .find(|(k, _)| k == "shadowrootmode")
                .and_then(|(_, v)| ShadowMode::parse(v));
            if let Some(mode) = mode {
                let host = self.top();
                if self.doc.element(host).is_some() && self.doc.shadow_root(host).is_none() {
                    let sr = self.doc.attach_shadow(host, mode);
                    self.stack.push(sr);
                    self.shadow_templates.push(sr);
                    return;
                }
            }
            // Fall through: ordinary template element.
        }

        // HTML auto-closing: certain elements implicitly end an open
        // element of a conflicting kind (<p>text<p>more ⇒ two sibling
        // paragraphs, <li>…<li> ⇒ sibling list items, …).
        self.apply_auto_close(name);

        let el = self.doc.create_element(name);
        for (k, v) in &attrs {
            self.doc.set_attr(el, k, v);
        }
        let top = self.top();
        self.doc.append_child(top, el);
        if !self_closing && !is_void_element(name) {
            self.stack.push(el);
        }
    }

    /// Pop elements that the incoming start tag implicitly closes.
    fn apply_auto_close(&mut self, incoming: &str) {
        const BLOCKS_CLOSING_P: &[&str] = &[
            "p",
            "div",
            "section",
            "article",
            "aside",
            "ul",
            "ol",
            "table",
            "header",
            "footer",
            "main",
            "nav",
            "h1",
            "h2",
            "h3",
            "h4",
            "h5",
            "h6",
            "blockquote",
            "pre",
            "form",
        ];
        let closes_top = |top_tag: &str| -> bool {
            match top_tag {
                "p" => BLOCKS_CLOSING_P.contains(&incoming),
                "li" => incoming == "li",
                "tr" => incoming == "tr",
                "td" | "th" => matches!(incoming, "td" | "th" | "tr"),
                "dt" | "dd" => matches!(incoming, "dt" | "dd"),
                "option" => incoming == "option",
                _ => false,
            }
        };
        while let Some(&top) = self.stack.last() {
            // Never auto-close past a shadow-root boundary.
            if self.shadow_templates.last() == Some(&top) {
                break;
            }
            match self.doc.tag(top) {
                Some(tag) if closes_top(tag) => {
                    self.stack.pop();
                }
                _ => break,
            }
        }
    }

    fn end_tag(&mut self, name: &str) {
        if name == "template" {
            // Close a declarative shadow root if one is open.
            if let Some(sr) = self.shadow_templates.last().copied() {
                if let Some(pos) = self.stack.iter().rposition(|&id| id == sr) {
                    self.stack.truncate(pos);
                    self.shadow_templates.pop();
                    return;
                }
            }
        }
        if self.full_document && (name == "html" || name == "body") {
            // Keep them open until finish(); trailing content still lands in
            // body, matching browser behaviour.
            return;
        }
        // Find the nearest matching open element; ignore if none (stray
        // closer). Do not unwind past a shadow root boundary.
        let boundary = self
            .shadow_templates
            .last()
            .and_then(|&sr| self.stack.iter().rposition(|&id| id == sr))
            .unwrap_or(0);
        let matching = self.stack[boundary..]
            .iter()
            .rposition(|&id| self.doc.tag(id) == Some(name))
            .map(|rel| boundary + rel);
        if let Some(pos) = matching {
            self.stack.truncate(pos);
            if self.stack.is_empty() {
                self.stack.push(self.doc.root());
            }
        }
    }

    fn finish(&mut self) {
        if self.full_document {
            self.ensure_body_context(false);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::ShadowMode;

    #[test]
    fn parses_minimal_document() {
        let d = parse("<html><body><p>hi</p></body></html>");
        let body = d.body().expect("body");
        let p = d.children(body).next().unwrap();
        assert_eq!(d.tag(p), Some("p"));
        let t = d.children(p).next().unwrap();
        assert_eq!(d.node(t).as_text(), Some("hi"));
    }

    #[test]
    fn implicit_html_body() {
        let d = parse("<p>naked</p>");
        let body = d.body().expect("implicit body synthesized");
        assert_eq!(d.children(body).count(), 1);
        let html = d.html().expect("implicit html");
        assert!(d.is_ancestor(html, body));
    }

    #[test]
    fn head_and_body_separated() {
        let d = parse("<head><title>t</title></head><body><div>x</div></body>");
        let body = d.body().unwrap();
        assert_eq!(d.children(body).count(), 1);
        let titles = d.get_elements_by_tag("title");
        assert_eq!(titles.len(), 1);
        assert!(!d.is_ancestor(body, titles[0]), "title not inside body");
    }

    #[test]
    fn nested_and_misnested() {
        let d = parse("<div><span>a<b>c</span>d</div>");
        // </span> unwinds past the unclosed <b>; "d" lands in <div>.
        let body = d.body().unwrap();
        let div = d.children(body).next().unwrap();
        let kids: Vec<_> = d.children(div).collect();
        assert_eq!(d.tag(kids[0]), Some("span"));
        assert_eq!(d.node(kids[1]).as_text(), Some("d"));
    }

    #[test]
    fn stray_end_tags_ignored() {
        let d = parse("</div><p>x</p></section>");
        let body = d.body().unwrap();
        assert_eq!(d.children(body).count(), 1);
    }

    #[test]
    fn void_elements_dont_nest() {
        let d = parse("<div><br><img src=x><span>y</span></div>");
        let body = d.body().unwrap();
        let div = d.children(body).next().unwrap();
        let kids: Vec<_> = d.children(div).collect();
        assert_eq!(kids.len(), 3);
        assert_eq!(d.children(kids[0]).count(), 0, "br has no children");
    }

    #[test]
    fn declarative_shadow_dom_open() {
        let d = parse(
            r#"<div id="host"><template shadowrootmode="open"><button>Akzeptieren</button></template></div>"#,
        );
        let host = d.get_element_by_id("host").unwrap();
        let sr = d.shadow_root(host).expect("shadow root attached");
        assert_eq!(sr.mode, ShadowMode::Open);
        let btn = d.children(sr.root).next().unwrap();
        assert_eq!(d.tag(btn), Some("button"));
        // Button invisible to light-DOM traversal.
        assert!(d.descendants(d.root()).all(|n| n != btn));
    }

    #[test]
    fn declarative_shadow_dom_closed_with_trailing_light_content() {
        let d = parse(
            r#"<div id="host"><template shadowrootmode="closed"><p>wall</p></template><em>light</em></div>"#,
        );
        let host = d.get_element_by_id("host").unwrap();
        let sr = d.shadow_root(host).unwrap();
        assert_eq!(sr.mode, ShadowMode::Closed);
        // <em> is a light child of host, after the template closed.
        let light: Vec<_> = d.children(host).collect();
        assert_eq!(light.len(), 1);
        assert_eq!(d.tag(light[0]), Some("em"));
    }

    #[test]
    fn plain_template_is_ordinary_element() {
        let d = parse("<div><template><span>x</span></template></div>");
        let tmpl = d.get_elements_by_tag("template");
        assert_eq!(tmpl.len(), 1);
        assert_eq!(d.children(tmpl[0]).count(), 1);
    }

    #[test]
    fn nested_shadow_roots() {
        let d = parse(
            r#"<div id="outer"><template shadowrootmode="open"><div id="inner"><template shadowrootmode="closed"><button id="b">Buy</button></template></div></template></div>"#,
        );
        let outer = d.get_element_by_id("outer").unwrap();
        let sr1 = d.shadow_root(outer).unwrap();
        let inner = d
            .descendant_elements(sr1.root)
            .find(|&n| d.attr(n, "id") == Some("inner"))
            .unwrap();
        let sr2 = d.shadow_root(inner).unwrap();
        assert_eq!(sr2.mode, ShadowMode::Closed);
        let btn = d.children(sr2.root).next().unwrap();
        assert_eq!(d.attr(btn, "id"), Some("b"));
    }

    #[test]
    fn fragment_parsing() {
        let mut d = parse("<div id=target></div>");
        let target = d.get_element_by_id("target").unwrap();
        parse_fragment_into(&mut d, target, "<span>a</span><span>b</span>");
        assert_eq!(d.children(target).count(), 2);
        // No implicit body inside a fragment.
        assert_eq!(d.get_elements_by_tag("body").len(), 1);
    }

    #[test]
    fn attributes_preserved() {
        let d = parse(r#"<iframe src="https://cmp.example/consent" width=400></iframe>"#);
        let ifr = d.get_elements_by_tag("iframe")[0];
        assert_eq!(d.attr(ifr, "src"), Some("https://cmp.example/consent"));
        assert_eq!(d.attr(ifr, "width"), Some("400"));
    }

    #[test]
    fn text_before_any_tag() {
        let d = parse("hello <b>world</b>");
        let body = d.body().unwrap();
        let kids: Vec<_> = d.children(body).collect();
        assert_eq!(d.node(kids[0]).as_text(), Some("hello "));
        assert_eq!(d.tag(kids[1]), Some("b"));
    }

    #[test]
    fn deeply_nested_does_not_stack_overflow_iter() {
        let mut html = String::new();
        for _ in 0..2000 {
            html.push_str("<div>");
        }
        html.push('x');
        let d = parse(&html);
        // Traversal is iterative; counting must work.
        assert!(d.descendants(d.root()).count() > 2000);
    }
}

#[cfg(test)]
mod auto_close_tests {
    use super::parse;

    #[test]
    fn sibling_paragraphs() {
        let d = parse("<p>one<p>two<p>three");
        let body = d.body().unwrap();
        let kids: Vec<_> = d.children(body).collect();
        assert_eq!(kids.len(), 3, "three sibling <p>, not nested");
        for k in &kids {
            assert_eq!(d.tag(*k), Some("p"));
        }
        assert_eq!(d.visible_text(kids[2]), "three");
    }

    #[test]
    fn block_closes_paragraph() {
        let d = parse("<p>intro<div>content</div>");
        let body = d.body().unwrap();
        let kids: Vec<_> = d.children(body).collect();
        assert_eq!(kids.len(), 2);
        assert_eq!(d.tag(kids[0]), Some("p"));
        assert_eq!(d.tag(kids[1]), Some("div"));
    }

    #[test]
    fn list_items_are_siblings() {
        let d = parse("<ul><li>a<li>b<li>c</ul>");
        let ul = d.get_elements_by_tag("ul")[0];
        assert_eq!(d.children(ul).count(), 3);
    }

    #[test]
    fn table_cells_and_rows() {
        let d = parse("<table><tr><td>1<td>2<tr><td>3</table>");
        let rows = d.get_elements_by_tag("tr");
        assert_eq!(rows.len(), 2);
        assert_eq!(d.children(rows[0]).count(), 2);
        assert_eq!(d.children(rows[1]).count(), 1);
    }

    #[test]
    fn inline_elements_do_not_close_p() {
        let d = parse("<p>a <b>bold</b> and <em>em</em> end</p>");
        let p = d.get_elements_by_tag("p")[0];
        assert_eq!(d.visible_text(p), "a bold and em end");
        assert_eq!(d.get_elements_by_tag("p").len(), 1);
    }
}
