//! Inline style parsing.
//!
//! Banner detection relies on a handful of layout signals (`position:fixed`,
//! high `z-index`, `display:none`) that real BannerClick reads through
//! `getComputedStyle`. Our synthetic pages carry these as inline `style`
//! attributes, so a small declaration parser is all that's needed.

use std::collections::BTreeMap;

/// Parsed inline style declarations (property → value, properties
/// lowercased, values trimmed). `BTreeMap` keeps iteration deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Style {
    decls: BTreeMap<String, String>,
}

/// CSS `position` values that take an element out of normal flow and pin it
/// to the viewport — the strongest banner-overlay signal.
pub const OVERLAY_POSITIONS: &[&str] = &["fixed", "sticky"];

impl Style {
    /// Parse a `style` attribute value like
    /// `"position: fixed; z-index: 9999; display:none"`.
    ///
    /// Malformed declarations (missing colon) are skipped; later duplicates
    /// win, as in CSS.
    // lint:allow(r9) — the DOM/AST owns its text, attributes, and error strings; ROADMAP item 1
    pub fn parse(input: &str) -> Self {
        let mut decls = BTreeMap::new();
        for decl in input.split(';') {
            let Some((prop, value)) = decl.split_once(':') else {
                continue;
            };
            let prop = prop.trim().to_ascii_lowercase();
            let value = value.trim().to_string();
            if !prop.is_empty() && !value.is_empty() {
                decls.insert(prop, value);
            }
        }
        Style { decls }
    }

    /// Value of `property` (lowercase), if declared.
    pub fn get(&self, property: &str) -> Option<&str> {
        self.decls.get(property).map(|s| s.as_str())
    }

    /// Number of declarations.
    pub fn len(&self) -> usize {
        self.decls.len()
    }

    /// True if no declarations were parsed.
    pub fn is_empty(&self) -> bool {
        self.decls.is_empty()
    }

    /// `z-index` as an integer, if declared and numeric.
    pub fn z_index(&self) -> Option<i64> {
        self.get("z-index").and_then(|v| v.trim().parse().ok())
    }

    /// True if the element is pinned to the viewport (fixed/sticky).
    pub fn is_overlay_positioned(&self) -> bool {
        self.get("position")
            .is_some_and(|p| OVERLAY_POSITIONS.contains(&p.to_ascii_lowercase().as_str()))
    }

    /// True if the element is hidden (`display:none` or
    /// `visibility:hidden`).
    pub fn is_hidden(&self) -> bool {
        self.get("display")
            .is_some_and(|d| d.eq_ignore_ascii_case("none"))
            || self
                .get("visibility")
                .is_some_and(|v| v.eq_ignore_ascii_case("hidden"))
    }

    /// Iterate `(property, value)` pairs in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.decls.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }
}

impl crate::tree::Document {
    /// Parsed inline style of element `id` (empty if no `style` attribute).
    pub fn style(&self, id: crate::tree::NodeId) -> Style {
        self.attr(id, "style").map(Style::parse).unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn parses_declarations() {
        let s = Style::parse("position: fixed; z-index: 9999; color:red");
        assert_eq!(s.get("position"), Some("fixed"));
        assert_eq!(s.z_index(), Some(9999));
        assert_eq!(s.get("color"), Some("red"));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn tolerates_malformed() {
        let s = Style::parse("nonsense; position:fixed;;; : ; x:");
        assert_eq!(s.len(), 1);
        assert!(s.is_overlay_positioned());
    }

    #[test]
    fn later_duplicates_win() {
        let s = Style::parse("display:block; display:none");
        assert!(s.is_hidden());
    }

    #[test]
    fn overlay_and_hidden_predicates() {
        assert!(Style::parse("position:FIXED").is_overlay_positioned());
        assert!(Style::parse("position:sticky").is_overlay_positioned());
        assert!(!Style::parse("position:absolute").is_overlay_positioned());
        assert!(Style::parse("visibility:hidden").is_hidden());
        assert!(!Style::parse("visibility:visible").is_hidden());
        assert!(Style::parse("").is_empty());
    }

    #[test]
    fn document_style_accessor() {
        let d = parse(r#"<div id="b" style="position:fixed;z-index:100000"></div><p id="p">x</p>"#);
        let b = d.get_element_by_id("b").unwrap();
        assert!(d.style(b).is_overlay_positioned());
        assert_eq!(d.style(b).z_index(), Some(100000));
        let p = d.get_element_by_id("p").unwrap();
        assert!(d.style(p).is_empty());
    }

    #[test]
    fn negative_and_bad_zindex() {
        assert_eq!(Style::parse("z-index:-1").z_index(), Some(-1));
        assert_eq!(Style::parse("z-index:auto").z_index(), None);
    }
}
