//! DOM → HTML serialization.
//!
//! Produces HTML that [`crate::parse`] parses back into an equivalent tree —
//! the round-trip property the webdom proptests pin down. Shadow roots are
//! serialized as declarative `<template shadowrootmode=…>` children, so a
//! generated page survives the generator → HTTP body → browser-parse journey
//! with its shadow DOM intact.

use crate::entity::encode_entities;
use crate::tree::{is_void_element, Document, NodeId, NodeKind};

impl Document {
    /// Serialize the subtree rooted at `id` (outerHTML semantics: includes
    /// `id` itself unless it is the document or a shadow root, whose
    /// children are emitted instead).
    pub fn outer_html(&self, id: NodeId) -> String {
        let mut out = String::new();
        self.write_node(id, &mut out);
        out
    }

    /// Serialize the children of `id` (innerHTML semantics).
    pub fn inner_html(&self, id: NodeId) -> String {
        let mut out = String::new();
        for c in self.children(id) {
            self.write_node(c, &mut out);
        }
        out
    }

    /// Serialize the whole document.
    pub fn to_html(&self) -> String {
        self.outer_html(self.root())
    }

    fn write_node(&self, id: NodeId, out: &mut String) {
        match &self.node(id).kind {
            NodeKind::Document | NodeKind::ShadowRoot(_) => {
                for c in self.children(id) {
                    self.write_node(c, out);
                }
            }
            NodeKind::Text(t) => out.push_str(&encode_entities(t)),
            NodeKind::Comment(t) => {
                out.push_str("<!--");
                out.push_str(t);
                out.push_str("-->");
            }
            NodeKind::Element(e) => {
                out.push('<');
                out.push_str(&e.tag);
                for (k, v) in &e.attrs {
                    out.push(' ');
                    out.push_str(k);
                    out.push_str("=\"");
                    out.push_str(&encode_entities(v));
                    out.push('"');
                }
                out.push('>');
                if is_void_element(&e.tag) {
                    return;
                }
                let raw = matches!(e.tag.as_str(), "script" | "style");
                // Declarative shadow root first, so the parser re-attaches it
                // to this element.
                if let Some(sref) = e.shadow_root {
                    out.push_str("<template shadowrootmode=\"");
                    out.push_str(sref.mode.as_str());
                    out.push_str("\">");
                    for c in self.children(sref.root) {
                        self.write_node(c, out);
                    }
                    out.push_str("</template>");
                }
                for c in self.children(id) {
                    if raw {
                        // Raw text elements: emit text verbatim (no entity
                        // encoding — entities are inactive there).
                        if let NodeKind::Text(t) = &self.node(c).kind {
                            out.push_str(t);
                            continue;
                        }
                    }
                    self.write_node(c, out);
                }
                out.push_str("</");
                out.push_str(&e.tag);
                out.push('>');
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::parser::parse;
    use crate::tree::{Document, ShadowMode};

    #[test]
    fn roundtrip_simple() {
        let html = r#"<html><body><div id="a" class="x y">text &amp; more</div></body></html>"#;
        let d = parse(html);
        let out = d.to_html();
        assert_eq!(out, html);
    }

    #[test]
    fn void_elements_not_closed() {
        let d = parse("<div><br><img src=\"x\"></div>");
        let out = d.to_html();
        assert!(out.contains("<br>"));
        assert!(!out.contains("</br>"));
        assert!(!out.contains("</img>"));
    }

    #[test]
    fn shadow_root_serializes_declaratively() {
        let mut d = Document::new();
        let html = d.create_element("html");
        let body = d.create_element("body");
        let host = d.create_element("div");
        d.set_attr(host, "id", "h");
        let root = d.root();
        d.append_child(root, html);
        d.append_child(html, body);
        d.append_child(body, host);
        let sr = d.attach_shadow(host, ShadowMode::Closed);
        let btn = d.create_element("button");
        d.append_child(sr, btn);
        let t = d.create_text("Jetzt abonnieren");
        d.append_child(btn, t);

        let out = d.to_html();
        assert!(out.contains(
            r#"<template shadowrootmode="closed"><button>Jetzt abonnieren</button></template>"#
        ));

        // Round-trip: re-parse and find the shadow button again.
        let d2 = parse(&out);
        let h = d2.get_element_by_id("h").unwrap();
        let sr2 = d2.shadow_root(h).expect("shadow root survives roundtrip");
        assert_eq!(sr2.mode, ShadowMode::Closed);
        let b = d2.children(sr2.root).next().unwrap();
        assert_eq!(d2.visible_text(b), "Jetzt abonnieren");
    }

    #[test]
    fn script_content_verbatim() {
        let d = parse("<script>if (a < b && c) {}</script>");
        let out = d.to_html();
        assert!(out.contains("if (a < b && c) {}"), "{out}");
    }

    #[test]
    fn attribute_values_escaped() {
        let mut d = Document::new();
        let e = d.create_element("div");
        let root = d.root();
        d.append_child(root, e);
        d.set_attr(e, "title", "a \"quoted\" & <angled>");
        let out = d.outer_html(e);
        assert_eq!(
            out,
            r#"<div title="a &quot;quoted&quot; &amp; &lt;angled&gt;"></div>"#
        );
        // Round-trip preserves the value.
        let d2 = parse(&out);
        let e2 = d2.get_elements_by_tag("div")[0];
        assert_eq!(d2.attr(e2, "title"), Some("a \"quoted\" & <angled>"));
    }

    #[test]
    fn inner_vs_outer() {
        let d = parse("<div id=a><span>x</span></div>");
        let a = d.get_element_by_id("a").unwrap();
        assert_eq!(d.inner_html(a), "<span>x</span>");
        assert_eq!(d.outer_html(a), r#"<div id="a"><span>x</span></div>"#);
    }
}
