//! Arena-based DOM tree.
//!
//! A [`Document`] owns every node in a flat arena; nodes reference each other
//! through [`NodeId`] indices. This mirrors how browser engines store DOM
//! trees and keeps the borrow checker out of tree-walking code.
//!
//! Shadow roots are stored as ordinary subtrees inside the same arena whose
//! root node has kind [`NodeKind::ShadowRoot`] and no parent in the light
//! tree; the host element points at the shadow root through
//! [`ElementData::shadow_root`]. Normal tree traversal and the selector
//! engine deliberately do *not* descend into shadow roots — exactly the
//! opacity the paper's shadow-DOM workaround (§3) has to pierce.

use std::collections::HashMap;
use std::fmt;

/// Index of a node inside a [`Document`] arena.
///
/// `NodeId`s are only meaningful together with the document that produced
/// them; using an id from one document on another is a logic error (and will
/// either panic or address an unrelated node).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Numeric index of this node in the arena, useful for debugging and for
    /// building side tables keyed by node.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Whether a shadow root is open (visible to page script) or closed.
///
/// The paper found cookiewalls behind both kinds, so the detection pipeline
/// must handle both; the distinction matters for the [`crate::Document`]
/// accessors that model what page JavaScript can see.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShadowMode {
    /// `attachShadow({mode: "open"})` — `element.shadowRoot` is non-null.
    Open,
    /// `attachShadow({mode: "closed"})` — hidden from page script, but
    /// automation tooling (Selenium's `shadow_root` property, and our
    /// simulator) can still reach it.
    Closed,
}

impl ShadowMode {
    /// Canonical string, as used in the declarative `shadowrootmode`
    /// attribute.
    pub fn as_str(self) -> &'static str {
        match self {
            ShadowMode::Open => "open",
            ShadowMode::Closed => "closed",
        }
    }

    /// Parse from a `shadowrootmode` attribute value.
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "open" => Some(ShadowMode::Open),
            "closed" => Some(ShadowMode::Closed),
            _ => None,
        }
    }
}

/// Payload of an element node.
#[derive(Debug, Clone)]
pub struct ElementData {
    /// Tag name, always lowercase (`div`, `iframe`, …).
    pub tag: String,
    /// Attributes in document order. Lookup helpers treat names
    /// case-insensitively and return the first match, like browsers do.
    pub attrs: Vec<(String, String)>,
    /// Shadow root attached to this element, if any.
    pub shadow_root: Option<ShadowRootRef>,
}

/// Host element's reference to its shadow root subtree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShadowRootRef {
    /// Root node of the shadow subtree (kind [`NodeKind::ShadowRoot`]).
    pub root: NodeId,
    /// Open or closed.
    pub mode: ShadowMode,
}

impl ElementData {
    /// First value of attribute `name` (ASCII case-insensitive), if present.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// `id` attribute, if present.
    pub fn id(&self) -> Option<&str> {
        self.attr("id")
    }

    /// Whitespace-separated class list from the `class` attribute.
    pub fn classes(&self) -> impl Iterator<Item = &str> {
        self.attr("class").unwrap_or("").split_ascii_whitespace()
    }

    /// True if the class list contains `class_name` (case-sensitive, like
    /// the DOM's `classList.contains`).
    pub fn has_class(&self, class_name: &str) -> bool {
        self.classes().any(|c| c == class_name)
    }
}

/// What a node is.
#[derive(Debug, Clone)]
pub enum NodeKind {
    /// The document root. Exactly one per arena, always id 0.
    Document,
    /// An element with tag, attributes, and possibly a shadow root.
    Element(ElementData),
    /// A text node (already entity-decoded).
    Text(String),
    /// A comment (`<!-- … -->`); ignored by text extraction.
    Comment(String),
    /// Root of a shadow subtree. Its children are the shadow DOM contents.
    ShadowRoot(ShadowMode),
}

/// One node slot in the arena: payload plus tree links.
#[derive(Debug, Clone)]
pub struct Node {
    /// Node payload.
    pub kind: NodeKind,
    /// Parent in the light tree (or shadow tree, for shadow contents).
    pub parent: Option<NodeId>,
    /// First child, if any.
    pub first_child: Option<NodeId>,
    /// Last child, if any.
    pub last_child: Option<NodeId>,
    /// Previous sibling, if any.
    pub prev_sibling: Option<NodeId>,
    /// Next sibling, if any.
    pub next_sibling: Option<NodeId>,
}

impl Node {
    fn new(kind: NodeKind) -> Self {
        Node {
            kind,
            parent: None,
            first_child: None,
            last_child: None,
            prev_sibling: None,
            next_sibling: None,
        }
    }

    /// Element payload, if this node is an element.
    pub fn as_element(&self) -> Option<&ElementData> {
        match &self.kind {
            NodeKind::Element(e) => Some(e),
            _ => None,
        }
    }

    /// Text payload, if this node is a text node.
    pub fn as_text(&self) -> Option<&str> {
        match &self.kind {
            NodeKind::Text(t) => Some(t.as_str()),
            _ => None,
        }
    }
}

/// Void elements (never have children, no closing tag).
pub(crate) const VOID_ELEMENTS: &[&str] = &[
    "area", "base", "br", "col", "embed", "hr", "img", "input", "link", "meta", "param", "source",
    "track", "wbr",
];

/// Returns true for tags that cannot have children.
pub fn is_void_element(tag: &str) -> bool {
    VOID_ELEMENTS.contains(&tag)
}

/// A DOM document: flat node arena plus the root id.
#[derive(Debug, Clone)]
pub struct Document {
    nodes: Vec<Node>,
    root: NodeId,
}

impl Default for Document {
    fn default() -> Self {
        Self::new()
    }
}

impl Document {
    /// Create an empty document containing only the document root node.
    pub fn new() -> Self {
        Document {
            nodes: vec![Node::new(NodeKind::Document)],
            root: NodeId(0),
        }
    }

    /// The document root node id.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Total number of nodes in the arena (including detached ones).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the document contains only the root node.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// Borrow a node.
    ///
    /// # Panics
    /// Panics if `id` does not belong to this document.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Mutably borrow a node.
    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.index()]
    }

    /// Element payload of `id`, if it is an element.
    pub fn element(&self, id: NodeId) -> Option<&ElementData> {
        self.node(id).as_element()
    }

    /// Tag name of `id`, if it is an element.
    pub fn tag(&self, id: NodeId) -> Option<&str> {
        self.element(id).map(|e| e.tag.as_str())
    }

    /// Attribute `name` on element `id`.
    pub fn attr(&self, id: NodeId, name: &str) -> Option<&str> {
        self.element(id).and_then(|e| e.attr(name))
    }

    // ---------------------------------------------------------------- build

    fn push(&mut self, node: Node) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(node);
        id
    }

    /// Create a detached element node.
    pub fn create_element(&mut self, tag: &str) -> NodeId {
        self.push(Node::new(NodeKind::Element(ElementData {
            tag: tag.to_ascii_lowercase(),
            attrs: Vec::new(),
            shadow_root: None,
        })))
    }

    /// Create a detached text node.
    // lint:allow(r9) — the DOM/AST owns its text, attributes, and error strings; ROADMAP item 1
    pub fn create_text(&mut self, text: &str) -> NodeId {
        self.push(Node::new(NodeKind::Text(text.to_string())))
    }

    /// Create a detached comment node.
    // lint:allow(r9) — the DOM/AST owns its text, attributes, and error strings; ROADMAP item 1
    pub fn create_comment(&mut self, text: &str) -> NodeId {
        self.push(Node::new(NodeKind::Comment(text.to_string())))
    }

    /// Set (or replace) attribute `name` on element `id`.
    ///
    /// # Panics
    /// Panics if `id` is not an element.
    // lint:allow(r9) — the DOM/AST owns its text, attributes, and error strings; ROADMAP item 1
    pub fn set_attr(&mut self, id: NodeId, name: &str, value: &str) {
        let name_lc = name.to_ascii_lowercase();
        match &mut self.node_mut(id).kind {
            NodeKind::Element(e) => {
                if let Some(slot) = e.attrs.iter_mut().find(|(k, _)| *k == name_lc) {
                    slot.1 = value.to_string();
                } else {
                    e.attrs.push((name_lc, value.to_string()));
                }
            }
            other => panic!("set_attr on non-element node: {other:?}"),
        }
    }

    /// Append `child` as the last child of `parent`, detaching it from any
    /// previous parent first.
    pub fn append_child(&mut self, parent: NodeId, child: NodeId) {
        assert_ne!(parent, child, "cannot append a node to itself");
        self.detach(child);
        let old_last = self.node(parent).last_child;
        {
            let c = self.node_mut(child);
            c.parent = Some(parent);
            c.prev_sibling = old_last;
            c.next_sibling = None;
        }
        match old_last {
            Some(last) => self.node_mut(last).next_sibling = Some(child),
            None => self.node_mut(parent).first_child = Some(child),
        }
        self.node_mut(parent).last_child = Some(child);
    }

    /// Remove `id` from its parent's child list (no-op if already detached).
    /// The node and its subtree stay in the arena, just unlinked.
    pub fn detach(&mut self, id: NodeId) {
        let (parent, prev, next) = {
            let n = self.node(id);
            (n.parent, n.prev_sibling, n.next_sibling)
        };
        if let Some(p) = prev {
            self.node_mut(p).next_sibling = next;
        }
        if let Some(n) = next {
            self.node_mut(n).prev_sibling = prev;
        }
        if let Some(par) = parent {
            if self.node(par).first_child == Some(id) {
                self.node_mut(par).first_child = next;
            }
            if self.node(par).last_child == Some(id) {
                self.node_mut(par).last_child = prev;
            }
        }
        let n = self.node_mut(id);
        n.parent = None;
        n.prev_sibling = None;
        n.next_sibling = None;
    }

    /// Attach a shadow root to element `host` and return the shadow root's
    /// node id. Children appended under that id form the shadow DOM.
    ///
    /// # Panics
    /// Panics if `host` is not an element or already has a shadow root.
    pub fn attach_shadow(&mut self, host: NodeId, mode: ShadowMode) -> NodeId {
        let root = self.push(Node::new(NodeKind::ShadowRoot(mode)));
        match &mut self.node_mut(host).kind {
            NodeKind::Element(e) => {
                assert!(
                    e.shadow_root.is_none(),
                    "element {host} already has a shadow root"
                );
                e.shadow_root = Some(ShadowRootRef { root, mode });
            }
            other => panic!("attach_shadow on non-element node: {other:?}"),
        }
        root
    }

    /// Shadow root reference of element `id`, regardless of mode.
    ///
    /// This models the automation-level `shadow_root` property (works for
    /// open *and* closed roots), which is the handle the paper's workaround
    /// relies on.
    pub fn shadow_root(&self, id: NodeId) -> Option<ShadowRootRef> {
        self.element(id).and_then(|e| e.shadow_root)
    }

    /// Shadow root of element `id` only if it is open — what page JavaScript
    /// sees as `element.shadowRoot`.
    pub fn open_shadow_root(&self, id: NodeId) -> Option<NodeId> {
        match self.shadow_root(id) {
            Some(r) if r.mode == ShadowMode::Open => Some(r.root),
            _ => None,
        }
    }

    // ------------------------------------------------------------ traversal

    /// Iterate direct children of `id` in order.
    pub fn children(&self, id: NodeId) -> ChildIter<'_> {
        ChildIter {
            doc: self,
            next: self.node(id).first_child,
        }
    }

    /// Iterate the light-DOM subtree rooted at `id` in document (pre-)order,
    /// including `id` itself. Does **not** descend into shadow roots or
    /// iframes — callers that need those must pierce explicitly.
    pub fn descendants(&self, id: NodeId) -> DescendantIter<'_> {
        DescendantIter {
            doc: self,
            root: id,
            next: Some(id),
        }
    }

    /// Iterate element ids in the subtree at `id` (light DOM only).
    pub fn descendant_elements(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.descendants(id)
            .filter(move |&n| matches!(self.node(n).kind, NodeKind::Element(_)))
    }

    /// Iterate ancestors of `id`, starting from its parent.
    pub fn ancestors(&self, id: NodeId) -> AncestorIter<'_> {
        AncestorIter {
            doc: self,
            next: self.node(id).parent,
        }
    }

    /// All elements in the whole arena (light trees *and* shadow trees) that
    /// have a shadow root attached. This is the "look for possible elements
    /// within the main HTML DOM with the `shadow_root` property" step of the
    /// paper's workaround.
    pub fn shadow_hosts(&self) -> Vec<NodeId> {
        (0..self.nodes.len() as u32)
            .map(NodeId)
            .filter(|&id| self.shadow_root(id).is_some())
            .collect()
    }

    /// The `<body>` element, if the document has one.
    pub fn body(&self) -> Option<NodeId> {
        self.descendant_elements(self.root)
            .find(|&id| self.tag(id) == Some("body"))
    }

    /// The `<html>` element, if present.
    pub fn html(&self) -> Option<NodeId> {
        self.children(self.root)
            .find(|&id| self.tag(id) == Some("html"))
    }

    /// First element with the given `id` attribute, searching the light DOM
    /// from the document root (like `getElementById`).
    pub fn get_element_by_id(&self, html_id: &str) -> Option<NodeId> {
        self.descendant_elements(self.root)
            .find(|&n| self.attr(n, "id") == Some(html_id))
    }

    /// All elements with the given tag name in the light DOM.
    pub fn get_elements_by_tag(&self, tag: &str) -> Vec<NodeId> {
        let tag = tag.to_ascii_lowercase();
        self.descendant_elements(self.root)
            .filter(|&n| self.tag(n) == Some(tag.as_str()))
            .collect()
    }

    /// Depth of `id` below the document root (root itself is depth 0).
    pub fn depth(&self, id: NodeId) -> usize {
        self.ancestors(id).count()
    }

    /// True if `maybe_ancestor` is an ancestor of `id` (strictly above it).
    pub fn is_ancestor(&self, maybe_ancestor: NodeId, id: NodeId) -> bool {
        self.ancestors(id).any(|a| a == maybe_ancestor)
    }

    // -------------------------------------------------------------- cloning

    /// Deep-clone the subtree rooted at `src` and return the id of the
    /// detached clone root.
    ///
    /// Shadow roots attached to cloned elements are cloned too. The returned
    /// mapping from original to cloned ids lets callers locate, in the
    /// original tree, an element they found in the clone — the exact reverse
    /// lookup the paper's shadow-DOM workaround performs ("find the desired
    /// button in the cloned DOM and then run the interaction function on the
    /// corresponding element in the shadow DOM").
    pub fn clone_subtree_mapped(&mut self, src: NodeId) -> (NodeId, HashMap<NodeId, NodeId>) {
        let mut map = HashMap::new();
        let clone = self.clone_rec(src, &mut map);
        (clone, map)
    }

    /// Deep-clone the subtree at `src`, discarding the id mapping.
    pub fn clone_subtree(&mut self, src: NodeId) -> NodeId {
        self.clone_subtree_mapped(src).0
    }

    // lint:allow(r9) — the subtree clone is the pierce-shadow-roots workaround itself (§3); ROADMAP item 1
    fn clone_rec(&mut self, src: NodeId, map: &mut HashMap<NodeId, NodeId>) -> NodeId {
        let kind = self.node(src).kind.clone();
        let new_kind = match kind {
            NodeKind::Element(mut e) => {
                // Clone the shadow subtree (if any) and point the cloned
                // element at the cloned shadow root.
                if let Some(sref) = e.shadow_root {
                    let new_root = self.clone_rec(sref.root, map);
                    e.shadow_root = Some(ShadowRootRef {
                        root: new_root,
                        mode: sref.mode,
                    });
                }
                NodeKind::Element(e)
            }
            other => other,
        };
        let clone = self.push(Node::new(new_kind));
        map.insert(src, clone);
        let children: Vec<NodeId> = self.children(src).collect();
        for child in children {
            let child_clone = self.clone_rec(child, map);
            self.append_child(clone, child_clone);
        }
        clone
    }
}

/// Iterator over direct children. See [`Document::children`].
pub struct ChildIter<'a> {
    doc: &'a Document,
    next: Option<NodeId>,
}

impl Iterator for ChildIter<'_> {
    type Item = NodeId;
    fn next(&mut self) -> Option<NodeId> {
        let id = self.next?;
        self.next = self.doc.node(id).next_sibling;
        Some(id)
    }
}

/// Pre-order subtree iterator. See [`Document::descendants`].
pub struct DescendantIter<'a> {
    doc: &'a Document,
    root: NodeId,
    next: Option<NodeId>,
}

impl Iterator for DescendantIter<'_> {
    type Item = NodeId;
    fn next(&mut self) -> Option<NodeId> {
        let current = self.next?;
        // Compute the successor in pre-order, staying within `root`.
        let node = self.doc.node(current);
        self.next = if let Some(c) = node.first_child {
            Some(c)
        } else {
            let mut cursor = current;
            loop {
                if cursor == self.root {
                    break None;
                }
                let n = self.doc.node(cursor);
                if let Some(sib) = n.next_sibling {
                    break Some(sib);
                }
                match n.parent {
                    Some(p) => cursor = p,
                    None => break None,
                }
            }
        };
        Some(current)
    }
}

/// Iterator over ancestors. See [`Document::ancestors`].
pub struct AncestorIter<'a> {
    doc: &'a Document,
    next: Option<NodeId>,
}

impl Iterator for AncestorIter<'_> {
    type Item = NodeId;
    fn next(&mut self) -> Option<NodeId> {
        let id = self.next?;
        self.next = self.doc.node(id).parent;
        Some(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_doc() -> (Document, NodeId, NodeId, NodeId) {
        let mut d = Document::new();
        let html = d.create_element("html");
        let body = d.create_element("body");
        let div = d.create_element("div");
        d.append_child(d.root(), html);
        d.append_child(html, body);
        d.append_child(body, div);
        (d, html, body, div)
    }

    #[test]
    fn build_and_traverse() {
        let (d, html, body, div) = small_doc();
        assert_eq!(d.children(d.root()).collect::<Vec<_>>(), vec![html]);
        assert_eq!(d.children(html).collect::<Vec<_>>(), vec![body]);
        let desc: Vec<_> = d.descendants(d.root()).collect();
        assert_eq!(desc, vec![d.root(), html, body, div]);
        assert_eq!(d.body(), Some(body));
        assert_eq!(d.depth(div), 3);
        assert!(d.is_ancestor(html, div));
        assert!(!d.is_ancestor(div, html));
    }

    #[test]
    fn attrs_and_classes() {
        let mut d = Document::new();
        let e = d.create_element("DIV");
        assert_eq!(d.tag(e), Some("div"), "tags are lowercased");
        d.set_attr(e, "ID", "banner");
        d.set_attr(e, "class", "cmp overlay");
        assert_eq!(d.attr(e, "id"), Some("banner"));
        assert!(d.element(e).unwrap().has_class("overlay"));
        assert!(!d.element(e).unwrap().has_class("over"));
        d.set_attr(e, "id", "other");
        assert_eq!(d.attr(e, "id"), Some("other"), "set_attr replaces");
        assert_eq!(
            d.element(e).unwrap().attrs.len(),
            2,
            "no duplicate attribute entries"
        );
    }

    #[test]
    fn detach_relinks_siblings() {
        let mut d = Document::new();
        let p = d.create_element("p");
        let a = d.create_text("a");
        let b = d.create_text("b");
        let c = d.create_text("c");
        d.append_child(d.root(), p);
        d.append_child(p, a);
        d.append_child(p, b);
        d.append_child(p, c);
        d.detach(b);
        assert_eq!(d.children(p).collect::<Vec<_>>(), vec![a, c]);
        assert_eq!(d.node(a).next_sibling, Some(c));
        assert_eq!(d.node(c).prev_sibling, Some(a));
        // Re-append moves it to the end.
        d.append_child(p, b);
        assert_eq!(d.children(p).collect::<Vec<_>>(), vec![a, c, b]);
    }

    #[test]
    fn append_moves_between_parents() {
        let (mut d, _, body, div) = small_doc();
        let span = d.create_element("span");
        d.append_child(div, span);
        d.append_child(body, span); // move
        assert_eq!(d.node(span).parent, Some(body));
        assert_eq!(d.children(div).count(), 0);
        assert_eq!(d.children(body).collect::<Vec<_>>(), vec![div, span]);
    }

    #[test]
    fn shadow_roots_are_opaque_to_descendants() {
        let (mut d, _, body, div) = small_doc();
        let sr = d.attach_shadow(div, ShadowMode::Closed);
        let inner = d.create_element("button");
        d.append_child(sr, inner);
        // Light-DOM traversal must not see the button.
        assert!(d.descendants(body).all(|n| n != inner));
        // But the shadow_root handle reaches it.
        let sref = d.shadow_root(div).unwrap();
        assert_eq!(sref.mode, ShadowMode::Closed);
        assert_eq!(d.children(sref.root).collect::<Vec<_>>(), vec![inner]);
        // Closed root is invisible via the page-script accessor.
        assert_eq!(d.open_shadow_root(div), None);
        let div2 = d.create_element("div");
        d.append_child(body, div2);
        let sr2 = d.attach_shadow(div2, ShadowMode::Open);
        assert_eq!(d.open_shadow_root(div2), Some(sr2));
        // shadow_hosts finds both.
        let hosts = d.shadow_hosts();
        assert!(hosts.contains(&div) && hosts.contains(&div2));
    }

    #[test]
    #[should_panic(expected = "already has a shadow root")]
    fn double_attach_shadow_panics() {
        let mut d = Document::new();
        let e = d.create_element("div");
        d.attach_shadow(e, ShadowMode::Open);
        d.attach_shadow(e, ShadowMode::Open);
    }

    #[test]
    fn clone_subtree_maps_ids_and_clones_shadow() {
        let (mut d, _, body, div) = small_doc();
        d.set_attr(div, "id", "host");
        let sr = d.attach_shadow(div, ShadowMode::Open);
        let btn = d.create_element("button");
        d.append_child(sr, btn);
        let txt = d.create_text("Accept");
        d.append_child(btn, txt);

        let (clone, map) = d.clone_subtree_mapped(div);
        assert_ne!(clone, div);
        assert!(d.node(clone).parent.is_none(), "clone starts detached");
        assert_eq!(d.attr(clone, "id"), Some("host"));
        // Shadow subtree cloned, with distinct ids.
        let cloned_sr = d.shadow_root(clone).unwrap();
        assert_ne!(cloned_sr.root, sr);
        let cloned_btn = d.children(cloned_sr.root).next().unwrap();
        assert_ne!(cloned_btn, btn);
        assert_eq!(map.get(&btn), Some(&cloned_btn));
        // Original untouched.
        assert_eq!(d.node(div).parent, Some(body));

        // The reverse lookup the workaround needs: given the cloned button,
        // find the original.
        let original = map
            .iter()
            .find(|(_, &v)| v == cloned_btn)
            .map(|(&k, _)| k)
            .unwrap();
        assert_eq!(original, btn);
    }

    #[test]
    fn descendants_stays_within_subtree() {
        let (mut d, _, body, div) = small_doc();
        let sib = d.create_element("aside");
        d.append_child(body, sib);
        let inner = d.create_element("em");
        d.append_child(div, inner);
        let got: Vec<_> = d.descendants(div).collect();
        assert_eq!(got, vec![div, inner], "must not leak into siblings");
    }

    #[test]
    fn void_elements() {
        assert!(is_void_element("br"));
        assert!(is_void_element("img"));
        assert!(!is_void_element("div"));
    }
}
