//! HTML character reference (entity) decoding and encoding.
//!
//! Supports the named entities that actually occur in cookie-banner markup —
//! including the currency entities (`&euro;`, `&pound;`, …) the cookiewall
//! classifier must see decoded — plus decimal and hexadecimal numeric
//! references.

/// Named entities we decode. Kept small and auditable on purpose; unknown
/// entities pass through verbatim like browsers do for unterminated or
/// unrecognized references.
const NAMED: &[(&str, char)] = &[
    ("amp", '&'),
    ("lt", '<'),
    ("gt", '>'),
    ("quot", '"'),
    ("apos", '\''),
    ("nbsp", '\u{a0}'),
    ("euro", '€'),
    ("pound", '£'),
    ("yen", '¥'),
    ("cent", '¢'),
    ("dollar", '$'),
    ("curren", '¤'),
    ("copy", '©'),
    ("reg", '®'),
    ("trade", '™'),
    ("hellip", '…'),
    ("mdash", '—'),
    ("ndash", '–'),
    ("rsquo", '’'),
    ("lsquo", '‘'),
    ("rdquo", '”'),
    ("ldquo", '“'),
    ("auml", 'ä'),
    ("ouml", 'ö'),
    ("uuml", 'ü'),
    ("Auml", 'Ä'),
    ("Ouml", 'Ö'),
    ("Uuml", 'Ü'),
    ("szlig", 'ß'),
    ("eacute", 'é'),
    ("egrave", 'è'),
    ("agrave", 'à'),
    ("ccedil", 'ç'),
    ("aring", 'å'),
    ("Aring", 'Å'),
    ("aelig", 'æ'),
    ("oslash", 'ø'),
    ("ntilde", 'ñ'),
];

fn named_entity(name: &str) -> Option<char> {
    NAMED.iter().find(|(n, _)| *n == name).map(|&(_, c)| c)
}

/// Decode HTML character references in `input`.
///
/// Handles `&name;`, `&#1234;`, and `&#x1F4A9;` forms. Malformed references
/// (missing semicolon, unknown name, out-of-range codepoint) are left as-is.
pub fn decode_entities(input: &str) -> String {
    if !input.contains('&') {
        return input.to_string();
    }
    let mut out = String::with_capacity(input.len());
    let bytes = input.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] != b'&' {
            // Copy one full UTF-8 character.
            let ch_len = utf8_len(bytes[i]);
            out.push_str(&input[i..i + ch_len]);
            i += ch_len;
            continue;
        }
        // Find the terminating semicolon within a reasonable window.
        let window_end = (i + 32).min(bytes.len());
        let semi = bytes[i + 1..window_end].iter().position(|&b| b == b';');
        match semi {
            Some(rel) => {
                let name = &input[i + 1..i + 1 + rel];
                let decoded = decode_reference(name);
                match decoded {
                    Some(c) => {
                        out.push(c);
                        i += rel + 2; // skip '&' + name + ';'
                    }
                    None => {
                        out.push('&');
                        i += 1;
                    }
                }
            }
            None => {
                out.push('&');
                i += 1;
            }
        }
    }
    out
}

fn decode_reference(name: &str) -> Option<char> {
    if let Some(rest) = name.strip_prefix('#') {
        let cp = if let Some(hex) = rest.strip_prefix('x').or_else(|| rest.strip_prefix('X')) {
            u32::from_str_radix(hex, 16).ok()?
        } else {
            rest.parse::<u32>().ok()?
        };
        char::from_u32(cp)
    } else {
        named_entity(name)
    }
}

fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

/// Encode the five characters that must be escaped in HTML text and
/// attribute values.
pub fn encode_entities(input: &str) -> String {
    let mut out = String::with_capacity(input.len());
    for c in input.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&#39;"),
            other => out.push(other),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decodes_named() {
        assert_eq!(decode_entities("a &amp; b"), "a & b");
        assert_eq!(decode_entities("&euro;3.99"), "€3.99");
        assert_eq!(decode_entities("3,99&nbsp;&euro;"), "3,99\u{a0}€");
        assert_eq!(decode_entities("&pound;2 &yen;5"), "£2 ¥5");
        assert_eq!(decode_entities("f&uuml;r"), "für");
    }

    #[test]
    fn decodes_numeric() {
        assert_eq!(decode_entities("&#8364;"), "€");
        assert_eq!(decode_entities("&#x20AC;"), "€");
        assert_eq!(decode_entities("&#X20ac;"), "€");
        assert_eq!(decode_entities("&#65;&#66;"), "AB");
    }

    #[test]
    fn leaves_malformed_alone() {
        assert_eq!(decode_entities("a & b"), "a & b");
        assert_eq!(decode_entities("&unknown;"), "&unknown;");
        assert_eq!(decode_entities("&#xZZ;"), "&#xZZ;");
        assert_eq!(decode_entities("&#x110000;"), "&#x110000;"); // > char max
        assert_eq!(decode_entities("100% &"), "100% &");
        assert_eq!(decode_entities("&amp"), "&amp"); // no semicolon
    }

    #[test]
    fn encode_roundtrip() {
        let s = "<a href=\"x\">3,99 € & more</a>";
        assert_eq!(decode_entities(&encode_entities(s)), s);
    }

    #[test]
    fn multibyte_passthrough() {
        assert_eq!(decode_entities("prix: 3€ ça va"), "prix: 3€ ça va");
        assert_eq!(decode_entities("日本語 &amp; テスト"), "日本語 & テスト");
    }
}
