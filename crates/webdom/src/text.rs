//! Visible-text extraction.
//!
//! The cookiewall classifier (§3 of the paper) operates on the *text* of a
//! banner — the role BeautifulSoup's `get_text()` plays in the original
//! pipeline. [`Document::visible_text`] reproduces that: concatenate text
//! nodes in document order, skip `script`/`style`/`noscript`/`template`
//! content and comments, skip `display:none` subtrees, and normalize
//! whitespace.

use crate::tree::{Document, NodeId, NodeKind};

/// Tags whose text content is never user-visible.
const INVISIBLE_TAGS: &[&str] = &["script", "style", "noscript", "template", "head", "title"];

impl Document {
    /// User-visible text of the subtree at `id`, whitespace-normalized
    /// (runs of whitespace collapse to a single space, leading/trailing
    /// trimmed).
    ///
    /// Does **not** pierce shadow roots or iframes — callers that need the
    /// banner text behind those boundaries must pierce first (as the
    /// paper's workaround does) and extract from the inner scope.
    pub fn visible_text(&self, id: NodeId) -> String {
        let mut out = String::new();
        self.collect_text(id, &mut out);
        normalize_whitespace(&out)
    }

    /// Raw concatenated text content of the subtree (no visibility rules,
    /// no whitespace normalization) — `textContent` semantics.
    pub fn text_content(&self, id: NodeId) -> String {
        let mut out = String::new();
        for n in self.descendants(id) {
            if let NodeKind::Text(t) = &self.node(n).kind {
                out.push_str(t);
            }
        }
        out
    }

    fn collect_text(&self, id: NodeId, out: &mut String) {
        match &self.node(id).kind {
            NodeKind::Text(t) => out.push_str(t),
            NodeKind::Comment(_) => {}
            NodeKind::Element(e) => {
                if INVISIBLE_TAGS.contains(&e.tag.as_str())
                    || e.attr("hidden").is_some()
                    || self.style(id).is_hidden()
                {
                    // Invisible subtree still acts as a word boundary so
                    // surrounding text runs don't glue together.
                    out.push(' ');
                    return;
                }
                // Block-level boundaries become a space so "…</p><p>…" does
                // not glue words together.
                out.push(' ');
                let children: Vec<NodeId> = self.children(id).collect();
                for c in children {
                    self.collect_text(c, out);
                }
                out.push(' ');
            }
            NodeKind::Document | NodeKind::ShadowRoot(_) => {
                let children: Vec<NodeId> = self.children(id).collect();
                for c in children {
                    self.collect_text(c, out);
                }
            }
        }
    }
}

/// Collapse whitespace runs to single spaces and trim the ends.
pub fn normalize_whitespace(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut in_ws = true; // leading whitespace is dropped
    for c in s.chars() {
        if c.is_whitespace() {
            if !in_ws {
                out.push(' ');
                in_ws = true;
            }
        } else {
            out.push(c);
            in_ws = false;
        }
    }
    while out.ends_with(' ') {
        out.pop();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn extracts_and_normalizes() {
        let d = parse("<div> Wir nutzen \n\n Cookies. <p>Mit <b>PUR</b> lesen.</p></div>");
        let body = d.body().unwrap();
        assert_eq!(d.visible_text(body), "Wir nutzen Cookies. Mit PUR lesen.");
    }

    #[test]
    fn skips_script_style_comments() {
        let d = parse(
            "<div>before<script>var hidden = 'secret';</script><style>.x{}</style><!-- c -->after</div>",
        );
        let body = d.body().unwrap();
        assert_eq!(d.visible_text(body), "before after");
    }

    #[test]
    fn skips_display_none_and_hidden_attr() {
        let d = parse(
            r#"<div><span style="display:none">invisible</span><span hidden>also</span><span>shown</span></div>"#,
        );
        let body = d.body().unwrap();
        assert_eq!(d.visible_text(body), "shown");
    }

    #[test]
    fn does_not_pierce_shadow() {
        let d = parse(
            r#"<div id="h">light<template shadowrootmode="open"><p>shadow text</p></template></div>"#,
        );
        let body = d.body().unwrap();
        assert_eq!(d.visible_text(body), "light");
        // Extracting from the shadow root scope reaches it.
        let h = d.get_element_by_id("h").unwrap();
        let sr = d.shadow_root(h).unwrap();
        assert_eq!(d.visible_text(sr.root), "shadow text");
    }

    #[test]
    fn block_boundaries_insert_spaces() {
        let d = parse("<p>Nur 2,99 €</p><p>pro Monat</p>");
        let body = d.body().unwrap();
        assert_eq!(d.visible_text(body), "Nur 2,99 € pro Monat");
    }

    #[test]
    fn text_content_is_raw() {
        let d = parse("<div>a<script>s</script> b </div>");
        let body = d.body().unwrap();
        assert_eq!(d.text_content(body), "as b ");
    }

    #[test]
    fn normalize_edge_cases() {
        assert_eq!(normalize_whitespace(""), "");
        assert_eq!(normalize_whitespace("   "), "");
        assert_eq!(normalize_whitespace(" a\t\nb "), "a b");
        assert_eq!(normalize_whitespace("a\u{a0}b"), "a b", "nbsp collapses");
    }
}
