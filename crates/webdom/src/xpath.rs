//! XPath engine (subset).
//!
//! Selenium-era banner tooling predominantly locates elements by XPath, and
//! the paper calls out explicitly that XPath cannot see into shadow DOMs
//! (§3: "it is not possible to look up elements inside shadow DOMs using
//! XPath or CSS selectors"). This module implements the XPath 1.0 subset
//! those locators use:
//!
//! ```text
//! path      = ("/" step | "//" step)+
//! step      = ("*" | name) predicate*
//! predicate = "[" integer "]"                          position (1-based)
//!           | "[@attr]"                                attribute exists
//!           | "[@attr='v']"                            attribute equals
//!           | "[contains(@attr,'v')]"                  attribute substring
//!           | "[text()='v']"                           own text equals
//!           | "[contains(text(),'v')]"                 own text substring
//! ```
//!
//! Like the selector engine, evaluation never crosses shadow-root or
//! iframe boundaries — the opacity the §3 workaround exists to pierce.

use crate::tree::{Document, NodeId, NodeKind};
use std::fmt;

/// XPath parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XPathError {
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for XPathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid XPath: {}", self.message)
    }
}

impl std::error::Error for XPathError {}

fn err(message: impl Into<String>) -> XPathError {
    XPathError {
        message: message.into(),
    }
}

/// Relationship of a step to the previous context.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Axis {
    /// `/step` — direct children.
    Child,
    /// `//step` — all descendants.
    Descendant,
}

/// A node test within a step.
#[derive(Debug, Clone, PartialEq, Eq)]
enum NodeTest {
    Any,
    Tag(String),
}

/// A step predicate.
#[derive(Debug, Clone, PartialEq)]
enum Predicate {
    Position(usize),
    AttrExists(String),
    AttrEquals(String, String),
    AttrContains(String, String),
    TextEquals(String),
    TextContains(String),
}

#[derive(Debug, Clone)]
struct Step {
    axis: Axis,
    test: NodeTest,
    predicates: Vec<Predicate>,
}

/// A compiled XPath expression.
#[derive(Debug, Clone)]
pub struct XPath {
    steps: Vec<Step>,
}

impl XPath {
    /// Compile an XPath string.
    // lint:allow(r9) — the DOM/AST owns its text, attributes, and error strings; ROADMAP item 1
    pub fn parse(input: &str) -> Result<XPath, XPathError> {
        let input = input.trim();
        if input.is_empty() {
            return Err(err("empty expression"));
        }
        if !input.starts_with('/') {
            return Err(err(
                "only absolute paths (starting with / or //) are supported",
            ));
        }
        let mut steps = Vec::new();
        let bytes = input.as_bytes();
        let mut pos = 0;
        while pos < bytes.len() {
            let axis = if input[pos..].starts_with("//") {
                pos += 2;
                Axis::Descendant
            } else if input[pos..].starts_with('/') {
                pos += 1;
                Axis::Child
            } else {
                return Err(err(format!("expected '/' at byte {pos}")));
            };
            let (step, next) = parse_step(input, pos, axis)?;
            steps.push(step);
            pos = next;
        }
        if steps.is_empty() {
            return Err(err("no steps"));
        }
        Ok(XPath { steps })
    }

    /// Evaluate against `doc`, returning matches in document order.
    pub fn select(&self, doc: &Document, scope: NodeId) -> Vec<NodeId> {
        let mut context = vec![scope];
        for step in &self.steps {
            let mut next: Vec<NodeId> = Vec::new();
            for &ctx in &context {
                // Candidates per context node, in document order.
                let candidates: Vec<NodeId> = match step.axis {
                    Axis::Child => doc
                        .children(ctx)
                        .filter(|&n| step.matches_test(doc, n))
                        .collect(),
                    Axis::Descendant => doc
                        .descendants(ctx)
                        .skip(1)
                        .filter(|&n| step.matches_test(doc, n))
                        .collect(),
                };
                // Predicates (position is relative to this candidate list).
                'cand: for (i, &n) in candidates.iter().enumerate() {
                    for p in &step.predicates {
                        if !eval_predicate(doc, n, i + 1, p) {
                            continue 'cand;
                        }
                    }
                    next.push(n);
                }
            }
            next.dedup();
            context = next;
            if context.is_empty() {
                break;
            }
        }
        context
    }
}

impl Step {
    fn matches_test(&self, doc: &Document, node: NodeId) -> bool {
        match (&self.test, doc.element(node)) {
            (NodeTest::Any, Some(_)) => true,
            (NodeTest::Tag(t), Some(e)) => e.tag == *t,
            _ => false,
        }
    }
}

fn eval_predicate(doc: &Document, node: NodeId, position: usize, p: &Predicate) -> bool {
    match p {
        Predicate::Position(want) => position == *want,
        Predicate::AttrExists(name) => doc.attr(node, name).is_some(),
        Predicate::AttrEquals(name, v) => doc.attr(node, name) == Some(v.as_str()),
        Predicate::AttrContains(name, v) => {
            doc.attr(node, name).is_some_and(|a| a.contains(v.as_str()))
        }
        Predicate::TextEquals(v) => own_text(doc, node).trim() == v,
        Predicate::TextContains(v) => own_text(doc, node).contains(v.as_str()),
    }
}

/// Concatenated direct text children (XPath's `text()` on this element).
fn own_text(doc: &Document, node: NodeId) -> String {
    doc.children(node)
        .filter_map(|c| match &doc.node(c).kind {
            NodeKind::Text(t) => Some(t.as_str()),
            _ => None,
        })
        .collect()
}

// lint:allow(r9) — the DOM/AST owns its text, attributes, and error strings; ROADMAP item 1
fn parse_step(input: &str, mut pos: usize, axis: Axis) -> Result<(Step, usize), XPathError> {
    let bytes = input.as_bytes();
    // Node test.
    let test = if bytes.get(pos) == Some(&b'*') {
        pos += 1;
        NodeTest::Any
    } else {
        let start = pos;
        while pos < bytes.len()
            && (bytes[pos].is_ascii_alphanumeric() || bytes[pos] == b'-' || bytes[pos] == b'_')
        {
            pos += 1;
        }
        if pos == start {
            return Err(err(format!("expected node test at byte {start}")));
        }
        NodeTest::Tag(input[start..pos].to_ascii_lowercase())
    };
    // Predicates.
    let mut predicates = Vec::new();
    while bytes.get(pos) == Some(&b'[') {
        let close = input[pos..]
            .find(']')
            .map(|i| pos + i)
            .ok_or_else(|| err("unterminated predicate"))?;
        let body = input[pos + 1..close].trim();
        predicates.push(parse_predicate(body)?);
        pos = close + 1;
    }
    Ok((
        Step {
            axis,
            test,
            predicates,
        },
        pos,
    ))
}

// lint:allow(r9) — the DOM/AST owns its text, attributes, and error strings; ROADMAP item 1
fn parse_predicate(body: &str) -> Result<Predicate, XPathError> {
    if body.is_empty() {
        return Err(err("empty predicate"));
    }
    // [3]
    if body.chars().all(|c| c.is_ascii_digit()) {
        let n: usize = body.parse().map_err(|_| err("bad position"))?;
        if n == 0 {
            return Err(err("positions are 1-based"));
        }
        return Ok(Predicate::Position(n));
    }
    // [contains(X,'v')]
    if let Some(rest) = body.strip_prefix("contains(") {
        let rest = rest.strip_suffix(')').ok_or_else(|| err("expected ')'"))?;
        let (target, value) = rest.split_once(',').ok_or_else(|| err("expected ','"))?;
        let value = parse_quoted(value.trim())?;
        let target = target.trim();
        if target == "text()" {
            return Ok(Predicate::TextContains(value));
        }
        if let Some(attr) = target.strip_prefix('@') {
            return Ok(Predicate::AttrContains(attr.to_ascii_lowercase(), value));
        }
        return Err(err(format!("unsupported contains() target {target:?}")));
    }
    // [text()='v']
    if let Some(rest) = body.strip_prefix("text()") {
        let rest = rest.trim_start();
        let value = rest
            .strip_prefix('=')
            .ok_or_else(|| err("expected '=' after text()"))?;
        return Ok(Predicate::TextEquals(parse_quoted(value.trim())?));
    }
    // [@attr] or [@attr='v']
    if let Some(rest) = body.strip_prefix('@') {
        return match rest.split_once('=') {
            None => Ok(Predicate::AttrExists(rest.trim().to_ascii_lowercase())),
            Some((name, value)) => Ok(Predicate::AttrEquals(
                name.trim().to_ascii_lowercase(),
                parse_quoted(value.trim())?,
            )),
        };
    }
    Err(err(format!("unsupported predicate {body:?}")))
}

// lint:allow(r9) — the DOM/AST owns its text, attributes, and error strings; ROADMAP item 1
fn parse_quoted(s: &str) -> Result<String, XPathError> {
    let inner = s
        .strip_prefix('\'')
        .and_then(|r| r.strip_suffix('\''))
        .or_else(|| s.strip_prefix('"').and_then(|r| r.strip_suffix('"')))
        .ok_or_else(|| err(format!("expected quoted string, got {s:?}")))?;
    Ok(inner.to_string())
}

impl Document {
    /// Evaluate an XPath expression from the document root.
    ///
    /// # Errors
    /// Returns [`XPathError`] if the expression is malformed.
    pub fn xpath(&self, expression: &str) -> Result<Vec<NodeId>, XPathError> {
        Ok(XPath::parse(expression)?.select(self, self.root()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn doc() -> Document {
        parse(
            r#"<html><body>
                 <div id="cmp" class="overlay consent">
                   <p>We use cookies.</p>
                   <button data-role="accept">Accept all</button>
                   <button data-role="reject">Reject</button>
                 </div>
                 <main>
                   <article><p>first</p></article>
                   <article><p>second</p></article>
                 </main>
               </body></html>"#,
        )
    }

    #[test]
    fn descendant_and_child_axes() {
        let d = doc();
        assert_eq!(d.xpath("//button").unwrap().len(), 2);
        assert_eq!(d.xpath("//div/button").unwrap().len(), 2);
        assert_eq!(d.xpath("/html/body/div").unwrap().len(), 1);
        assert_eq!(d.xpath("/html/div").unwrap().len(), 0, "child axis strict");
        assert_eq!(d.xpath("//main//p").unwrap().len(), 2);
        assert_eq!(
            d.xpath("//*").unwrap().len(),
            d.descendant_elements(d.root()).count()
        );
    }

    #[test]
    fn attribute_predicates() {
        let d = doc();
        assert_eq!(d.xpath("//div[@id='cmp']").unwrap().len(), 1);
        assert_eq!(d.xpath("//button[@data-role]").unwrap().len(), 2);
        assert_eq!(d.xpath("//button[@data-role='accept']").unwrap().len(), 1);
        assert_eq!(
            d.xpath("//div[contains(@class,'consent')]").unwrap().len(),
            1
        );
        assert_eq!(d.xpath("//div[contains(@class,'nope')]").unwrap().len(), 0);
    }

    #[test]
    fn text_predicates() {
        let d = doc();
        let accept = d.xpath("//button[text()='Accept all']").unwrap();
        assert_eq!(accept.len(), 1);
        assert_eq!(d.attr(accept[0], "data-role"), Some("accept"));
        assert_eq!(
            d.xpath("//button[contains(text(),'eject')]").unwrap().len(),
            1
        );
        assert_eq!(d.xpath("//p[contains(text(),'cookies')]").unwrap().len(), 1);
    }

    #[test]
    fn positional_predicates() {
        let d = doc();
        let second = d.xpath("//main/article[2]/p").unwrap();
        assert_eq!(second.len(), 1);
        assert_eq!(d.visible_text(second[0]), "second");
        assert_eq!(d.xpath("//article[3]").unwrap().len(), 0);
        // Position combined with other predicates.
        assert_eq!(d.xpath("//button[@data-role][1]").unwrap().len(), 1);
    }

    #[test]
    fn does_not_pierce_shadow_roots() {
        let d = parse(
            r#"<div id="host"><template shadowrootmode="open">
                 <button>Hidden accept</button>
               </template></div>"#,
        );
        // The paper's §3 observation, verbatim: XPath cannot find it.
        assert_eq!(d.xpath("//button").unwrap().len(), 0);
        // The shadow root handle still can (via the workaround path).
        let host = d.get_element_by_id("host").unwrap();
        let sr = d.shadow_root(host).unwrap();
        let compiled = XPath::parse("//button").unwrap();
        // Evaluating *inside* the shadow scope finds it — but only child
        // axis from the shadow root works for direct children:
        let hits = compiled.select(&d, sr.root);
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn parse_errors() {
        assert!(XPath::parse("").is_err());
        assert!(
            XPath::parse("button").is_err(),
            "relative paths unsupported"
        );
        assert!(XPath::parse("//").is_err());
        assert!(XPath::parse("//div[").is_err());
        assert!(XPath::parse("//div[0]").is_err(), "1-based positions");
        assert!(XPath::parse("//div[@a='unterminated]").is_err());
        assert!(XPath::parse("//div[starts-with(@a,'x')]").is_err());
        let e = XPath::parse("//div[?]").unwrap_err();
        assert!(e.to_string().contains("invalid XPath"));
    }

    #[test]
    fn double_quotes_accepted() {
        let d = doc();
        assert_eq!(d.xpath(r#"//div[@id="cmp"]"#).unwrap().len(), 1);
    }
}
