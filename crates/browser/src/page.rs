//! Loaded pages: frame trees plus load metadata.
//!
//! A [`Page`] is what one navigation produced: the main document, every
//! successfully loaded iframe as an additional [`Frame`], which requests the
//! content blocker cancelled, and the two §4.5 post-load observations
//! (scroll lock, adblock interstitial).

use httpsim::Url;
use webdom::{Document, NodeId};

/// One document in the frame tree.
#[derive(Debug)]
pub struct Frame {
    /// The parsed document.
    pub doc: Document,
    /// URL the document was loaded from.
    pub url: Url,
    /// For subframes: (parent frame index, `<iframe>` element in the parent
    /// document). `None` for the main frame.
    pub parent: Option<(usize, NodeId)>,
}

/// One network request the page load issued (HAR-style log entry).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoggedRequest {
    /// Final URL fetched (after redirects).
    pub url: String,
    /// Response status (0 = connection failure).
    pub status: u16,
    /// Host of the page that initiated the fetch; `None` for the top-level
    /// navigation.
    pub initiator: Option<String>,
    /// `Set-Cookie` headers the response carried.
    pub cookies_set: usize,
}

/// A request the content blocker cancelled during the load.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockedRequest {
    /// The URL that was about to be fetched.
    pub url: String,
    /// The filter rule that fired.
    pub rule: String,
}

/// An element address that is stable across the frame tree: frame index
/// plus node id within that frame's document.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ElementRef {
    /// Index into [`Page::frames`].
    pub frame: usize,
    /// Node within that frame's document.
    pub node: NodeId,
}

/// The result of a completed navigation.
#[derive(Debug)]
pub struct Page {
    /// The URL the navigation was asked for.
    pub url: Url,
    /// The URL the final response came from (after redirects).
    pub final_url: Url,
    /// HTTP status of the final response.
    pub status: u16,
    /// Frame tree; index 0 is the main frame.
    pub frames: Vec<Frame>,
    /// Requests the content blocker cancelled.
    pub blocked: Vec<BlockedRequest>,
    /// Every request the load issued, in order (HAR-style).
    pub requests: Vec<LoggedRequest>,
    /// Main-frame `<body>` is pinned (`overflow:hidden`) — the promipool
    /// symptom when a wall is blocked but its scroll lock is not.
    pub scroll_locked: bool,
    /// The site detected the content blocker and injected a
    /// please-disable-your-adblocker interstitial (hausbau-forum symptom).
    pub adblock_interstitial: bool,
    /// The load was transparently repeated after a successful SMP
    /// entitlement check (subscriber flow, §4.4).
    pub reloaded_for_subscription: bool,
}

impl Page {
    /// The main frame.
    pub fn main(&self) -> &Frame {
        &self.frames[0]
    }

    /// Host of the top-level page.
    pub fn host(&self) -> &str {
        self.final_url.host()
    }

    /// Visible text of the main frame (not including subframes or shadow
    /// roots — what a naive scraper would see).
    pub fn main_text(&self) -> String {
        let doc = &self.main().doc;
        doc.visible_text(doc.root())
    }

    /// Run a CSS selector over every frame, returning matches across the
    /// whole frame tree (light DOM only; shadow content is *not* searched —
    /// that is the detector's job via the piercing workaround).
    pub fn select_all_frames(&self, selector: &str) -> Vec<ElementRef> {
        let mut out = Vec::new();
        for (i, frame) in self.frames.iter().enumerate() {
            if let Ok(hits) = frame.doc.select(frame.doc.root(), selector) {
                out.extend(hits.into_iter().map(|node| ElementRef { frame: i, node }));
            }
        }
        out
    }

    /// True if any load in any frame was blocked.
    pub fn anything_blocked(&self) -> bool {
        !self.blocked.is_empty()
    }

    /// Requests that went to a different site than the top-level page —
    /// the third-party traffic of this load.
    pub fn third_party_requests(&self) -> impl Iterator<Item = &LoggedRequest> {
        let host = self.host().to_string();
        self.requests.iter().filter(move |r| {
            httpsim::Url::parse(&r.url)
                .map(|u| !httpsim::same_site(u.host(), &host))
                .unwrap_or(false)
        })
    }
}
