//! Per-origin `localStorage`.
//!
//! Consent state on real cookiewall sites lives in *two* places: the
//! consent cookie and a localStorage entry the wall script writes. That
//! redundancy is why §5 of the paper finds revocation non-trivial: "they
//! must delete their cookies **and local storage** (specific to the
//! website)" — deleting only the cookies lets the wall script restore the
//! consent cookie from localStorage on the next visit.

use std::collections::HashMap;

/// Browser-profile storage: origin (registrable domain) → key → value.
#[derive(Debug, Clone, Default)]
pub struct LocalStorage {
    origins: HashMap<String, HashMap<String, String>>,
}

impl LocalStorage {
    /// Empty storage.
    pub fn new() -> Self {
        Self::default()
    }

    /// `localStorage.setItem` for `origin`.
    // lint:allow(r9) — owned page/request state built during the visit; the per-visit arena (ROADMAP item 1) is the planned fix
    pub fn set(&mut self, origin: &str, key: &str, value: &str) {
        self.origins
            .entry(origin.to_ascii_lowercase())
            .or_default()
            .insert(key.to_string(), value.to_string());
    }

    /// `localStorage.getItem` for `origin`.
    pub fn get(&self, origin: &str, key: &str) -> Option<&str> {
        self.origins
            .get(&origin.to_ascii_lowercase())
            .and_then(|m| m.get(key))
            .map(String::as_str)
    }

    /// `localStorage.removeItem`.
    pub fn remove(&mut self, origin: &str, key: &str) {
        if let Some(m) = self.origins.get_mut(&origin.to_ascii_lowercase()) {
            m.remove(key);
        }
    }

    /// Clear one origin's storage (the site-specific half of the §5
    /// revocation procedure).
    pub fn clear_origin(&mut self, origin: &str) {
        self.origins.remove(&origin.to_ascii_lowercase());
    }

    /// Clear everything.
    pub fn clear(&mut self) {
        self.origins.clear();
    }

    /// Number of keys stored for `origin`.
    pub fn len_for(&self, origin: &str) -> usize {
        self.origins
            .get(&origin.to_ascii_lowercase())
            .map(|m| m.len())
            .unwrap_or(0)
    }

    /// Total number of origins with any storage.
    pub fn origin_count(&self) -> usize {
        self.origins.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_remove() {
        let mut s = LocalStorage::new();
        assert_eq!(s.get("site.de", "k"), None);
        s.set("site.de", "k", "v");
        assert_eq!(s.get("site.de", "k"), Some("v"));
        assert_eq!(s.get("SITE.DE", "k"), Some("v"), "origin case-insensitive");
        assert_eq!(s.get("other.de", "k"), None, "origin isolation");
        s.set("site.de", "k", "v2");
        assert_eq!(s.get("site.de", "k"), Some("v2"));
        s.remove("site.de", "k");
        assert_eq!(s.get("site.de", "k"), None);
    }

    #[test]
    fn clear_origin_scoped() {
        let mut s = LocalStorage::new();
        s.set("a.de", "x", "1");
        s.set("a.de", "y", "2");
        s.set("b.de", "x", "3");
        assert_eq!(s.len_for("a.de"), 2);
        s.clear_origin("a.de");
        assert_eq!(s.len_for("a.de"), 0);
        assert_eq!(s.get("b.de", "x"), Some("3"));
        assert_eq!(s.origin_count(), 1);
        s.clear();
        assert_eq!(s.origin_count(), 0);
    }
}
