//! The browser engine: navigation, subresource loading, script-effect
//! emulation, clicks, and SMP sessions.
//!
//! ## The script-effect convention
//!
//! Real pages wire consent behaviour in JavaScript; this simulator executes
//! the same effects from declarative attributes (the synthetic sites emit
//! them, standing in for their JS bundles):
//!
//! * `<script src=… data-cw-inject="ID">` — the response body is an HTML
//!   fragment; it is parsed into the element with id `ID` (CMP/SMP script
//!   injection). A fragment may itself contain a declarative shadow root.
//! * `<script src=… data-smp-check data-smp-set="NAME=VALUE">` — an SMP
//!   entitlement probe. If the response body is `entitled`, the browser
//!   sets the first-party cookie `NAME=VALUE` on the top-level site and
//!   reloads once — the §4.4 subscriber flow.
//! * `data-cw-action="accept|reject"` with `data-cw-cookie="NAME=VALUE"`
//!   on a clickable element — clicking stores the consent cookie for the
//!   top-level site and reloads.
//! * `data-cw-action="subscribe"` — clicking navigates to the element's
//!   `href`.
//! * `<div data-detect-adblock data-message="…">` — if any request was
//!   blocked during the load, the site's detector fires and the browser
//!   injects a blocking interstitial.

use crate::page::{BlockedRequest, ElementRef, Frame, Page};
use crate::storage::LocalStorage;
use blocklist::{BlockDecision, FilterEngine};
use httpsim::{CookieJar, Method, Network, Region, Request, Response, TransportFault, Url};
use webdom::{parse, parse_fragment_into, NodeId};

/// Maximum iframe nesting depth processed.
const MAX_FRAME_DEPTH: usize = 3;
/// Maximum script-injection rounds per frame (injection can add scripts).
const MAX_INJECT_ROUNDS: usize = 3;

/// Virtual-time budget a navigation may spend before the browser gives up
/// and reports a timeout — the OpenWPM page-load timeout stand-in.
pub const DEFAULT_TIMEOUT_BUDGET_MS: u64 = 30_000;

/// Typed navigation failure: what exactly went wrong fetching the top
/// document. The crawl's retry policy branches on
/// [`FetchError::is_transient`], and the failure taxonomy in the study
/// report is derived from these variants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FetchError {
    /// No server answered for the host (dead origin / lapsed domain).
    Unreachable(String),
    /// The connection was reset before a response arrived.
    ConnectionReset(String),
    /// The transfer stalled past the browser's virtual-time budget.
    Timeout {
        /// Host the navigation targeted.
        host: String,
        /// The budget that was exceeded, in virtual milliseconds.
        budget_ms: u64,
    },
    /// The response body stopped mid-transfer.
    Truncated(String),
    /// The server answered with a non-success status for the top document.
    HttpError(u16),
}

/// Pre-fault-layer name of [`FetchError`], kept for existing callers.
pub type VisitError = FetchError;

impl FetchError {
    /// Is retrying plausibly useful? Connection-level failures, timeouts,
    /// truncation, and 5xx answers are worth another attempt (the crawler
    /// cannot distinguish a dead origin from a transient outage up front);
    /// a definitive 4xx is not.
    pub fn is_transient(&self) -> bool {
        match self {
            FetchError::HttpError(status) => *status >= 500,
            _ => true,
        }
    }
}

impl std::fmt::Display for FetchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FetchError::Unreachable(host) => write!(f, "host unreachable: {host}"),
            FetchError::ConnectionReset(host) => write!(f, "connection reset: {host}"),
            FetchError::Timeout { host, budget_ms } => {
                write!(f, "timeout after {budget_ms} ms (virtual): {host}")
            }
            FetchError::Truncated(host) => write!(f, "response truncated: {host}"),
            FetchError::HttpError(status) => write!(f, "HTTP error {status}"),
        }
    }
}

impl std::error::Error for FetchError {}

/// A fetched top-level document: the result of phase one of a visit,
/// before any subresource loading, script execution, or parsing happened.
///
/// Splitting the navigation fetch from the load lets a crawl scheduler
/// decide — after seeing the document bytes — whether the expensive load
/// phase is needed at all (shared-fetch caching across vantage points),
/// while the origin server still observes the navigation request exactly
/// as it would during a full visit.
#[derive(Debug, Clone)]
pub struct FetchedDocument {
    url: Url,
    final_url: Url,
    status: u16,
    body: String,
}

impl FetchedDocument {
    /// The URL the navigation started from.
    pub fn url(&self) -> &Url {
        &self.url
    }

    /// The URL the document was served from (after redirects).
    pub fn final_url(&self) -> &Url {
        &self.final_url
    }

    /// The response status.
    pub fn status(&self) -> u16 {
        self.status
    }

    /// The raw document text.
    pub fn body(&self) -> &str {
        &self.body
    }
}

/// What a click did.
#[derive(Debug)]
pub enum ClickOutcome {
    /// Consent accepted; the page reloaded.
    Accepted(Page),
    /// Consent rejected; the page reloaded.
    Rejected(Page),
    /// Navigated to the subscription checkout.
    SubscribeNavigation(Page),
    /// The element had no consent action wired to it.
    NotInteractive,
}

/// A headless browser profile: cookie jar, region, optional content
/// blocker — the OpenWPM/Selenium stand-in.
pub struct Browser {
    net: Network,
    region: Region,
    jar: CookieJar,
    storage: LocalStorage,
    blocker: Option<FilterEngine>,
    user_agent: String,
    /// Virtual-time budget per navigation before reporting a timeout.
    timeout_budget_ms: u64,
    /// Per-load request log, moved into the [`Page`] when the load ends.
    request_log: Vec<crate::page::LoggedRequest>,
}

impl Browser {
    /// A fresh profile at `region` on `net`.
    // lint:allow(r9) — per-profile construction, once per visit attempt, not per request; ROADMAP item 1
    pub fn new(net: Network, region: Region) -> Self {
        Browser {
            net,
            region,
            jar: CookieJar::new(),
            storage: LocalStorage::new(),
            blocker: None,
            user_agent: httpsim::DEFAULT_USER_AGENT.to_string(),
            timeout_budget_ms: DEFAULT_TIMEOUT_BUDGET_MS,
            request_log: Vec::new(),
        }
    }

    /// Enable a content-blocker extension (uBlock Origin stand-in).
    pub fn with_blocker(mut self, engine: FilterEngine) -> Self {
        self.blocker = Some(engine);
        self
    }

    /// Override the user agent (e.g. to study bot detection).
    pub fn with_user_agent(mut self, ua: impl Into<String>) -> Self {
        self.user_agent = ua.into();
        self
    }

    /// Override the navigation timeout budget (virtual milliseconds).
    pub fn with_timeout_budget(mut self, budget_ms: u64) -> Self {
        self.timeout_budget_ms = budget_ms;
        self
    }

    /// The navigation timeout budget, in virtual milliseconds.
    pub fn timeout_budget_ms(&self) -> u64 {
        self.timeout_budget_ms
    }

    /// The vantage-point region this profile browses from.
    pub fn region(&self) -> Region {
        self.region
    }

    /// The profile's cookie jar.
    pub fn jar(&self) -> &CookieJar {
        &self.jar
    }

    /// Mutable jar access (tests, manual state setup).
    pub fn jar_mut(&mut self) -> &mut CookieJar {
        &mut self.jar
    }

    /// The profile's per-origin localStorage.
    pub fn storage(&self) -> &LocalStorage {
        &self.storage
    }

    /// Mutable localStorage access.
    pub fn storage_mut(&mut self) -> &mut LocalStorage {
        &mut self.storage
    }

    /// Forget all cookies (fresh-profile semantics between measurements).
    /// localStorage is kept — clearing cookies alone does *not* revoke a
    /// cookiewall acceptance (§5); use [`Browser::clear_all_data`] for a
    /// truly fresh profile.
    pub fn clear_cookies(&mut self) {
        self.jar.clear();
    }

    /// Forget all cookies *and* localStorage.
    pub fn clear_all_data(&mut self) {
        self.jar.clear();
        self.storage.clear();
    }

    /// Simulate a browser restart: session cookies vanish, persistent
    /// cookies and localStorage survive. A cookiewall acceptance therefore
    /// outlives restarts — part of why §5 finds revocation non-obvious.
    pub fn restart(&mut self) {
        self.jar.expire_session_cookies();
    }

    /// Delete only the *cookies* of one site. Per §5 this is **not**
    /// sufficient to revoke a cookiewall acceptance: the wall script
    /// restores the consent cookie from localStorage on the next visit.
    pub fn clear_site_cookies(&mut self, site_host: &str) {
        self.jar.clear_site(site_host);
    }

    /// Delete one site's cookies *and* localStorage — the full §5
    /// revocation procedure. After this, the wall shows again (or the
    /// subscriber entitlement can finally take effect).
    pub fn clear_site_data(&mut self, site_host: &str) {
        let site = httpsim::registrable_domain(site_host)
            .unwrap_or(site_host)
            .to_string();
        self.jar.clear_site(&site);
        self.storage.clear_origin(&site);
    }

    // -------------------------------------------------------- navigation

    /// Navigate to `url` and fully load the page (subresources, script
    /// effects, iframes, entitlement checks).
    pub fn visit(&mut self, url: &Url) -> Result<Page, VisitError> {
        self.visit_inner(url, true)
    }

    /// Convenience: navigate to `https://{domain}/`.
    // lint:allow(r9) — the to_string runs only on the unparsable-domain error path; ROADMAP item 1
    pub fn visit_domain(&mut self, domain: &str) -> Result<Page, VisitError> {
        let url = Url::parse(domain).map_err(|_| VisitError::Unreachable(domain.to_string()))?;
        self.visit(&url)
    }

    /// Phase one of a visit: consent-state restore plus the top-level
    /// document fetch, with nothing parsed or loaded yet. The origin sees
    /// this request exactly as it would under [`Browser::visit`].
    ///
    /// Callers that decide the document is worth loading continue with
    /// [`Browser::load_fetched`]; callers that already know the outcome for
    /// these bytes (a shared-fetch cache) simply stop here.
    // lint:allow(r9) — the host String is now built only on error paths (lazy closure); the Url clone is the owned return — ROADMAP item 1
    pub fn fetch_document(&mut self, url: &Url) -> Result<FetchedDocument, VisitError> {
        self.restore_consent_from_storage(url);
        self.request_log.clear();
        let (resp, final_url, latency_ms) = self.fetch_following(url, None);
        // The host string is only needed to describe a failure; building
        // it lazily keeps the per-visit success path allocation-free.
        let host = || url.host().to_string();
        match resp.transport {
            Some(TransportFault::ConnectionReset) => {
                return Err(FetchError::ConnectionReset(host()));
            }
            Some(TransportFault::TruncatedBody) => return Err(FetchError::Truncated(host())),
            None => {}
        }
        if latency_ms > self.timeout_budget_ms {
            return Err(FetchError::Timeout {
                host: host(),
                budget_ms: self.timeout_budget_ms,
            });
        }
        if resp.status == 0 {
            return Err(FetchError::Unreachable(host()));
        }
        if resp.status >= 400 {
            return Err(FetchError::HttpError(resp.status));
        }
        Ok(FetchedDocument {
            url: url.clone(),
            final_url,
            status: resp.status,
            body: resp.body_text(),
        })
    }

    /// Convenience: phase-one fetch of `https://{domain}/`.
    pub fn fetch_domain_document(&mut self, domain: &str) -> Result<FetchedDocument, VisitError> {
        let url = Url::parse(domain).map_err(|_| VisitError::Unreachable(domain.to_string()))?;
        self.fetch_document(&url)
    }

    /// Phase two of a visit: parse a fetched document and complete the load
    /// (subresources, script effects, iframes, entitlement checks).
    ///
    /// `visit` is exactly `fetch_document` followed by `load_fetched`.
    pub fn load_fetched(&mut self, fetched: &FetchedDocument) -> Result<Page, VisitError> {
        self.load_fetched_inner(fetched, true)
    }

    fn visit_inner(
        &mut self,
        url: &Url,
        allow_entitlement_reload: bool,
    ) -> Result<Page, VisitError> {
        let fetched = self.fetch_document(url)?;
        self.load_fetched_inner(&fetched, allow_entitlement_reload)
    }

    // lint:allow(r9) — owned page/request state built during the visit; the per-visit arena (ROADMAP item 1) is the planned fix
    fn load_fetched_inner(
        &mut self,
        fetched: &FetchedDocument,
        allow_entitlement_reload: bool,
    ) -> Result<Page, VisitError> {
        let doc = parse(&fetched.body);
        let final_url = fetched.final_url.clone();
        let url = &fetched.url;
        let mut page = Page {
            url: url.clone(),
            final_url: final_url.clone(),
            status: fetched.status,
            frames: vec![Frame {
                doc,
                url: final_url,
                parent: None,
            }],
            blocked: Vec::new(),
            requests: Vec::new(),
            scroll_locked: false,
            adblock_interstitial: false,
            reloaded_for_subscription: false,
        };

        let mut entitled_cookie: Option<(String, String)> = None;
        self.process_frame(&mut page, 0, 0, &mut entitled_cookie);

        // Subscriber flow: a successful entitlement probe sets a
        // first-party cookie and reloads once.
        if let Some((name, value)) = entitled_cookie {
            if allow_entitlement_reload {
                let site = httpsim::registrable_domain(page.host())
                    .unwrap_or(page.host())
                    .to_string();
                self.set_site_cookie(&site, &name, &value);
                let mut reloaded = self.visit_inner(url, false)?;
                reloaded.reloaded_for_subscription = true;
                return Ok(reloaded);
            }
        }

        self.finish_page(&mut page);
        page.requests = std::mem::take(&mut self.request_log);
        Ok(page)
    }

    /// Fetch with manual redirect following so every hop's cookies land in
    /// the jar (Network::dispatch_following would drop them). The third
    /// return value is virtual transfer time accumulated across all hops,
    /// checked against the timeout budget by navigation callers.
    // lint:allow(r9) — owned page/request state built during the visit; the per-visit arena (ROADMAP item 1) is the planned fix
    fn fetch_following(&mut self, url: &Url, initiator: Option<&str>) -> (Response, Url, u64) {
        let mut current = url.clone();
        let mut elapsed_ms: u64 = 0;
        for _ in 0..httpsim::MAX_REDIRECTS {
            let resp = self.fetch_once(&current, initiator);
            elapsed_ms = elapsed_ms.saturating_add(resp.latency_ms);
            self.jar
                .store_response_cookies(resp.set_cookies.iter().map(String::as_str), &current);
            self.request_log.push(crate::page::LoggedRequest {
                url: current.to_string(),
                status: resp.status,
                initiator: initiator.map(str::to_string),
                cookies_set: resp.set_cookies.len(),
            });
            if !resp.is_redirect() {
                return (resp, current, elapsed_ms);
            }
            let loc = resp.location.clone().unwrap_or_else(|| "/".to_string());
            match current.join(&loc) {
                Ok(next) => current = next,
                Err(_) => return (resp, current, elapsed_ms),
            }
        }
        (Response::not_found(), current, elapsed_ms)
    }

    // lint:allow(r9) — owned page/request state built during the visit; the per-visit arena (ROADMAP item 1) is the planned fix
    fn fetch_once(&self, url: &Url, initiator: Option<&str>) -> Response {
        let mut req = match initiator {
            Some(host) => Request::subresource(url.clone(), self.region, host),
            None => Request::navigation(url.clone(), self.region),
        };
        req.user_agent = self.user_agent.clone();
        req.cookie_header = self.jar.cookie_header(url);
        self.net.dispatch(&req)
    }

    /// Consult the blocker for a subresource; record and skip if blocked.
    // lint:allow(r9) — owned page/request state built during the visit; the per-visit arena (ROADMAP item 1) is the planned fix
    fn blocked_by_extension(&self, page: &mut Page, url: &Url, initiator: &str) -> bool {
        if let Some(blocker) = &self.blocker {
            if let BlockDecision::Blocked(rule) = blocker.decide(url, Some(initiator)) {
                page.blocked.push(BlockedRequest {
                    url: url.to_string(),
                    rule,
                });
                return true;
            }
        }
        false
    }

    /// Load a frame's subresources: scripts (with injection and entitlement
    /// effects), then iframes (recursively).
    // lint:allow(r9) — owned page/request state built during the visit; the per-visit arena (ROADMAP item 1) is the planned fix
    fn process_frame(
        &mut self,
        page: &mut Page,
        frame_idx: usize,
        depth: usize,
        entitled_cookie: &mut Option<(String, String)>,
    ) {
        let top_host = page.host().to_string();
        let mut processed: std::collections::HashSet<NodeId> = std::collections::HashSet::new();

        for _round in 0..MAX_INJECT_ROUNDS {
            let scripts = collect_with_shadow(&page.frames[frame_idx].doc, "script[src]");
            let fresh: Vec<NodeId> = scripts
                .into_iter()
                .filter(|n| !processed.contains(n))
                .collect();
            if fresh.is_empty() {
                break;
            }
            for node in fresh {
                processed.insert(node);
                self.process_script(page, frame_idx, node, &top_host, entitled_cookie);
            }
        }

        // Other passive subresources (images, stylesheets) — fetched for
        // cookie side effects, no DOM impact.
        for node in collect_with_shadow(&page.frames[frame_idx].doc, "img[src], link[href]") {
            let frame_url = page.frames[frame_idx].url.clone();
            let doc = &page.frames[frame_idx].doc;
            let src = doc.attr(node, "src").or_else(|| doc.attr(node, "href"));
            let Some(src) = src.map(str::to_string) else {
                continue;
            };
            let Ok(url) = frame_url.join(&src) else {
                continue;
            };
            if url == frame_url {
                continue;
            }
            if self.blocked_by_extension(page, &url, &top_host) {
                continue;
            }
            let (_, _, _) = self.fetch_following(&url, Some(&top_host));
        }

        // Iframes.
        if depth < MAX_FRAME_DEPTH {
            for node in collect_with_shadow(&page.frames[frame_idx].doc, "iframe[src]") {
                let frame_url = page.frames[frame_idx].url.clone();
                let Some(src) = page.frames[frame_idx]
                    .doc
                    .attr(node, "src")
                    .map(str::to_string)
                else {
                    continue;
                };
                let Ok(url) = frame_url.join(&src) else {
                    continue;
                };
                if self.blocked_by_extension(page, &url, &top_host) {
                    continue;
                }
                let (resp, final_url, _) = self.fetch_following(&url, Some(&top_host));
                if resp.status != 200 {
                    continue;
                }
                let doc = parse(&resp.body_text());
                page.frames.push(Frame {
                    doc,
                    url: final_url,
                    parent: Some((frame_idx, node)),
                });
                let new_idx = page.frames.len() - 1;
                self.process_frame(page, new_idx, depth + 1, entitled_cookie);
            }
        }
    }

    // lint:allow(r9) — owned page/request state built during the visit; the per-visit arena (ROADMAP item 1) is the planned fix
    fn process_script(
        &mut self,
        page: &mut Page,
        frame_idx: usize,
        node: NodeId,
        top_host: &str,
        entitled_cookie: &mut Option<(String, String)>,
    ) {
        let frame_url = page.frames[frame_idx].url.clone();
        let doc = &page.frames[frame_idx].doc;
        let Some(src) = doc.attr(node, "src").map(str::to_string) else {
            return;
        };
        let inject_target = doc.attr(node, "data-cw-inject").map(str::to_string);
        let smp_check = doc.attr(node, "data-smp-check").is_some();
        let smp_set = doc.attr(node, "data-smp-set").map(str::to_string);

        let Ok(url) = frame_url.join(&src) else {
            return;
        };
        if self.blocked_by_extension(page, &url, top_host) {
            return;
        }
        let (resp, _, _) = self.fetch_following(&url, Some(top_host));
        if resp.status != 200 {
            return;
        }
        if let Some(target_id) = inject_target {
            let doc = &mut page.frames[frame_idx].doc;
            if let Some(target) = doc.get_element_by_id(&target_id) {
                parse_fragment_into(doc, target, &resp.body_text());
            }
        }
        if smp_check && resp.body_text().trim() == "entitled" {
            let (name, value) = smp_set
                .as_deref()
                .and_then(|s| s.split_once('='))
                .map(|(n, v)| (n.to_string(), v.to_string()))
                .unwrap_or(("cw_sub".to_string(), "1".to_string()));
            *entitled_cookie = Some((name, value));
        }
    }

    /// Post-load observations: scroll lock and adblock interstitial.
    // lint:allow(r9) — owned page/request state built during the visit; the per-visit arena (ROADMAP item 1) is the planned fix
    fn finish_page(&self, page: &mut Page) {
        let main = &page.frames[0].doc;
        if let Some(body) = main.body() {
            page.scroll_locked = main
                .style(body)
                .get("overflow")
                .is_some_and(|v| v.eq_ignore_ascii_case("hidden"));
        }
        let detector_present = page
            .frames
            .iter()
            .any(|f| !collect_with_shadow(&f.doc, "[data-detect-adblock]").is_empty());
        if detector_present && page.anything_blocked() {
            let message = page
                .frames
                .iter()
                .find_map(|f| {
                    collect_with_shadow(&f.doc, "[data-detect-adblock]")
                        .first()
                        .and_then(|&n| f.doc.attr(n, "data-message").map(str::to_string))
                })
                .unwrap_or_else(|| "Please disable your ad blocker".to_string());
            let main = &mut page.frames[0].doc;
            if let Some(body) = main.body() {
                let overlay = main.create_element("div");
                main.set_attr(overlay, "id", "adblock-interstitial");
                main.set_attr(overlay, "class", "adblock-wall");
                main.set_attr(overlay, "style", "position:fixed;top:0;z-index:999999");
                let p = main.create_element("p");
                let text = main.create_text(&message);
                main.append_child(p, text);
                main.append_child(overlay, p);
                main.append_child(body, overlay);
            }
            page.adblock_interstitial = true;
        }
    }

    // ------------------------------------------------------- interaction

    /// Click an element. Consent actions set their cookie and reload; the
    /// subscribe action navigates to its target.
    // lint:allow(r9) — owned page/request state built during the visit; the per-visit arena (ROADMAP item 1) is the planned fix
    pub fn click(&mut self, page: &Page, target: ElementRef) -> Result<ClickOutcome, VisitError> {
        let frame = &page.frames[target.frame];
        let doc = &frame.doc;
        // The action attribute may sit on the clicked node or an ancestor
        // (clicks bubble).
        let mut cursor = Some(target.node);
        let mut action = None;
        while let Some(n) = cursor {
            if let Some(a) = doc.attr(n, "data-cw-action") {
                action = Some((n, a.to_string()));
                break;
            }
            cursor = doc.node(n).parent;
        }
        let Some((action_node, action)) = action else {
            return Ok(ClickOutcome::NotInteractive);
        };
        let site = httpsim::registrable_domain(page.host())
            .unwrap_or(page.host())
            .to_string();
        match action.as_str() {
            "accept" | "reject" => {
                let default = format!(
                    "cw_consent={}",
                    if action == "accept" {
                        "accepted"
                    } else {
                        "rejected"
                    }
                );
                let cookie_spec = doc
                    .attr(action_node, "data-cw-cookie")
                    .unwrap_or(default.as_str())
                    .to_string();
                if let Some((name, value)) = cookie_spec.split_once('=') {
                    self.set_site_cookie(&site, name, value);
                    // The consent script also persists its state to
                    // localStorage (the §5 revocation pitfall).
                    self.storage.set(&site, name, value);
                }
                let reloaded = self.visit(&page.url)?;
                Ok(if action == "accept" {
                    ClickOutcome::Accepted(reloaded)
                } else {
                    ClickOutcome::Rejected(reloaded)
                })
            }
            "subscribe" => {
                let href = doc
                    .attr(action_node, "href")
                    .unwrap_or("/subscribe")
                    .to_string();
                let url = frame
                    .url
                    .join(&href)
                    .map_err(|_| VisitError::Unreachable(href))?;
                let landed = self.visit(&url)?;
                Ok(ClickOutcome::SubscribeNavigation(landed))
            }
            _ => Ok(ClickOutcome::NotInteractive),
        }
    }

    /// Emulate the consent script's load-time restore: if the site's
    /// localStorage holds consent state but the matching cookie is gone
    /// (e.g. the user deleted cookies), the script re-sets the cookie —
    /// the §5 pitfall that makes cookie-only revocation ineffective.
    // lint:allow(r9) — owned page/request state built during the visit; the per-visit arena (ROADMAP item 1) is the planned fix
    fn restore_consent_from_storage(&mut self, url: &Url) {
        let site = httpsim::registrable_domain(url.host())
            .unwrap_or(url.host())
            .to_string();
        let restore: Vec<(String, String)> = {
            let mut v = Vec::new();
            for key in ["cw_consent", "cw_sub"] {
                if let Some(value) = self.storage.get(&site, key) {
                    let missing = !self.jar.cookies_for(url).iter().any(|c| c.name == key);
                    if missing {
                        v.push((key.to_string(), value.to_string()));
                    }
                }
            }
            v
        };
        for (name, value) in restore {
            self.set_site_cookie(&site, &name, &value);
        }
    }

    /// Store a first-party cookie on `site` (registrable domain), as a
    /// page's own JavaScript would via `document.cookie`.
    // lint:allow(r9) — owned page/request state built during the visit; the per-visit arena (ROADMAP item 1) is the planned fix
    pub fn set_site_cookie(&mut self, site: &str, name: &str, value: &str) {
        let Ok(origin) = Url::parse(&format!("https://{site}/")) else {
            // An unparsable site name cannot hold a cookie; drop it rather
            // than aborting the crawl mid-visit.
            return;
        };
        let header = format!("{name}={value}; Domain={site}; Path=/; Max-Age=31536000");
        self.jar.store_response_cookies([header.as_str()], &origin);
    }

    // ------------------------------------------------------------- SMPs

    /// Log in at an SMP account host. Returns true if the platform issued a
    /// session cookie.
    // lint:allow(r9) — owned page/request state built during the visit; the per-visit arena (ROADMAP item 1) is the planned fix
    pub fn login_smp(&mut self, account_host: &str, user: &str, password: &str) -> bool {
        let url = match Url::parse(&format!("https://{account_host}/login")) {
            Ok(u) => u,
            Err(_) => return false,
        };
        let mut req = Request::navigation(url.clone(), self.region);
        req.method = Method::Post;
        req.user_agent = self.user_agent.clone();
        req.cookie_header = self.jar.cookie_header(&url);
        req.body_params = vec![
            ("user".to_string(), user.to_string()),
            ("pass".to_string(), password.to_string()),
        ];
        let resp = self.net.dispatch(&req);
        let before = self.jar.len();
        self.jar
            .store_response_cookies(resp.set_cookies.iter().map(String::as_str), &url);
        self.jar.len() > before
    }
}

/// Collect elements matching `selector` in the light DOM *and* inside every
/// shadow root of `doc` — scripts in shadow trees execute like any others.
fn collect_with_shadow(doc: &webdom::Document, selector: &str) -> Vec<NodeId> {
    let mut out = doc.select(doc.root(), selector).unwrap_or_default();
    for host in doc.shadow_hosts() {
        if let Some(sr) = doc.shadow_root(host) {
            out.extend(doc.select(sr.root, selector).unwrap_or_default());
        }
    }
    out
}
