//! # browser — a headless browser simulator
//!
//! The stand-in for OpenWPM-instrumented Firefox driven by Selenium: it
//! navigates the simulated network, loads subresources, applies an optional
//! content-blocker extension, executes the declarative script effects the
//! synthetic sites ship (CMP/SMP fragment injection, SMP entitlement
//! probes, adblock detection), maintains a cookie jar per profile, and
//! dispatches trusted clicks on consent elements.
//!
//! Exactly the browser surface BannerClick needs — including the parts the
//! paper had to fight for: iframes become additional [`Frame`]s, and shadow
//! roots stay opaque to selectors so the §3 piercing workaround in the
//! `bannerclick` crate has something real to pierce.
//!
//! ## Example
//!
//! ```
//! use std::sync::Arc;
//! use browser::Browser;
//! use httpsim::{Network, Region, Url};
//! use webgen::{Population, PopulationConfig};
//!
//! let population = Arc::new(Population::generate(PopulationConfig::tiny()));
//! let net = Network::new();
//! webgen::server::install(Arc::clone(&population), &net);
//!
//! let mut browser = Browser::new(net, Region::Germany);
//! let wall_domain = &population.ground_truth_walls()[0].domain;
//! let page = browser.visit(&Url::parse(wall_domain).unwrap()).unwrap();
//! assert_eq!(page.status, 200);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod browser;
mod page;
mod storage;

pub use crate::browser::{
    Browser, ClickOutcome, FetchError, FetchedDocument, VisitError, DEFAULT_TIMEOUT_BUDGET_MS,
};
pub use page::{BlockedRequest, ElementRef, Frame, LoggedRequest, Page};
pub use storage::LocalStorage;
