//! Integration tests: the browser against the synthetic web.

use browser::{Browser, ClickOutcome};
use httpsim::{Network, Region, Url};
use std::sync::Arc;
use webgen::{
    server::{install, CONSENT_COOKIE, SUBSCRIPTION_COOKIE},
    BannerKind, Population, PopulationConfig, Serving, Smp, Visibility,
};

fn world() -> (Arc<Population>, Network) {
    let pop = Arc::new(Population::generate(PopulationConfig::small()));
    let net = Network::new();
    install(Arc::clone(&pop), &net);
    (pop, net)
}

fn wall_with(pop: &Population, pred: impl Fn(&webgen::CookiewallSpec) -> bool) -> Option<String> {
    pop.ground_truth_walls()
        .into_iter()
        .find(|s| matches!(&s.banner, BannerKind::Cookiewall(c) if pred(c)))
        .map(|s| s.domain.clone())
}

#[test]
fn visit_regular_site_collects_cookies() {
    let (pop, net) = world();
    let site = pop
        .sites()
        .iter()
        .find(|s| matches!(s.banner, BannerKind::None) && !s.toplists.is_empty())
        .unwrap();
    let mut b = Browser::new(net, Region::Germany);
    let page = b.visit(&Url::parse(&site.domain).unwrap()).unwrap();
    assert_eq!(page.status, 200);
    assert_eq!(page.frames.len(), 1);
    assert!(!b.jar().is_empty(), "first-party cookies stored");
    assert!(page.main_text().len() > 100, "article text rendered");
}

#[test]
fn accept_click_on_main_dom_wall_loads_trackers() {
    let (pop, net) = world();
    let domain = wall_with(&pop, |c| {
        c.embedding == webgen::Embedding::MainDom
            && c.serving == Serving::FirstParty
            && c.visibility != Visibility::DeOnly
    })
    .expect("a first-party main-DOM wall in the small population");
    let mut b = Browser::new(net, Region::Germany);
    let page = b.visit(&Url::parse(&domain).unwrap()).unwrap();

    // The wall is in the main DOM: find its accept button directly.
    let hits = page.select_all_frames("#cw-wall button");
    assert!(!hits.is_empty(), "wall accept button visible in main DOM");
    let before_tracking = count_tracking(&b);
    match b.click(&page, hits[0]).unwrap() {
        ClickOutcome::Accepted(reloaded) => {
            // Consent cookie stored, wall gone, trackers fired.
            assert!(b
                .jar()
                .iter()
                .any(|c| c.name == CONSENT_COOKIE && c.value == "accepted"));
            assert!(reloaded.select_all_frames("#cw-wall").is_empty());
            assert!(
                count_tracking(&b) > before_tracking,
                "tracking cookies appeared"
            );
        }
        other => panic!("expected Accepted, got {other:?}"),
    }
}

#[test]
fn iframe_wall_becomes_subframe() {
    let (pop, net) = world();
    let domain = wall_with(&pop, |c| {
        c.embedding == webgen::Embedding::Iframe && c.visibility != Visibility::DeOnly
    })
    .expect("an iframe wall");
    let mut b = Browser::new(net, Region::Germany);
    let page = b.visit(&Url::parse(&domain).unwrap()).unwrap();
    assert!(page.frames.len() >= 2, "iframe loaded as subframe");
    let hits = page.select_all_frames("#cw-wall");
    assert_eq!(hits.len(), 1);
    assert!(hits[0].frame > 0, "wall lives in the subframe");
    // Clicking accept inside the subframe works and reloads the top page.
    let buttons = page.select_all_frames("#cw-wall button");
    match b.click(&page, buttons[0]).unwrap() {
        ClickOutcome::Accepted(reloaded) => {
            assert_eq!(reloaded.frames.len(), 1, "no wall iframe after consent");
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn shadow_wall_invisible_to_selectors() {
    let (pop, net) = world();
    let domain = wall_with(&pop, |c| {
        c.embedding.is_shadow()
            && c.serving == Serving::FirstParty
            && c.visibility != Visibility::DeOnly
    });
    let Some(domain) = domain else {
        // Small population may lack this class; the webgen unit tests cover
        // markup generation either way.
        return;
    };
    let (_, net2) = (0, net);
    let mut b = Browser::new(net2, Region::Germany);
    let page = b.visit(&Url::parse(&domain).unwrap()).unwrap();
    // This is the §3 pain point: ordinary selector lookup cannot see the
    // wall.
    assert!(page.select_all_frames("#cw-wall").is_empty());
    // But the host with a shadow root exists in the main document.
    assert!(!page.main().doc.shadow_hosts().is_empty());
}

#[test]
fn script_injected_wall_appears_after_load() {
    let (pop, net) = world();
    let domain = wall_with(&pop, |c| {
        c.serving != Serving::FirstParty
            && c.embedding != webgen::Embedding::Iframe
            && c.visibility != Visibility::DeOnly
    })
    .expect("a script-injected wall");
    let mut b = Browser::new(net, Region::Germany);
    let page = b.visit(&Url::parse(&domain).unwrap()).unwrap();
    // The mount div was filled by the injected fragment (possibly behind a
    // shadow root).
    let mount = page.main().doc.get_element_by_id("cw-mount").unwrap();
    let has_light_children = page.main().doc.children(mount).count() > 0;
    let has_shadow = !page.main().doc.shadow_hosts().is_empty();
    assert!(has_light_children || has_shadow, "injection happened");
}

#[test]
fn blocker_suppresses_smp_wall() {
    let (pop, net) = world();
    let domain = wall_with(&pop, |c| {
        c.serving == Serving::SmpCdn
            && c.visibility != Visibility::DeOnly
            && !c.detects_adblock
            && !c.breaks_scroll_when_blocked
    })
    .expect("an SMP wall");
    let mut b = Browser::new(net, Region::Germany)
        .with_blocker(blocklist::FilterEngine::ublock_with_annoyances());
    let page = b.visit(&Url::parse(&domain).unwrap()).unwrap();
    assert!(page.anything_blocked(), "wall asset request blocked");
    assert!(
        page.select_all_frames("#cw-wall").is_empty(),
        "no wall rendered"
    );
    assert!(!page.scroll_locked, "page usable");
    assert!(!page.adblock_interstitial);
}

#[test]
fn first_party_wall_survives_blocker() {
    let (pop, net) = world();
    let domain = wall_with(&pop, |c| {
        c.serving == Serving::FirstParty
            && c.embedding == webgen::Embedding::MainDom
            && c.visibility != Visibility::DeOnly
    })
    .expect("a first-party wall");
    let mut b = Browser::new(net, Region::Germany)
        .with_blocker(blocklist::FilterEngine::ublock_with_annoyances());
    let page = b.visit(&Url::parse(&domain).unwrap()).unwrap();
    assert!(
        !page.select_all_frames("#cw-wall").is_empty(),
        "first-party wall still shows with uBlock"
    );
}

#[test]
fn subscriber_flow_hides_wall_and_tracking() {
    let (pop, net) = world();
    let partner = pop.smp_partners(Smp::Contentpass)[0].clone();
    let mut b = Browser::new(net, Region::Germany);

    // Anonymous visit: wall present (iframe or injected).
    let anon = b.visit(&Url::parse(&partner).unwrap()).unwrap();
    assert!(
        !anon.select_all_frames("#cw-wall").is_empty()
            || !anon.main().doc.shadow_hosts().is_empty(),
        "wall shows to anonymous visitor"
    );
    assert!(!anon.reloaded_for_subscription);

    // Log in, then revisit: entitlement check fires, page reloads, no wall.
    b.clear_cookies();
    assert!(b.login_smp(Smp::Contentpass.account_host(), "alice", "pw"));
    let sub = b.visit(&Url::parse(&partner).unwrap()).unwrap();
    assert!(sub.reloaded_for_subscription, "entitlement reload happened");
    assert!(
        sub.select_all_frames("#cw-wall").is_empty(),
        "no wall for subscriber"
    );
    assert!(
        b.jar().iter().any(|c| c.name == SUBSCRIPTION_COOKIE),
        "subscription cookie set"
    );
    assert_eq!(count_tracking(&b), 0, "no tracking cookies for subscribers");
}

#[test]
fn accept_then_clear_site_shows_wall_again() {
    let (pop, net) = world();
    let domain = wall_with(&pop, |c| {
        c.embedding == webgen::Embedding::MainDom
            && c.serving == Serving::FirstParty
            && c.visibility != Visibility::DeOnly
    })
    .unwrap();
    let mut b = Browser::new(net, Region::Germany);
    let url = Url::parse(&domain).unwrap();
    let page = b.visit(&url).unwrap();
    let btn = page.select_all_frames("#cw-wall button")[0];
    let ClickOutcome::Accepted(after) = b.click(&page, btn).unwrap() else {
        panic!("accept failed")
    };
    assert!(after.select_all_frames("#cw-wall").is_empty());
    // Revisit: still no wall (consent persisted).
    let again = b.visit(&url).unwrap();
    assert!(again.select_all_frames("#cw-wall").is_empty());
    // §5's pitfall: deleting only the cookies is NOT enough — the wall
    // script restores the consent cookie from localStorage.
    b.clear_site_cookies(&domain);
    let still_consented = b.visit(&url).unwrap();
    assert!(
        still_consented.select_all_frames("#cw-wall").is_empty(),
        "consent restored from localStorage; wall stays hidden"
    );
    // The full procedure — cookies *and* local storage — brings it back.
    b.clear_site_data(&domain);
    let fresh = b.visit(&url).unwrap();
    assert!(!fresh.select_all_frames("#cw-wall").is_empty());
}

#[test]
fn decoy_paywall_shows_overlay() {
    let (pop, net) = world();
    let decoy = pop.decoys()[0].domain.clone();
    let mut b = Browser::new(net, Region::UsEast);
    let page = b.visit(&Url::parse(&decoy).unwrap()).unwrap();
    assert!(!page.select_all_frames("#premium-gate").is_empty());
    assert!(page.select_all_frames("#cw-wall").is_empty());
}

#[test]
fn unreachable_host_errors() {
    let (_pop, net) = world();
    let mut b = Browser::new(net, Region::Germany);
    let err = b.visit(&Url::parse("https://does-not-exist.example/").unwrap());
    assert!(matches!(err, Err(browser::VisitError::Unreachable(_))));
}

fn count_tracking(b: &Browser) -> usize {
    let db = blocklist::TrackerDb::justdomains();
    b.jar()
        .iter()
        .filter(|c| db.is_tracking_domain(&c.domain))
        .count()
}

#[test]
fn consent_survives_browser_restart() {
    let (pop, net) = world();
    let domain = wall_with(&pop, |c| {
        c.embedding == webgen::Embedding::MainDom
            && c.serving == Serving::FirstParty
            && c.visibility != Visibility::DeOnly
    })
    .unwrap();
    let mut b = Browser::new(net, Region::Germany);
    let url = Url::parse(&domain).unwrap();
    let page = b.visit(&url).unwrap();
    let btn = page.select_all_frames("#cw-wall button")[0];
    let ClickOutcome::Accepted(_) = b.click(&page, btn).unwrap() else {
        panic!("accept failed")
    };
    let cookies_before = b.jar().len();
    // Restart: the session id is gone, the year-long consent cookie stays.
    b.restart();
    assert!(b.jar().len() < cookies_before, "session cookies dropped");
    assert!(
        b.jar().iter().any(|c| c.name == CONSENT_COOKIE),
        "consent persists"
    );
    let after = b.visit(&url).unwrap();
    assert!(
        after.select_all_frames("#cw-wall").is_empty(),
        "no wall after restart — acceptance outlives the session"
    );
}

#[test]
fn request_log_records_third_parties() {
    let (pop, net) = world();
    let domain = wall_with(&pop, |c| {
        c.embedding == webgen::Embedding::MainDom
            && c.serving == Serving::FirstParty
            && c.visibility != Visibility::DeOnly
    })
    .unwrap();
    let mut b = Browser::new(net, Region::Germany);
    let url = Url::parse(&domain).unwrap();
    let page = b.visit(&url).unwrap();
    let btn = page.select_all_frames("#cw-wall button")[0];
    let ClickOutcome::Accepted(after) = b.click(&page, btn).unwrap() else {
        panic!("accept failed")
    };
    // The post-consent load hits trackers: the request log shows them.
    assert!(!after.requests.is_empty());
    assert_eq!(
        after.requests[0].initiator, None,
        "first entry is the navigation"
    );
    let third_party = after.third_party_requests().count();
    assert!(third_party > 5, "trackers were fetched: {third_party}");
    let with_cookies = after.requests.iter().filter(|r| r.cookies_set > 0).count();
    assert!(with_cookies > 3, "responses set cookies: {with_cookies}");
}

#[test]
fn fetch_errors_are_typed() {
    use browser::FetchError;
    use httpsim::{Response, TransportFault};

    let net = Network::new();
    net.register_fn("reset.example", |_| {
        let mut r = Response::connection_error();
        r.transport = Some(TransportFault::ConnectionReset);
        r
    });
    net.register_fn("truncated.example", |_| {
        let mut r = Response::html("<html>half of the docum");
        r.transport = Some(TransportFault::TruncatedBody);
        r
    });
    net.register_fn("slow.example", |_| {
        let mut r = Response::html("<html>eventually</html>");
        r.latency_ms = 45_000;
        r
    });
    net.register_fn("flaky.example", |_| {
        let mut r = Response::html("");
        r.status = 503;
        r
    });
    net.register_fn("gone.example", |_| {
        let mut r = Response::html("");
        r.status = 410;
        r
    });

    let mut b = Browser::new(net, Region::Germany);
    let fetch = |b: &mut Browser, host: &str| b.fetch_domain_document(host).unwrap_err();

    let err = fetch(&mut b, "reset.example");
    assert_eq!(
        err,
        FetchError::ConnectionReset("reset.example".to_string())
    );
    assert!(err.is_transient());

    let err = fetch(&mut b, "truncated.example");
    assert_eq!(err, FetchError::Truncated("truncated.example".to_string()));
    assert!(err.is_transient());

    let err = fetch(&mut b, "slow.example");
    assert_eq!(
        err,
        FetchError::Timeout {
            host: "slow.example".to_string(),
            budget_ms: 30_000
        }
    );
    assert!(err.is_transient());

    let err = fetch(&mut b, "unregistered.example");
    assert_eq!(
        err,
        FetchError::Unreachable("unregistered.example".to_string())
    );
    assert!(err.is_transient());

    assert!(
        fetch(&mut b, "flaky.example").is_transient(),
        "5xx is transient"
    );
    assert!(
        !fetch(&mut b, "gone.example").is_transient(),
        "4xx is permanent"
    );
}

#[test]
fn timeout_budget_is_configurable_and_spans_redirect_hops() {
    use browser::FetchError;
    use httpsim::Response;

    let net = Network::new();
    // Two hops of 300 virtual ms each: fine under the default budget,
    // fatal once the budget is tightened below their sum.
    net.register_fn("hop.example", |r| {
        let mut resp = if r.url.path() == "/" {
            Response::redirect("https://hop.example/land")
        } else {
            Response::html("<html>landed</html>")
        };
        resp.latency_ms = 300;
        resp
    });

    let mut b = Browser::new(net.clone(), Region::Germany);
    assert!(b.fetch_domain_document("hop.example").is_ok());

    let mut b = Browser::new(net, Region::Germany).with_timeout_budget(500);
    assert_eq!(b.timeout_budget_ms(), 500);
    let err = b.fetch_domain_document("hop.example").unwrap_err();
    assert_eq!(
        err,
        FetchError::Timeout {
            host: "hop.example".to_string(),
            budget_ms: 500
        },
        "latency accumulates across redirect hops"
    );
}
