//! # langid — character n-gram language identification
//!
//! The paper uses Google's CLD3 to label the language of each cookiewall
//! website (§4.1, Table 1's "Language" column). CLD3 is a neural model over
//! character n-grams; this crate implements the same input representation
//! with a multinomial naive-Bayes classifier over character trigrams —
//! the classical, well-understood member of that family — trained on
//! embedded corpora for the eight languages the study encounters.
//!
//! ## Example
//!
//! ```
//! use langid::{detect, Language};
//!
//! let text = "Mit unserem Abo lesen Sie alle Artikel ohne Werbung.";
//! assert_eq!(detect(text).unwrap().language, Language::German);
//!
//! let text = "Read all our articles without any advertising.";
//! assert_eq!(detect(text).unwrap().language, Language::English);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod corpus;

use std::collections::HashMap;
use std::sync::OnceLock;

/// Languages the detector distinguishes — the ones appearing in the study's
/// website population.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Language {
    /// German (`de`).
    German,
    /// English (`en`).
    English,
    /// Italian (`it`).
    Italian,
    /// Swedish (`sv`).
    Swedish,
    /// French (`fr`).
    French,
    /// Portuguese (`pt`).
    Portuguese,
    /// Spanish (`es`).
    Spanish,
    /// Dutch (`nl`).
    Dutch,
}

impl Language {
    /// All supported languages.
    pub const ALL: [Language; 8] = [
        Language::German,
        Language::English,
        Language::Italian,
        Language::Swedish,
        Language::French,
        Language::Portuguese,
        Language::Spanish,
        Language::Dutch,
    ];

    /// ISO 639-1 code.
    pub fn code(self) -> &'static str {
        match self {
            Language::German => "de",
            Language::English => "en",
            Language::Italian => "it",
            Language::Swedish => "sv",
            Language::French => "fr",
            Language::Portuguese => "pt",
            Language::Spanish => "es",
            Language::Dutch => "nl",
        }
    }

    /// Parse an ISO 639-1 code (case-insensitive).
    pub fn from_code(code: &str) -> Option<Language> {
        let code = code.to_ascii_lowercase();
        Language::ALL.into_iter().find(|l| l.code() == code)
    }

    fn corpus(self) -> &'static str {
        match self {
            Language::German => corpus::DE,
            Language::English => corpus::EN,
            Language::Italian => corpus::IT,
            Language::Swedish => corpus::SV,
            Language::French => corpus::FR,
            Language::Portuguese => corpus::PT,
            Language::Spanish => corpus::ES,
            Language::Dutch => corpus::NL,
        }
    }
}

/// A detection result: best language plus a reliability signal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Detection {
    /// The most probable language.
    pub language: Language,
    /// Mean per-trigram log-probability margin over the runner-up.
    /// Larger is more confident; values under ~0.02 are near-ties.
    pub margin: f64,
    /// Number of trigrams scored (short inputs are unreliable).
    pub trigrams: usize,
}

impl Detection {
    /// Is this detection trustworthy? (Heuristic mirroring CLD3's
    /// `is_reliable`: enough evidence and a clear margin.)
    pub fn is_reliable(&self) -> bool {
        self.trigrams >= 8 && self.margin > 0.02
    }
}

/// Minimum alphabetic characters before detection is attempted.
pub const MIN_INPUT_CHARS: usize = 8;

struct Model {
    /// Per-language trigram log-probabilities plus the unseen-trigram
    /// (smoothing) log-probability.
    tables: Vec<(Language, HashMap<[char; 3], f64>, f64)>,
}

fn trigrams(text: &str) -> Vec<[char; 3]> {
    // Normalize: lowercase, collapse digits (prices should not sway the
    // decision), map whitespace runs to a single space boundary.
    let mut chars: Vec<char> = Vec::with_capacity(text.len());
    let mut last_space = true;
    for c in text.chars() {
        let c = if c.is_numeric() { '#' } else { c };
        if c.is_whitespace() {
            if !last_space {
                chars.push(' ');
                last_space = true;
            }
        } else {
            for lc in c.to_lowercase() {
                chars.push(lc);
            }
            last_space = false;
        }
    }
    if chars.len() < 3 {
        return Vec::new();
    }
    chars.windows(3).map(|w| [w[0], w[1], w[2]]).collect()
}

fn build_model() -> Model {
    let mut tables = Vec::new();
    for lang in Language::ALL {
        let grams = trigrams(lang.corpus());
        let mut counts: HashMap<[char; 3], f64> = HashMap::new();
        for g in &grams {
            *counts.entry(*g).or_insert(0.0) += 1.0;
        }
        // Add-one (Laplace) smoothing over the observed vocabulary.
        let vocab = counts.len() as f64;
        let total = grams.len() as f64 + vocab + 1.0;
        let table: HashMap<[char; 3], f64> = counts
            .into_iter()
            .map(|(g, c)| (g, ((c + 1.0) / total).ln()))
            .collect();
        let unseen = (1.0 / total).ln();
        tables.push((lang, table, unseen));
    }
    Model { tables }
}

fn model() -> &'static Model {
    static MODEL: OnceLock<Model> = OnceLock::new();
    MODEL.get_or_init(build_model)
}

/// Detect the language of `text`.
///
/// Returns `None` for inputs that are too short or contain no letters —
/// the cases where any answer would be noise.
pub fn detect(text: &str) -> Option<Detection> {
    if text.chars().filter(|c| c.is_alphabetic()).count() < MIN_INPUT_CHARS {
        return None;
    }
    let grams = trigrams(text);
    if grams.is_empty() {
        return None;
    }
    let m = model();
    let mut scores: Vec<(Language, f64)> = m
        .tables
        .iter()
        .map(|(lang, table, unseen)| {
            let score: f64 = grams
                .iter()
                .map(|g| table.get(g).copied().unwrap_or(*unseen))
                .sum();
            (*lang, score)
        })
        .collect();
    scores.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    let (best, best_score) = scores[0];
    let runner_up = scores[1].1;
    Some(Detection {
        language: best,
        margin: (best_score - runner_up) / grams.len() as f64,
        trigrams: grams.len(),
    })
}

/// Detect and return just the ISO code, like CLD3's typical use.
pub fn detect_code(text: &str) -> Option<&'static str> {
    detect(text).map(|d| d.language.code())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLES: &[(Language, &str)] = &[
        (
            Language::German,
            "Bitte stimmen Sie der Nutzung von Cookies zu oder lesen Sie unsere Inhalte werbefrei mit einem günstigen Abonnement.",
        ),
        (
            Language::English,
            "Please agree to the use of cookies or read our content ad-free with an affordable monthly plan.",
        ),
        (
            Language::Italian,
            "Acconsenti all'uso dei cookie oppure leggi i nostri contenuti senza pubblicità con un abbonamento conveniente.",
        ),
        (
            Language::Swedish,
            "Godkänn användningen av kakor eller läs vårt innehåll reklamfritt med en billig prenumeration varje månad.",
        ),
        (
            Language::French,
            "Acceptez l'utilisation des cookies ou lisez nos contenus sans publicité grâce à un abonnement avantageux.",
        ),
        (
            Language::Portuguese,
            "Aceite a utilização de cookies ou leia os nossos conteúdos sem publicidade com uma assinatura acessível.",
        ),
        (
            Language::Spanish,
            "Acepte el uso de cookies o lea nuestros contenidos sin publicidad con una suscripción asequible cada mes.",
        ),
        (
            Language::Dutch,
            "Accepteer het gebruik van cookies of lees onze inhoud reclamevrij met een voordelig maandabonnement.",
        ),
    ];

    #[test]
    fn classifies_out_of_sample_consent_text() {
        for (expected, text) in SAMPLES {
            let d = detect(text).expect("long enough");
            assert_eq!(
                d.language, *expected,
                "misclassified {:?} as {:?} (margin {})",
                expected, d.language, d.margin
            );
            assert!(d.is_reliable(), "{expected:?} should be reliable");
        }
    }

    #[test]
    fn classifies_news_prose() {
        let de = "Der Ausschuss berät am Donnerstag über den Haushalt der Stadt und die geplanten Investitionen in Schulen.";
        assert_eq!(detect(de).unwrap().language, Language::German);
        let en = "The committee will meet on Thursday to discuss the city budget and planned investment in schools.";
        assert_eq!(detect(en).unwrap().language, Language::English);
        let sv = "Utskottet sammanträder på torsdag för att diskutera stadens budget och planerade investeringar i skolor.";
        assert_eq!(detect(sv).unwrap().language, Language::Swedish);
    }

    #[test]
    fn rejects_short_or_empty() {
        assert!(detect("").is_none());
        assert!(detect("ok").is_none());
        assert!(detect("3,99 € 4,99 € 12 100 7").is_none(), "digits only");
        assert!(detect("......").is_none());
    }

    #[test]
    fn digits_do_not_dominate() {
        let d = detect(
            "Nur 2,99 € im Monat statt 9,99 € — jetzt Abo abschließen und weiterlesen 2024 2025.",
        )
        .unwrap();
        assert_eq!(d.language, Language::German);
    }

    #[test]
    fn code_roundtrip() {
        for lang in Language::ALL {
            assert_eq!(Language::from_code(lang.code()), Some(lang));
        }
        assert_eq!(Language::from_code("xx"), None);
        assert_eq!(Language::from_code("DE"), Some(Language::German));
    }

    #[test]
    fn detect_code_api() {
        assert_eq!(
            detect_code("We would like to welcome all readers to our coverage of the election."),
            Some("en")
        );
    }

    #[test]
    fn mixed_language_picks_dominant() {
        let text = "Cookie settings. Wir verwenden Cookies, um Inhalte zu personalisieren und die Zugriffe auf unsere Website zu analysieren. Außerdem geben wir Informationen weiter.";
        assert_eq!(detect(text).unwrap().language, Language::German);
    }
}
