//! Embedded training corpora, one per supported language.
//!
//! These are hand-written running texts in the register the study actually
//! encounters: news-site boilerplate, consent and subscription vocabulary,
//! everyday prose. They are deliberately *different sentences* from the ones
//! the `webgen` site generator emits, so classification in the pipeline is a
//! genuine out-of-sample prediction, not memorization.

/// German training text.
pub(crate) const DE: &str = "\
Die Bundesregierung hat am Mittwoch neue Maßnahmen beschlossen, die ab dem \
kommenden Monat gelten sollen. Nach Angaben des Ministeriums werden die \
Änderungen vor allem kleine und mittlere Unternehmen betreffen. Wir nutzen \
Cookies und ähnliche Technologien, um unsere Dienste anzubieten und zu \
verbessern. Mit Ihrer Zustimmung verarbeiten wir personenbezogene Daten zur \
Anzeige personalisierter Werbung. Sie können Ihre Einwilligung jederzeit mit \
Wirkung für die Zukunft widerrufen. Lesen Sie alle Artikel ohne Werbung und \
ohne Tracking mit unserem Abonnement für monatlich drei Euro. Jetzt \
abonnieren und werbefrei weiterlesen. Der Verein hat das Spiel am Samstag \
deutlich gewonnen und steht nun an der Tabellenspitze. Viele Leserinnen und \
Leser haben uns geschrieben, dass sie sich mehr Berichte aus der Region \
wünschen. Das Wetter bleibt in den nächsten Tagen wechselhaft, mit Schauern \
im Norden und Sonnenschein im Süden. Die Polizei sucht Zeugen, die den \
Vorfall am Bahnhof beobachtet haben. Bitte akzeptieren Sie die Verwendung \
von Cookies oder schließen Sie ein werbefreies Abo ab. Weitere Informationen \
finden Sie in unserer Datenschutzerklärung. Die Preise für Strom und Gas \
sind im vergangenen Jahr erneut gestiegen, wie das Statistische Bundesamt \
mitteilte. Forscherinnen der Universität haben eine neue Methode entwickelt, \
um Kunststoffe besser zu recyceln. Der Gemeinderat diskutierte über den \
Ausbau der Radwege in der Innenstadt. Zustimmen und weiterlesen oder mit \
einem Pur-Abo alle Inhalte ohne personalisierte Werbung genießen.";

/// English training text.
pub(crate) const EN: &str = "\
The government announced new measures on Wednesday that will take effect \
next month. According to the ministry, the changes will mainly affect small \
and medium-sized businesses. We use cookies and similar technologies to \
provide and improve our services. With your consent we process personal data \
to show personalised advertising. You can withdraw your consent at any time \
with effect for the future. Read every article without ads and without \
tracking with our subscription for three euros a month. Subscribe now and \
continue reading ad-free. The team won convincingly on Saturday and now sits \
at the top of the table. Many readers have written to tell us they would \
like more reporting from the region. The weather will remain changeable over \
the coming days, with showers in the north and sunshine in the south. Police \
are looking for witnesses who observed the incident at the station. Please \
accept the use of cookies or take out an ad-free subscription. You can find \
further information in our privacy policy. Electricity and gas prices rose \
again last year, the statistics office said. Researchers at the university \
have developed a new method to recycle plastics more effectively. The city \
council discussed expanding cycle paths in the town centre. Agree and \
continue reading, or enjoy all content without personalised advertising \
with a pure subscription.";

/// Italian training text.
pub(crate) const IT: &str = "\
Il governo ha annunciato mercoledì nuove misure che entreranno in vigore il \
mese prossimo. Secondo il ministero, le modifiche riguarderanno soprattutto \
le piccole e medie imprese. Utilizziamo i cookie e tecnologie simili per \
fornire e migliorare i nostri servizi. Con il tuo consenso trattiamo dati \
personali per mostrare pubblicità personalizzata. Puoi revocare il consenso \
in qualsiasi momento con effetto per il futuro. Leggi tutti gli articoli \
senza pubblicità e senza tracciamento con il nostro abbonamento a due euro \
al mese. Abbonati ora e continua a leggere senza pubblicità. La squadra ha \
vinto nettamente sabato e ora è in testa alla classifica. Molti lettori ci \
hanno scritto che vorrebbero più notizie dalla regione. Il tempo rimarrà \
variabile nei prossimi giorni, con rovesci al nord e sole al sud. La polizia \
cerca testimoni che abbiano osservato l'incidente alla stazione. Accetta \
l'uso dei cookie oppure sottoscrivi un abbonamento senza pubblicità. \
Ulteriori informazioni sono disponibili nella nostra informativa sulla \
privacy. I prezzi di luce e gas sono aumentati di nuovo l'anno scorso, ha \
comunicato l'istituto di statistica. I ricercatori dell'università hanno \
sviluppato un nuovo metodo per riciclare meglio la plastica. Il consiglio \
comunale ha discusso l'ampliamento delle piste ciclabili in centro.";

/// Swedish training text.
pub(crate) const SV: &str = "\
Regeringen presenterade i onsdags nya åtgärder som träder i kraft nästa \
månad. Enligt departementet kommer förändringarna framför allt att påverka \
små och medelstora företag. Vi använder kakor och liknande tekniker för att \
tillhandahålla och förbättra våra tjänster. Med ditt samtycke behandlar vi \
personuppgifter för att visa personaliserad annonsering. Du kan när som \
helst återkalla ditt samtycke med verkan för framtiden. Läs alla artiklar \
utan annonser och utan spårning med vår prenumeration för tre euro i \
månaden. Prenumerera nu och fortsätt läsa reklamfritt. Laget vann klart i \
lördags och ligger nu i toppen av tabellen. Många läsare har skrivit till \
oss att de önskar fler nyheter från regionen. Vädret förblir ostadigt de \
närmaste dagarna, med skurar i norr och sol i söder. Polisen söker vittnen \
som såg händelsen vid stationen. Godkänn användningen av kakor eller teckna \
en reklamfri prenumeration. Mer information finns i vår \
integritetspolicy. Priserna på el och gas steg återigen förra året, \
meddelade statistikmyndigheten. Forskare vid universitetet har utvecklat en \
ny metod för att återvinna plast bättre. Kommunfullmäktige diskuterade \
utbyggnaden av cykelbanor i centrum.";

/// French training text.
pub(crate) const FR: &str = "\
Le gouvernement a annoncé mercredi de nouvelles mesures qui entreront en \
vigueur le mois prochain. Selon le ministère, les changements concerneront \
surtout les petites et moyennes entreprises. Nous utilisons des cookies et \
des technologies similaires pour fournir et améliorer nos services. Avec \
votre consentement, nous traitons des données personnelles afin d'afficher \
de la publicité personnalisée. Vous pouvez retirer votre consentement à tout \
moment avec effet pour l'avenir. Lisez tous les articles sans publicité et \
sans suivi grâce à notre abonnement à trois euros par mois. Abonnez-vous \
maintenant et continuez votre lecture sans publicité. L'équipe a nettement \
gagné samedi et occupe désormais la tête du classement. De nombreux lecteurs \
nous ont écrit qu'ils souhaitaient davantage de reportages régionaux. Le \
temps restera variable ces prochains jours, avec des averses au nord et du \
soleil au sud. La police recherche des témoins ayant observé l'incident à la \
gare. Veuillez accepter l'utilisation des cookies ou souscrire un abonnement \
sans publicité. Vous trouverez plus d'informations dans notre politique de \
confidentialité. Les prix de l'électricité et du gaz ont encore augmenté \
l'année dernière, a indiqué l'institut de statistique.";

/// Portuguese training text.
pub(crate) const PT: &str = "\
O governo anunciou na quarta-feira novas medidas que entrarão em vigor no \
próximo mês. Segundo o ministério, as mudanças afetarão sobretudo as \
pequenas e médias empresas. Utilizamos cookies e tecnologias semelhantes \
para fornecer e melhorar os nossos serviços. Com o seu consentimento, \
tratamos dados pessoais para mostrar publicidade personalizada. Pode retirar \
o seu consentimento a qualquer momento com efeito para o futuro. Leia todos \
os artigos sem anúncios e sem rastreamento com a nossa assinatura por três \
euros por mês. Assine agora e continue a ler sem publicidade. A equipa \
venceu claramente no sábado e está agora no topo da classificação. Muitos \
leitores escreveram-nos a dizer que gostariam de mais reportagens da \
região. O tempo continuará instável nos próximos dias, com aguaceiros no \
norte e sol no sul. A polícia procura testemunhas que tenham observado o \
incidente na estação. Aceite a utilização de cookies ou faça uma assinatura \
sem publicidade. Encontra mais informações na nossa política de \
privacidade. Os preços da eletricidade e do gás voltaram a subir no ano \
passado, informou o instituto de estatística.";

/// Spanish training text.
pub(crate) const ES: &str = "\
El gobierno anunció el miércoles nuevas medidas que entrarán en vigor el \
próximo mes. Según el ministerio, los cambios afectarán sobre todo a las \
pequeñas y medianas empresas. Utilizamos cookies y tecnologías similares \
para ofrecer y mejorar nuestros servicios. Con su consentimiento, tratamos \
datos personales para mostrar publicidad personalizada. Puede retirar su \
consentimiento en cualquier momento con efecto para el futuro. Lea todos \
los artículos sin anuncios y sin seguimiento con nuestra suscripción por \
tres euros al mes. Suscríbase ahora y siga leyendo sin publicidad. El \
equipo ganó con claridad el sábado y ahora lidera la clasificación. Muchos \
lectores nos han escrito que desean más reportajes de la región. El tiempo \
seguirá variable en los próximos días, con chubascos en el norte y sol en \
el sur. La policía busca testigos que hayan observado el incidente en la \
estación. Acepte el uso de cookies o contrate una suscripción sin \
publicidad. Encontrará más información en nuestra política de privacidad. \
Los precios de la electricidad y el gas volvieron a subir el año pasado, \
informó el instituto de estadística.";

/// Dutch training text.
pub(crate) const NL: &str = "\
De regering kondigde woensdag nieuwe maatregelen aan die volgende maand van \
kracht worden. Volgens het ministerie zullen de veranderingen vooral kleine \
en middelgrote bedrijven treffen. Wij gebruiken cookies en vergelijkbare \
technieken om onze diensten aan te bieden en te verbeteren. Met uw \
toestemming verwerken wij persoonsgegevens om gepersonaliseerde advertenties \
te tonen. U kunt uw toestemming op elk moment intrekken met werking voor de \
toekomst. Lees alle artikelen zonder advertenties en zonder tracking met ons \
abonnement voor drie euro per maand. Abonneer nu en lees verder zonder \
reclame. Het elftal won zaterdag overtuigend en staat nu bovenaan de \
ranglijst. Veel lezers hebben ons geschreven dat zij meer berichten uit de \
regio willen. Het weer blijft de komende dagen wisselvallig, met buien in \
het noorden en zon in het zuiden. De politie zoekt getuigen die het voorval \
bij het station hebben gezien. Accepteer het gebruik van cookies of sluit \
een reclamevrij abonnement af. Meer informatie vindt u in onze \
privacyverklaring. De prijzen voor stroom en gas zijn vorig jaar opnieuw \
gestegen, meldde het statistiekbureau.";
