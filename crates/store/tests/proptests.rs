//! Property: over arbitrary interleavings of puts, checkpoints, aborts
//! (drop without flushing) and reopens on a small `(region × domain)`
//! matrix, journal replay is exactly-once — a reopened store holds every
//! task that was checkpointed, none that was not, each exactly once with
//! its original payload. The domain list spans many of the sharded
//! store's domain-hash stripes, so the scripted interleavings exercise
//! cross-stripe staging, and the torture tests below hammer concurrent
//! `put`s against the pipelined checkpoint path.

use httpsim::content_hash;
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use store::{Store, STRIPES};

const REGIONS: u8 = 3;
const DOMAINS: [&str; 12] = [
    "alpha.example",
    "beta.example",
    "gamma.example",
    "delta.example",
    "epsilon.example",
    "zeta.example",
    "eta.example",
    "theta.example",
    "iota.example",
    "kappa.example",
    "lambda.example",
    "mu.example",
];

/// The fixture must genuinely cross stripes, or every test above would
/// silently degenerate to single-stripe coverage.
#[test]
fn fixture_domains_span_multiple_stripes() {
    let stripes: BTreeSet<u64> = DOMAINS
        .iter()
        .map(|d| content_hash(d.as_bytes()) % STRIPES as u64)
        .collect();
    assert!(
        stripes.len() >= 4,
        "fixture domains hash to only {} distinct stripes",
        stripes.len()
    );
}

/// One scripted step against the store.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Store the result for cell (region, domain index).
    Put(u8, usize),
    /// Flush everything buffered to disk.
    Checkpoint,
    /// Kill the process mid-run: drop without flushing, reopen.
    AbortAndReopen,
    /// Clean restart: flush, drop, reopen.
    CheckpointAndReopen,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (0u32..10, 0u8..REGIONS, 0usize..DOMAINS.len()).prop_map(|(kind, r, d)| match kind {
        0..6 => Op::Put(r, d),
        6 | 7 => Op::Checkpoint,
        8 => Op::AbortAndReopen,
        _ => Op::CheckpointAndReopen,
    })
}

fn payload(region: u8, domain: &str) -> Vec<u8> {
    format!("result for {domain} from region {region}").into_bytes()
}

fn tempdir() -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    std::env::temp_dir().join(format!(
        "cookiewall-store-prop-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ))
}

proptest! {
    fn journal_replay_is_exactly_once(ops in prop::collection::vec(op_strategy(), 1..40)) {
        let dir = tempdir();
        let _ = std::fs::remove_dir_all(&dir);
        let mut live = Store::create(&dir, REGIONS as usize, &[]).unwrap();

        // Model state: what a correct store must contain after each reopen.
        let mut durable: BTreeSet<(u8, usize)> = BTreeSet::new(); // checkpointed
        let mut buffered: BTreeSet<(u8, usize)> = BTreeSet::new(); // put, not yet flushed
        let mut ever_put: BTreeSet<(u8, usize)> = BTreeSet::new();

        for op in ops {
            match op {
                Op::Put(r, d) => {
                    let fresh = live.put(r, DOMAINS[d], &payload(r, DOMAINS[d])).unwrap();
                    // Exactly-once at the API: a second put of a live key
                    // is refused, a genuinely new key is accepted.
                    let expected_fresh = !durable.contains(&(r, d)) && !buffered.contains(&(r, d));
                    prop_assert_eq!(fresh, expected_fresh, "put ({}, {})", r, d);
                    buffered.insert((r, d));
                    ever_put.insert((r, d));
                }
                Op::Checkpoint => {
                    live.checkpoint().unwrap();
                    durable.append(&mut buffered);
                }
                Op::AbortAndReopen => {
                    drop(live); // buffered tail dies with the process
                    buffered.clear();
                    live = Store::open(&dir).unwrap();
                }
                Op::CheckpointAndReopen => {
                    live.checkpoint().unwrap();
                    durable.append(&mut buffered);
                    drop(live);
                    live = Store::open(&dir).unwrap();
                }
            }
        }

        // Final verdict after one more clean restart.
        live.checkpoint().unwrap();
        durable.append(&mut buffered);
        drop(live);
        let reopened = Store::open(&dir).unwrap();

        prop_assert_eq!(reopened.len(), durable.len(), "no task lost or duplicated");
        for &(r, d) in &durable {
            prop_assert_eq!(
                reopened.get(r, DOMAINS[d]),
                Some(payload(r, DOMAINS[d])),
                "payload of ({}, {}) survives verbatim",
                r,
                d
            );
        }
        for r in 0..REGIONS {
            let entries = reopened.region_entries(r);
            let expected: Vec<&str> = {
                let mut v: Vec<&str> = durable
                    .iter()
                    .filter(|(pr, _)| *pr == r)
                    .map(|&(_, d)| DOMAINS[d])
                    .collect();
                v.sort_unstable();
                v
            };
            let got: Vec<&str> = entries.iter().map(|(d, _)| d.as_str()).collect();
            prop_assert_eq!(got, expected, "region {} entry set", r);
        }
        // Tasks that were put but never checkpointed before an abort may
        // legitimately be absent — but nothing outside ever_put may appear.
        for r in 0..REGIONS {
            for (domain, _) in reopened.region_entries(r) {
                let d = DOMAINS.iter().position(|&x| x == domain).unwrap();
                prop_assert!(ever_put.contains(&(r, d)), "phantom task ({}, {})", r, domain);
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// Every thread races to put every `(region, domain)` cell while the
/// small auto-checkpoint cadence keeps pipelined flushes in flight:
/// exactly one racer must win each cell, and the journal must replay the
/// complete matrix after a clean shutdown.
#[test]
fn concurrent_puts_are_exactly_once() {
    let dir = tempdir();
    let _ = std::fs::remove_dir_all(&dir);
    let store = Store::create(&dir, REGIONS as usize, &[]).unwrap();
    store.set_checkpoint_every(5);
    let accepted = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..8 {
            let store = &store;
            let accepted = &accepted;
            scope.spawn(move || {
                for r in 0..REGIONS {
                    for domain in DOMAINS {
                        if store.put(r, domain, &payload(r, domain)).unwrap() {
                            accepted.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });
    let total = REGIONS as usize * DOMAINS.len();
    assert_eq!(
        accepted.load(Ordering::Relaxed),
        total,
        "each cell accepted exactly once across 8 racing threads"
    );
    store.checkpoint().unwrap();
    drop(store);

    let reopened = Store::open(&dir).unwrap();
    assert_eq!(reopened.len(), total);
    for r in 0..REGIONS {
        for domain in DOMAINS {
            assert_eq!(
                reopened.get(r, domain),
                Some(payload(r, domain)),
                "payload of ({r}, {domain}) survives verbatim"
            );
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Concurrent putters race explicit checkpoints from a flusher thread,
/// then the process "dies" (drop without a final checkpoint). The journal
/// must replay a valid prefix — no phantoms, no duplicates, payloads
/// verbatim — and re-putting the missing tail must be accepted exactly
/// once per lost cell.
#[test]
fn concurrent_puts_with_abort_replay_a_valid_journal() {
    let dir = tempdir();
    let _ = std::fs::remove_dir_all(&dir);
    let total = REGIONS as usize * DOMAINS.len();
    let survivors = {
        let store = Store::create(&dir, REGIONS as usize, &[]).unwrap();
        store.set_checkpoint_every(3);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let store = &store;
                scope.spawn(move || {
                    for r in 0..REGIONS {
                        for domain in DOMAINS {
                            store.put(r, domain, &payload(r, domain)).unwrap();
                        }
                    }
                });
            }
            let store = &store;
            scope.spawn(move || {
                for _ in 0..6 {
                    store.checkpoint().unwrap();
                }
            });
        });
        store.len()
        // Kill point: the store drops here without a final checkpoint.
    };
    assert_eq!(survivors, total, "every cell was put before the abort");

    let reopened = Store::open(&dir).unwrap();
    assert!(
        reopened.len() <= total,
        "replay can hold at most what was put"
    );
    let mut missing = 0usize;
    for r in 0..REGIONS {
        for domain in DOMAINS {
            match reopened.get(r, domain) {
                Some(bytes) => assert_eq!(
                    bytes,
                    payload(r, domain),
                    "replayed payload of ({r}, {domain}) is verbatim"
                ),
                None => missing += 1,
            }
        }
    }
    assert_eq!(reopened.len(), total - missing, "no phantom entries");

    // Recover the lost tail: each missing cell is accepted exactly once.
    let mut accepted = 0usize;
    for r in 0..REGIONS {
        for domain in DOMAINS {
            if reopened.put(r, domain, &payload(r, domain)).unwrap() {
                accepted += 1;
            }
        }
    }
    assert_eq!(accepted, missing, "exactly the lost cells are re-accepted");
    reopened.checkpoint().unwrap();
    drop(reopened);
    let full = Store::open(&dir).unwrap();
    assert_eq!(full.len(), total);
    std::fs::remove_dir_all(&dir).unwrap();
}
