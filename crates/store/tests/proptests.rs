//! Property: over arbitrary interleavings of puts, checkpoints, aborts
//! (drop without flushing) and reopens on a small `(region × domain)`
//! matrix, journal replay is exactly-once — a reopened store holds every
//! task that was checkpointed, none that was not, each exactly once with
//! its original payload.

use proptest::prelude::*;
use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use store::Store;

const REGIONS: u8 = 3;
const DOMAINS: [&str; 5] = [
    "alpha.example",
    "beta.example",
    "gamma.example",
    "delta.example",
    "epsilon.example",
];

/// One scripted step against the store.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Store the result for cell (region, domain index).
    Put(u8, usize),
    /// Flush everything buffered to disk.
    Checkpoint,
    /// Kill the process mid-run: drop without flushing, reopen.
    AbortAndReopen,
    /// Clean restart: flush, drop, reopen.
    CheckpointAndReopen,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (0u32..10, 0u8..REGIONS, 0usize..DOMAINS.len()).prop_map(|(kind, r, d)| match kind {
        0..6 => Op::Put(r, d),
        6 | 7 => Op::Checkpoint,
        8 => Op::AbortAndReopen,
        _ => Op::CheckpointAndReopen,
    })
}

fn payload(region: u8, domain: &str) -> Vec<u8> {
    format!("result for {domain} from region {region}").into_bytes()
}

fn tempdir() -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    std::env::temp_dir().join(format!(
        "cookiewall-store-prop-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ))
}

proptest! {
    fn journal_replay_is_exactly_once(ops in prop::collection::vec(op_strategy(), 1..40)) {
        let dir = tempdir();
        let _ = std::fs::remove_dir_all(&dir);
        let mut live = Store::create(&dir, REGIONS as usize, &[]).unwrap();

        // Model state: what a correct store must contain after each reopen.
        let mut durable: BTreeSet<(u8, usize)> = BTreeSet::new(); // checkpointed
        let mut buffered: BTreeSet<(u8, usize)> = BTreeSet::new(); // put, not yet flushed
        let mut ever_put: BTreeSet<(u8, usize)> = BTreeSet::new();

        for op in ops {
            match op {
                Op::Put(r, d) => {
                    let fresh = live.put(r, DOMAINS[d], &payload(r, DOMAINS[d])).unwrap();
                    // Exactly-once at the API: a second put of a live key
                    // is refused, a genuinely new key is accepted.
                    let expected_fresh = !durable.contains(&(r, d)) && !buffered.contains(&(r, d));
                    prop_assert_eq!(fresh, expected_fresh, "put ({}, {})", r, d);
                    buffered.insert((r, d));
                    ever_put.insert((r, d));
                }
                Op::Checkpoint => {
                    live.checkpoint().unwrap();
                    durable.append(&mut buffered);
                }
                Op::AbortAndReopen => {
                    drop(live); // buffered tail dies with the process
                    buffered.clear();
                    live = Store::open(&dir).unwrap();
                }
                Op::CheckpointAndReopen => {
                    live.checkpoint().unwrap();
                    durable.append(&mut buffered);
                    drop(live);
                    live = Store::open(&dir).unwrap();
                }
            }
        }

        // Final verdict after one more clean restart.
        live.checkpoint().unwrap();
        durable.append(&mut buffered);
        drop(live);
        let reopened = Store::open(&dir).unwrap();

        prop_assert_eq!(reopened.len(), durable.len(), "no task lost or duplicated");
        for &(r, d) in &durable {
            prop_assert_eq!(
                reopened.get(r, DOMAINS[d]),
                Some(payload(r, DOMAINS[d])),
                "payload of ({}, {}) survives verbatim",
                r,
                d
            );
        }
        for r in 0..REGIONS {
            let entries = reopened.region_entries(r);
            let expected: Vec<&str> = {
                let mut v: Vec<&str> = durable
                    .iter()
                    .filter(|(pr, _)| *pr == r)
                    .map(|&(_, d)| DOMAINS[d])
                    .collect();
                v.sort_unstable();
                v
            };
            let got: Vec<&str> = entries.iter().map(|(d, _)| d.as_str()).collect();
            prop_assert_eq!(got, expected, "region {} entry set", r);
        }
        // Tasks that were put but never checkpointed before an abort may
        // legitimately be absent — but nothing outside ever_put may appear.
        for r in 0..REGIONS {
            for (domain, _) in reopened.region_entries(r) {
                let d = DOMAINS.iter().position(|&x| x == domain).unwrap();
                prop_assert!(ever_put.contains(&(r, d)), "phantom task ({}, {})", r, domain);
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
