//! Property: over arbitrary interleavings of puts, seals, and reopens,
//! a [`StoreSnapshot`] is always a faithful sealed prefix of the live
//! store — every cell it serves is byte-equal to a direct `Store::get`,
//! it holds exactly the cells durable at the last seal, and snapshots
//! opened mid-ingest (while a writer races puts and seals) never observe
//! a torn index: some complete, verified seal always serves.

use proptest::prelude::*;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use store::{Store, StoreSnapshot};

const REGIONS: u8 = 3;
const DOMAINS: [&str; 8] = [
    "alpha.example",
    "beta.example",
    "gamma.example",
    "delta.example",
    "epsilon.example",
    "zeta.example",
    "eta.example",
    "theta.example",
];

fn tempdir() -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    std::env::temp_dir().join(format!(
        "cookiewall-snap-prop-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ))
}

fn payload(region: u8, domain: &str) -> Vec<u8> {
    format!("sealed result for {domain} from region {region}").into_bytes()
}

/// One scripted step against the store.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Store the result for cell (region, domain index).
    Put(u8, usize),
    /// Seal: flush, then write a new index generation.
    Seal,
    /// Open a snapshot right here and check it against the model.
    Snapshot,
    /// Clean restart (seals on the way down, so the index survives).
    SealAndReopen,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (0u32..10, 0u8..REGIONS, 0usize..DOMAINS.len()).prop_map(|(kind, r, d)| match kind {
        0..5 => Op::Put(r, d),
        5 | 6 => Op::Seal,
        7 | 8 => Op::Snapshot,
        _ => Op::SealAndReopen,
    })
}

/// The model check: a snapshot must hold exactly `sealed`, byte-equal to
/// both the model payload and a direct live-store read.
fn check_snapshot(
    snap: &StoreSnapshot,
    live: &Store,
    sealed: &BTreeMap<(u8, usize), Vec<u8>>,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(snap.len(), sealed.len(), "snapshot holds the sealed set");
    for (&(r, d), bytes) in sealed {
        prop_assert_eq!(
            snap.get(r, DOMAINS[d]),
            Some(bytes.as_slice()),
            "sealed cell ({}, {}) serves verbatim",
            r,
            DOMAINS[d]
        );
        prop_assert_eq!(
            snap.get(r, DOMAINS[d]).map(|b| b.to_vec()),
            live.get(r, DOMAINS[d]),
            "snapshot and live store agree on ({}, {})",
            r,
            DOMAINS[d]
        );
    }
    // Region iteration agrees with point reads.
    for r in 0..REGIONS {
        let mut listed = 0usize;
        snap.for_each_region_entry(r, &mut |domain, bytes| {
            listed += 1;
            let d = DOMAINS.iter().position(|&x| x == domain).unwrap();
            assert_eq!(bytes, &sealed[&(r, d)][..], "iterated cell is verbatim");
        });
        let expected = sealed.keys().filter(|(pr, _)| *pr == r).count();
        prop_assert_eq!(listed, expected, "region {} iteration is complete", r);
    }
    Ok(())
}

proptest! {
    fn snapshots_are_faithful_sealed_prefixes(ops in prop::collection::vec(op_strategy(), 1..32)) {
        let dir = tempdir();
        let _ = std::fs::remove_dir_all(&dir);
        let mut live = Store::create(&dir, REGIONS as usize, &[]).unwrap();

        // Model: everything durable, and the subset visible at the last seal.
        let mut durable: BTreeMap<(u8, usize), Vec<u8>> = BTreeMap::new();
        let mut sealed: BTreeMap<(u8, usize), Vec<u8>> = BTreeMap::new();

        for op in ops {
            match op {
                Op::Put(r, d) => {
                    live.put(r, DOMAINS[d], &payload(r, DOMAINS[d])).unwrap();
                    durable.insert((r, d), payload(r, DOMAINS[d]));
                }
                Op::Seal => {
                    live.seal().unwrap();
                    sealed = durable.clone();
                }
                Op::Snapshot => {
                    let snap = live.snapshot().unwrap();
                    check_snapshot(&snap, &live, &sealed)?;
                }
                Op::SealAndReopen => {
                    live.seal().unwrap();
                    sealed = durable.clone();
                    drop(live);
                    live = Store::open(&dir).unwrap();
                }
            }
        }

        // A final seal makes everything visible, across a reopen too.
        live.seal().unwrap();
        sealed = durable.clone();
        check_snapshot(&live.snapshot().unwrap(), &live, &sealed)?;
        drop(live);
        let reopened = Store::open(&dir).unwrap();
        check_snapshot(&reopened.snapshot().unwrap(), &reopened, &sealed)?;
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// A snapshot of a never-sealed store is empty, not an error.
#[test]
fn never_sealed_store_yields_an_empty_snapshot() {
    let dir = tempdir();
    let _ = std::fs::remove_dir_all(&dir);
    let store = Store::create(&dir, REGIONS as usize, &[]).unwrap();
    store.put(0, DOMAINS[0], b"unsealed").unwrap();
    let snap = store.snapshot().unwrap();
    assert!(snap.is_empty());
    assert_eq!(snap.generation(), 0);
    assert_eq!(
        snap.get(0, DOMAINS[0]),
        None,
        "unsealed cells stay invisible"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Damage one index slot: the other slot still serves, and fsck rewrites
/// both back to health.
#[test]
fn a_damaged_slot_falls_back_to_its_twin() {
    let dir = tempdir();
    let _ = std::fs::remove_dir_all(&dir);
    let store = Store::create(&dir, REGIONS as usize, &[]).unwrap();
    for (d, domain) in DOMAINS.iter().enumerate() {
        store.put(0, domain, &payload(0, domain)).unwrap();
        if d % 3 == 2 {
            store.seal().unwrap();
        }
    }
    let generation = store.seal().unwrap();
    drop(store);

    // The live slot is generation % 2; garbage it.
    let live_slot = dir.join(format!("index-{}.cwi", generation % 2));
    assert!(live_slot.exists(), "seal wrote its slot");
    std::fs::write(&live_slot, b"CWI1 but torn mid-write").unwrap();

    let snap = StoreSnapshot::open(&dir).unwrap();
    assert!(
        snap.generation() < generation,
        "the surviving twin is an older generation"
    );
    for domain in DOMAINS.iter().take(6) {
        assert_eq!(
            snap.get(0, domain),
            Some(&payload(0, domain)[..]),
            "{domain} still serves from the twin slot"
        );
    }

    // fsck rewrites both slots; the full sealed set comes back.
    let report = store::fsck(&dir, &store::FsBackend, false).unwrap();
    assert_eq!(report.index_slots_rewritten, 2);
    let healed = StoreSnapshot::open(&dir).unwrap();
    assert_eq!(healed.len(), DOMAINS.len());
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Mid-ingest snapshots never observe a torn index: while one thread
/// puts and seals as fast as it can, readers open snapshots in a loop —
/// every open must yield a complete, verified seal (never an error, never
/// a half-written slot), with generations moving monotonically forward
/// per reader and every served cell byte-equal to its eventual payload.
#[test]
fn snapshots_mid_ingest_never_observe_a_torn_index() {
    let dir = tempdir();
    let _ = std::fs::remove_dir_all(&dir);
    let store = Store::create(&dir, REGIONS as usize, &[]).unwrap();
    let domains: Vec<String> = (0..48).map(|i| format!("churn-{i}.example")).collect();

    std::thread::scope(|scope| {
        let writer = {
            let store = &store;
            let domains = &domains;
            scope.spawn(move || {
                for (i, domain) in domains.iter().enumerate() {
                    for r in 0..REGIONS {
                        store.put(r, domain, &payload(r, domain)).unwrap();
                    }
                    if i % 4 == 3 {
                        store.seal().unwrap();
                    }
                }
                store.seal().unwrap();
            })
        };
        for _ in 0..3 {
            let store = &store;
            scope.spawn(move || {
                let mut last_generation = 0u64;
                for _ in 0..40 {
                    let snap = store.snapshot().expect("mid-ingest snapshot opens clean");
                    assert!(
                        snap.generation() >= last_generation,
                        "generations never move backwards"
                    );
                    last_generation = snap.generation();
                    for r in 0..REGIONS {
                        snap.for_each_region_entry(r, &mut |domain, bytes| {
                            assert_eq!(bytes, &payload(r, domain)[..], "sealed cell is never torn");
                        });
                    }
                }
            });
        }
        writer.join().unwrap();
    });

    // After the ingest, the final snapshot holds the complete matrix.
    let snap = store.snapshot().unwrap();
    assert_eq!(snap.len(), REGIONS as usize * domains.len());
    std::fs::remove_dir_all(&dir).unwrap();
}
