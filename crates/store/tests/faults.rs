//! Disk-fault battery for the store: backend crash semantics, the
//! deterministic fault trace, fsck quarantine/repair, and an exhaustive
//! crash-point sweep — a crash after *every* mutated byte of a schedule
//! must leave a store that fscks clean, keeps only exact payloads, and
//! recovers to the full set once the missing cells are re-put.

use proptest::test_runner::{run_cases, TestCaseError};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use store::{fsck, quarantine_ledger, DiskFaultConfig, FaultyBackend, MemBackend, Store};

fn mem_dir() -> PathBuf {
    PathBuf::from("/mem/store")
}

fn cell_payload(region: u8, domain: &str) -> Vec<u8> {
    format!("payload for {domain} in region {region}").into_bytes()
}

/// A small deterministic put schedule across two regions.
fn cells() -> Vec<(u8, String, Vec<u8>)> {
    let domains = [
        "alpha.example",
        "bravo.example",
        "charlie.example",
        "delta.example",
        "echo.example",
        "foxtrot.example",
        "golf.example",
        "hotel.example",
    ];
    domains
        .iter()
        .enumerate()
        .map(|(i, d)| {
            let region = (i % 2) as u8;
            (region, d.to_string(), cell_payload(region, d))
        })
        .collect()
}

/// Run the schedule, checkpointing every third put. Returns which cells
/// were covered by a checkpoint that *reported success* before the first
/// error stopped the run.
fn run_schedule(store: &Store, cells: &[(u8, String, Vec<u8>)]) -> Vec<bool> {
    store.set_checkpoint_every(usize::MAX); // only explicit checkpoints
    let mut acked = vec![false; cells.len()];
    let mut done = 0;
    for (i, (region, domain, payload)) in cells.iter().enumerate() {
        if store.put(*region, domain, payload).is_err() {
            break;
        }
        done = i + 1;
        if i % 3 == 2 && store.checkpoint().is_ok() {
            for slot in &mut acked[..done] {
                *slot = true;
            }
        }
    }
    if store.checkpoint().is_ok() {
        for slot in &mut acked[..done] {
            *slot = true;
        }
    }
    acked
}

/// Every payload the store holds must be byte-exact — corruption is
/// dropped at open, never decoded into wrong data.
fn assert_payloads_exact(store: &Store, cells: &[(u8, String, Vec<u8>)]) {
    for (region, domain, payload) in cells {
        if let Some(got) = store.get(*region, domain) {
            assert_eq!(
                &got, payload,
                "stored payload for {domain} must be byte-exact"
            );
        }
    }
}

#[test]
fn mem_backend_models_cache_vs_platter() {
    use store::StorageBackend;
    let mem = MemBackend::default();
    let f = Path::new("/mem/file");
    mem.append_file(f, b"hello").unwrap();
    assert_eq!(mem.read_file(f).unwrap(), b"hello");
    assert_eq!(mem.durable_bytes(f), None, "never synced");
    mem.sync_file(f).unwrap();
    assert_eq!(mem.durable_bytes(f).as_deref(), Some(b"hello".as_ref()));
    mem.append_file(f, b" world").unwrap();
    mem.crash();
    assert_eq!(
        mem.read_file(f).unwrap(),
        b"hello",
        "crash reverts to the synced image"
    );
    let g = Path::new("/mem/unsynced");
    mem.write_file(g, b"gone").unwrap();
    mem.crash();
    assert!(!mem.file_exists(g), "unsynced files vanish on crash");
}

#[test]
fn lying_fsync_is_only_observable_through_a_crash() {
    use store::StorageBackend;
    let mem = Arc::new(MemBackend::default());
    // rate 1.0: every sync through the faulty layer lies.
    let faulty = FaultyBackend::new(mem.clone(), DiskFaultConfig { seed: 9, rate: 1.0 });
    let f = Path::new("/mem/lied-to");
    mem.append_file(f, b"important").unwrap();
    faulty.sync_file(f).unwrap(); // reports success, syncs nothing
    assert!(faulty
        .trace()
        .iter()
        .any(|line| line.starts_with("lying-fsync")));
    assert_eq!(mem.read_file(f).unwrap(), b"important", "no crash, no harm");
    mem.crash();
    assert!(
        !mem.file_exists(f),
        "the lie surfaces on crash: the file was never durable"
    );
}

#[test]
fn fault_trace_is_a_pure_function_of_the_seed() {
    use store::StorageBackend;
    let schedule = |seed: u64| {
        let mem = Arc::new(MemBackend::default());
        let faulty = FaultyBackend::new(mem, DiskFaultConfig { seed, rate: 0.5 });
        for i in 0..32u32 {
            let path = PathBuf::from(format!("/mem/f{}", i % 4));
            let _ = faulty.append_file(&path, format!("bytes-{i}").as_bytes());
            let _ = faulty.sync_file(&path);
            let _ = faulty.read_file(&path);
        }
        faulty.trace()
    };
    let a = schedule(42);
    assert_eq!(a, schedule(42), "same seed, same schedule, same trace");
    assert!(!a.is_empty(), "rate 0.5 over 96 ops must inject something");
    assert_ne!(a, schedule(43), "a different seed reshuffles the faults");
}

#[test]
fn fault_mix_covers_every_kind() {
    use store::StorageBackend;
    let mem = Arc::new(MemBackend::default());
    let faulty = FaultyBackend::new(mem.clone(), DiskFaultConfig { seed: 7, rate: 1.0 });
    for i in 0..64u32 {
        let path = PathBuf::from(format!("/mem/mix{i}"));
        mem.write_file(&path, b"seed content").unwrap();
        let _ = faulty.append_file(&path, b"appended payload");
        let _ = faulty.read_file(&path);
        let _ = faulty.sync_file(&path);
    }
    let trace = faulty.trace().join("\n");
    for kind in [
        "torn-write",
        "bit-rot",
        "enospc",
        "short-read",
        "lying-fsync",
    ] {
        assert!(trace.contains(kind), "expected a {kind} fault in:\n{trace}");
    }
}

#[test]
fn fsck_quarantines_exactly_the_corrupt_cell() {
    let dir = std::env::temp_dir().join(format!("cookiewall-fsck-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = Store::create(&dir, 2, &[]).unwrap();
    let cells = cells();
    for (region, domain, payload) in &cells {
        store.put(*region, domain, payload).unwrap();
    }
    store.checkpoint().unwrap();
    drop(store);

    // Flip one byte in the middle of region 0's shard: exactly one cell's
    // payload hash breaks.
    let shard = dir.join("shards").join("shard-0.bin");
    let mut bytes = std::fs::read(&shard).unwrap();
    let hit = bytes.len() / 2;
    bytes[hit] ^= 0x40;
    std::fs::write(&shard, &bytes).unwrap();

    let backend = store::FsBackend;
    let dry = fsck(&dir, &backend, true).unwrap();
    assert_eq!(dry.quarantined.len(), 1, "exactly one cell is damaged");
    assert_eq!(dry.quarantined[0].fault, "corrupt");
    assert!(!dry.repaired, "dry run writes nothing");
    assert!(dry.to_json().contains("\"quarantined_cells\": 1"));

    let report = fsck(&dir, &backend, false).unwrap();
    assert!(report.repaired);
    let bad = (
        report.quarantined[0].region,
        report.quarantined[0].domain.clone(),
    );
    assert_eq!(
        quarantine_ledger(&dir, &backend).unwrap(),
        vec![bad.clone()],
        "the sidecar records the lost cell"
    );

    // After repair the store is clean and holds every other cell exactly.
    let clean = fsck(&dir, &backend, false).unwrap();
    assert!(clean.is_clean(), "{}", clean.render());
    let store = Store::open(&dir).unwrap();
    assert_eq!(store.len(), cells.len() - 1);
    assert!(!store.contains(bad.0, &bad.1));
    assert_payloads_exact(&store, &cells);

    // A resumed crawl re-fetches the quarantined cell; the healed store
    // then fscks clean with the stale sidecar entry superseded.
    let payload = cells
        .iter()
        .find(|(r, d, _)| (*r, d.clone()) == bad)
        .map(|(_, _, p)| p.clone())
        .unwrap();
    assert!(store.put(bad.0, &bad.1, &payload).unwrap());
    store.checkpoint().unwrap();
    drop(store);
    let store = Store::open(&dir).unwrap();
    assert_eq!(store.len(), cells.len());
    assert_payloads_exact(&store, &cells);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn fsck_drops_bad_records_superseded_by_a_recrawl() {
    let dir = std::env::temp_dir().join(format!("cookiewall-fsck-sup-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = Store::create(&dir, 1, &[]).unwrap();
    store.put(0, "only.example", b"original bytes").unwrap();
    store.checkpoint().unwrap();
    drop(store);

    let shard = dir.join("shards").join("shard-0.bin");
    let mut bytes = std::fs::read(&shard).unwrap();
    bytes[3] ^= 0x01;
    std::fs::write(&shard, &bytes).unwrap();

    // Reopen (the damaged cell is skipped) and re-crawl it *before* any
    // fsck ran — the later valid record shadows the corrupt one.
    let store = Store::open(&dir).unwrap();
    assert!(!store.contains(0, "only.example"));
    assert!(store.put(0, "only.example", b"original bytes").unwrap());
    store.checkpoint().unwrap();
    drop(store);

    let backend = store::FsBackend;
    let report = fsck(&dir, &backend, false).unwrap();
    assert_eq!(
        report.quarantined.len(),
        0,
        "a re-crawled cell is healed, not lost"
    );
    assert_eq!(report.superseded_dropped, 1, "the stale record is dropped");
    assert!(report.repaired);
    let clean = fsck(&dir, &backend, false).unwrap();
    assert!(clean.is_clean(), "{}", clean.render());
    let store = Store::open(&dir).unwrap();
    assert_eq!(
        store.get(0, "only.example").as_deref(),
        Some(b"original bytes".as_ref())
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The tentpole invariant, store-level: crash after every single mutated
/// byte of the schedule; each crash state must fsck into a store whose
/// payloads are exact, whose acked checkpoints survived, and which
/// returns to the full set after re-putting the missing cells.
#[test]
fn every_crash_point_recovers_to_an_exact_store() {
    let dir = mem_dir();
    let cells = cells();

    // Pass 1, no crash: create the store durably, run the schedule once
    // to learn the total mutation-clock bytes it exposes.
    let mem = Arc::new(MemBackend::default());
    Store::create_with(&dir, 2, &[], mem.clone()).unwrap();
    let probe = Arc::new(FaultyBackend::new(mem.clone(), DiskFaultConfig::noop()));
    {
        let store = Store::open_with(&dir, probe.clone()).unwrap();
        let acked = run_schedule(&store, &cells);
        assert!(acked.iter().all(|&a| a), "fault-free run acks everything");
    }
    let total = probe.mutated_bytes();
    assert!(total > 0, "schedule must exercise the mutation clock");

    for crash_at in 1..=total {
        let mem = Arc::new(MemBackend::default());
        Store::create_with(&dir, 2, &[], mem.clone()).unwrap();
        let faulty = Arc::new(FaultyBackend::with_crash_point(
            mem.clone(),
            DiskFaultConfig::noop(),
            Some(crash_at),
        ));
        let acked = {
            let store = Store::open_with(&dir, faulty.clone()).unwrap();
            run_schedule(&store, &cells)
        };
        assert!(faulty.crashed(), "crash point {crash_at}/{total} must fire");

        // Power loss: unsynced bytes vanish; then scrub and reopen.
        mem.crash();
        fsck(&dir, mem.as_ref(), false)
            .unwrap_or_else(|e| panic!("fsck after crash at {crash_at}: {e}"));
        let store = Store::open_with(&dir, mem.clone())
            .unwrap_or_else(|e| panic!("reopen after crash at {crash_at}: {e}"));
        assert_payloads_exact(&store, &cells);
        for (i, (region, domain, _)) in cells.iter().enumerate() {
            if acked[i] {
                assert!(
                    store.contains(*region, domain),
                    "cell {domain} was acked by a checkpoint before the crash \
                     at {crash_at} but did not survive"
                );
            }
        }

        // Re-put whatever was lost: the store must return to full size.
        for (region, domain, payload) in &cells {
            if !store.contains(*region, domain) {
                store.put(*region, domain, payload).unwrap();
            }
        }
        store.checkpoint().unwrap();
        drop(store);
        let store = Store::open_with(&dir, mem.clone()).unwrap();
        assert_eq!(
            store.len(),
            cells.len(),
            "full set after crash at {crash_at}"
        );
        assert_payloads_exact(&store, &cells);
    }
}

/// Random disk chaos (no crash): whatever mix of torn writes, bit rot,
/// ENOSPC, short reads, and lying fsyncs a seed injects, the store never
/// serves a wrong byte, and a scrub + re-put round-trip heals it.
#[test]
fn random_disk_chaos_never_corrupts_a_served_payload() {
    run_cases("store_disk_chaos", |rng| {
        let seed = rng.next_u64();
        let rate = 0.05 + rng.unit_f64() * 0.25;
        let inputs = format!("seed={seed:#x} rate={rate:.3}");

        let dir = mem_dir();
        let cells = cells();
        let mem = Arc::new(MemBackend::default());
        Store::create_with(&dir, 2, &[], mem.clone()).unwrap();
        let faulty = Arc::new(FaultyBackend::new(
            mem.clone(),
            DiskFaultConfig { seed, rate },
        ));
        match Store::open_with(&dir, faulty.clone()) {
            Ok(store) => {
                let _ = run_schedule(&store, &cells);
            }
            Err(_) => {
                // A short read of the meta file can fail the open itself;
                // that seed still must leave a scrubbable store behind.
            }
        }

        // Scrub and reopen on the clean backend (the faults were the
        // disk's, not the files').
        if let Err(e) = fsck(&dir, mem.as_ref(), false) {
            return (
                inputs,
                Err(TestCaseError::fail(format!("fsck failed: {e}"))),
            );
        }
        let store = match Store::open_with(&dir, mem.clone()) {
            Ok(s) => s,
            Err(e) => {
                return (
                    inputs,
                    Err(TestCaseError::fail(format!("reopen failed: {e}"))),
                )
            }
        };
        for (region, domain, payload) in &cells {
            if let Some(got) = store.get(*region, domain) {
                if &got != payload {
                    return (
                        inputs,
                        Err(TestCaseError::fail(format!(
                            "payload for {domain} corrupted in place"
                        ))),
                    );
                }
            }
        }
        for (region, domain, payload) in &cells {
            if !store.contains(*region, domain) {
                store.put(*region, domain, payload).unwrap();
            }
        }
        store.checkpoint().unwrap();
        drop(store);
        let store = Store::open_with(&dir, mem).unwrap();
        if store.len() != cells.len() {
            return (
                inputs,
                Err(TestCaseError::fail("re-puts did not restore the full set")),
            );
        }
        (inputs, Ok(()))
    });
}
