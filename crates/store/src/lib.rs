//! # store — the persistent crawl store
//!
//! A content-addressed, sharded on-disk store for completed crawl task
//! results, with a write-ahead journal so an interrupted sweep can resume
//! and recompute only the missing `(region, domain)` cells.
//!
//! ## On-disk layout
//!
//! ```text
//! <dir>/meta               key=value text: format, region count, and the
//!                          caller's configuration fingerprint
//! <dir>/journal.wal        append-only journal, one record per stored task
//! <dir>/shards/shard-N.bin raw payload bytes for region index N
//! <dir>/index-S.cwi        double-buffered sealed-view index slots
//!                          (see [`index`] — the `CWI1` contract)
//! <dir>/note-<name>        free-form text attachments (epoch summaries)
//! <dir>/quarantine         fsck's sidecar of damaged cells (see below)
//! ```
//!
//! Each journal record carries the task key (region index + domain), the
//! payload's byte offset and length in its region shard, the payload's
//! [`content_hash`], and a trailing hash of the record bytes themselves
//! (see [`journal`]). [`Store::open`] replays the journal tolerantly:
//! every record is verified against the shard bytes actually on disk —
//! a payload is never handed back (let alone decoded) unless its hash
//! matches — and a record that is torn (its shard bytes never landed) or
//! corrupt (bit rot) is *skipped*, not fatal to the records after it. An
//! unparseable journal tail is truncated away; unparseable runs in the
//! middle are skipped when a later record resyncs. Partial recovery is
//! reported on stderr, and `cookiewall-study fsck` ([`fsck`]) turns the
//! same classification into repair: damaged cells are quarantined into a
//! sidecar file and dropped from the journal, so a resumed crawl
//! re-fetches exactly those cells.
//!
//! ## Storage backends
//!
//! Every byte of store IO flows through a [`StorageBackend`]
//! ([`FsBackend`] by default — the real filesystem). [`MemBackend`]
//! models the page-cache/platter split with an explicit
//! [`MemBackend::crash`], and [`FaultyBackend`] injects deterministic
//! disk chaos (torn writes, short reads, ENOSPC, lying fsyncs, bit rot,
//! byte-level crash points) for the crash-point fuzzer and the CLI's
//! `--disk-fault-*` flags.
//!
//! ## Sharded write path
//!
//! The in-memory side is split into [`STRIPES`] stripes keyed by
//! `fnv1a(domain) % STRIPES`: concurrent `put`s on domains that hash to
//! different stripes never contend on a common mutex, so a 64-worker
//! sweep does not serialize on one `Mutex<Inner>`. Each stripe owns the
//! index slice for its domains plus the list of puts accepted since the
//! last flush. Flushing drains the stripes in deterministic stripe order
//! (then arrival order within a stripe), allocates shard offsets and
//! encodes journal records under a single small `queue` mutex, and hands
//! the bytes to the disk side — so for any fixed sequence of stripe
//! states the journal bytes are a pure function of that sequence, and
//! per-region shard offsets stay monotone in journal order.
//!
//! ## Durability model
//!
//! Puts are buffered in memory and flushed by [`Store::checkpoint`], which
//! runs automatically every [`Store::set_checkpoint_every`] puts (shard
//! bytes are written before the journal records that reference them, so the
//! journal never points past a shard's end on a clean flush; each file is
//! synced through the backend after its append). Dropping the store
//! without a checkpoint abandons the buffered tail — exactly what a
//! `Ctrl-C` or a crash does — and the exactly-once property tests pin that
//! a reopened store holds precisely the checkpointed puts, no more, no
//! fewer, no duplicates.
//!
//! Checkpointing is pipelined: an auto-checkpoint triggered by `put`
//! stages its bytes and only *tries* to take the disk-writer lock. If
//! another thread is already appending, the staged bytes are left for
//! that writer (which re-drains the queue before releasing the lock) and
//! the putting worker returns immediately — writers never wait on disk.
//! An explicit [`Store::checkpoint`] still blocks until everything
//! staged is durable, which is what its callers rely on.
//!
//! A flush that fails midway (disk full, permission error) does not lose
//! the buffered tail either: the unwritten bytes stay queued on the disk
//! side, the error is returned to the caller, and the next checkpoint
//! first truncates any partially-appended file back to its last durable
//! byte, then retries the queued bytes ahead of newer buffers — so the
//! shard offsets already encoded into journal records stay valid
//! across a transient IO error.
//!
//! ## Sealed reads
//!
//! [`Store::seal`] (run by every [`Store::checkpoint`]) freezes the
//! durable prefix of every shard and describes it in a double-buffered,
//! FNV-checksummed index file (the `CWI1` contract, see [`index`]).
//! [`StoreSnapshot`] opens that sealed view straight from disk — it
//! never takes the writer's stripe/queue/io locks, so an always-on query
//! service reads at full speed while a new epoch ingests. The
//! [`StoreRead`] trait is the common read surface of the live store and
//! the snapshot.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backend;
mod index;
mod journal;
mod recovery;
mod snapshot;
mod stripe;

pub use backend::{DiskFaultConfig, FaultyBackend, FsBackend, MemBackend, StorageBackend};
pub use recovery::{fsck, quarantine_ledger, FsckReport, QuarantinedCell};
pub use snapshot::StoreSnapshot;
pub use stripe::STRIPES;

use httpsim::content_hash;
use index::{encode_index, slot_path, IndexEntry, SlotState, INDEX_SLOTS};
use journal::{encode_record, shard_path, JOURNAL_FILE, META_FILE, SHARD_DIR};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use stripe::{stripe_of, DiskState, FlushQueue, LedgerEntry, Stripe};

/// Default auto-checkpoint cadence (puts between flushes).
pub const DEFAULT_CHECKPOINT_EVERY: usize = 64;

/// The read surface shared by the live [`Store`] and the sealed
/// [`StoreSnapshot`]: report aggregation, the longitudinal diff, and the
/// query evaluators are written against this trait so the same code
/// answers from either.
pub trait StoreRead {
    /// Number of region shards.
    fn regions(&self) -> usize;

    /// Look up one meta value.
    fn meta_value(&self, key: &str) -> Option<&str>;

    /// Read back a note (see [`Store::write_note`]).
    fn read_note(&self, name: &str) -> io::Result<Option<String>>;

    /// Fetch one stored payload (cloned), or `None` when absent.
    fn payload(&self, region: u8, domain: &str) -> Option<Vec<u8>>;

    /// Visit every `(domain, payload)` of one region in domain order
    /// without materializing the region into a vector. The callback
    /// must not call back into the same store.
    fn for_each_region_entry(&self, region: u8, f: &mut dyn FnMut(&str, &[u8]));
}

/// Seal-side state, guarded by `Store::seal_state`: the next index
/// generation and what the previous seal looked like.
struct SealState {
    /// Generation the next seal will write.
    next_generation: u64,
    /// `(region, domain) → (segment, offset)` as last sealed: a cell
    /// keeps its segment as long as its offset is unchanged, so epoch
    /// tooling can tell stable cells from rewritten ones.
    segments: BTreeMap<(u8, String), (u64, u64)>,
    /// `(ledger length, durable shard lengths)` at the last seal — when
    /// unchanged, sealing again skips the slot write entirely.
    fingerprint: Option<(usize, Vec<u64>)>,
}

/// The persistent crawl store. Thread-safe: workers `put` concurrently.
///
/// Lock order (see DESIGN.md §8): a stripe mutex is never held while
/// taking `queue`, `queue` is never held while taking `io`, and the
/// reverse orders never occur — the may-hold-while-acquiring graph is
/// `io → queue` plus `seal_state → io` (a seal briefly reads the disk
/// watermarks), which stays acyclic.
pub struct Store {
    dir: PathBuf,
    regions: usize,
    meta: Vec<(String, String)>,
    /// `meta` as a map, built once at create/open so resume validation
    /// does not linear-scan per lookup.
    meta_map: BTreeMap<String, String>,
    /// Every byte of disk IO goes through here; [`FsBackend`] by default.
    backend: Arc<dyn StorageBackend>,
    checkpoint_every: AtomicUsize,
    /// In-memory side, sharded by `stripe_of` so `put`/`get` on
    /// different domains never serialize on a common mutex.
    stripes: Vec<Mutex<Stripe>>,
    /// Puts accepted since a flush was last triggered (across stripes);
    /// drives the auto-checkpoint cadence without a shared buffer lock.
    pending: AtomicUsize,
    /// Offset allocator and staging area between the stripes and the
    /// disk side: flushes drain stripes in stripe order, then assign
    /// shard offsets and encode journal records under this one small
    /// mutex, so journal bytes are a pure function of the drained
    /// sequence and per-region offsets stay monotone in journal order.
    queue: Mutex<FlushQueue>,
    /// True while any bytes sit staged in `queue` or queued for retry in
    /// [`DiskState`] — lets a checkpoint with nothing buffered return
    /// without touching `io`. Set under the `queue` lock when staging;
    /// cleared under the `queue` lock only after the writer confirms
    /// both sides empty, so staged bytes can never be stranded behind a
    /// checkpoint that thinks it has nothing to do.
    flush_pending: AtomicBool,
    /// Disk-side flush state. Single on purpose: one appender at a time
    /// keeps file appends in the same order as their journal offsets.
    /// Writers never *wait* here — an auto-checkpoint only `try_lock`s,
    /// leaving its staged bytes to the in-flight writer, which re-drains
    /// the queue before releasing the lock.
    io: Mutex<DiskState>,
    /// Seal-side state: one sealer at a time writes index slots, so slot
    /// generations stay monotone and the double-buffer invariant (the
    /// newest two sealed views live in different slots) holds.
    seal_state: Mutex<SealState>,
}

impl Store {
    /// Create a fresh store at `dir` for `regions` shards, recording the
    /// caller's `meta` pairs. Fails if a store already exists there.
    pub fn create(dir: &Path, regions: usize, meta: &[(String, String)]) -> io::Result<Store> {
        Store::create_with(dir, regions, meta, Arc::new(FsBackend))
    }

    /// [`Store::create`] on an explicit storage backend.
    pub fn create_with(
        dir: &Path,
        regions: usize,
        meta: &[(String, String)],
        backend: Arc<dyn StorageBackend>,
    ) -> io::Result<Store> {
        if regions == 0 || regions > u8::MAX as usize {
            return Err(invalid("region count must be in 1..=255"));
        }
        if backend.file_exists(&dir.join(META_FILE)) {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                format!("a store already exists at {}", dir.display()),
            ));
        }
        backend.create_dir_all(&dir.join(SHARD_DIR))?;
        let mut pairs = vec![
            ("format".to_string(), "1".to_string()),
            ("regions".to_string(), regions.to_string()),
        ];
        for (k, v) in meta {
            if k.is_empty() || k.contains('=') || k.contains('\n') || v.contains('\n') {
                return Err(invalid("meta keys/values must be single-line, '='-free"));
            }
            if k == "format" || k == "regions" {
                return Err(invalid("meta keys 'format' and 'regions' are reserved"));
            }
            pairs.push((k.clone(), v.clone()));
        }
        let text: String = pairs.iter().map(|(k, v)| format!("{k}={v}\n")).collect();
        let meta_path = dir.join(META_FILE);
        backend.write_file(&meta_path, text.as_bytes())?;
        backend.sync_file(&meta_path)?;
        Ok(Store {
            dir: dir.to_path_buf(),
            regions,
            meta_map: pairs.iter().cloned().collect(),
            meta: pairs,
            backend,
            checkpoint_every: AtomicUsize::new(DEFAULT_CHECKPOINT_EVERY),
            stripes: (0..STRIPES).map(|_| Mutex::new(Stripe::new())).collect(),
            pending: AtomicUsize::new(0),
            queue: Mutex::new(FlushQueue::new(vec![0; regions])),
            flush_pending: AtomicBool::new(false),
            io: Mutex::new(DiskState::new(vec![0; regions], 0, Vec::new())),
            seal_state: Mutex::new(SealState {
                next_generation: 1,
                segments: BTreeMap::new(),
                fingerprint: None,
            }),
        })
    }

    /// Open an existing store, replaying the journal. Recovery is
    /// tolerant: a torn or corrupt cell is skipped (and reported on
    /// stderr), never decoded, and never fatal to the cells after it; an
    /// unparseable journal tail is truncated away so the next open is
    /// clean. See [`fsck`] for turning skipped cells into quarantine.
    pub fn open(dir: &Path) -> io::Result<Store> {
        Store::open_with(dir, Arc::new(FsBackend))
    }

    /// [`Store::open`] on an explicit storage backend.
    pub fn open_with(dir: &Path, backend: Arc<dyn StorageBackend>) -> io::Result<Store> {
        let (meta, regions) = read_store_config(dir, backend.as_ref())?;
        let (journal, shards) = recovery::read_journal_and_shards(dir, backend.as_ref(), regions)?;
        let replay = recovery::replay(&journal, &shards);

        // One structured line so operators see partial recovery happened
        // (the journal replay itself is silent about what it skips).
        let damage = replay.torn_cells + replay.corrupt_cells > 0 || replay.gap_bytes > 0;
        if damage || replay.torn_tail.is_some() {
            let (tail_offset, tail_bytes) = replay.torn_tail.unwrap_or((replay.keep_len, 0));
            eprintln!(
                "store: partial recovery at {}: skipped {} torn + {} corrupt cell(s), \
                 {} mid-journal gap byte(s), truncated {} torn tail byte(s) at offset {} \
                 — run `cookiewall-study fsck` to quarantine",
                dir.display(),
                replay.torn_cells,
                replay.corrupt_cells,
                replay.gap_bytes,
                tail_bytes,
                tail_offset,
            );
        }

        // Repair on disk: drop the unparseable journal tail and any
        // orphan shard bytes (payloads flushed whose journal record
        // never landed). Skipped-but-parseable records stay until fsck.
        if replay.torn_tail.is_some() {
            let journal_path = dir.join(JOURNAL_FILE);
            backend.truncate_file(&journal_path, replay.keep_len)?;
            backend.sync_file(&journal_path)?;
        }
        for (r, shard) in shards.iter().enumerate().take(regions) {
            if (shard.len() as u64) > replay.high_water[r] {
                let path = shard_path(dir, r as u8);
                backend.truncate_file(&path, replay.high_water[r])?;
                backend.sync_file(&path)?;
            }
        }

        // Distribute the replayed index across the domain-hash stripes.
        let mut stripes: Vec<Stripe> = (0..STRIPES).map(|_| Stripe::new()).collect();
        for ((region, domain), payload) in replay.index {
            let s = stripe_of(&domain);
            stripes[s].index.insert((region, domain), payload);
        }

        // Resume the seal sequence from the newest valid index slot, so
        // new seals keep strictly newer generations than what readers
        // may already hold. Damaged or missing slots just restart the
        // sequence past whatever is still valid.
        let slots = index::read_slots(dir, backend.as_ref(), regions)?;
        let best = slots
            .iter()
            .filter_map(|s| match s {
                SlotState::Valid(file) => Some(file),
                _ => None,
            })
            .max_by_key(|file| file.generation);
        let segments = best
            .map(|file| {
                file.entries
                    .iter()
                    .map(|e| ((e.region, e.domain.clone()), (e.segment, e.offset)))
                    .collect()
            })
            .unwrap_or_default();
        let next_generation = best.map(|file| file.generation).unwrap_or(0) + 1;

        Ok(Store {
            dir: dir.to_path_buf(),
            regions,
            meta_map: meta.iter().cloned().collect(),
            meta,
            backend,
            checkpoint_every: AtomicUsize::new(DEFAULT_CHECKPOINT_EVERY),
            stripes: stripes.into_iter().map(Mutex::new).collect(),
            pending: AtomicUsize::new(0),
            queue: Mutex::new(FlushQueue::new(replay.high_water.clone())),
            flush_pending: AtomicBool::new(false),
            io: Mutex::new(DiskState::new(
                replay.high_water,
                replay.keep_len,
                replay.ledger,
            )),
            seal_state: Mutex::new(SealState {
                next_generation,
                segments,
                fingerprint: None,
            }),
        })
    }

    /// Directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of region shards.
    pub fn regions(&self) -> usize {
        self.regions
    }

    /// All meta pairs, including the reserved `format`/`regions` entries.
    pub fn meta(&self) -> &[(String, String)] {
        &self.meta
    }

    /// Look up one meta value (map lookup — the map is built once at
    /// create/open).
    pub fn meta_value(&self, key: &str) -> Option<&str> {
        self.meta_map.get(key).map(|v| v.as_str())
    }

    /// Change the auto-checkpoint cadence (puts between flushes); 0 means
    /// flush on every put.
    pub fn set_checkpoint_every(&self, every: usize) {
        self.checkpoint_every.store(every, Ordering::Relaxed);
    }

    /// Store one completed task result. Returns `Ok(false)` without
    /// writing anything when the key is already present (exactly-once:
    /// a result is never duplicated or overwritten). Only the domain's
    /// own stripe is locked, so concurrent puts on different domains
    /// never serialize; when the auto-checkpoint cadence is reached the
    /// flush is pipelined and does not wait on an in-flight disk write.
    pub fn put(&self, region: u8, domain: &str, payload: &[u8]) -> io::Result<bool> {
        if (region as usize) >= self.regions {
            return Err(invalid("region index out of range"));
        }
        if domain.len() > u16::MAX as usize {
            return Err(invalid("domain too long for a journal record"));
        }
        {
            let mut stripe = self.stripes[stripe_of(domain)].lock();
            let key = (region, domain.to_string());
            if stripe.index.contains_key(&key) {
                return Ok(false);
            }
            stripe
                .fresh
                .push((region, domain.to_string(), payload.to_vec()));
            stripe.index.insert(key, payload.to_vec());
        }
        let pending = self.pending.fetch_add(1, Ordering::AcqRel) + 1;
        if pending >= self.checkpoint_every.load(Ordering::Relaxed).max(1) {
            self.pending.store(0, Ordering::Release);
            self.flush(false)?;
        }
        Ok(true)
    }

    /// Fetch a stored payload.
    // lint:allow(r9) — the (region, domain) tuple key forces an owned String per lookup; borrowed-key lookup is scoped into the ROADMAP item 1 arena work
    pub fn get(&self, region: u8, domain: &str) -> Option<Vec<u8>> {
        self.stripes[stripe_of(domain)]
            .lock()
            .index
            .get(&(region, domain.to_string()))
            .cloned()
    }

    /// Is this task already stored?
    // lint:allow(r9) — the (region, domain) tuple key forces an owned String per lookup; borrowed-key lookup is scoped into the ROADMAP item 1 arena work
    pub fn contains(&self, region: u8, domain: &str) -> bool {
        self.stripes[stripe_of(domain)]
            .lock()
            .index
            .contains_key(&(region, domain.to_string()))
    }

    /// Total stored task results across all regions.
    pub fn len(&self) -> usize {
        (0..STRIPES)
            .map(|i| self.stripes[i].lock().index.len())
            .sum()
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All `(domain, payload)` entries of one region, in domain order.
    /// Prefer [`Store::for_each_region_entry`] when the payloads are
    /// consumed on the spot — it borrows instead of cloning the region.
    pub fn region_entries(&self, region: u8) -> Vec<(String, Vec<u8>)> {
        let mut entries: Vec<(String, Vec<u8>)> = Vec::new();
        self.for_each_region_entry(region, &mut |domain, payload| {
            entries.push((domain.to_string(), payload.to_vec()));
        });
        entries
    }

    /// Visit every `(domain, payload)` of one region in domain order,
    /// borrowing each payload instead of cloning the whole region into a
    /// `Vec`. Domains are collected first (one stripe lock at a time),
    /// then each payload is borrowed under its own stripe's lock — no
    /// two stripe locks are ever held together, and a cell put
    /// concurrently with the walk is either visited or not, exactly as
    /// if the walk ran before or after the put. The callback must not
    /// call back into the same store.
    pub fn for_each_region_entry(&self, region: u8, f: &mut dyn FnMut(&str, &[u8])) {
        let mut domains: Vec<String> = Vec::new();
        for i in 0..STRIPES {
            let stripe = self.stripes[i].lock();
            domains.extend(
                stripe
                    .index
                    .keys()
                    .filter(|(r, _)| *r == region)
                    .map(|(_, d)| d.clone()),
            );
        }
        domains.sort_unstable();
        for domain in domains {
            let key = (region, domain);
            let stripe = self.stripes[stripe_of(&key.1)].lock();
            if let Some(payload) = stripe.index.get(&key) {
                f(&key.1, payload);
            }
        }
    }

    /// Flush every buffered put to disk, wait until it is durable, then
    /// seal the durable prefix into the on-disk index so readers can
    /// open it as a [`StoreSnapshot`]. Shard bytes land before the
    /// journal records that reference them, so a crash between the two
    /// leaves orphan shard bytes (reclaimed on open), never a journal
    /// record pointing past its shard. On failure nothing is lost: the
    /// unwritten bytes stay queued and the next checkpoint retries them
    /// (see the module docs on the durability model).
    pub fn checkpoint(&self) -> io::Result<()> {
        self.seal().map(|_| ())
    }

    /// Flush, then write a sealed index slot describing every durable
    /// cell (the `CWI1` contract, see [`index`]). Returns the sealed
    /// generation. Sealing an unchanged store skips the slot write and
    /// returns the previous generation. One sealer runs at a time; the
    /// slot written alternates with the generation, so the newest two
    /// sealed views always live in different slots and a torn slot
    /// write can only damage the older one.
    pub fn seal(&self) -> io::Result<u64> {
        self.pending.store(0, Ordering::Release);
        self.flush(true)?;
        let mut seal = self.seal_state.lock();
        // Briefly read the durable state under `io`; `seal_state → io`
        // is the only new lock-order edge and nothing blocks while both
        // are held.
        let (ledger, sealed_len) = {
            let disk = self.io.lock();
            (disk.ledger.clone(), disk.durable_shard.clone())
        };
        let fingerprint = (ledger.len(), sealed_len.clone());
        if seal.fingerprint.as_ref() == Some(&fingerprint) {
            return Ok(seal.next_generation - 1);
        }
        let generation = seal.next_generation;
        // Last-wins over the ledger (a re-crawled cell shadows its
        // quarantined predecessor), then keep the previous segment for
        // cells whose offset is unchanged.
        let mut cells: BTreeMap<(u8, String), (u64, u32, u64)> = BTreeMap::new();
        for entry in &ledger {
            cells.insert(
                (entry.region, entry.domain.clone()),
                (entry.offset, entry.len, entry.payload_hash),
            );
        }
        let entries: Vec<IndexEntry> = cells
            .into_iter()
            .map(|((region, domain), (offset, len, payload_hash))| {
                let segment = match seal.segments.get(&(region, domain.clone())) {
                    Some(&(seg, sealed_offset)) if sealed_offset == offset => seg,
                    _ => generation,
                };
                IndexEntry {
                    region,
                    domain,
                    segment,
                    offset,
                    len,
                    payload_hash,
                }
            })
            .collect();
        let bytes = encode_index(generation, &sealed_len, &entries);
        let path = slot_path(&self.dir, (generation % INDEX_SLOTS as u64) as usize);
        // lint:allow(blocking-under-lock) — `seal_state` exists solely to order slot writes
        self.backend.write_file(&path, &bytes)?;
        // lint:allow(blocking-under-lock) — `seal_state` exists solely to order slot writes
        self.backend.sync_file(&path)?;
        seal.segments = entries
            .into_iter()
            .map(|e| ((e.region, e.domain), (e.segment, e.offset)))
            .collect();
        seal.next_generation += 1;
        seal.fingerprint = Some(fingerprint);
        Ok(generation)
    }

    /// Open the sealed view this store last wrote, reading only from
    /// disk — the snapshot shares no lock with the writer.
    pub fn snapshot(&self) -> io::Result<StoreSnapshot> {
        StoreSnapshot::open_with(&self.dir, Arc::clone(&self.backend))
    }

    /// Drain every stripe's fresh puts in deterministic stripe order,
    /// stage them (offset allocation + journal encoding) under `queue`,
    /// and hand them to the disk writer. With `wait` the caller blocks
    /// until the staged bytes are durable; without it the disk lock is
    /// only tried — when another thread is mid-append the staged bytes
    /// are left for that writer, which re-drains the queue before
    /// releasing `io`, and this thread returns immediately. When nothing
    /// is buffered, staged, or queued for retry, returns without
    /// touching `io` at all.
    fn flush(&self, wait: bool) -> io::Result<()> {
        let mut entries: Vec<(u8, String, Vec<u8>)> = Vec::new();
        for i in 0..STRIPES {
            let mut stripe = self.stripes[i].lock();
            entries.append(&mut stripe.fresh);
        }
        if entries.is_empty() && !self.flush_pending.load(Ordering::Acquire) {
            return Ok(());
        }
        if !entries.is_empty() {
            let mut q = self.queue.lock();
            for (region, domain, payload) in &entries {
                let r = *region as usize;
                let offset = q.shard_len[r];
                q.staged_shards[r].extend_from_slice(payload);
                q.shard_len[r] += payload.len() as u64;
                let record = encode_record(*region, domain, offset, payload);
                q.staged_journal.extend_from_slice(&record);
                q.staged_ledger.push(LedgerEntry {
                    region: *region,
                    domain: domain.clone(),
                    offset,
                    len: payload.len() as u32,
                    payload_hash: content_hash(payload),
                });
            }
            // Set while still holding `queue` so the writer's
            // confirm-empty check can never miss these bytes.
            self.flush_pending.store(true, Ordering::Release);
        }
        if wait {
            let mut disk = self.io.lock();
            // lint:allow(blocking-under-lock) — `io` exists solely to order these appends
            self.write_out(&mut disk)
        } else {
            match self.io.try_lock() {
                Some(mut disk) => self.write_out(&mut disk),
                // An in-flight writer holds `io`; it re-drains the queue
                // before releasing, so our staged bytes are its problem.
                None => Ok(()),
            }
        }
    }

    /// The disk writer, run with `io` held: move staged bytes into the
    /// retry queue, append them (repairing any partial tail a previous
    /// failed append left behind), and repeat until a pass finds the
    /// staging queue empty — picking up anything other threads staged
    /// while we were appending. On error the unwritten bytes stay queued
    /// for the next attempt, so shard offsets already encoded into
    /// journal records remain valid across the failure.
    fn write_out(&self, disk: &mut DiskState) -> io::Result<()> {
        loop {
            {
                let mut q = self.queue.lock();
                for (r, buf) in q.staged_shards.iter_mut().enumerate() {
                    disk.retry_shards[r].append(buf);
                }
                disk.retry_journal.append(&mut q.staged_journal);
                disk.retry_ledger.append(&mut q.staged_ledger);
            }
            let queued =
                !disk.retry_journal.is_empty() || disk.retry_shards.iter().any(|b| !b.is_empty());
            if queued || disk.dirty {
                self.drain(disk)?;
            }
            let q = self.queue.lock();
            if q.staged_journal.is_empty() && q.staged_shards.iter().all(|b| b.is_empty()) {
                // Cleared under `queue`: a concurrent flush that stages
                // after this check will set the flag again itself.
                self.flush_pending.store(false, Ordering::Release);
                return Ok(());
            }
            // More bytes were staged while we were appending — go again.
        }
    }

    /// Append-and-sync the queued bytes through the backend, advancing
    /// the durable watermarks only after each file's sync returns — a
    /// backend whose sync *lies* advances them too, which is exactly the
    /// failure the recovery path and the crash-point fuzzer cover.
    fn drain(&self, disk: &mut DiskState) -> io::Result<()> {
        if disk.dirty {
            for r in 0..self.regions {
                self.truncate_back(&shard_path(&self.dir, r as u8), disk.durable_shard[r])?;
            }
            self.truncate_back(&self.dir.join(JOURNAL_FILE), disk.durable_journal)?;
        }
        disk.dirty = true; // an append interrupted below leaves a partial tail
        for r in 0..self.regions {
            if disk.retry_shards[r].is_empty() {
                continue;
            }
            let path = shard_path(&self.dir, r as u8);
            self.backend.append_file(&path, &disk.retry_shards[r])?;
            self.backend.sync_file(&path)?;
            disk.durable_shard[r] += disk.retry_shards[r].len() as u64;
            disk.retry_shards[r].clear();
        }
        if !disk.retry_journal.is_empty() {
            let path = self.dir.join(JOURNAL_FILE);
            self.backend.append_file(&path, &disk.retry_journal)?;
            self.backend.sync_file(&path)?;
            disk.durable_journal += disk.retry_journal.len() as u64;
            disk.retry_journal.clear();
            // Only now are these cells durable end to end — journal
            // records synced after the shard bytes they reference — so
            // only now may a seal index them.
            let retried = std::mem::take(&mut disk.retry_ledger);
            disk.ledger.extend(retried);
        }
        disk.dirty = false;
        Ok(())
    }

    /// Truncate a file that may not exist yet: a missing file already has
    /// nothing past any durable length, so `NotFound` is success.
    fn truncate_back(&self, path: &Path, len: u64) -> io::Result<()> {
        match self.backend.truncate_file(path, len) {
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            other => other,
        }
    }

    /// Attach (or replace) a free-form text note, e.g. an epoch summary.
    pub fn write_note(&self, name: &str, text: &str) -> io::Result<()> {
        let path = self.note_path(name)?;
        self.backend.write_file(&path, text.as_bytes())?;
        self.backend.sync_file(&path)
    }

    /// Read back a note written by [`Store::write_note`].
    pub fn read_note(&self, name: &str) -> io::Result<Option<String>> {
        match self.backend.read_file(&self.note_path(name)?) {
            Ok(bytes) => Ok(Some(
                String::from_utf8(bytes).map_err(|_| invalid("note is not valid UTF-8"))?,
            )),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    fn note_path(&self, name: &str) -> io::Result<PathBuf> {
        note_path(&self.dir, name)
    }
}

impl StoreRead for Store {
    fn regions(&self) -> usize {
        Store::regions(self)
    }

    fn meta_value(&self, key: &str) -> Option<&str> {
        Store::meta_value(self, key)
    }

    fn read_note(&self, name: &str) -> io::Result<Option<String>> {
        Store::read_note(self, name)
    }

    fn payload(&self, region: u8, domain: &str) -> Option<Vec<u8>> {
        Store::get(self, region, domain)
    }

    fn for_each_region_entry(&self, region: u8, f: &mut dyn FnMut(&str, &[u8])) {
        Store::for_each_region_entry(self, region, f)
    }
}

/// Validated path of a note attachment under a store directory. Shared
/// by the live store and the sealed snapshot.
pub(crate) fn note_path(dir: &Path, name: &str) -> io::Result<PathBuf> {
    if name.is_empty()
        || !name
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-')
    {
        return Err(invalid("note names must be non-empty [a-z0-9-]"));
    }
    Ok(dir.join(format!("note-{name}")))
}

pub(crate) fn invalid(message: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidInput, message.to_string())
}

/// Read and validate a store's meta file: the full pair list plus the
/// parsed region count. Shared by [`Store::open_with`] and [`fsck`].
pub(crate) fn read_store_config(
    dir: &Path,
    backend: &dyn StorageBackend,
) -> io::Result<(Vec<(String, String)>, usize)> {
    let bytes = backend
        .read_file(&dir.join(META_FILE))
        .map_err(|e| io::Error::new(e.kind(), format!("no store at {}: {e}", dir.display())))?;
    let meta_text =
        String::from_utf8(bytes).map_err(|_| invalid("store meta is not valid UTF-8"))?;
    let meta = parse_meta(&meta_text)?;
    let regions: usize = meta_lookup(&meta, "regions")
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0 && n <= u8::MAX as usize)
        .ok_or_else(|| invalid("store meta has no valid 'regions' entry"))?;
    if meta_lookup(&meta, "format") != Some("1") {
        return Err(invalid("unsupported store format"));
    }
    Ok((meta, regions))
}

fn parse_meta(text: &str) -> io::Result<Vec<(String, String)>> {
    let mut pairs = Vec::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        let (k, v) = line
            .split_once('=')
            .ok_or_else(|| invalid("malformed store meta line"))?;
        pairs.push((k.to_string(), v.to_string()));
    }
    Ok(pairs)
}

fn meta_lookup<'a>(meta: &'a [(String, String)], key: &str) -> Option<&'a str> {
    meta.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
}

#[cfg(test)]
mod tests {
    use super::*;
    use journal::MAGIC;
    use std::fs;

    fn tempdir(tag: &str) -> PathBuf {
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "cookiewall-store-{tag}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn payload(region: u8, domain: &str) -> Vec<u8> {
        format!("payload/{region}/{domain}").into_bytes()
    }

    fn truncate(path: &Path, len: u64) {
        FsBackend.truncate_file(path, len).unwrap();
    }

    #[test]
    fn roundtrip_after_checkpoint() {
        let dir = tempdir("roundtrip");
        let meta = vec![("scale".to_string(), "tiny".to_string())];
        let store = Store::create(&dir, 8, &meta).unwrap();
        assert!(store.put(0, "a.example", &payload(0, "a.example")).unwrap());
        assert!(store.put(3, "b.example", &payload(3, "b.example")).unwrap());
        assert!(store.put(0, "c.example", &payload(0, "c.example")).unwrap());
        store.checkpoint().unwrap();
        drop(store);

        let store = Store::open(&dir).unwrap();
        assert_eq!(store.len(), 3);
        assert_eq!(store.meta_value("scale"), Some("tiny"));
        assert_eq!(store.get(0, "a.example"), Some(payload(0, "a.example")));
        assert_eq!(store.get(3, "b.example"), Some(payload(3, "b.example")));
        assert!(!store.contains(1, "a.example"));
        let entries = store.region_entries(0);
        assert_eq!(
            entries.iter().map(|(d, _)| d.as_str()).collect::<Vec<_>>(),
            vec!["a.example", "c.example"]
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn duplicate_put_is_rejected() {
        let dir = tempdir("dup");
        let store = Store::create(&dir, 2, &[]).unwrap();
        assert!(store.put(1, "x.example", b"first").unwrap());
        assert!(!store.put(1, "x.example", b"second").unwrap());
        assert_eq!(store.get(1, "x.example"), Some(b"first".to_vec()));
        store.checkpoint().unwrap();
        drop(store);
        let store = Store::open(&dir).unwrap();
        assert!(!store.put(1, "x.example", b"third").unwrap());
        assert_eq!(store.get(1, "x.example"), Some(b"first".to_vec()));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn drop_without_checkpoint_loses_only_the_tail() {
        let dir = tempdir("abort");
        let store = Store::create(&dir, 2, &[]).unwrap();
        store.put(0, "kept.example", b"kept").unwrap();
        store.checkpoint().unwrap();
        store.put(0, "lost.example", b"lost").unwrap();
        drop(store); // simulated kill: buffered tail never flushed

        let store = Store::open(&dir).unwrap();
        assert_eq!(store.len(), 1);
        assert!(store.contains(0, "kept.example"));
        assert!(!store.contains(0, "lost.example"));
        // The lost task can be recomputed and stored again.
        assert!(store.put(0, "lost.example", b"lost").unwrap());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn auto_checkpoint_cadence_flushes() {
        let dir = tempdir("cadence");
        let store = Store::create(&dir, 1, &[]).unwrap();
        store.set_checkpoint_every(0); // flush on every put
        store.put(0, "a.example", b"a").unwrap();
        drop(store);
        let store = Store::open(&dir).unwrap();
        assert!(store.contains(0, "a.example"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_checkpoint_is_a_no_op() {
        let dir = tempdir("emptyflush");
        let store = Store::create(&dir, 2, &[]).unwrap();
        store.checkpoint().unwrap();
        store.checkpoint().unwrap();
        // Nothing was buffered, so no journal or shard file was created.
        assert!(!dir.join(JOURNAL_FILE).exists());
        assert!(!shard_path(&dir, 0).exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_journal_flush_keeps_bytes_queued_for_retry() {
        let dir = tempdir("retry-journal");
        let store = Store::create(&dir, 1, &[]).unwrap();
        store.put(0, "a.example", &payload(0, "a.example")).unwrap();
        // Sabotage: a directory at the journal path makes the append fail
        // *after* the shard bytes already landed.
        fs::create_dir(dir.join(JOURNAL_FILE)).unwrap();
        assert!(store.checkpoint().is_err());
        // Keep writing through the outage: these offsets must stay valid.
        store.put(0, "b.example", &payload(0, "b.example")).unwrap();
        assert!(store.checkpoint().is_err(), "outage persists");
        fs::remove_dir(dir.join(JOURNAL_FILE)).unwrap();
        store.checkpoint().unwrap();
        drop(store);

        let store = Store::open(&dir).unwrap();
        assert_eq!(store.len(), 2, "no record lost across the failed flush");
        assert_eq!(store.get(0, "a.example"), Some(payload(0, "a.example")));
        assert_eq!(store.get(0, "b.example"), Some(payload(0, "b.example")));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_shard_flush_preserves_journal_offsets() {
        let dir = tempdir("retry-shard");
        let store = Store::create(&dir, 1, &[]).unwrap();
        store.put(0, "a.example", &payload(0, "a.example")).unwrap();
        // Sabotage the shard file itself: nothing reaches disk at all.
        fs::create_dir(shard_path(&dir, 0)).unwrap();
        assert!(store.checkpoint().is_err());
        store.put(0, "b.example", &payload(0, "b.example")).unwrap();
        fs::remove_dir(shard_path(&dir, 0)).unwrap();
        store.checkpoint().unwrap();
        drop(store);

        let store = Store::open(&dir).unwrap();
        assert_eq!(store.len(), 2);
        assert_eq!(store.get(0, "b.example"), Some(payload(0, "b.example")));
        // The retried bytes landed in original put order, exactly once.
        let mut want = payload(0, "a.example");
        want.extend(payload(0, "b.example"));
        assert_eq!(fs::read(shard_path(&dir, 0)).unwrap(), want);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_trailing_journal_record_is_truncated() {
        let dir = tempdir("torn");
        let store = Store::create(&dir, 2, &[]).unwrap();
        for d in ["a.example", "b.example", "c.example"] {
            store.put(0, d, &payload(0, d)).unwrap();
        }
        store.checkpoint().unwrap();
        drop(store);

        // Tear the last record: chop a few bytes off the journal tail.
        let journal = dir.join(JOURNAL_FILE);
        let len = fs::metadata(&journal).unwrap().len();
        truncate(&journal, len - 5);

        let store = Store::open(&dir).unwrap();
        assert_eq!(store.len(), 2, "only the torn record is dropped");
        assert!(store.contains(0, "a.example"));
        assert!(store.contains(0, "b.example"));
        assert!(!store.contains(0, "c.example"));
        // The torn task is storable again, and the repaired store reopens
        // cleanly at full size.
        assert!(store.put(0, "c.example", &payload(0, "c.example")).unwrap());
        store.checkpoint().unwrap();
        drop(store);
        let store = Store::open(&dir).unwrap();
        assert_eq!(store.len(), 3);
        fs::remove_dir_all(&dir).unwrap();
    }

    /// Flush order is stripe order (then put order within a stripe), not
    /// put order: the domains sorted by their on-disk position.
    fn flush_order(domains: &[&str]) -> Vec<String> {
        let mut ordered: Vec<(usize, usize, String)> = domains
            .iter()
            .enumerate()
            .map(|(i, d)| (stripe_of(d), i, d.to_string()))
            .collect();
        ordered.sort();
        ordered.into_iter().map(|(_, _, d)| d).collect()
    }

    #[test]
    fn corrupt_shard_byte_drops_only_that_cell() {
        let dir = tempdir("corrupt");
        let store = Store::create(&dir, 1, &[]).unwrap();
        let domains = ["a.example", "b.example", "c.example"];
        for d in domains {
            store.put(0, d, &payload(0, d)).unwrap();
        }
        store.checkpoint().unwrap();
        drop(store);

        // Flip a byte inside the payload flushed second: with tolerant
        // replay only that cell is dropped — the clean record *after* it
        // survives (pre-PR-7 recovery threw away the whole tail).
        let order = flush_order(&domains);
        let shard = shard_path(&dir, 0);
        let mut bytes = fs::read(&shard).unwrap();
        let first_len = payload(0, &order[0]).len();
        bytes[first_len + 2] ^= 0xFF;
        fs::write(&shard, &bytes).unwrap();

        let store = Store::open(&dir).unwrap();
        assert!(store.contains(0, &order[0]), "clean prefix survives");
        assert!(!store.contains(0, &order[1]), "corrupt record dropped");
        assert!(store.contains(0, &order[2]), "clean suffix survives too");
        assert_eq!(store.get(0, &order[2]), Some(payload(0, &order[2])));
        // The dropped cell is storable again; after a re-put the store
        // reopens at full size with the fresh payload winning.
        assert!(store.put(0, &order[1], &payload(0, &order[1])).unwrap());
        store.checkpoint().unwrap();
        drop(store);
        let store = Store::open(&dir).unwrap();
        assert_eq!(store.len(), 3);
        assert_eq!(store.get(0, &order[1]), Some(payload(0, &order[1])));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn garbage_journal_is_fully_truncated() {
        let dir = tempdir("garbage");
        let store = Store::create(&dir, 1, &[]).unwrap();
        drop(store);
        fs::write(dir.join(JOURNAL_FILE), b"not a journal at all").unwrap();
        let store = Store::open(&dir).unwrap();
        assert!(store.is_empty());
        drop(store);
        assert_eq!(fs::read(dir.join(JOURNAL_FILE)).unwrap(), b"");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn zero_length_journal_opens_empty() {
        let dir = tempdir("zerolen");
        let store = Store::create(&dir, 2, &[]).unwrap();
        drop(store);
        fs::write(dir.join(JOURNAL_FILE), b"").unwrap();
        let store = Store::open(&dir).unwrap();
        assert!(store.is_empty());
        // And the store still accepts work afterwards.
        assert!(store.put(0, "a.example", b"a").unwrap());
        store.checkpoint().unwrap();
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn magic_only_journal_is_truncated_to_empty() {
        let dir = tempdir("magiconly");
        let store = Store::create(&dir, 2, &[]).unwrap();
        drop(store);
        // Four valid magic bytes and nothing else: a record torn at the
        // earliest possible point.
        fs::write(dir.join(JOURNAL_FILE), MAGIC).unwrap();
        let store = Store::open(&dir).unwrap();
        assert!(store.is_empty());
        drop(store);
        assert_eq!(fs::read(dir.join(JOURNAL_FILE)).unwrap().len(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn first_record_torn_yields_zero_cells() {
        let dir = tempdir("firsttorn");
        let store = Store::create(&dir, 1, &[]).unwrap();
        store.put(0, "a.example", &payload(0, "a.example")).unwrap();
        store.checkpoint().unwrap();
        drop(store);
        // Tear the *first* (and only) record mid-way: the valid prefix is
        // zero cells long.
        let journal = dir.join(JOURNAL_FILE);
        let len = fs::metadata(&journal).unwrap().len();
        truncate(&journal, len / 2);

        let store = Store::open(&dir).unwrap();
        assert!(store.is_empty(), "valid prefix is zero cells");
        // The orphaned shard bytes were reclaimed, so a re-put starts at
        // offset zero again and the store round-trips.
        assert_eq!(fs::read(shard_path(&dir, 0)).unwrap().len(), 0);
        assert!(store.put(0, "a.example", &payload(0, "a.example")).unwrap());
        store.checkpoint().unwrap();
        drop(store);
        let store = Store::open(&dir).unwrap();
        assert_eq!(store.get(0, "a.example"), Some(payload(0, "a.example")));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mid_journal_bit_rot_resyncs_on_the_next_record() {
        let dir = tempdir("rotjournal");
        let store = Store::create(&dir, 1, &[]).unwrap();
        let domains = ["a.example", "b.example", "c.example"];
        for d in domains {
            store.put(0, d, &payload(0, d)).unwrap();
        }
        store.checkpoint().unwrap();
        drop(store);

        // Flip one byte inside the *second* journal record: its record
        // hash fails, the scanner resyncs on the third record's magic.
        let order = flush_order(&domains);
        let journal = dir.join(JOURNAL_FILE);
        let mut bytes = fs::read(&journal).unwrap();
        let rec_len = |d: &str| journal::RECORD_OVERHEAD + d.len();
        let second_start = rec_len(&order[0]);
        bytes[second_start + 8] ^= 0x01;
        fs::write(&journal, &bytes).unwrap();

        let store = Store::open(&dir).unwrap();
        assert!(store.contains(0, &order[0]));
        assert!(!store.contains(0, &order[1]), "rotted record dropped");
        assert!(store.contains(0, &order[2]), "resynced past the rot");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn create_refuses_existing_store_and_bad_meta() {
        let dir = tempdir("create");
        let _store = Store::create(&dir, 1, &[]).unwrap();
        assert!(Store::create(&dir, 1, &[]).is_err());
        let dir2 = tempdir("create-meta");
        let bad = vec![("has=equals".to_string(), "v".to_string())];
        assert!(Store::create(&dir2, 1, &bad).is_err());
        let reserved = vec![("regions".to_string(), "9".to_string())];
        assert!(Store::create(&dir2, 1, &reserved).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn notes_roundtrip() {
        let dir = tempdir("notes");
        let store = Store::create(&dir, 1, &[]).unwrap();
        assert_eq!(store.read_note("summary").unwrap(), None);
        store.write_note("summary", "walls=3\n").unwrap();
        assert_eq!(
            store.read_note("summary").unwrap().as_deref(),
            Some("walls=3\n")
        );
        assert!(store.write_note("../escape", "x").is_err());
        assert!(store.write_note("", "x").is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_missing_directory_fails() {
        let dir = tempdir("missing");
        assert!(Store::open(&dir).is_err());
    }
}
