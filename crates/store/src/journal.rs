//! The on-disk journal format: record layout, codec, and the store's
//! file-name constants. This is the compatibility contract audited by
//! lint rule R5 (`journal-format`) against DESIGN.md §8 — the constants
//! and the hash function used here must match their documentation, or
//! every existing store becomes unreadable.

use httpsim::content_hash;
use std::path::{Path, PathBuf};

/// Journal record magic: "CookieWall Journal v1".
pub(crate) const MAGIC: [u8; 4] = *b"CWJ1";
/// Fixed journal record overhead around the domain bytes:
/// magic(4) + region(1) + domain_len(2) + offset(8) + payload_len(4) +
/// payload_hash(8) + record_hash(8).
pub(crate) const RECORD_OVERHEAD: usize = 4 + 1 + 2 + 8 + 4 + 8 + 8;
pub(crate) const META_FILE: &str = "meta";
pub(crate) const JOURNAL_FILE: &str = "journal.wal";
pub(crate) const SHARD_DIR: &str = "shards";
/// Sidecar file `fsck` appends quarantined cells to (see `recovery`).
pub(crate) const QUARANTINE_FILE: &str = "quarantine";

pub(crate) fn shard_path(dir: &Path, region: u8) -> PathBuf {
    dir.join(SHARD_DIR).join(format!("shard-{region}.bin"))
}

/// One decoded journal record.
pub(crate) struct JournalRecord {
    pub region: u8,
    pub domain: String,
    pub offset: u64,
    pub len: u32,
    pub payload_hash: u64,
}

pub(crate) fn encode_record(region: u8, domain: &str, offset: u64, payload: &[u8]) -> Vec<u8> {
    let mut rec = Vec::with_capacity(RECORD_OVERHEAD + domain.len());
    rec.extend_from_slice(&MAGIC);
    rec.push(region);
    rec.extend_from_slice(&(domain.len() as u16).to_le_bytes());
    rec.extend_from_slice(domain.as_bytes());
    rec.extend_from_slice(&offset.to_le_bytes());
    rec.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    rec.extend_from_slice(&content_hash(payload).to_le_bytes());
    let record_hash = content_hash(&rec);
    rec.extend_from_slice(&record_hash.to_le_bytes());
    rec
}

/// Decode the record starting at `pos`, or `None` when the bytes there are
/// torn (too short) or corrupt (bad magic / bad record hash / bad UTF-8).
pub(crate) fn parse_record(buf: &[u8], pos: usize) -> Option<(JournalRecord, usize)> {
    let header_end = pos.checked_add(7)?;
    if header_end > buf.len() || buf[pos..pos + 4] != MAGIC {
        return None;
    }
    let region = buf[pos + 4];
    let domain_len = u16::from_le_bytes([buf[pos + 5], buf[pos + 6]]) as usize;
    let end = pos.checked_add(RECORD_OVERHEAD + domain_len)?;
    if end > buf.len() {
        return None;
    }
    let body_end = end - 8; // record hash covers everything before itself
    let stored_hash = u64::from_le_bytes(buf[body_end..end].try_into().ok()?);
    if content_hash(&buf[pos..body_end]) != stored_hash {
        return None;
    }
    let domain = std::str::from_utf8(&buf[pos + 7..pos + 7 + domain_len])
        .ok()?
        .to_string();
    let tail = &buf[pos + 7 + domain_len..body_end];
    let offset = u64::from_le_bytes(tail[0..8].try_into().ok()?);
    let len = u32::from_le_bytes(tail[8..12].try_into().ok()?);
    let payload_hash = u64::from_le_bytes(tail[12..20].try_into().ok()?);
    Some((
        JournalRecord {
            region,
            domain,
            offset,
            len,
            payload_hash,
        },
        end,
    ))
}
