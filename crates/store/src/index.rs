//! On-disk index format for sealed store segments: the `CWI1` contract.
//!
//! A seal freezes the durable prefix of every shard and describes it in a
//! single self-checking index file so readers can open the store without
//! touching the writer's locks. The file is double-buffered across two
//! slots (`index-0.cwi` / `index-1.cwi`): the writer alternates slots by
//! generation parity, so a torn write can only damage the slot being
//! replaced and readers always fall back to the previous sealed view.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic      4 bytes   "CWI1"
//! version    u8        1
//! generation u64       monotonically increasing seal number
//! regions    u8        region count (matches the store config)
//! sealed_len u64 × R   durable shard length per region at seal time
//! count      u64       number of entries
//! entries    …         sorted by (region, domain)
//! checksum   u64       content_hash of every preceding byte
//! ```
//!
//! Each entry is `region u8 | domain_len u16 | domain | domain_hash u64 |
//! segment u64 | offset u64 | len u32 | payload_hash u64`. `domain_hash`
//! is `content_hash(domain)` and gates resync-free validation; `segment`
//! is the generation that first sealed the cell at this offset, so
//! epoch-over-epoch tooling can tell a stable cell from a rewritten one;
//! `payload_hash` lets a snapshot verify the shard bytes an entry points
//! at before trusting the slot.

use crate::backend::StorageBackend;
use httpsim::content_hash;
use std::io;
use std::path::{Path, PathBuf};

/// Magic prefix of every index slot. Version `CWI1`.
pub(crate) const INDEX_MAGIC: [u8; 4] = *b"CWI1";

/// Stem of the two slot files; slot `s` lives at `<stem>-<s>.cwi`.
pub(crate) const INDEX_FILE: &str = "index";

/// Number of double-buffered slot files.
pub(crate) const INDEX_SLOTS: usize = 2;

/// Fixed bytes per entry besides the domain itself: region tag (1),
/// domain length (2), domain hash (8), segment (8), offset (8),
/// payload length (4) and payload hash (8).
pub(crate) const INDEX_ENTRY_OVERHEAD: usize = 1 + 2 + 8 + 8 + 8 + 4 + 8;

/// Format version written into every slot.
pub(crate) const INDEX_VERSION: u8 = 1;

/// Path of one index slot file under the store directory.
pub(crate) fn slot_path(dir: &Path, slot: usize) -> PathBuf {
    dir.join(format!("{INDEX_FILE}-{slot}.cwi"))
}

/// One sealed cell: where its payload lives in the frozen shard prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct IndexEntry {
    pub region: u8,
    pub domain: String,
    /// Generation that first sealed the cell at this offset.
    pub segment: u64,
    pub offset: u64,
    pub len: u32,
    pub payload_hash: u64,
}

/// A decoded slot: one immutable sealed view of the store.
#[derive(Debug)]
pub(crate) struct IndexFile {
    pub generation: u64,
    /// Durable shard length per region at seal time.
    pub sealed_len: Vec<u64>,
    /// Entries sorted by `(region, domain)`.
    pub entries: Vec<IndexEntry>,
}

/// Encode a sealed view into slot-file bytes. Entries must already be
/// sorted by `(region, domain)`; the encoder trusts the caller because
/// the seal path builds them from a `BTreeMap`.
pub(crate) fn encode_index(generation: u64, sealed_len: &[u64], entries: &[IndexEntry]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(
        4 + 1 + 8 + 1 + 8 * sealed_len.len() + 8 + entries.len() * (INDEX_ENTRY_OVERHEAD + 24) + 8,
    );
    buf.extend_from_slice(&INDEX_MAGIC);
    buf.push(INDEX_VERSION);
    buf.extend_from_slice(&generation.to_le_bytes());
    buf.push(sealed_len.len() as u8);
    for len in sealed_len {
        buf.extend_from_slice(&len.to_le_bytes());
    }
    buf.extend_from_slice(&(entries.len() as u64).to_le_bytes());
    for entry in entries {
        buf.push(entry.region);
        buf.extend_from_slice(&(entry.domain.len() as u16).to_le_bytes());
        buf.extend_from_slice(entry.domain.as_bytes());
        buf.extend_from_slice(&content_hash(entry.domain.as_bytes()).to_le_bytes());
        buf.extend_from_slice(&entry.segment.to_le_bytes());
        buf.extend_from_slice(&entry.offset.to_le_bytes());
        buf.extend_from_slice(&entry.len.to_le_bytes());
        buf.extend_from_slice(&entry.payload_hash.to_le_bytes());
    }
    let checksum = content_hash(&buf);
    buf.extend_from_slice(&checksum.to_le_bytes());
    buf
}

/// Decode and validate one slot file. Returns `None` on any structural
/// damage: wrong magic/version, region count mismatch, out-of-bounds
/// extents, a domain hash that does not match its domain, a segment
/// newer than the slot's own generation, or a trailing checksum that
/// does not cover the bytes. A torn or bit-flipped slot never yields a
/// partial view — the caller falls back to the other slot.
pub(crate) fn parse_index(buf: &[u8], regions: usize) -> Option<IndexFile> {
    if buf.len() < 8 {
        return None;
    }
    let (body, tail) = buf.split_at(buf.len() - 8);
    let checksum = u64::from_le_bytes(tail.try_into().ok()?);
    if content_hash(body) != checksum {
        return None;
    }
    let mut cur = Cursor { buf: body, pos: 0 };
    if cur.bytes(4)? != INDEX_MAGIC {
        return None;
    }
    if cur.u8()? != INDEX_VERSION {
        return None;
    }
    let generation = cur.u64()?;
    if cur.u8()? as usize != regions {
        return None;
    }
    let mut sealed_len = Vec::with_capacity(regions);
    for _ in 0..regions {
        sealed_len.push(cur.u64()?);
    }
    let count = cur.u64()?;
    // A slot can never hold more entries than bytes remain; this bounds
    // the allocation below against a corrupt count field.
    if count > (body.len() - cur.pos) as u64 / INDEX_ENTRY_OVERHEAD as u64 {
        return None;
    }
    let mut entries = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let region = cur.u8()?;
        if region as usize >= regions {
            return None;
        }
        let domain_len = cur.u16()? as usize;
        let raw = cur.slice(domain_len)?;
        let domain_hash = cur.u64()?;
        if content_hash(raw) != domain_hash {
            return None;
        }
        let domain = String::from_utf8(raw.to_vec()).ok()?;
        let segment = cur.u64()?;
        if segment > generation {
            return None;
        }
        let offset = cur.u64()?;
        let len = cur.u32()?;
        let end = offset.checked_add(u64::from(len))?;
        if end > sealed_len[region as usize] {
            return None;
        }
        entries.push(IndexEntry {
            region,
            domain,
            segment,
            offset,
            len,
            payload_hash: cur.u64()?,
        });
    }
    if cur.pos != body.len() {
        return None;
    }
    Some(IndexFile {
        generation,
        sealed_len,
        entries,
    })
}

/// What one slot file held when read back.
pub(crate) enum SlotState {
    /// No file on disk — the store was never sealed into this slot.
    Missing,
    /// A file exists but fails validation (torn write, bit rot).
    Invalid,
    /// A structurally valid sealed view.
    Valid(IndexFile),
}

/// Read and classify every index slot of a store. IO errors other than
/// `NotFound` propagate; damage is classification, not an error.
pub(crate) fn read_slots(
    dir: &Path,
    backend: &dyn StorageBackend,
    regions: usize,
) -> io::Result<Vec<SlotState>> {
    let mut slots = Vec::with_capacity(INDEX_SLOTS);
    for s in 0..INDEX_SLOTS {
        slots.push(match backend.read_file(&slot_path(dir, s)) {
            Ok(bytes) => match parse_index(&bytes, regions) {
                Some(file) => SlotState::Valid(file),
                None => SlotState::Invalid,
            },
            Err(e) if e.kind() == io::ErrorKind::NotFound => SlotState::Missing,
            Err(e) => return Err(e),
        });
    }
    Ok(slots)
}

/// Bounds-checked little-endian reader over a slot body.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn slice(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let out = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(out)
    }

    fn bytes(&mut self, n: usize) -> Option<&'a [u8]> {
        self.slice(n)
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.slice(1)?[0])
    }

    fn u16(&mut self) -> Option<u16> {
        Some(u16::from_le_bytes(self.slice(2)?.try_into().ok()?))
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.slice(4)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.slice(8)?.try_into().ok()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (u64, Vec<u64>, Vec<IndexEntry>) {
        let entries = vec![
            IndexEntry {
                region: 0,
                domain: "aldi.example".into(),
                segment: 1,
                offset: 0,
                len: 4,
                payload_hash: content_hash(b"abcd"),
            },
            IndexEntry {
                region: 1,
                domain: "zeit.example".into(),
                segment: 2,
                offset: 4,
                len: 3,
                payload_hash: content_hash(b"xyz"),
            },
        ];
        (2, vec![8, 16], entries)
    }

    #[test]
    fn roundtrip_preserves_every_field() {
        let (generation, sealed, entries) = sample();
        let bytes = encode_index(generation, &sealed, &entries);
        let parsed = parse_index(&bytes, sealed.len()).expect("valid slot");
        assert_eq!(parsed.generation, generation);
        assert_eq!(parsed.sealed_len, sealed);
        assert_eq!(parsed.entries, entries);
    }

    #[test]
    fn every_flipped_bit_is_rejected() {
        let (generation, sealed, entries) = sample();
        let bytes = encode_index(generation, &sealed, &entries);
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut damaged = bytes.clone();
                damaged[byte] ^= 1 << bit;
                assert!(
                    parse_index(&damaged, sealed.len()).is_none(),
                    "flip at byte {byte} bit {bit} accepted"
                );
            }
        }
    }

    #[test]
    fn truncation_and_region_mismatch_are_rejected() {
        let (generation, sealed, entries) = sample();
        let bytes = encode_index(generation, &sealed, &entries);
        for cut in 0..bytes.len() {
            assert!(parse_index(&bytes[..cut], sealed.len()).is_none());
        }
        assert!(parse_index(&bytes, sealed.len() + 1).is_none());
    }

    #[test]
    fn out_of_bounds_extent_is_rejected() {
        let (generation, sealed, mut entries) = sample();
        entries[1].len = 64;
        let bytes = encode_index(generation, &sealed, &entries);
        assert!(parse_index(&bytes, sealed.len()).is_none());
    }

    #[test]
    fn empty_index_roundtrips() {
        let bytes = encode_index(1, &[0, 0, 0], &[]);
        let parsed = parse_index(&bytes, 3).expect("valid slot");
        assert_eq!(parsed.generation, 1);
        assert!(parsed.entries.is_empty());
    }
}
