//! [`StoreSnapshot`]: the lock-free sealed read path.
//!
//! A snapshot opens the view a [`crate::Store::seal`] froze: it reads
//! the store config, both index slots, and the sealed prefix of every
//! shard straight from disk — it never takes the writer's stripe, queue
//! or io locks, so any number of readers run at full speed while a new
//! epoch ingests into the same directory.
//!
//! Slot selection is defensive end to end. Both slots are parsed; a
//! candidate is trusted only when every entry's extent lies inside the
//! shard bytes read *and* the payload bytes hash to the entry's recorded
//! `payload_hash` — a slot that survived its own checksum but points at
//! extents a crash-recovery truncated away is rejected, and the reader
//! falls back to the older slot. A store that was never sealed opens as
//! an empty snapshot at generation 0; a store whose every existing slot
//! is damaged is an error (`fsck` rewrites the slots from the journal).

use crate::backend::{FsBackend, StorageBackend};
use crate::index::{read_slots, IndexFile, SlotState};
use crate::journal::shard_path;
use crate::{invalid, note_path, read_store_config, StoreRead};
use httpsim::content_hash;
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Where one sealed cell's payload lives in the snapshot's shard bytes.
#[derive(Debug, Clone, Copy)]
struct Cell {
    segment: u64,
    offset: u64,
    len: u32,
}

/// An immutable sealed view of a store. See the module docs.
pub struct StoreSnapshot {
    dir: PathBuf,
    regions: usize,
    meta: Vec<(String, String)>,
    meta_map: BTreeMap<String, String>,
    generation: u64,
    sealed_len: Vec<u64>,
    /// The sealed prefix of every region shard, read once at open.
    shards: Vec<Vec<u8>>,
    entries: BTreeMap<(u8, String), Cell>,
    backend: Arc<dyn StorageBackend>,
}

impl StoreSnapshot {
    /// Open the newest valid sealed view under `dir`.
    pub fn open(dir: &Path) -> io::Result<StoreSnapshot> {
        StoreSnapshot::open_with(dir, Arc::new(FsBackend))
    }

    /// [`StoreSnapshot::open`] on an explicit storage backend.
    pub fn open_with(dir: &Path, backend: Arc<dyn StorageBackend>) -> io::Result<StoreSnapshot> {
        let (meta, regions) = read_store_config(dir, backend.as_ref())?;
        let mut slots = read_slots(dir, backend.as_ref(), regions)?;
        // An invalid slot is usually not damage but a seal mid-overwrite
        // (slot writes are not atomic): re-read until the write settles
        // before trusting the classification, so a concurrent reader
        // neither errors out on a half-written first seal nor falls back
        // past a generation it already served. Genuinely damaged slots
        // stay invalid and take the fallback path after the patience
        // runs out.
        let mut patience = 64;
        while patience > 0 && slots.iter().any(|s| matches!(s, SlotState::Invalid)) {
            std::thread::yield_now();
            slots = read_slots(dir, backend.as_ref(), regions)?;
            patience -= 1;
        }
        let never_sealed = slots.iter().all(|s| matches!(s, SlotState::Missing));

        // Shard bytes are read once, before candidate verification, so
        // every candidate is judged against the same frozen view.
        let mut shards: Vec<Vec<u8>> = Vec::with_capacity(regions);
        for r in 0..regions {
            shards.push(match backend.read_file(&shard_path(dir, r as u8)) {
                Ok(bytes) => bytes,
                Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
                Err(e) => return Err(e),
            });
        }

        // Newest candidate first; fall back to the older slot when the
        // newest no longer matches the bytes on disk.
        let mut candidates: Vec<IndexFile> = slots
            .into_iter()
            .filter_map(|s| match s {
                SlotState::Valid(file) => Some(file),
                _ => None,
            })
            .collect();
        candidates.sort_by_key(|file| std::cmp::Reverse(file.generation));
        let chosen = candidates.into_iter().find(|file| verifies(file, &shards));

        let Some(file) = chosen else {
            if never_sealed {
                return Ok(StoreSnapshot {
                    dir: dir.to_path_buf(),
                    regions,
                    meta_map: meta.iter().cloned().collect(),
                    meta,
                    generation: 0,
                    sealed_len: vec![0; regions],
                    shards: vec![Vec::new(); regions],
                    entries: BTreeMap::new(),
                    backend,
                });
            }
            return Err(invalid(
                "every index slot is damaged or stale — run `cookiewall-study fsck` to rewrite them",
            ));
        };

        // Trim each shard to its sealed prefix so concurrently appended
        // bytes can never leak into this view.
        for (r, shard) in shards.iter_mut().enumerate() {
            shard.truncate(file.sealed_len[r] as usize);
        }
        let entries = file
            .entries
            .into_iter()
            .map(|e| {
                (
                    (e.region, e.domain),
                    Cell {
                        segment: e.segment,
                        offset: e.offset,
                        len: e.len,
                    },
                )
            })
            .collect();
        Ok(StoreSnapshot {
            dir: dir.to_path_buf(),
            regions,
            meta_map: meta.iter().cloned().collect(),
            meta,
            generation: file.generation,
            sealed_len: file.sealed_len,
            shards,
            entries,
            backend,
        })
    }

    /// Directory this snapshot was opened from.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of region shards.
    pub fn regions(&self) -> usize {
        self.regions
    }

    /// All meta pairs, including the reserved `format`/`regions` entries.
    pub fn meta(&self) -> &[(String, String)] {
        &self.meta
    }

    /// Look up one meta value.
    pub fn meta_value(&self, key: &str) -> Option<&str> {
        self.meta_map.get(key).map(|v| v.as_str())
    }

    /// Generation of the sealed view (0 when never sealed).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Sealed byte length of one region shard.
    pub fn sealed_len(&self, region: u8) -> u64 {
        self.sealed_len
            .get(region as usize)
            .copied()
            .unwrap_or_default()
    }

    /// Generation that first sealed this cell at its current offset.
    pub fn segment_of(&self, region: u8, domain: &str) -> Option<u64> {
        self.entries
            .get(&(region, domain.to_string()))
            .map(|cell| cell.segment)
    }

    /// Borrow a sealed payload.
    // lint:allow(r9) — the (region, domain) tuple key forces an owned String per lookup; borrowed-key lookup is scoped into the ROADMAP item 1 arena work
    pub fn get(&self, region: u8, domain: &str) -> Option<&[u8]> {
        let cell = self.entries.get(&(region, domain.to_string()))?;
        let shard = self.shards.get(region as usize)?;
        shard.get(cell.offset as usize..cell.offset as usize + cell.len as usize)
    }

    /// Is this cell sealed?
    // lint:allow(r9) — the (region, domain) tuple key forces an owned String per lookup; borrowed-key lookup is scoped into the ROADMAP item 1 arena work
    pub fn contains(&self, region: u8, domain: &str) -> bool {
        self.entries.contains_key(&(region, domain.to_string()))
    }

    /// Total sealed cells across all regions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the sealed view holds no cells.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Sealed cells of one region.
    pub fn region_len(&self, region: u8) -> usize {
        self.range(region).count()
    }

    /// Read back a note (see [`crate::Store::write_note`]). Notes are
    /// not sealed — this reads whatever is on disk now.
    pub fn read_note(&self, name: &str) -> io::Result<Option<String>> {
        match self.backend.read_file(&note_path(&self.dir, name)?) {
            Ok(bytes) => Ok(Some(
                String::from_utf8(bytes).map_err(|_| invalid("note is not valid UTF-8"))?,
            )),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Visit every sealed `(domain, payload)` of one region in domain
    /// order, borrowing straight from the sealed shard bytes.
    pub fn for_each_region_entry(&self, region: u8, f: &mut dyn FnMut(&str, &[u8])) {
        for ((_, domain), cell) in self.range(region) {
            let Some(shard) = self.shards.get(region as usize) else {
                continue;
            };
            if let Some(payload) =
                shard.get(cell.offset as usize..cell.offset as usize + cell.len as usize)
            {
                f(domain, payload);
            }
        }
    }

    fn range(&self, region: u8) -> impl Iterator<Item = (&(u8, String), &Cell)> {
        self.entries
            .range((region, String::new())..)
            .take_while(move |((r, _), _)| *r == region)
    }
}

impl StoreRead for StoreSnapshot {
    fn regions(&self) -> usize {
        StoreSnapshot::regions(self)
    }

    fn meta_value(&self, key: &str) -> Option<&str> {
        StoreSnapshot::meta_value(self, key)
    }

    fn read_note(&self, name: &str) -> io::Result<Option<String>> {
        StoreSnapshot::read_note(self, name)
    }

    fn payload(&self, region: u8, domain: &str) -> Option<Vec<u8>> {
        self.get(region, domain).map(|p| p.to_vec())
    }

    fn for_each_region_entry(&self, region: u8, f: &mut dyn FnMut(&str, &[u8])) {
        StoreSnapshot::for_each_region_entry(self, region, f)
    }
}

/// Does every entry of a candidate slot match the shard bytes on disk?
/// The sealed lengths must fit inside what was read, and each entry's
/// extent must hash to its recorded payload hash — a slot whose extents
/// a crash-recovery truncated or rewrote is rejected as a whole.
fn verifies(file: &IndexFile, shards: &[Vec<u8>]) -> bool {
    for (r, &sealed) in file.sealed_len.iter().enumerate() {
        match shards.get(r) {
            Some(shard) if sealed <= shard.len() as u64 => {}
            _ => return false,
        }
    }
    file.entries.iter().all(|e| {
        let Some(shard) = shards.get(e.region as usize) else {
            return false;
        };
        match shard.get(e.offset as usize..e.offset as usize + e.len as usize) {
            Some(payload) => content_hash(payload) == e.payload_hash,
            None => false,
        }
    })
}
