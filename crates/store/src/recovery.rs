//! Journal recovery and the `fsck` scrubber.
//!
//! [`scan_journal`] classifies every journal record against the shard
//! bytes actually on disk:
//!
//! * **valid** — parses, its shard extent exists, the payload hash
//!   matches;
//! * **torn** — parses, but references shard bytes past the shard's end
//!   (the payload append never completed — a crash or a lying fsync);
//! * **corrupt** — parses, the shard bytes exist, but their hash does
//!   not match (bit rot, or a stale record whose extent was reused).
//!
//! Unparseable byte runs are *gaps* when a later record resyncs (the
//! scanner hunts for the next record magic and verifies the record hash
//! before trusting it) and the *torn tail* when nothing parses after
//! them. Replay on open is tolerant: bad cells are skipped — never
//! decoded, the hash check rejects them first — and the clean remainder
//! of the journal is kept, so one flipped byte no longer costs every
//! record after it.
//!
//! [`fsck`] turns the same classification into repair: bad cells are
//! quarantined into a `quarantine` sidecar (one line per cell, with the
//! on-disk bytes hex-dumped for forensics), the journal is rewritten
//! keeping only valid records, orphan shard bytes are reclaimed, and a
//! machine-readable report is returned. A resumed crawl then re-fetches
//! exactly the quarantined cells, because they are no longer in the
//! index.

use crate::backend::StorageBackend;
use crate::index::{encode_index, slot_path, IndexEntry, INDEX_SLOTS};
use crate::journal::{parse_record, shard_path, JOURNAL_FILE, MAGIC, QUARANTINE_FILE};
use crate::stripe::LedgerEntry;
use httpsim::content_hash;
use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::path::Path;

/// How a scanned record relates to the bytes on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RecordClass {
    /// Shard extent present, payload hash matches.
    Valid,
    /// References shard bytes past the shard's end.
    Torn,
    /// Shard bytes present but hash-mismatched (or region out of range).
    Corrupt,
}

impl RecordClass {
    fn label(self) -> &'static str {
        match self {
            RecordClass::Valid => "valid",
            RecordClass::Torn => "torn",
            RecordClass::Corrupt => "corrupt",
        }
    }
}

/// One parseable journal record plus its classification.
pub(crate) struct ScannedRecord {
    /// Byte range of the raw record in the journal.
    pub span: (usize, usize),
    pub region: u8,
    pub domain: String,
    pub offset: u64,
    pub len: u32,
    /// Payload hash the record claims (verified for `Valid` records).
    pub payload_hash: u64,
    pub class: RecordClass,
}

/// The full classification of a journal against its shards.
pub(crate) struct Scan {
    pub records: Vec<ScannedRecord>,
    /// Unparseable byte runs that a later record resynced past:
    /// `(offset, len)` pairs, in journal order.
    pub gaps: Vec<(u64, u64)>,
    /// Unparseable run at the end of the journal, `(offset, len)`.
    pub torn_tail: Option<(u64, u64)>,
    /// Journal bytes up to the end of the last parseable record — what a
    /// tail truncation keeps.
    pub keep_len: u64,
}

impl Scan {
    fn count(&self, class: RecordClass) -> usize {
        self.records.iter().filter(|r| r.class == class).count()
    }
}

/// Find the next offset `>= from` where a record both starts with the
/// magic and parses (the record hash gates false resyncs on payload
/// bytes that happen to contain the magic).
fn resync(journal: &[u8], from: usize) -> Option<usize> {
    let mut q = from;
    while q + MAGIC.len() <= journal.len() {
        if journal[q..q + MAGIC.len()] == MAGIC && parse_record(journal, q).is_some() {
            return Some(q);
        }
        q += 1;
    }
    None
}

/// Classify every journal record against the shard bytes on disk.
pub(crate) fn scan_journal(journal: &[u8], shards: &[Vec<u8>]) -> Scan {
    let regions = shards.len();
    let mut scan = Scan {
        records: Vec::new(),
        gaps: Vec::new(),
        torn_tail: None,
        keep_len: 0,
    };
    let mut pos = 0usize;
    while pos < journal.len() {
        let Some((rec, next)) = parse_record(journal, pos) else {
            // Unparseable bytes: hunt for the next real record. Found →
            // this run is a gap; not found → it is the torn tail.
            match resync(journal, pos + 1) {
                Some(q) => {
                    scan.gaps.push((pos as u64, (q - pos) as u64));
                    pos = q;
                    continue;
                }
                None => {
                    scan.torn_tail = Some((pos as u64, (journal.len() - pos) as u64));
                    break;
                }
            }
        };
        let r = rec.region as usize;
        let end = rec.offset.saturating_add(rec.len as u64);
        let class = if r >= regions {
            RecordClass::Corrupt
        } else if end > shards[r].len() as u64 {
            RecordClass::Torn
        } else {
            let payload = &shards[r][rec.offset as usize..end as usize];
            if content_hash(payload) == rec.payload_hash {
                RecordClass::Valid
            } else {
                RecordClass::Corrupt
            }
        };
        scan.records.push(ScannedRecord {
            span: (pos, next),
            region: rec.region,
            domain: rec.domain,
            offset: rec.offset,
            len: rec.len,
            payload_hash: rec.payload_hash,
            class,
        });
        scan.keep_len = next as u64;
        pos = next;
    }
    scan
}

/// What replaying a scanned journal yields: the surviving index, the
/// logical shard lengths new appends must start from, and the damage
/// counts the open-time warning reports.
pub(crate) struct Replay {
    pub index: BTreeMap<(u8, String), Vec<u8>>,
    /// Per-region logical length: the max extent of every record whose
    /// bytes exist on disk (valid *and* corrupt — corrupt extents are
    /// kept so already-journaled offsets stay aligned until `fsck`
    /// rewrites the journal).
    pub high_water: Vec<u64>,
    /// One [`LedgerEntry`] per valid journal record, in journal order —
    /// rebuilt so a seal after reopen can index the durable cells.
    pub ledger: Vec<LedgerEntry>,
    pub keep_len: u64,
    pub torn_cells: usize,
    pub corrupt_cells: usize,
    pub gap_bytes: u64,
    /// `(offset, len)` of the unparseable journal tail, if any.
    pub torn_tail: Option<(u64, u64)>,
}

/// Tolerant replay: last-wins over valid records (a re-crawled cell
/// shadows its quarantined predecessor), bad records skipped.
pub(crate) fn replay(journal: &[u8], shards: &[Vec<u8>]) -> Replay {
    let scan = scan_journal(journal, shards);
    let mut index = BTreeMap::new();
    let mut high_water = vec![0u64; shards.len()];
    let mut ledger = Vec::new();
    for rec in &scan.records {
        let r = rec.region as usize;
        if r >= shards.len() {
            continue;
        }
        let end = rec.offset.saturating_add(rec.len as u64);
        match rec.class {
            RecordClass::Valid => {
                let payload = shards[r][rec.offset as usize..end as usize].to_vec();
                index.insert((rec.region, rec.domain.clone()), payload);
                high_water[r] = high_water[r].max(end);
                ledger.push(LedgerEntry {
                    region: rec.region,
                    domain: rec.domain.clone(),
                    offset: rec.offset,
                    len: rec.len,
                    payload_hash: rec.payload_hash,
                });
            }
            // Corrupt extents exist on disk; keep them under the water
            // line so offsets already encoded into later journal records
            // stay valid. Torn extents never landed — nothing to keep.
            RecordClass::Corrupt => high_water[r] = high_water[r].max(end),
            RecordClass::Torn => {}
        }
    }
    Replay {
        index,
        high_water,
        ledger,
        keep_len: scan.keep_len,
        torn_cells: scan.count(RecordClass::Torn),
        corrupt_cells: scan.count(RecordClass::Corrupt),
        gap_bytes: scan.gaps.iter().map(|(_, n)| n).sum(),
        torn_tail: scan.torn_tail,
    }
}

/// One cell `fsck` moved to the quarantine sidecar.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantinedCell {
    /// Region index of the damaged cell.
    pub region: u8,
    /// Domain of the damaged cell.
    pub domain: String,
    /// Shard offset its journal record claimed.
    pub offset: u64,
    /// Payload length its journal record claimed.
    pub len: u32,
    /// `"torn"` or `"corrupt"`.
    pub fault: &'static str,
}

/// Machine-readable result of an [`fsck`] scan/repair pass.
#[derive(Debug)]
pub struct FsckReport {
    /// Store directory scanned.
    pub dir: String,
    /// Region shard count from the store meta.
    pub regions: usize,
    /// Parseable journal records scanned.
    pub records_scanned: usize,
    /// Cells whose latest record is valid.
    pub valid_cells: usize,
    /// Cells lost to damage — these re-crawl on the next resume.
    pub quarantined: Vec<QuarantinedCell>,
    /// Bad records shadowed by a later valid record for the same cell
    /// (already re-crawled); dropped from the journal, not quarantined.
    pub superseded_dropped: usize,
    /// Unparseable mid-journal bytes skipped by resync.
    pub journal_gap_bytes: u64,
    /// Unparseable bytes at the journal's end.
    pub torn_tail_bytes: u64,
    /// Shard bytes past the last referenced extent, reclaimed on repair.
    pub orphan_shard_bytes: u64,
    /// Index slots that failed to parse or verify — a torn or bit-rotted
    /// seal. Readers fall back to the surviving twin; repair rewrites
    /// both.
    pub damaged_index_slots: usize,
    /// Index slots rewritten on repair so a sealed view never points at
    /// quarantined or reclaimed extents (0 when the store was never
    /// sealed, or on a dry run).
    pub index_slots_rewritten: usize,
    /// Whether repairs were written back (false on a dry run, or when
    /// the store was already clean).
    pub repaired: bool,
}

impl FsckReport {
    /// Nothing torn, nothing corrupt, nothing to reclaim.
    pub fn is_clean(&self) -> bool {
        self.quarantined.is_empty()
            && self.superseded_dropped == 0
            && self.journal_gap_bytes == 0
            && self.torn_tail_bytes == 0
            && self.orphan_shard_bytes == 0
            && self.damaged_index_slots == 0
    }

    /// Human-readable summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "fsck {}: {} records scanned, {} valid cells\n",
            self.dir, self.records_scanned, self.valid_cells
        ));
        for cell in &self.quarantined {
            out.push_str(&format!(
                "  quarantined: region {} domain {} offset {} len {} ({})\n",
                cell.region, cell.domain, cell.offset, cell.len, cell.fault
            ));
        }
        if self.superseded_dropped > 0 {
            out.push_str(&format!(
                "  dropped {} stale damaged record(s) already re-crawled\n",
                self.superseded_dropped
            ));
        }
        if self.journal_gap_bytes > 0 {
            out.push_str(&format!(
                "  skipped {} unparseable mid-journal byte(s)\n",
                self.journal_gap_bytes
            ));
        }
        if self.torn_tail_bytes > 0 {
            out.push_str(&format!(
                "  torn journal tail: {} byte(s)\n",
                self.torn_tail_bytes
            ));
        }
        if self.orphan_shard_bytes > 0 {
            out.push_str(&format!(
                "  orphan shard bytes: {}\n",
                self.orphan_shard_bytes
            ));
        }
        if self.damaged_index_slots > 0 {
            out.push_str(&format!(
                "  damaged index slot(s): {}\n",
                self.damaged_index_slots
            ));
        }
        if self.index_slots_rewritten > 0 {
            out.push_str(&format!(
                "  index slots rewritten: {}\n",
                self.index_slots_rewritten
            ));
        }
        out.push_str(if self.is_clean() {
            "  store is clean\n"
        } else if self.repaired {
            "  repairs written; resume will re-crawl quarantined cells\n"
        } else {
            "  dry run: no repairs written\n"
        });
        out
    }

    /// Ordered-key JSON for scripts and CI.
    pub fn to_json(&self) -> String {
        let mut cells = String::new();
        for (i, c) in self.quarantined.iter().enumerate() {
            if i > 0 {
                cells.push_str(", ");
            }
            cells.push_str(&format!(
                "{{\"region\": {}, \"domain\": \"{}\", \"offset\": {}, \"len\": {}, \"fault\": \"{}\"}}",
                c.region,
                json_escape(&c.domain),
                c.offset,
                c.len,
                c.fault
            ));
        }
        format!(
            "{{\n  \"store\": \"{}\",\n  \"regions\": {},\n  \"records_scanned\": {},\n  \
             \"valid_cells\": {},\n  \"quarantined_cells\": {},\n  \"quarantined\": [{}],\n  \
             \"superseded_records_dropped\": {},\n  \"journal_gap_bytes\": {},\n  \
             \"torn_tail_bytes\": {},\n  \"orphan_shard_bytes\": {},\n  \
             \"damaged_index_slots\": {},\n  \
             \"index_slots_rewritten\": {},\n  \"clean\": {},\n  \
             \"repaired\": {}\n}}\n",
            json_escape(&self.dir),
            self.regions,
            self.records_scanned,
            self.valid_cells,
            self.quarantined.len(),
            cells,
            self.superseded_dropped,
            self.journal_gap_bytes,
            self.torn_tail_bytes,
            self.orphan_shard_bytes,
            self.damaged_index_slots,
            self.index_slots_rewritten,
            self.is_clean(),
            self.repaired
        )
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn hex(bytes: &[u8]) -> String {
    const CAP: usize = 4096;
    let mut out = String::with_capacity(bytes.len().min(CAP) * 2 + 1);
    for &b in bytes.iter().take(CAP) {
        out.push_str(&format!("{b:02x}"));
    }
    if bytes.len() > CAP {
        out.push('+');
    }
    out
}

/// Scan a store's journal and shards, classify every cell, and — unless
/// `dry_run` — quarantine damaged cells into the sidecar, rewrite the
/// journal keeping only valid records, and reclaim orphan shard bytes.
/// The store must not be open elsewhere while repairing.
pub fn fsck(dir: &Path, backend: &dyn StorageBackend, dry_run: bool) -> io::Result<FsckReport> {
    let (_meta, regions) = crate::read_store_config(dir, backend)?;
    let (journal, shards) = read_journal_and_shards(dir, backend, regions)?;
    let scan = scan_journal(&journal, &shards);

    // A cell is lost only when *no* record for it is valid: last-wins
    // replay means a later re-crawl already healed earlier damage.
    let healthy: BTreeSet<(u8, &str)> = scan
        .records
        .iter()
        .filter(|r| r.class == RecordClass::Valid)
        .map(|r| (r.region, r.domain.as_str()))
        .collect();
    let mut quarantined = Vec::new();
    let mut superseded = 0usize;
    for rec in &scan.records {
        if rec.class == RecordClass::Valid {
            continue;
        }
        if healthy.contains(&(rec.region, rec.domain.as_str())) {
            superseded += 1;
            continue;
        }
        quarantined.push(QuarantinedCell {
            region: rec.region,
            domain: rec.domain.clone(),
            offset: rec.offset,
            len: rec.len,
            fault: rec.class.label(),
        });
    }

    // Valid cells and the shard water line the repaired journal needs.
    let mut valid_cells: BTreeSet<(u8, &str)> = BTreeSet::new();
    let mut valid_water = vec![0u64; regions];
    for rec in scan
        .records
        .iter()
        .filter(|r| r.class == RecordClass::Valid)
    {
        valid_cells.insert((rec.region, rec.domain.as_str()));
        let r = rec.region as usize;
        if r < regions {
            valid_water[r] = valid_water[r].max(rec.offset.saturating_add(rec.len as u64));
        }
    }
    let orphan_shard_bytes: u64 = (0..regions)
        .map(|r| (shards[r].len() as u64).saturating_sub(valid_water[r]))
        .sum();

    let mut report = FsckReport {
        dir: dir.display().to_string(),
        regions,
        records_scanned: scan.records.len(),
        valid_cells: valid_cells.len(),
        quarantined,
        superseded_dropped: superseded,
        journal_gap_bytes: scan.gaps.iter().map(|(_, n)| n).sum(),
        torn_tail_bytes: scan.torn_tail.map(|(_, n)| n).unwrap_or(0),
        orphan_shard_bytes,
        damaged_index_slots: 0,
        index_slots_rewritten: 0,
        repaired: false,
    };
    // A torn or bit-rotted index slot is damage in its own right, even
    // when the journal is pristine — it must make the store un-clean so
    // the repair pass below rewrites both slots.
    let slots = crate::index::read_slots(dir, backend, regions)?;
    report.damaged_index_slots = slots
        .iter()
        .filter(|s| matches!(s, crate::index::SlotState::Invalid))
        .count();
    if dry_run || report.is_clean() {
        return Ok(report);
    }

    // Quarantine sidecar: one line per lost cell, with the on-disk bytes
    // (when any exist) hex-dumped before they are orphaned.
    let mut sidecar = String::new();
    for cell in &report.quarantined {
        let r = cell.region as usize;
        let end = cell.offset.saturating_add(cell.len as u64);
        let found = match shards.get(r) {
            Some(shard) if end <= shard.len() as u64 => {
                hex(&shard[cell.offset as usize..end as usize])
            }
            _ => "missing".to_string(),
        };
        sidecar.push_str(&format!(
            "cell region={} domain={} offset={} len={} fault={} found={}\n",
            cell.region, cell.domain, cell.offset, cell.len, cell.fault, found
        ));
    }
    for (offset, len) in &scan.gaps {
        sidecar.push_str(&format!("journal-gap offset={offset} bytes={len}\n"));
    }
    if let Some((offset, len)) = scan.torn_tail {
        sidecar.push_str(&format!("torn-tail offset={offset} bytes={len}\n"));
    }
    let quarantine_path = dir.join(QUARANTINE_FILE);
    backend.append_file(&quarantine_path, sidecar.as_bytes())?;
    backend.sync_file(&quarantine_path)?;

    // Rewrite the journal keeping only valid records (their raw bytes,
    // verbatim, in original order — shard offsets are untouched), then
    // reclaim shard bytes past the last valid extent. Not crash-atomic:
    // a crash mid-rewrite tears the journal tail, which the next open
    // salvages like any other torn tail — cells, not correctness, are
    // the worst case.
    let mut rewritten = Vec::with_capacity(scan.keep_len as usize);
    for rec in scan
        .records
        .iter()
        .filter(|r| r.class == RecordClass::Valid)
    {
        rewritten.extend_from_slice(&journal[rec.span.0..rec.span.1]);
    }
    let journal_path = dir.join(JOURNAL_FILE);
    backend.write_file(&journal_path, &rewritten)?;
    backend.sync_file(&journal_path)?;
    for r in 0..regions {
        if (shards[r].len() as u64) > valid_water[r] {
            let path = shard_path(dir, r as u8);
            backend.truncate_file(&path, valid_water[r])?;
            backend.sync_file(&path)?;
        }
    }

    // If the store was ever sealed, both index slots are rewritten from
    // the repaired journal: a stale sealed view could otherwise point a
    // snapshot at quarantined or reclaimed extents. Never-sealed stores
    // stay index-less.
    if slots
        .iter()
        .any(|s| !matches!(s, crate::index::SlotState::Missing))
    {
        let best = slots
            .iter()
            .filter_map(|s| match s {
                crate::index::SlotState::Valid(file) => Some(file),
                _ => None,
            })
            .max_by_key(|file| file.generation);
        // Keep the prior segment assignment for cells whose offset is
        // unchanged so epoch tooling still sees them as stable.
        let prior: BTreeMap<(u8, &str), (u64, u64)> = best
            .map(|file| {
                file.entries
                    .iter()
                    .map(|e| ((e.region, e.domain.as_str()), (e.segment, e.offset)))
                    .collect()
            })
            .unwrap_or_default();
        let generation = best.map(|file| file.generation).unwrap_or(0) + 1;
        let mut cells: BTreeMap<(u8, String), (u64, u32, u64)> = BTreeMap::new();
        for rec in scan
            .records
            .iter()
            .filter(|r| r.class == RecordClass::Valid)
        {
            cells.insert(
                (rec.region, rec.domain.clone()),
                (rec.offset, rec.len, rec.payload_hash),
            );
        }
        let entries: Vec<IndexEntry> = cells
            .into_iter()
            .map(|((region, domain), (offset, len, payload_hash))| {
                let segment = match prior.get(&(region, domain.as_str())) {
                    Some(&(seg, prior_offset)) if prior_offset == offset => seg,
                    _ => generation,
                };
                IndexEntry {
                    region,
                    domain,
                    segment,
                    offset,
                    len,
                    payload_hash,
                }
            })
            .collect();
        let bytes = encode_index(generation, &valid_water, &entries);
        for s in 0..INDEX_SLOTS {
            let path = slot_path(dir, s);
            backend.write_file(&path, &bytes)?;
            backend.sync_file(&path)?;
        }
        report.index_slots_rewritten = INDEX_SLOTS;
    }
    report.repaired = true;
    Ok(report)
}

/// The quarantine ledger: every `(region, domain)` cell ever quarantined
/// at this store, in sidecar order. Empty when no sidecar exists.
pub fn quarantine_ledger(
    dir: &Path,
    backend: &dyn StorageBackend,
) -> io::Result<Vec<(u8, String)>> {
    let bytes = match backend.read_file(&dir.join(QUARANTINE_FILE)) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    let text = String::from_utf8_lossy(&bytes);
    let mut cells = Vec::new();
    for line in text.lines() {
        let Some(rest) = line.strip_prefix("cell ") else {
            continue;
        };
        let mut region = None;
        let mut domain = None;
        for field in rest.split_whitespace() {
            if let Some(v) = field.strip_prefix("region=") {
                region = v.parse::<u8>().ok();
            } else if let Some(v) = field.strip_prefix("domain=") {
                domain = Some(v.to_string());
            }
        }
        if let (Some(r), Some(d)) = (region, domain) {
            cells.push((r, d));
        }
    }
    Ok(cells)
}

/// Read the journal and every shard, treating missing files as empty.
pub(crate) fn read_journal_and_shards(
    dir: &Path,
    backend: &dyn StorageBackend,
    regions: usize,
) -> io::Result<(Vec<u8>, Vec<Vec<u8>>)> {
    let journal = match backend.read_file(&dir.join(JOURNAL_FILE)) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };
    let mut shards: Vec<Vec<u8>> = Vec::with_capacity(regions);
    for r in 0..regions {
        shards.push(match backend.read_file(&shard_path(dir, r as u8)) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        });
    }
    Ok((journal, shards))
}
