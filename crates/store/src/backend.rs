//! Storage backends: every byte the store reads or writes goes through
//! the [`StorageBackend`] trait, so the disk itself can be swapped out.
//!
//! * [`FsBackend`] — the real filesystem, exactly the IO the store always
//!   did. Its `sync_file` is a no-op: the simulator's disk model treats a
//!   completed `write_all` as durable, matching the pre-backend behavior
//!   (and keeping the hot path free of real fsync stalls).
//! * [`MemBackend`] — an in-memory filesystem that models the page-cache /
//!   platter split: writes land in a cached image, `sync_file` copies it
//!   to the durable image, and [`MemBackend::crash`] throws away whatever
//!   was never synced. This is what makes *lying fsyncs* observable.
//! * [`FaultyBackend`] — wraps any backend and injects disk faults as a
//!   pure hash of `(fault-seed, path, operation-index)`, in the style of
//!   `httpsim::fault`: torn writes, short reads, ENOSPC, lying fsyncs,
//!   single-byte bit rot, and an optional byte-level crash point. Same
//!   seed, same fault trace — pinned by test.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fs::OpenOptions;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// The disk as the store sees it. Implementations must be thread-safe:
/// the store's single appender serializes writes, but reads and metadata
/// operations may come from any thread.
pub trait StorageBackend: Send + Sync {
    /// Read a whole file. `NotFound` when it does not exist.
    fn read_file(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Create or replace a whole file.
    fn write_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Append to a file, creating it when missing.
    fn append_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Truncate (or zero-extend) a file to `len` bytes.
    fn truncate_file(&self, path: &Path, len: u64) -> io::Result<()>;
    /// Make a file's bytes durable across a crash.
    fn sync_file(&self, path: &Path) -> io::Result<()>;
    /// Ensure a directory (and its parents) exists.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;
    /// Does a file exist at `path`?
    fn file_exists(&self, path: &Path) -> bool;
}

/// The real filesystem.
#[derive(Debug, Default, Clone, Copy)]
pub struct FsBackend;

impl StorageBackend for FsBackend {
    fn read_file(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn write_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        std::fs::write(path, bytes)
    }

    fn append_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut file = OpenOptions::new().create(true).append(true).open(path)?;
        file.write_all(bytes)
    }

    fn truncate_file(&self, path: &Path, len: u64) -> io::Result<()> {
        OpenOptions::new().write(true).open(path)?.set_len(len)
    }

    fn sync_file(&self, _path: &Path) -> io::Result<()> {
        // Durability is modeled at the write_all boundary (see module
        // docs); a real fsync here would only slow the benches down.
        Ok(())
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }

    fn file_exists(&self, path: &Path) -> bool {
        path.exists()
    }
}

/// One in-memory file: the cached image every operation sees, plus the
/// durable image a crash reverts to. `durable` is `None` until the first
/// sync — a file that was created but never synced vanishes on crash.
struct MemFile {
    cached: Vec<u8>,
    durable: Option<Vec<u8>>,
}

/// An in-memory filesystem with an explicit durability boundary.
#[derive(Default)]
pub struct MemBackend {
    files: Mutex<BTreeMap<PathBuf, MemFile>>,
}

impl MemBackend {
    /// Simulate a power loss: every file reverts to its last-synced
    /// image; files never synced disappear entirely.
    pub fn crash(&self) {
        let mut files = self.files.lock();
        files.retain(|_, f| f.durable.is_some());
        for f in files.values_mut() {
            if let Some(durable) = &f.durable {
                f.cached = durable.clone();
            }
        }
    }

    /// Bytes of `path` as a crash would reveal them (`None` = the file
    /// would not survive). Test helper for lying-fsync assertions.
    pub fn durable_bytes(&self, path: &Path) -> Option<Vec<u8>> {
        self.files.lock().get(path).and_then(|f| f.durable.clone())
    }

    fn not_found(path: &Path) -> io::Error {
        io::Error::new(
            io::ErrorKind::NotFound,
            format!("no such mem file: {}", path.display()),
        )
    }
}

impl StorageBackend for MemBackend {
    fn read_file(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.files
            .lock()
            .get(path)
            .map(|f| f.cached.clone())
            .ok_or_else(|| Self::not_found(path))
    }

    fn write_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut files = self.files.lock();
        let file = files.entry(path.to_path_buf()).or_insert(MemFile {
            cached: Vec::new(),
            durable: None,
        });
        file.cached = bytes.to_vec();
        Ok(())
    }

    fn append_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut files = self.files.lock();
        let file = files.entry(path.to_path_buf()).or_insert(MemFile {
            cached: Vec::new(),
            durable: None,
        });
        file.cached.extend_from_slice(bytes);
        Ok(())
    }

    fn truncate_file(&self, path: &Path, len: u64) -> io::Result<()> {
        let mut files = self.files.lock();
        let file = files.get_mut(path).ok_or_else(|| Self::not_found(path))?;
        file.cached.resize(len as usize, 0);
        Ok(())
    }

    fn sync_file(&self, path: &Path) -> io::Result<()> {
        let mut files = self.files.lock();
        let file = files.get_mut(path).ok_or_else(|| Self::not_found(path))?;
        file.durable = Some(file.cached.clone());
        Ok(())
    }

    fn create_dir_all(&self, _path: &Path) -> io::Result<()> {
        Ok(()) // directories are implicit in the path-keyed map
    }

    fn file_exists(&self, path: &Path) -> bool {
        self.files.lock().contains_key(path)
    }
}

/// Configuration for deterministic disk-fault injection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskFaultConfig {
    /// Seed for the fault schedule: same seed, same faults, same trace.
    pub seed: u64,
    /// Per-operation fault probability in `[0, 1]`.
    pub rate: f64,
}

impl DiskFaultConfig {
    /// A config that injects nothing (useful with only a crash point).
    pub fn noop() -> DiskFaultConfig {
        DiskFaultConfig { seed: 0, rate: 0.0 }
    }
}

/// splitmix64 finalizer — the same mixing `httpsim::fault` uses, so a
/// structured (seed, path, op) lane still produces well-spread bits.
fn mix(mut h: u64) -> u64 {
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d049bb133111eb);
    h ^ (h >> 31)
}

/// FNV-1a over labeled parts plus the operation index, then mixed: every
/// fault decision is a pure function of `(seed, path, op-kind, op-index)`.
fn lane(seed: u64, kind: &str, path: &Path, op: u64) -> u64 {
    let mut h = 0xcbf29ce484222325u64 ^ seed;
    for part in [kind.as_bytes(), path.as_os_str().as_encoded_bytes()] {
        for &b in part {
            h = (h ^ b as u64).wrapping_mul(0x100000001b3);
        }
        h = (h ^ 0xff).wrapping_mul(0x100000001b3);
    }
    for &b in &op.to_le_bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100000001b3);
    }
    mix(h)
}

/// Map a hash to `[0, 1)`.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

fn injected(message: String) -> io::Error {
    io::Error::other(message)
}

/// A backend wrapper that injects deterministic disk faults and an
/// optional byte-level crash point. See the module docs for the fault
/// menu; [`FaultyBackend::trace`] returns the exact injection log.
pub struct FaultyBackend {
    inner: Arc<dyn StorageBackend>,
    config: DiskFaultConfig,
    /// Monotone operation index: one per backend call, feeds the lane
    /// hash so every decision is replayable.
    ops: AtomicU64,
    /// Cumulative bytes of *mutating* operations, the clock the crash
    /// point is measured on (appends/writes count their length, truncate
    /// and sync count 1) — so a crash can land mid-append, torn.
    mutated: AtomicU64,
    /// Crash once the mutation clock reaches this byte index.
    crash_at: Option<u64>,
    crashed: AtomicBool,
    trace: Mutex<Vec<String>>,
}

impl FaultyBackend {
    /// Wrap `inner` with fault injection.
    pub fn new(inner: Arc<dyn StorageBackend>, config: DiskFaultConfig) -> FaultyBackend {
        FaultyBackend::with_crash_point(inner, config, None)
    }

    /// Wrap `inner` with fault injection plus a crash point: once the
    /// cumulative mutated-byte clock reaches `crash_at`, the disk "dies" —
    /// the op in flight is torn at the crash byte (its sectors that made
    /// it are synced, like a platter keeping what it already wrote) and
    /// every later operation fails.
    pub fn with_crash_point(
        inner: Arc<dyn StorageBackend>,
        config: DiskFaultConfig,
        crash_at: Option<u64>,
    ) -> FaultyBackend {
        FaultyBackend {
            inner,
            config,
            ops: AtomicU64::new(0),
            mutated: AtomicU64::new(0),
            crash_at,
            crashed: AtomicBool::new(false),
            trace: Mutex::new(Vec::new()),
        }
    }

    /// The injection log so far: one line per fault, in operation order.
    /// A pure function of the seed and the operation sequence.
    pub fn trace(&self) -> Vec<String> {
        self.trace.lock().clone()
    }

    /// Total bytes on the mutation clock — run a schedule once with no
    /// crash point to learn how many crash points it exposes.
    pub fn mutated_bytes(&self) -> u64 {
        self.mutated.load(Ordering::Relaxed)
    }

    /// Has the crash point been hit?
    pub fn crashed(&self) -> bool {
        self.crashed.load(Ordering::Relaxed)
    }

    fn record(&self, event: String) {
        self.trace.lock().push(event);
    }

    fn dead(&self) -> io::Result<()> {
        if self.crashed.load(Ordering::Acquire) {
            return Err(injected("disk crashed (simulated)".to_string()));
        }
        Ok(())
    }

    /// Advance the mutation clock by `cost`; when the crash point falls
    /// inside this window, return how many bytes of the operation still
    /// complete before the disk dies.
    fn advance(&self, cost: u64) -> Result<(), u64> {
        let start = self.mutated.fetch_add(cost, Ordering::AcqRel);
        if let Some(at) = self.crash_at {
            if start < at && at <= start + cost {
                // The crash hits while byte `at` is in flight: the bytes
                // strictly before it completed, that byte and the rest
                // did not.
                self.crashed.store(true, Ordering::Release);
                return Err(at - start - 1);
            }
            if start >= at {
                self.crashed.store(true, Ordering::Release);
                return Err(0);
            }
        }
        Ok(())
    }

    /// Roll the fault die for one operation. Returns the lane hash to
    /// derive fault parameters from when a fault fires.
    fn decide(&self, kind: &str, path: &Path) -> Option<u64> {
        let op = self.ops.fetch_add(1, Ordering::AcqRel);
        if self.config.rate <= 0.0 {
            return None;
        }
        let h = lane(self.config.seed, kind, path, op);
        (unit(h) < self.config.rate).then(|| mix(h ^ 0x9e3779b97f4a7c15))
    }
}

impl StorageBackend for FaultyBackend {
    fn read_file(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.dead()?;
        let fault = self.decide("read", path);
        let bytes = self.inner.read_file(path)?;
        match fault {
            Some(h) if !bytes.is_empty() => {
                // Short read: silently return a prefix — the nastiest
                // variant, because nothing errors. Downstream hash checks
                // must catch what this drops.
                let keep = (h % bytes.len() as u64) as usize;
                self.record(format!(
                    "short-read path={} kept={keep}/{}",
                    path.display(),
                    bytes.len()
                ));
                Ok(bytes[..keep].to_vec())
            }
            _ => Ok(bytes),
        }
    }

    fn write_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        self.dead()?;
        let cost = (bytes.len() as u64).max(1);
        if let Err(done) = self.advance(cost) {
            let keep = (done as usize).min(bytes.len());
            // lint:allow(r11) — fault injection: the torn prefix lands best-effort, the crash is the point
            let _ = self.inner.write_file(path, &bytes[..keep]);
            // lint:allow(r11) — fault injection: syncing the torn prefix is best-effort by design
            let _ = self.inner.sync_file(path);
            self.record(format!(
                "crash path={} during=write wrote={keep}/{}",
                path.display(),
                bytes.len()
            ));
            return Err(injected("disk crashed mid-write (simulated)".to_string()));
        }
        if self.decide("write", path).is_some() {
            // Whole-file writes fail atomically (ENOSPC before any byte
            // lands) — torn variants live on the append path.
            self.record(format!("enospc path={} op=write", path.display()));
            return Err(injected("injected ENOSPC (write_file)".to_string()));
        }
        self.inner.write_file(path, bytes)
    }

    fn append_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        self.dead()?;
        let cost = (bytes.len() as u64).max(1);
        if let Err(done) = self.advance(cost) {
            // The crash lands mid-append: the sectors already handed to
            // the platter survive (synced), the rest never happened.
            let keep = (done as usize).min(bytes.len());
            // lint:allow(r11) — fault injection: the surviving sectors land best-effort, the crash is the point
            let _ = self.inner.append_file(path, &bytes[..keep]);
            // lint:allow(r11) — fault injection: syncing the surviving sectors is best-effort by design
            let _ = self.inner.sync_file(path);
            self.record(format!(
                "crash path={} during=append wrote={keep}/{}",
                path.display(),
                bytes.len()
            ));
            return Err(injected("disk crashed mid-append (simulated)".to_string()));
        }
        match self.decide("append", path) {
            None => self.inner.append_file(path, bytes),
            Some(h) => match h % 3 {
                0 if !bytes.is_empty() => {
                    // Torn write: a prefix lands, then the error surfaces.
                    let keep = ((mix(h) % bytes.len() as u64) as usize).min(bytes.len() - 1);
                    self.record(format!(
                        "torn-write path={} wrote={keep}/{}",
                        path.display(),
                        bytes.len()
                    ));
                    self.inner.append_file(path, &bytes[..keep])?;
                    Err(injected("injected torn write".to_string()))
                }
                1 if !bytes.is_empty() => {
                    // Single-byte bit rot: the append "succeeds" but one
                    // bit is flipped on the way down. Silent.
                    let idx = (mix(h ^ 1) % bytes.len() as u64) as usize;
                    let bit = (mix(h ^ 2) % 8) as u8;
                    let mut rotted = bytes.to_vec();
                    rotted[idx] ^= 1 << bit;
                    self.record(format!(
                        "bit-rot path={} byte={idx} bit={bit}",
                        path.display()
                    ));
                    self.inner.append_file(path, &rotted)
                }
                _ => {
                    self.record(format!("enospc path={} op=append", path.display()));
                    Err(injected("injected ENOSPC (append_file)".to_string()))
                }
            },
        }
    }

    fn truncate_file(&self, path: &Path, len: u64) -> io::Result<()> {
        self.dead()?;
        if let Err(_done) = self.advance(1) {
            self.record(format!("crash path={} during=truncate", path.display()));
            return Err(injected(
                "disk crashed mid-truncate (simulated)".to_string(),
            ));
        }
        if self.decide("truncate", path).is_some() {
            self.record(format!("truncate-fail path={}", path.display()));
            return Err(injected("injected truncate failure".to_string()));
        }
        self.inner.truncate_file(path, len)
    }

    fn sync_file(&self, path: &Path) -> io::Result<()> {
        self.dead()?;
        if let Err(_done) = self.advance(1) {
            self.record(format!("crash path={} during=sync", path.display()));
            return Err(injected("disk crashed mid-sync (simulated)".to_string()));
        }
        if self.decide("sync", path).is_some() {
            // The lying fsync: report success, sync nothing. Only a later
            // crash can reveal the difference.
            self.record(format!("lying-fsync path={}", path.display()));
            return Ok(());
        }
        self.inner.sync_file(path)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        self.dead()?;
        self.inner.create_dir_all(path)
    }

    fn file_exists(&self, path: &Path) -> bool {
        self.inner.file_exists(path)
    }
}
