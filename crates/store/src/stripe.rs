//! The store's in-memory state machine: domain-hash stripes, the flush
//! staging queue, and the disk-side retry state. Pure data — every byte
//! of IO these structures feed is performed by `Store` through its
//! [`crate::StorageBackend`].

use httpsim::content_hash;
use std::collections::BTreeMap;

/// Number of domain-hash stripes the in-memory buffers are split into.
/// Concurrent `put`s on domains in different stripes share no mutex.
pub const STRIPES: usize = 16;

/// Which stripe a domain's buffers live in: `fnv1a(domain) % STRIPES`.
pub(crate) fn stripe_of(domain: &str) -> usize {
    (content_hash(domain.as_bytes()) % STRIPES as u64) as usize
}

/// One domain-hash stripe of the in-memory side.
pub(crate) struct Stripe {
    /// Every stored payload (flushed and buffered) whose domain hashes
    /// here, keyed by task.
    // lint:allow(r10) — the in-memory key index IS the store's lookup structure; paging it out is the ROADMAP item 2 scaling work
    pub index: BTreeMap<(u8, String), Vec<u8>>,
    /// Puts accepted since this stripe was last drained, in put order.
    pub fresh: Vec<(u8, String, Vec<u8>)>,
}

impl Stripe {
    pub(crate) fn new() -> Stripe {
        Stripe {
            index: BTreeMap::new(),
            fresh: Vec::new(),
        }
    }
}

/// One flushed cell's durable location, tracked so a later seal can
/// index it without re-reading the journal. Entries ride the same
/// staged → retry → durable pipeline as the bytes they describe.
#[derive(Debug, Clone)]
pub(crate) struct LedgerEntry {
    pub region: u8,
    pub domain: String,
    /// Offset of the payload within its region shard.
    pub offset: u64,
    pub len: u32,
    /// `content_hash` of the payload bytes.
    pub payload_hash: u64,
}

/// Staged flush state, guarded by `Store::queue`.
pub(crate) struct FlushQueue {
    /// Logical length of each region shard (durable + staged).
    pub shard_len: Vec<u64>,
    /// Staged payload bytes per region, not yet handed to the disk side.
    pub staged_shards: Vec<Vec<u8>>,
    /// Staged journal records, same discipline.
    pub staged_journal: Vec<u8>,
    /// One ledger entry per staged journal record, in stage order.
    pub staged_ledger: Vec<LedgerEntry>,
}

impl FlushQueue {
    pub(crate) fn new(shard_len: Vec<u64>) -> FlushQueue {
        let regions = shard_len.len();
        FlushQueue {
            shard_len,
            staged_shards: vec![Vec::new(); regions],
            staged_journal: Vec::new(),
            staged_ledger: Vec::new(),
        }
    }
}

/// What is durably on disk and what a failed flush left queued, guarded
/// by `Store::io`.
pub(crate) struct DiskState {
    /// Bytes of each shard file known durably appended.
    pub durable_shard: Vec<u64>,
    /// Bytes of the journal known durably appended.
    pub durable_journal: u64,
    /// Shard bytes not yet durable: what the current flush moved out of
    /// the stripes, plus anything an earlier failed flush left behind —
    /// always retried in original put order so offsets stay contiguous.
    pub retry_shards: Vec<Vec<u8>>,
    /// Journal records not yet durable (same retry discipline).
    pub retry_journal: Vec<u8>,
    /// Ledger entries whose journal records are not yet durable.
    pub retry_ledger: Vec<LedgerEntry>,
    /// Ledger entries whose journal records are durably synced, in
    /// journal order — the only cells a seal may index.
    // lint:allow(r10) — the durable ledger is the on-disk history by design; compaction is scoped in ROADMAP item 2
    pub ledger: Vec<LedgerEntry>,
    /// A failed append may have left a partial tail on some file:
    /// truncate every file back to its durable length before appending
    /// more.
    pub dirty: bool,
}

impl DiskState {
    pub(crate) fn new(
        durable_shard: Vec<u64>,
        durable_journal: u64,
        ledger: Vec<LedgerEntry>,
    ) -> DiskState {
        let regions = durable_shard.len();
        DiskState {
            durable_shard,
            durable_journal,
            retry_shards: vec![Vec::new(); regions],
            retry_journal: Vec::new(),
            retry_ledger: Vec::new(),
            ledger,
            dirty: false,
        }
    }
}
