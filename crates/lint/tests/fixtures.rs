//! Integration tests over the fixture trees under `tests/fixtures/`: each
//! rule-class fixture makes its rule fire exactly once, the clean tree
//! reports nothing, the baselined tree grandfathers its violation, and
//! the CLI maps outcomes to exit codes (0 clean, 1 findings, 2 usage).

use lint::{run, Status};
use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Run the linter over a fixture tree and return `(rule, status)` pairs.
fn findings(name: &str) -> Vec<(String, Status)> {
    let report = run(&fixture(name), None).expect("fixture tree scans");
    report
        .findings
        .iter()
        .map(|(f, s)| (f.rule.to_string(), *s))
        .collect()
}

fn fires_exactly_once(tree: &str, rule: &str) {
    let found = findings(tree);
    assert_eq!(
        found,
        vec![(rule.to_string(), Status::Failing)],
        "fixture `{tree}` must trip `{rule}` exactly once"
    );
}

#[test]
fn r1_determinism_fires_exactly_once() {
    fires_exactly_once("r1", "determinism");
}

#[test]
fn r2_ordered_serialization_fires_exactly_once() {
    fires_exactly_once("r2", "ordered-serialization");
}

#[test]
fn r3_persist_parity_fires_exactly_once() {
    fires_exactly_once("r3", "persist-parity");
}

#[test]
fn r4_panic_hygiene_fires_exactly_once() {
    fires_exactly_once("r4", "panic-hygiene");
}

#[test]
fn r5_journal_format_fires_exactly_once() {
    fires_exactly_once("r5", "journal-format");
}

#[test]
fn r5_index_format_fires_exactly_once() {
    // The index contract is gated on its own source file: this tree has
    // an `index.rs` with a drifted magic but no `journal.rs`, so only
    // the index pass fires — exactly once.
    fires_exactly_once("r5-index", "journal-format");
}

#[test]
fn r6_lock_order_fires_exactly_once() {
    fires_exactly_once("r6", "lock-order");
}

#[test]
fn r7_blocking_under_lock_fires_exactly_once() {
    fires_exactly_once("r7", "blocking-under-lock");
}

#[test]
fn r7_backend_io_under_lock_fires_exactly_once() {
    // StorageBackend IO methods are blocking roots too: a guard held
    // across `sync_file` must fire no matter which backend is plugged in.
    fires_exactly_once("r7-backend", "blocking-under-lock");
}

#[test]
fn r7_snapshot_io_under_lock_fires_exactly_once() {
    // Sealing and snapshotting are disk IO: a guard held across
    // `snapshot()` must fire like any other blocking root.
    fires_exactly_once("r7-serve", "blocking-under-lock");
}

#[test]
fn r8_seed_taint_fires_exactly_once() {
    fires_exactly_once("r8", "seed-taint");
}

#[test]
fn r9_hot_path_allocation_fires_exactly_once() {
    fires_exactly_once("r9-alloc", "hot-path-allocation");
}

#[test]
fn r10_unbounded_growth_fires_exactly_once() {
    // The drained `seen` field must stay silent; only the grow-only
    // `history` field fires.
    fires_exactly_once("r10-growth", "unbounded-growth");
}

#[test]
fn r11_swallowed_io_fires_exactly_once() {
    // The propagated write must stay silent; only `let _ =` fires.
    fires_exactly_once("r11-swallow", "swallowed-io-errors");
}

#[test]
fn cfg_liveness_scopes_r7_to_the_live_guard() {
    // Two guards, two waits: the early-dropped guard keeps its wait
    // silent, so block-scoped liveness reports exactly one finding — a
    // span-until-end-of-scope approximation would report two.
    let report = run(&fixture("cfg-liveness"), None).expect("tree scans");
    let lines: Vec<u32> = report.findings.iter().map(|(f, _)| f.line).collect();
    assert_eq!(
        lines,
        vec![25],
        "only the wait under the still-live guard may fire"
    );
    assert_eq!(report.findings[0].0.rule, "blocking-under-lock");
}

#[test]
fn r6_witness_chain_spans_every_function_in_the_cycle() {
    // The inversion in the r6 fixture crosses four functions; the single
    // finding must carry the complete multi-function witness chain with
    // a file:line span for each edge endpoint.
    let report = run(&fixture("r6"), None).expect("r6 tree scans");
    assert_eq!(report.findings.len(), 1);
    let message = &report.findings[0].0.message;
    for piece in [
        "`S::a` held in `S::forward` (src/lib.rs:13)",
        "via `tail()` (src/lib.rs:14)",
        "`S::b` acquired in `S::tail` (src/lib.rs:19)",
        "`S::b` held in `S::backward` (src/lib.rs:24)",
        "via `head()` (src/lib.rs:25)",
        "`S::a` acquired in `S::head` (src/lib.rs:30)",
    ] {
        assert!(
            message.contains(piece),
            "witness chain must contain `{piece}`, got:\n{message}"
        );
    }
}

#[test]
fn reasonless_suppression_is_itself_a_finding() {
    fires_exactly_once("suppression", "suppression");
}

#[test]
fn clean_tree_reports_nothing_and_honors_the_suppression() {
    let report = run(&fixture("clean"), None).expect("clean tree scans");
    assert!(report.findings.is_empty(), "clean fixture must not fire");
    assert_eq!(report.suppressed, 1, "the reasoned lint:allow must count");
}

#[test]
fn baselined_violation_is_grandfathered_not_failing() {
    let found = findings("baselined");
    assert_eq!(found, vec![("determinism".into(), Status::Grandfathered)]);
    let report = run(&fixture("baselined"), None).unwrap();
    assert_eq!(report.failing(), 0);
    assert_eq!(report.grandfathered(), 1);
}

#[test]
fn stale_baseline_entry_fails_the_run() {
    // A baseline naming a finding that no longer exists must itself fail:
    // the baseline only ratchets down.
    let dir = std::env::temp_dir().join("lint-stale-baseline-test");
    std::fs::create_dir_all(&dir).unwrap();
    let stale = dir.join("stale.baseline");
    let real = std::fs::read_to_string(fixture("baselined").join("lint.baseline")).unwrap();
    std::fs::write(
        &stale,
        format!("{real}panic-hygiene\tsrc/gone.rs\told message\n"),
    )
    .unwrap();
    let report = run(&fixture("baselined"), Some(&stale)).unwrap();
    let rules: Vec<&str> = report.findings.iter().map(|(f, _)| f.rule).collect();
    assert!(rules.contains(&"baseline"), "stale entry must be flagged");
    assert_eq!(report.failing(), 1);
}

#[test]
fn workspace_self_lint_is_clean() {
    // The repo itself must pass its own gate — same invariant check.sh
    // enforces, kept here so `cargo test` alone catches a regression.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = run(&root, None).expect("workspace scans");
    let failing: Vec<String> = report
        .findings
        .iter()
        .filter(|(_, s)| *s == Status::Failing)
        .map(|(f, _)| format!("{}:{}: [{}] {}", f.path, f.line, f.rule, f.message))
        .collect();
    assert!(
        failing.is_empty(),
        "workspace lint failures:\n{}",
        failing.join("\n")
    );
}

#[test]
fn workspace_baseline_stays_empty_and_suppressions_name_live_rules() {
    // The workspace adopted the linter with a clean slate: the baseline
    // file must not exist (or carry no entries), so every new finding
    // fails immediately instead of being quietly grandfathered.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let baseline = root.join(lint::BASELINE_FILE);
    if baseline.exists() {
        let text = std::fs::read_to_string(&baseline).unwrap();
        let entries: Vec<&str> = text
            .lines()
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .collect();
        assert!(
            entries.is_empty(),
            "workspace baseline must stay empty, found entries:\n{}",
            entries.join("\n")
        );
    }

    // Every inline suppression in the workspace must name a rule that
    // still exists — a directive naming a retired rule is reported by
    // the engine as a `suppression` finding, which the (clean) self-lint
    // above would catch; pin the mechanism itself here.
    let report = run(&root, None).expect("workspace scans");
    assert!(
        !report.findings.iter().any(|(f, _)| f.rule == "suppression"),
        "no workspace suppression may be malformed or name an unknown rule"
    );
    assert!(
        report.suppressed > 0,
        "the workspace's reasoned suppressions must match real findings"
    );
}

#[test]
fn stale_rule_suppression_becomes_a_finding() {
    // If a rule is ever retired, directives naming it must surface as
    // `suppression` findings rather than rot silently.
    let dir = std::env::temp_dir().join("lint-stale-rule-test");
    std::fs::create_dir_all(dir.join("src")).unwrap();
    std::fs::write(
        dir.join("src/lib.rs"),
        "// lint:allow(retired-rule) — rule no longer exists\npub fn f() {}\n",
    )
    .unwrap();
    let report = run(&dir, None).expect("temp tree scans");
    let suppression_findings: Vec<&str> = report
        .findings
        .iter()
        .filter(|(f, _)| f.rule == "suppression")
        .map(|(f, _)| f.message.as_str())
        .collect();
    assert_eq!(suppression_findings.len(), 1);
    assert!(
        suppression_findings[0].contains("unknown rule `retired-rule`"),
        "got: {}",
        suppression_findings[0]
    );
    std::fs::remove_dir_all(&dir).ok();
}

// ------------------------------------------------------------- CLI exits

fn cli(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_lint"))
        .args(args)
        .output()
        .expect("lint binary runs")
}

#[test]
fn cli_exit_codes_map_outcomes() {
    let violation = cli(&["--root", fixture("r1").to_str().unwrap()]);
    assert_eq!(violation.status.code(), Some(1), "findings must exit 1");

    let clean = cli(&["--root", fixture("clean").to_str().unwrap()]);
    assert_eq!(clean.status.code(), Some(0), "clean tree must exit 0");

    let usage = cli(&["--no-such-flag"]);
    assert_eq!(usage.status.code(), Some(2), "unknown flag must exit 2");
}

#[test]
fn cli_lists_all_eleven_rules() {
    let out = cli(&["--list-rules"]);
    assert_eq!(out.status.code(), Some(0));
    let text = String::from_utf8(out.stdout).unwrap();
    for rule in [
        "determinism",
        "ordered-serialization",
        "persist-parity",
        "panic-hygiene",
        "journal-format",
        "lock-order",
        "blocking-under-lock",
        "seed-taint",
        "hot-path-allocation",
        "unbounded-growth",
        "swallowed-io-errors",
    ] {
        assert!(text.contains(rule), "--list-rules must name {rule}");
    }
}

// -------------------------------------------------- cache & parallelism

#[test]
fn warm_cache_run_is_a_full_hit_with_identical_findings() {
    let dir = std::env::temp_dir().join("lint-cache-hit-test");
    std::fs::remove_dir_all(&dir).ok();
    let opts = lint::Options {
        jobs: 0,
        cache_dir: Some(dir.clone()),
    };
    let cold = lint::run_with(&fixture("r6"), None, &opts).expect("cold run");
    let cold_stats = cold.cache.expect("cache enabled");
    assert_eq!(cold_stats.file_hits, 0, "first run must be cold");
    assert!(!cold_stats.global_hit);

    let warm = lint::run_with(&fixture("r6"), None, &opts).expect("warm run");
    let warm_stats = warm.cache.expect("cache enabled");
    assert_eq!(warm_stats.file_hits, warm_stats.file_total);
    assert!(warm_stats.global_hit, "unchanged tree must hit globally");
    assert_eq!(
        cold.render(),
        warm.render(),
        "warm findings must be byte-identical to cold"
    );
    assert_eq!(cold.render_json(), warm.render_json());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn editing_a_file_invalidates_its_entry_and_the_global_entry() {
    let dir = std::env::temp_dir().join("lint-cache-invalidate-test");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(dir.join("src")).unwrap();
    let a = dir.join("src/lib.rs");
    let b = dir.join("src/other.rs");
    std::fs::write(&a, "pub fn ok() {}\n").unwrap();
    std::fs::write(&b, "pub fn also_ok() {}\n").unwrap();
    let cache_dir = dir.join("cache");
    let opts = lint::Options {
        jobs: 1,
        cache_dir: Some(cache_dir),
    };
    lint::run_with(&dir, None, &opts).expect("cold run");

    // Introduce a violation into one file: that file misses, the other
    // still hits, the global entry misses, and the finding appears.
    std::fs::write(
        &a,
        "pub fn t() -> u128 { now() }\nfn now() -> u128 { thread_rng() }\n",
    )
    .unwrap();
    let edited = lint::run_with(&dir, None, &opts).expect("edited run");
    let stats = edited.cache.expect("cache enabled");
    assert_eq!(stats.file_total, 2);
    assert_eq!(stats.file_hits, 1, "the untouched file must still hit");
    assert!(
        !stats.global_hit,
        "content change must miss the global entry"
    );
    assert_eq!(edited.failing(), 1, "the new violation must be reported");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn job_count_never_changes_the_report() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let one = lint::run_with(
        &root,
        None,
        &lint::Options {
            jobs: 1,
            cache_dir: None,
        },
    )
    .expect("jobs=1 run");
    let eight = lint::run_with(
        &root,
        None,
        &lint::Options {
            jobs: 8,
            cache_dir: None,
        },
    )
    .expect("jobs=8 run");
    assert_eq!(
        one.render(),
        eight.render(),
        "findings must be byte-identical at every job count"
    );
    assert_eq!(one.render_json(), eight.render_json());
}

#[test]
fn cli_json_format_emits_stable_schema_and_same_exit_codes() {
    let violation = cli(&[
        "--root",
        fixture("r6").to_str().unwrap(),
        "--format",
        "json",
    ]);
    assert_eq!(violation.status.code(), Some(1), "findings still exit 1");
    let text = String::from_utf8(violation.stdout).unwrap();
    for key in [
        "\"rule\": \"lock-order\"",
        "\"code\": \"R6\"",
        "\"path\": \"src/lib.rs\"",
        "\"line\": 13",
        "\"span\": {\"col\": 24}",
        "\"status\": \"failing\"",
        "\"summary\": {\"failing\": 1, \"grandfathered\": 0, \"suppressed\": 0, \"files_scanned\": 1}",
    ] {
        assert!(text.contains(key), "json output must contain `{key}`:\n{text}");
    }

    let clean = cli(&[
        "--root",
        fixture("clean").to_str().unwrap(),
        "--format",
        "json",
    ]);
    assert_eq!(clean.status.code(), Some(0), "clean tree still exits 0");
    let text = String::from_utf8(clean.stdout).unwrap();
    assert!(
        text.contains("\"findings\": []"),
        "empty findings array:\n{text}"
    );

    let bad = cli(&["--format", "yaml"]);
    assert_eq!(
        bad.status.code(),
        Some(2),
        "unknown format is a usage error"
    );
}
