//! Integration tests over the fixture trees under `tests/fixtures/`: each
//! rule-class fixture makes its rule fire exactly once, the clean tree
//! reports nothing, the baselined tree grandfathers its violation, and
//! the CLI maps outcomes to exit codes (0 clean, 1 findings, 2 usage).

use lint::{run, Status};
use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Run the linter over a fixture tree and return `(rule, status)` pairs.
fn findings(name: &str) -> Vec<(String, Status)> {
    let report = run(&fixture(name), None).expect("fixture tree scans");
    report
        .findings
        .iter()
        .map(|(f, s)| (f.rule.to_string(), *s))
        .collect()
}

fn fires_exactly_once(tree: &str, rule: &str) {
    let found = findings(tree);
    assert_eq!(
        found,
        vec![(rule.to_string(), Status::Failing)],
        "fixture `{tree}` must trip `{rule}` exactly once"
    );
}

#[test]
fn r1_determinism_fires_exactly_once() {
    fires_exactly_once("r1", "determinism");
}

#[test]
fn r2_ordered_serialization_fires_exactly_once() {
    fires_exactly_once("r2", "ordered-serialization");
}

#[test]
fn r3_persist_parity_fires_exactly_once() {
    fires_exactly_once("r3", "persist-parity");
}

#[test]
fn r4_panic_hygiene_fires_exactly_once() {
    fires_exactly_once("r4", "panic-hygiene");
}

#[test]
fn r5_journal_format_fires_exactly_once() {
    fires_exactly_once("r5", "journal-format");
}

#[test]
fn reasonless_suppression_is_itself_a_finding() {
    fires_exactly_once("suppression", "suppression");
}

#[test]
fn clean_tree_reports_nothing_and_honors_the_suppression() {
    let report = run(&fixture("clean"), None).expect("clean tree scans");
    assert!(report.findings.is_empty(), "clean fixture must not fire");
    assert_eq!(report.suppressed, 1, "the reasoned lint:allow must count");
}

#[test]
fn baselined_violation_is_grandfathered_not_failing() {
    let found = findings("baselined");
    assert_eq!(found, vec![("determinism".into(), Status::Grandfathered)]);
    let report = run(&fixture("baselined"), None).unwrap();
    assert_eq!(report.failing(), 0);
    assert_eq!(report.grandfathered(), 1);
}

#[test]
fn stale_baseline_entry_fails_the_run() {
    // A baseline naming a finding that no longer exists must itself fail:
    // the baseline only ratchets down.
    let dir = std::env::temp_dir().join("lint-stale-baseline-test");
    std::fs::create_dir_all(&dir).unwrap();
    let stale = dir.join("stale.baseline");
    let real = std::fs::read_to_string(fixture("baselined").join("lint.baseline")).unwrap();
    std::fs::write(
        &stale,
        format!("{real}panic-hygiene\tsrc/gone.rs\told message\n"),
    )
    .unwrap();
    let report = run(&fixture("baselined"), Some(&stale)).unwrap();
    let rules: Vec<&str> = report.findings.iter().map(|(f, _)| f.rule).collect();
    assert!(rules.contains(&"baseline"), "stale entry must be flagged");
    assert_eq!(report.failing(), 1);
}

#[test]
fn workspace_self_lint_is_clean() {
    // The repo itself must pass its own gate — same invariant check.sh
    // enforces, kept here so `cargo test` alone catches a regression.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = run(&root, None).expect("workspace scans");
    let failing: Vec<String> = report
        .findings
        .iter()
        .filter(|(_, s)| *s == Status::Failing)
        .map(|(f, _)| format!("{}:{}: [{}] {}", f.path, f.line, f.rule, f.message))
        .collect();
    assert!(
        failing.is_empty(),
        "workspace lint failures:\n{}",
        failing.join("\n")
    );
}

// ------------------------------------------------------------- CLI exits

fn cli(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_lint"))
        .args(args)
        .output()
        .expect("lint binary runs")
}

#[test]
fn cli_exit_codes_map_outcomes() {
    let violation = cli(&["--root", fixture("r1").to_str().unwrap()]);
    assert_eq!(violation.status.code(), Some(1), "findings must exit 1");

    let clean = cli(&["--root", fixture("clean").to_str().unwrap()]);
    assert_eq!(clean.status.code(), Some(0), "clean tree must exit 0");

    let usage = cli(&["--no-such-flag"]);
    assert_eq!(usage.status.code(), Some(2), "unknown flag must exit 2");
}

#[test]
fn cli_lists_all_five_rules() {
    let out = cli(&["--list-rules"]);
    assert_eq!(out.status.code(), Some(0));
    let text = String::from_utf8(out.stdout).unwrap();
    for rule in [
        "determinism",
        "ordered-serialization",
        "persist-parity",
        "panic-hygiene",
        "journal-format",
    ] {
        assert!(text.contains(rule), "--list-rules must name {rule}");
    }
}
