//! Robustness properties for the lexer, the item parser, and the whole
//! analysis pipeline: arbitrary byte soup and mutated real-source
//! snippets must never panic or hang any layer. The recursive-descent
//! parser additionally has a nesting-depth budget
//! ([`lint::parser::MAX_DELIM_DEPTH`]) pinned by the pathological-input
//! property: deeply nested delimiters degrade to "no items", never to a
//! stack overflow.

use lint::callgraph::Model;
use lint::cfg::Cfg;
use lint::dataflow::def_use;
use lint::parser::parse_file;
use lint::rules::{Workspace, RULES};
use lint::source::SourceFile;
use proptest::prelude::*;

/// Real-looking source the mutation properties start from: exercises
/// strings, impls, guards, generics, and nested delimiters at once.
const SNIPPETS: &[&str] = &[
    "impl S { fn f(&self) { let g = self.a.lock(); self.tail(); drop(g); } }",
    "fn g<T: Ord>(x: Vec<T>) -> Option<(T, T)> where T: Clone { inner(x) }",
    "use a::b as c;\nfn top() { c(); let s = \"str \\\" eof\"; }",
    "fn r#match(r#type: u8) { let r = r\"raw\"; slots[i].lock().push(r); }",
    "mod m { struct A; impl A { fn go(&self) -> u8 { 'x' as u8 } } }",
    "fn w(rx: &Receiver) { while let Ok(v) = rx.recv() { h(v); } }",
];

/// Run every layer on one input; any panic or hang fails the property.
fn full_pipeline(src: &str) {
    let file = SourceFile::parse("fuzz.rs".to_string(), src, &["determinism"]);
    let parsed = parse_file(&file, 0);
    let files = vec![file];
    let model = Model::build(&files);
    for (id, def) in model.fns.iter().enumerate() {
        let _ = lint::locks::guards_in(&files[def.file], def, &model.cfgs[id]);
        let _ = model.calls[id].len();
    }
    let ws = Workspace {
        files,
        design: None,
        model,
    };
    let mut findings = Vec::new();
    for rule in RULES {
        rule.check(&ws, &mut findings);
    }
    let _ = (parsed.fns.len(), findings.len());
}

/// Check the structural invariants of one CFG and, recursively, of its
/// nested closure CFGs: entry/exit fixed, edges in-bounds and mirrored,
/// block ranges well-formed, and the reachable-or-reported contract —
/// every non-exit block is reachable from the entry or listed in
/// `unreachable`, with nothing listed spuriously.
fn cfg_invariants(cfg: &Cfg) {
    assert_eq!(cfg.entry, 0, "entry block id is fixed");
    assert_eq!(cfg.exit, 1, "exit block id is fixed");
    assert!(cfg.blocks.len() >= 2, "entry and exit always exist");
    for (id, b) in cfg.blocks.iter().enumerate() {
        assert!(b.range.0 <= b.range.1, "block {id} has an inverted range");
        assert!(
            b.range.1 <= cfg.body.1.max(cfg.body.0),
            "block {id} spills past the body"
        );
        for &s in &b.succs {
            assert!(s < cfg.blocks.len(), "succ of block {id} out of bounds");
            assert!(
                cfg.blocks[s].preds.contains(&id),
                "succ edge {id}->{s} has no pred mirror"
            );
        }
        for &p in &b.preds {
            assert!(p < cfg.blocks.len(), "pred of block {id} out of bounds");
            assert!(
                cfg.blocks[p].succs.contains(&id),
                "pred edge {p}->{id} has no succ mirror"
            );
        }
    }
    let reach = cfg.reachable_from(cfg.entry);
    for (id, reachable) in reach.iter().enumerate() {
        let listed = cfg.unreachable.contains(&id);
        assert_eq!(
            listed,
            id != cfg.exit && !reachable,
            "block {id} must be reachable or reported, never both or neither"
        );
    }
    for closure in &cfg.closures {
        cfg_invariants(&closure.cfg);
    }
}

/// Build the CFG and def-use chains of every fn parsed out of `src` and
/// check their invariants. Def-use acyclicity: every use resolves to a
/// def at a strictly earlier token, and to at most one def, so the
/// use→def relation can never cycle.
fn cfg_and_defuse_invariants(src: &str) {
    let file = SourceFile::parse("fuzz.rs".to_string(), src, &[]);
    let parsed = parse_file(&file, 0);
    for def in &parsed.fns {
        let cfg = Cfg::build(&file.tokens, def.body);
        cfg_invariants(&cfg);
        let du = def_use(&file.tokens, &cfg);
        assert_eq!(du.uses.len(), du.defs.len(), "uses parallel defs");
        let mut seen_uses = std::collections::HashSet::new();
        for (i, d) in du.defs.iter().enumerate() {
            for &u in &du.uses[i] {
                assert!(u < file.tokens.len(), "use index out of bounds");
                assert!(
                    u > d.name_idx,
                    "use at token {u} must resolve to a strictly earlier def \
                     (def at {}) — def-use chains stay acyclic",
                    d.name_idx
                );
                assert!(
                    seen_uses.insert(u),
                    "use at token {u} resolves to more than one def"
                );
            }
        }
    }
}

proptest! {
    /// Arbitrary printable soup never panics any layer.
    #[test]
    fn arbitrary_input_never_panics(s in "\\PC{0,300}") {
        full_pipeline(&s);
    }

    /// Arbitrary soup with Rust-ish punctuation density (delimiters,
    /// quotes, colons) — far more likely to reach deep parser paths.
    #[test]
    fn punctuation_soup_never_panics(s in "[(){}\\[\\]<>:;.,'\"#!&=a-z0-9 \n]{0,300}") {
        full_pipeline(&s);
    }

    /// Mutated real source (splice junk into a snippet) never panics.
    #[test]
    fn mutated_snippets_never_panic(
        which in 0usize..6,
        at in 0usize..80,
        junk in "[(){}\"'\\\\a-z ]{0,12}",
    ) {
        let base = SNIPPETS[which % SNIPPETS.len()];
        let cut = base
            .char_indices()
            .map(|(i, _)| i)
            .nth(at.min(base.chars().count().saturating_sub(1)))
            .unwrap_or(0);
        let mut s = String::with_capacity(base.len() + junk.len());
        s.push_str(&base[..cut]);
        s.push_str(&junk);
        s.push_str(&base[cut..]);
        full_pipeline(&s);
    }

    /// Truncating real source at any char boundary never panics (models
    /// half-written files mid-save).
    #[test]
    fn truncated_snippets_never_panic(which in 0usize..6, keep in 0usize..80) {
        let base = SNIPPETS[which % SNIPPETS.len()];
        let cut = base
            .char_indices()
            .map(|(i, _)| i)
            .nth(keep)
            .unwrap_or(base.len());
        full_pipeline(&base[..cut]);
    }

    /// The CFG builder never panics on arbitrary punctuation soup
    /// wrapped in a fn, and its output always satisfies the structural
    /// invariants: edges mirrored and in-bounds, every block reachable
    /// or reported, def-use chains acyclic.
    #[test]
    fn cfg_builder_survives_arbitrary_bodies(
        s in "[(){}\\[\\]<>:;.,?'\"=|&a-z0-9 \n]{0,250}",
    ) {
        cfg_and_defuse_invariants(&format!("fn fuzz() {{ {s} }}"));
    }

    /// Mutated real control-flow-heavy source keeps every CFG and
    /// def-use invariant (never panics, blocks reachable-or-reported,
    /// chains acyclic).
    #[test]
    fn cfg_invariants_hold_on_mutated_snippets(
        which in 0usize..6,
        at in 0usize..80,
        junk in "[(){}?|=\"'a-z ]{0,12}",
    ) {
        let base = SNIPPETS[which % SNIPPETS.len()];
        let cut = base
            .char_indices()
            .map(|(i, _)| i)
            .nth(at.min(base.chars().count().saturating_sub(1)))
            .unwrap_or(0);
        let mut s = String::with_capacity(base.len() + junk.len());
        s.push_str(&base[..cut]);
        s.push_str(&junk);
        s.push_str(&base[cut..]);
        cfg_and_defuse_invariants(&s);
    }

    /// Truncating control-flow source at any char boundary (half-written
    /// files mid-save) keeps every CFG and def-use invariant.
    #[test]
    fn cfg_invariants_hold_on_truncated_snippets(which in 0usize..6, keep in 0usize..80) {
        let base = SNIPPETS[which % SNIPPETS.len()];
        let cut = base
            .char_indices()
            .map(|(i, _)| i)
            .nth(keep)
            .unwrap_or(base.len());
        cfg_and_defuse_invariants(&base[..cut]);
    }

    /// Delimiter nesting far past the parser's depth budget stays
    /// bounded: no stack overflow, no loop, and the item is dropped
    /// rather than misparsed.
    #[test]
    fn pathological_nesting_is_bounded(depth in 1usize..2000, open in 0usize..3) {
        let pair = [('(', ')'), ('[', ']'), ('{', '}')][open % 3];
        let mut s = String::from("fn deep() { ");
        for _ in 0..depth {
            s.push(pair.0);
        }
        for _ in 0..depth {
            s.push(pair.1);
        }
        s.push('}');
        full_pipeline(&s);
    }
}
