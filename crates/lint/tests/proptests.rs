//! Robustness properties for the lexer, the item parser, and the whole
//! analysis pipeline: arbitrary byte soup and mutated real-source
//! snippets must never panic or hang any layer. The recursive-descent
//! parser additionally has a nesting-depth budget
//! ([`lint::parser::MAX_DELIM_DEPTH`]) pinned by the pathological-input
//! property: deeply nested delimiters degrade to "no items", never to a
//! stack overflow.

use lint::callgraph::Model;
use lint::parser::parse_file;
use lint::rules::{Workspace, RULES};
use lint::source::SourceFile;
use proptest::prelude::*;

/// Real-looking source the mutation properties start from: exercises
/// strings, impls, guards, generics, and nested delimiters at once.
const SNIPPETS: &[&str] = &[
    "impl S { fn f(&self) { let g = self.a.lock(); self.tail(); drop(g); } }",
    "fn g<T: Ord>(x: Vec<T>) -> Option<(T, T)> where T: Clone { inner(x) }",
    "use a::b as c;\nfn top() { c(); let s = \"str \\\" eof\"; }",
    "fn r#match(r#type: u8) { let r = r\"raw\"; slots[i].lock().push(r); }",
    "mod m { struct A; impl A { fn go(&self) -> u8 { 'x' as u8 } } }",
    "fn w(rx: &Receiver) { while let Ok(v) = rx.recv() { h(v); } }",
];

/// Run every layer on one input; any panic or hang fails the property.
fn full_pipeline(src: &str) {
    let file = SourceFile::parse("fuzz.rs".to_string(), src, &["determinism"]);
    let parsed = parse_file(&file, 0);
    let files = vec![file];
    let model = Model::build(&files);
    for (id, def) in model.fns.iter().enumerate() {
        let _ = lint::locks::guards_in(&files[def.file], def);
        let _ = model.calls[id].len();
    }
    let ws = Workspace {
        files,
        design: None,
        model,
    };
    let mut findings = Vec::new();
    for rule in RULES {
        rule.check(&ws, &mut findings);
    }
    let _ = (parsed.fns.len(), findings.len());
}

proptest! {
    /// Arbitrary printable soup never panics any layer.
    #[test]
    fn arbitrary_input_never_panics(s in "\\PC{0,300}") {
        full_pipeline(&s);
    }

    /// Arbitrary soup with Rust-ish punctuation density (delimiters,
    /// quotes, colons) — far more likely to reach deep parser paths.
    #[test]
    fn punctuation_soup_never_panics(s in "[(){}\\[\\]<>:;.,'\"#!&=a-z0-9 \n]{0,300}") {
        full_pipeline(&s);
    }

    /// Mutated real source (splice junk into a snippet) never panics.
    #[test]
    fn mutated_snippets_never_panic(
        which in 0usize..6,
        at in 0usize..80,
        junk in "[(){}\"'\\\\a-z ]{0,12}",
    ) {
        let base = SNIPPETS[which % SNIPPETS.len()];
        let cut = base
            .char_indices()
            .map(|(i, _)| i)
            .nth(at.min(base.chars().count().saturating_sub(1)))
            .unwrap_or(0);
        let mut s = String::with_capacity(base.len() + junk.len());
        s.push_str(&base[..cut]);
        s.push_str(&junk);
        s.push_str(&base[cut..]);
        full_pipeline(&s);
    }

    /// Truncating real source at any char boundary never panics (models
    /// half-written files mid-save).
    #[test]
    fn truncated_snippets_never_panic(which in 0usize..6, keep in 0usize..80) {
        let base = SNIPPETS[which % SNIPPETS.len()];
        let cut = base
            .char_indices()
            .map(|(i, _)| i)
            .nth(keep)
            .unwrap_or(base.len());
        full_pipeline(&base[..cut]);
    }

    /// Delimiter nesting far past the parser's depth budget stays
    /// bounded: no stack overflow, no loop, and the item is dropped
    /// rather than misparsed.
    #[test]
    fn pathological_nesting_is_bounded(depth in 1usize..2000, open in 0usize..3) {
        let pair = [('(', ')'), ('[', ']'), ('{', '}')][open % 3];
        let mut s = String::from("fn deep() { ");
        for _ in 0..depth {
            s.push(pair.0);
        }
        for _ in 0..depth {
            s.push(pair.1);
        }
        s.push('}');
        full_pipeline(&s);
    }
}
