//! Workspace self-analysis regression: the sharded lock topology (striped
//! fetch cache, sharded store buffers, pipelined checkpoint) must keep the
//! whole workspace clean under the in-repo analyzer — in particular the
//! R6 may-hold-while-acquiring graph must stay cycle-free — with no
//! grandfathering: the ratchet baseline stays absent.

use lint::engine::BASELINE_FILE;
use lint::run;
use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn workspace_has_no_failing_findings() {
    let report = run(&workspace_root(), None).expect("workspace tree scans");
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned ({}) — wrong root?",
        report.files_scanned
    );
    // `render()` carries the witness chains for lock-order cycles, so a
    // regression prints the full deadlock evidence, not just a count.
    assert_eq!(
        report.failing(),
        0,
        "the workspace must stay lint-clean:\n{}",
        report.render()
    );
}

/// The lock-order rule specifically: no finding of any status. A cycle
/// that someone grandfathers into a future baseline would still fail
/// here — deadlock topology is not negotiable.
#[test]
fn lock_order_graph_is_acyclic() {
    let report = run(&workspace_root(), None).expect("workspace tree scans");
    let lock_order: Vec<String> = report
        .findings
        .iter()
        .filter(|(f, _)| f.rule == "lock-order")
        .map(|(f, _)| format!("{}:{}: {}", f.path, f.line, f.message))
        .collect();
    assert!(
        lock_order.is_empty(),
        "lock-order cycle(s) in the refactored topology:\n{}",
        lock_order.join("\n")
    );
}

/// The ratchet baseline must remain empty (absent): nothing in the
/// refactored tree is grandfathered.
#[test]
fn lint_baseline_remains_empty() {
    let baseline = workspace_root().join(BASELINE_FILE);
    assert!(
        !baseline.exists(),
        "{} exists — the workspace baseline is expected to stay empty/absent",
        baseline.display()
    );
    let report = run(&workspace_root(), None).expect("workspace tree scans");
    assert_eq!(
        report.grandfathered(),
        0,
        "no finding may be grandfathered:\n{}",
        report.render()
    );
}
