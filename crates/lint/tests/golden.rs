//! Golden snapshot of the linter's rendered report — the line format is
//! parsed by humans, editors (path:line:), and check.sh, so it may only
//! change deliberately (regenerate with
//! `UPDATE_GOLDEN=1 cargo test -p lint --test golden`).

use std::path::Path;

const FIXTURE: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden_report.txt");

#[test]
fn rendered_report_matches_golden_snapshot() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/golden");
    let report = lint::run(&root, None).expect("golden fixture scans");
    let rendered = report.render();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(FIXTURE, &rendered).expect("write fixture");
        eprintln!("fixture regenerated: {FIXTURE}");
        return;
    }
    let expected = std::fs::read_to_string(FIXTURE).expect(
        "golden report missing — regenerate with \
         UPDATE_GOLDEN=1 cargo test -p lint --test golden",
    );
    assert_eq!(
        expected, rendered,
        "lint report format drifted from the golden fixture; if the \
         change is intended, regenerate with UPDATE_GOLDEN=1"
    );
}
