//! R4 fixture: a `.unwrap()` in browser non-test code — fires
//! `panic-hygiene` exactly once. `unwrap_or` below must NOT fire.

pub fn parse_port(raw: &str) -> u16 {
    raw.parse().unwrap()
}

pub fn parse_port_or(raw: &str, fallback: u16) -> u16 {
    raw.parse().unwrap_or(fallback)
}
