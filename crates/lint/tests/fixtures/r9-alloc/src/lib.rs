//! R9 fixture: one function on the per-visit hot path allocates — fires
//! `hot-path-allocation` exactly once, on `render_title` (reached from
//! the `measure_site` root through the call graph).

pub fn measure_site(input: &str) -> usize {
    render_title(input).len()
}

fn render_title(input: &str) -> String {
    input.to_string()
}
