//! Suppression fixture: a `lint:allow` with no reason is itself an error
//! — fires the engine's `suppression` finding exactly once. The directive
//! sits on a clean line so no other rule fires.

// lint:allow(panic-hygiene)
pub fn nothing() {}
