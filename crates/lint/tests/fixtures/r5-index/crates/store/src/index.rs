//! R5 fixture (index variant): the index magic drifted to `CWI0` while
//! DESIGN.md still documents `CWI1` — fires `journal-format` exactly
//! once. Every other documented value (file name, entry overhead, hash
//! function) matches, and there is no `journal.rs` in this tree, so the
//! journal pass stays silent.

const INDEX_MAGIC: [u8; 4] = *b"CWI0";
const INDEX_FILE: &str = "index";
const INDEX_ENTRY_OVERHEAD: usize = 1 + 2 + 8 + 8 + 8 + 4 + 8;

fn content_hash(bytes: &[u8]) -> u64 {
    bytes.iter().fold(0xcbf2_9ce4_8422_2325, |h, b| {
        (h ^ u64::from(*b)).wrapping_mul(0x0000_0100_0000_01b3)
    })
}

pub fn encode_index(generation: u64, entries: &[(u8, Vec<u8>)]) -> Vec<u8> {
    let mut out = Vec::with_capacity(entries.len() * INDEX_ENTRY_OVERHEAD);
    out.extend_from_slice(&INDEX_MAGIC);
    out.extend_from_slice(&generation.to_le_bytes());
    for (region, payload) in entries {
        out.push(*region);
        out.extend_from_slice(&content_hash(payload).to_le_bytes());
    }
    let checksum = content_hash(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

pub fn parse_index(bytes: &[u8]) -> Option<u64> {
    let split = bytes.len().checked_sub(8)?;
    let body = &bytes[..split];
    let checksum = u64::from_le_bytes(bytes[split..].try_into().ok()?);
    if content_hash(body) != checksum {
        return None;
    }
    Some(u64::from_le_bytes(body.get(4..12)?.try_into().ok()?))
}

pub fn index_file() -> &'static str {
    INDEX_FILE
}
