//! Clean fixture: every construct here *looks* like a violation but is
//! legitimately exempt — the linter must report nothing.

use std::time::Instant;

/// A suppressed wall-clock read, with the mandatory reason.
pub fn timed<F: FnOnce()>(f: F) -> u128 {
    // lint:allow(determinism) — fixture demonstrating a well-formed suppression
    let start = Instant::now();
    f();
    start.elapsed().as_nanos()
}

/// Banned names inside string literals are text, not calls.
pub fn docs() -> &'static str {
    r#"Call SystemTime::now() or thread_rng() and the linter will // object"#
}

/// `HashMap` outside a `Serialize` derive is fine.
#[derive(Debug, Default)]
pub struct Scratch {
    pub seen: std::collections::HashMap<String, u32>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_fine_in_tests() {
        let t = std::time::SystemTime::now();
        let dir = std::env::temp_dir();
        assert!(t.elapsed().is_ok() || dir.as_os_str().is_empty());
    }
}
