//! R7 fixture (serve variant): a guard held across snapshot IO — fires
//! `blocking-under-lock` exactly once. `snapshot()` re-reads every shard
//! from disk to build the sealed view; doing that while holding the
//! epoch slot lock would stall every reader behind the disk.

pub struct EpochSlot {
    current: Mutex<Option<Snapshot>>,
    store: Store,
}

impl EpochSlot {
    pub fn refresh(&self) {
        let mut slot = self.current.lock();
        let fresh = self.store.snapshot();
        *slot = Some(fresh);
    }
}
