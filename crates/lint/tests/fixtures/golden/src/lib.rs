//! Golden fixture: one failing rule finding, one grandfathered finding,
//! one malformed suppression — pins every branch of the report format.

use serde::Serialize;
use std::collections::HashMap;
use std::time::SystemTime;

#[derive(Serialize)]
pub struct Tally {
    pub hits: HashMap<String, u64>,
}

// lint:allow(determinism)
pub fn started() -> SystemTime {
    SystemTime::now()
}
