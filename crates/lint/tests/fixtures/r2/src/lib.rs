//! R2 fixture: a `HashMap` field on a `Serialize` type — fires
//! `ordered-serialization` exactly once. The non-serialized struct below
//! proves the rule keys on the derive, not the container type alone.

use serde::Serialize;
use std::collections::HashMap;

#[derive(Debug, Clone, Serialize)]
pub struct Snapshot {
    pub name: String,
    pub counts: HashMap<String, u32>,
}

#[derive(Debug, Default)]
pub struct ScratchIndex {
    pub by_host: HashMap<String, usize>,
}
