//! R11 fixture: a disk write's `Result` is discarded with `let _ =` —
//! fires `swallowed-io-errors` exactly once, on `persist`. The
//! propagated write in `persist_checked` must stay silent.

pub fn persist(path: &std::path::Path, data: &[u8]) {
    let _ = std::fs::write(path, data);
}

pub fn persist_checked(path: &std::path::Path, data: &[u8]) -> std::io::Result<()> {
    std::fs::write(path, data)
}
