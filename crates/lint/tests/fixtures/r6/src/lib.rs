//! R6 fixture: a deliberate lock-order inversion split across four
//! functions — `forward` holds `a` while `tail` takes `b`, `backward`
//! holds `b` while `head` takes `a`. Fires `lock-order` exactly once
//! (one cycle, reported with the multi-function witness chain).

pub struct S {
    a: Mutex<u32>,
    b: Mutex<u32>,
}

impl S {
    pub fn forward(&self) {
        let g = self.a.lock();
        self.tail();
        drop(g);
    }

    fn tail(&self) {
        let h = self.b.lock();
        drop(h);
    }

    pub fn backward(&self) {
        let g = self.b.lock();
        self.head();
        drop(g);
    }

    fn head(&self) {
        let h = self.a.lock();
        drop(h);
    }
}
