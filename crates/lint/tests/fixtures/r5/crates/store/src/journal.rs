//! R5 fixture: the store's magic drifted to `CWJ0` while DESIGN.md still
//! documents `CWJ1` — fires `journal-format` exactly once. Every other
//! documented value (file name, record overhead, hash function) matches.

const MAGIC: [u8; 4] = *b"CWJ0";
const JOURNAL_FILE: &str = "journal.wal";
const RECORD_OVERHEAD: usize = 4 + 1 + 2 + 8 + 4 + 8 + 8;

fn content_hash(bytes: &[u8]) -> u64 {
    bytes.iter().fold(0xcbf2_9ce4_8422_2325, |h, b| {
        (h ^ u64::from(*b)).wrapping_mul(0x0000_0100_0000_01b3)
    })
}

pub fn encode_record(domain: &str, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(RECORD_OVERHEAD + domain.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&content_hash(payload).to_le_bytes());
    out
}

pub fn parse_record(bytes: &[u8]) -> Option<(u64, &[u8])> {
    let hash = u64::from_le_bytes(bytes.get(4..12)?.try_into().ok()?);
    let payload = bytes.get(12..)?;
    (content_hash(payload) == hash).then_some((hash, payload))
}

pub fn journal_file() -> &'static str {
    JOURNAL_FILE
}
