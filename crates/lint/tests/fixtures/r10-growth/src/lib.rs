//! R10 fixture: a collection field on the long-lived `Store` graph grows
//! via `push` but never shrinks anywhere in the tree — fires
//! `unbounded-growth` exactly once, on the `history` field. The `seen`
//! field also grows but is drained, so it must stay silent.

pub struct Store {
    history: Vec<u64>,
    seen: Vec<u64>,
}

impl Store {
    pub fn record(&mut self, v: u64) {
        self.history.push(v);
        self.seen.push(v);
    }

    pub fn flush(&mut self) -> usize {
        let drained = self.seen.drain(..).count();
        drained + self.history.len()
    }
}
