//! Codec for the r3 fixture: round-trips `attempts`, forgets
//! `cache_stats`.

use crate::StudyReport;

pub fn encode_record(report: &StudyReport) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&report.total.to_le_bytes());
    out.extend_from_slice(&report.attempts.to_le_bytes());
    out
}

pub fn decode_record(bytes: &[u8]) -> Option<StudyReport> {
    let total = u32::from_le_bytes(bytes.get(0..4)?.try_into().ok()?);
    let attempts = u32::from_le_bytes(bytes.get(4..8)?.try_into().ok()?);
    Some(StudyReport {
        total,
        attempts,
        ..Default::default()
    })
}
