//! R3 fixture: `StudyReport` carries two serde-skipped fields; the codec
//! in `persist.rs` round-trips `attempts` but never mentions
//! `cache_stats` — `persist-parity` fires exactly once, on `cache_stats`.

use serde::Serialize;

pub mod persist;

#[derive(Debug, Clone, Serialize)]
pub struct StudyReport {
    pub total: u32,
    #[serde(skip)]
    pub attempts: u32,
    #[serde(skip)]
    pub cache_stats: u64,
}
