//! R7 fixture (backend variant): a guard held across a `StorageBackend`
//! IO method — fires `blocking-under-lock` exactly once. The backend may
//! be the real disk, so `sync_file` under a lock serializes every other
//! holder behind a potential fsync stall.

pub struct Flusher {
    state: Mutex<Vec<u8>>,
    backend: FsBackend,
}

impl Flusher {
    pub fn flush(&self, path: &Path) {
        let guard = self.state.lock();
        self.backend.sync_file(path);
        drop(guard);
    }
}
