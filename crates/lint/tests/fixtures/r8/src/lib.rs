//! R8 fixture: RNG seed state mixed with an ambient wall-clock value
//! that flows through a helper and two `let` bindings — fires
//! `seed-taint` exactly once at the `seed_from_u64` sink. The R1
//! suppression on the ambient read is deliberate: R1 flags the call
//! itself, R8 flags the interprocedural *flow* into the seed.

use std::time::SystemTime;

fn jitter() -> u64 {
    // lint:allow(determinism) — fixture isolates the R8 interprocedural flow
    SystemTime::now().elapsed_nanos()
}

pub fn rng(seed: u64) -> ChaCha8Rng {
    let lane = jitter();
    let mixed = seed ^ lane;
    ChaCha8Rng::seed_from_u64(mixed)
}
