//! R7 fixture: a guard held across a call that transitively blocks on a
//! channel `recv` — fires `blocking-under-lock` exactly once, at the
//! forwarding call site, with the witness chain into `wait_for_signal`.

pub struct Hub {
    jobs: Mutex<Vec<u64>>,
}

impl Hub {
    pub fn drain(&self, rx: &Receiver) {
        let guard = self.jobs.lock();
        wait_for_signal(rx);
        report(guard.len());
    }
}

fn wait_for_signal(rx: &Receiver) {
    // The result is consumed so only R7 fires on this tree (R11 has its
    // own fixture).
    if rx.recv().is_err() {
        report(0);
    }
}

fn report(_n: usize) {}
