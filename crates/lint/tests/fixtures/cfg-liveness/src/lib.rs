//! CFG-liveness fixture for R7: two guards, two channel waits. In
//! `drain_released` the guard is dropped before the wait, so block-scoped
//! liveness must keep it silent; in `drain_held` the guard is live across
//! the wait — `blocking-under-lock` fires exactly once, there. A
//! span-until-end-of-scope approximation would fire twice.

pub struct Hub {
    jobs: Mutex<Vec<u64>>,
}

impl Hub {
    /// Guard explicitly dropped before blocking: no finding.
    pub fn drain_released(&self, rx: &Receiver) {
        let guard = self.jobs.lock();
        report(guard.len());
        drop(guard);
        if rx.recv().is_err() {
            report(0);
        }
    }

    /// Guard still live across the wait: fires.
    pub fn drain_held(&self, rx: &Receiver) {
        let guard = self.jobs.lock();
        if rx.recv().is_err() {
            report(guard.len());
        }
    }
}

fn report(_n: usize) {}
