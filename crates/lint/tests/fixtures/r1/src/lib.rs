//! R1 fixture: a wall-clock read in library code — fires `determinism`
//! exactly once (the `use` line names `SystemTime` but not the call).

use std::time::SystemTime;

pub fn stamp() -> SystemTime {
    SystemTime::now()
}
