//! Baselined fixture: a real violation grandfathered by the checked-in
//! `lint.baseline` — reported as grandfathered, exit status clean.

pub fn roll() -> u64 {
    let mut rng = thread_rng();
    rng.next_u64()
}
