//! The lock-site model: find guard-producing acquisitions (`.lock()`,
//! `.read()`, `.write()` with empty argument lists) in a function body,
//! give each a canonical *lock class* derived from its receiver, and
//! compute the guard's live token range.
//!
//! Live ranges are over-approximated from token structure, not borrowck:
//!
//! * a **let-bound** guard lives from its acquisition to `drop(g)` at the
//!   binding's nesting depth, to a call that takes `g` by value (guard
//!   ownership transfers to the callee, which becomes responsible), or to
//!   the end of the enclosing block;
//! * a **temporary** guard lives to the end of its statement — including
//!   an attached `if let` / `match` block, whose scrutinee temporaries
//!   really do live that long — except on the left side of a plain
//!   assignment, where Rust evaluates the right operand *first*, so the
//!   guard is acquired only after the RHS ran.
//!
//! Known imprecision (documented in DESIGN.md §10): a conditional
//! `drop(g)` inside a nested block does not end the range, shadowed
//! rebindings of the same name are treated as one guard, and two locals
//! with the same name in different functions share a lock class.

use crate::callgraph::receiver_chain;
use crate::lexer::{Token, TokenKind};
use crate::parser::FnDef;
use crate::source::SourceFile;

/// Method names that produce a guard when called with no arguments.
const ACQUIRE_METHODS: &[&str] = &["lock", "read", "write"];

/// One guard with its lock class and live range.
#[derive(Debug)]
pub struct Guard {
    /// Canonical lock identity (see [`lock_class`]).
    pub class: String,
    /// Token index of the acquiring method name.
    pub acquire_idx: usize,
    /// 1-based line of the acquisition.
    pub line: u32,
    /// 1-based column of the acquisition.
    pub col: u32,
    /// Token-index range (in the file's token stream) the guard is live
    /// for, starting just after the acquisition call.
    pub range: (usize, usize),
}

/// Every guard acquired in `def`'s body.
pub fn guards_in(file: &SourceFile, def: &FnDef) -> Vec<Guard> {
    let tokens = &file.tokens;
    let (start, end) = (def.body.0, def.body.1.min(tokens.len()));
    let mut out = Vec::new();
    let mut i = start;
    while i < end {
        let t = &tokens[i];
        let is_acquire = t.kind == TokenKind::Ident
            && ACQUIRE_METHODS.contains(&t.text.as_str())
            && i > start
            && tokens[i - 1].is_punct('.')
            && tokens.get(i + 1).is_some_and(|t| t.is_punct('('))
            && tokens.get(i + 2).is_some_and(|t| t.is_punct(')'));
        if !is_acquire {
            i += 1;
            continue;
        }
        let chain = receiver_chain(tokens, start, i - 1);
        let class = lock_class(&chain, def);
        let after = i + 3; // past `name ( )`
        let range = match let_binding(tokens, start, i) {
            Some(name) => let_guard_range(tokens, after, end, &name),
            None => temp_guard_range(tokens, start, after, end, i),
        };
        out.push(Guard {
            class,
            acquire_idx: i,
            line: t.line,
            col: t.col,
            range: (after, range),
        });
        i = after;
    }
    out
}

/// Canonical lock identity from a receiver chain:
///
/// * `self.field` → `Owner::field` (the impl type owns the lock);
/// * `param.field` where the parameter's declared type names `T` →
///   `T::field`;
/// * a bare local/param (`slots[i].lock()`) → `local:name` — name-based,
///   shared across functions (over-approximation, see module docs);
/// * an unknown receiver (call-chain) → `local:?`.
pub fn lock_class(chain: &[String], def: &FnDef) -> String {
    match chain {
        [] => "local:?".to_string(),
        [only] => format!("local:{only}"),
        [first, rest @ ..] => {
            let owner: Option<String> = if first == "self" {
                def.owner.clone()
            } else {
                def.params
                    .iter()
                    .find(|p| &p.name == first)
                    .and_then(|p| p.type_idents.last().cloned())
            };
            match owner {
                Some(ty) => format!("{ty}::{}", rest.join(".")),
                None => format!("local:{first}.{}", rest.join(".")),
            }
        }
    }
}

/// Is the acquisition at `idx` the RHS of `let [mut] name = …`? The
/// receiver chain may sit between: `let g = self.inner.lock()`.
fn let_binding(tokens: &[Token], start: usize, idx: usize) -> Option<String> {
    // Walk back over the receiver chain to its head.
    let mut k = idx; // the method name; tokens[k-1] is `.`
    loop {
        if k <= start + 1 {
            return None;
        }
        let prev = &tokens[k - 1];
        if prev.is_punct('.') || prev.is_punct(':') || prev.kind == TokenKind::Ident {
            k -= 1;
            continue;
        }
        if prev.is_punct(']') {
            let mut depth = 0i32;
            while k > start {
                k -= 1;
                if tokens[k].is_punct(']') {
                    depth += 1;
                } else if tokens[k].is_punct('[') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
            }
            continue;
        }
        break;
    }
    // Now expect `= name [mut] let` walking backwards.
    if !(k > start && tokens[k - 1].is_punct('=')) {
        return None;
    }
    // Reject `==`, `+=`, `<=` … compound forms.
    if k >= 2 && tokens[k - 2].is_punct('=') {
        return None;
    }
    let mut b = k - 1;
    let name = tokens.get(b.checked_sub(1)?)?;
    if name.kind != TokenKind::Ident {
        return None;
    }
    b -= 1;
    let mut intro = b.checked_sub(1)?;
    if tokens[intro].is_ident("mut") {
        intro = intro.checked_sub(1)?;
    }
    if tokens[intro].is_ident("let") {
        Some(name.text.clone())
    } else {
        None
    }
}

/// Live range of a let-bound guard `name`, from `after` (just past the
/// acquisition): ends at `drop(name)` at relative depth 0, at a call
/// that takes `name` by value, or at the end of the enclosing block.
fn let_guard_range(tokens: &[Token], after: usize, end: usize, name: &str) -> usize {
    let mut depth = 0i32;
    let mut k = after;
    while k < end {
        let t = &tokens[k];
        if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct('}') || t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
            if depth < 0 {
                return k; // enclosing block closed
            }
        } else if depth == 0
            && t.is_ident("drop")
            && tokens.get(k + 1).is_some_and(|t| t.is_punct('('))
            && tokens.get(k + 2).is_some_and(|t| t.is_ident(name))
            && tokens.get(k + 3).is_some_and(|t| t.is_punct(')'))
        {
            return k;
        } else if t.is_ident(name)
            && tokens
                .get(k.wrapping_sub(1))
                .is_some_and(|p| p.is_punct('(') || p.is_punct(','))
            && tokens
                .get(k + 1)
                .is_some_and(|n| n.is_punct(')') || n.is_punct(','))
            && !tokens
                .get(k.wrapping_sub(2))
                .is_some_and(|p| p.is_punct('&'))
        {
            // A bare `name` argument (not `&name`): the guard moves into
            // the callee, which becomes responsible for it. End before
            // the callee name so the transferring call itself does not
            // count as running under the guard.
            return k.saturating_sub(2);
        }
        k += 1;
    }
    end
}

/// Live range of a temporary guard: to the end of its statement. The
/// statement ends at a `;` at the acquisition's nesting depth, at the
/// close of an attached block opened at that depth (`if let` / `match`
/// bodies — unless an `else` continues the statement), at the close of
/// the *enclosing* block, or — when the guard sits on the left of a
/// plain `=` assignment — already at the `=`, because Rust evaluates the
/// right operand first.
fn temp_guard_range(
    tokens: &[Token],
    start: usize,
    after: usize,
    end: usize,
    acquire_idx: usize,
) -> usize {
    let _ = start;
    let _ = acquire_idx;
    let mut depth = 0i32;
    let mut k = after;
    while k < end {
        let t = &tokens[k];
        if t.is_punct('{') {
            // An attached block at depth 0: the temporary lives through
            // it (if-let / match scrutinee semantics) but not past it.
            if depth == 0 {
                let close = crate::parser::match_delim(tokens, k);
                if tokens.get(close + 1).is_some_and(|t| t.is_ident("else")) {
                    k = close + 1;
                    continue;
                }
                return close.min(end);
            }
            depth += 1;
        } else if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
            if depth < 0 {
                return k;
            }
        } else if depth == 0 && t.is_punct(';') {
            return k;
        } else if depth == 0
            && t.is_punct('=')
            && !tokens.get(k + 1).is_some_and(|n| n.is_punct('='))
            && !tokens.get(k.wrapping_sub(1)).is_some_and(|p| {
                p.is_punct('=') || p.is_punct('!') || p.is_punct('<') || p.is_punct('>')
            })
        {
            // `*x.lock() = rhs` — the RHS ran before the lock was taken.
            return k;
        }
        k += 1;
    }
    end
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::Model;
    use crate::source::SourceFile;

    fn guards(src: &str) -> (Vec<Guard>, SourceFile) {
        let file = SourceFile::parse("test.rs".to_string(), src, &[]);
        let model = Model::build(std::slice::from_ref(&file));
        let def = model.fns[0].clone();
        let file = SourceFile::parse("test.rs".to_string(), src, &[]);
        (guards_in(&file, &def), file)
    }

    fn covers(file: &SourceFile, g: &Guard, ident: &str) -> bool {
        file.tokens[g.range.0..g.range.1.min(file.tokens.len())]
            .iter()
            .any(|t| t.is_ident(ident))
    }

    #[test]
    fn let_bound_guard_lives_to_drop() {
        let src = "impl S { fn f(&self) { let g = self.a.lock(); one(); drop(g); two(); } }";
        let (gs, file) = guards(src);
        assert_eq!(gs.len(), 1);
        assert_eq!(gs[0].class, "S::a");
        assert!(covers(&file, &gs[0], "one"));
        assert!(!covers(&file, &gs[0], "two"));
    }

    #[test]
    fn let_bound_guard_lives_to_block_end_without_drop() {
        let src = "fn f(m: &Holder) { { let g = m.inner.lock(); one(); } two(); }";
        let (gs, file) = guards(src);
        assert_eq!(gs.len(), 1);
        assert_eq!(gs[0].class, "Holder::inner");
        assert!(covers(&file, &gs[0], "one"));
        assert!(!covers(&file, &gs[0], "two"));
    }

    #[test]
    fn moved_guard_ends_at_the_transferring_call() {
        let src = "impl S { fn f(&self) { let g = self.a.lock(); self.finish(g); after(); } }";
        let (gs, file) = guards(src);
        assert!(!covers(&file, &gs[0], "after"));
        // …but a borrow keeps it live.
        let src2 = "impl S { fn f(&self) { let g = self.a.lock(); look(&g); after(); } }";
        let (gs2, file2) = guards(src2);
        assert!(covers(&file2, &gs2[0], "after"));
    }

    #[test]
    fn temporary_guard_ends_at_statement_semicolon() {
        let src = "fn f(c: &Cache) { c.map.lock().insert(k, v); later(); }";
        let (gs, file) = guards(src);
        assert_eq!(gs[0].class, "Cache::map");
        assert!(covers(&file, &gs[0], "insert"));
        assert!(!covers(&file, &gs[0], "later"));
    }

    #[test]
    fn assignment_lhs_guard_does_not_cover_the_rhs() {
        let src = "fn f() { *slots[i].lock() = compute(x); later(); }";
        let (gs, file) = guards(src);
        assert_eq!(gs[0].class, "local:slots");
        assert!(!covers(&file, &gs[0], "compute"));
    }

    #[test]
    fn if_let_scrutinee_guard_lives_through_the_body_not_past_it() {
        let src = "fn f(c: &Cache) { if let Some(r) = c.map.lock().get(k) { body(); } past(); }";
        let (gs, file) = guards(src);
        assert!(covers(&file, &gs[0], "body"));
        assert!(!covers(&file, &gs[0], "past"));
    }

    #[test]
    fn rwlock_read_write_and_bare_locals_classify() {
        let src = "fn f(l: &Shared) { let r = l.table.read(); use_it(&r); }";
        let (gs, _) = guards(src);
        assert_eq!(gs[0].class, "Shared::table");
        // read()/write() with arguments are IO, not lock acquisitions.
        let src2 = "fn g(mut f: File) { f.read(buf); f.write(buf); }";
        let (gs2, _) = guards(src2);
        assert!(gs2.is_empty());
    }
}
