//! The lock-site model: find guard-producing acquisitions (`.lock()`,
//! `.read()`, `.write()` with empty argument lists) in a function body,
//! give each a canonical *lock class* derived from its receiver, and
//! compute the guard's live token range.
//!
//! Live ranges are computed over the function's [`Cfg`], not borrowck:
//!
//! * a **let-bound** guard is *killed* by `drop(g)` or by a call that
//!   takes `g` by value (ownership transfers to the callee, which
//!   becomes responsible), and is bounded by the end of its enclosing
//!   lexical block. Kills are path-sensitive: a single forward dataflow
//!   fact ("guard still held") is propagated block-to-block, so a
//!   conditional `drop(g)` in one branch ends liveness on that path but
//!   keeps it on every path that skips the branch — the pre-CFG model
//!   treated any textual `drop`/move as ending the whole range, which
//!   both missed real holds (the skipping path) and over-reported code
//!   after a rejoin where every path had dropped;
//! * a **temporary** guard lives to the end of its statement — including
//!   an attached `if let` / `match` block, whose scrutinee temporaries
//!   really do live that long — except on the left side of a plain
//!   assignment, where Rust evaluates the right operand *first*, so the
//!   guard is acquired only after the RHS ran.
//!
//! Known imprecision (documented in DESIGN.md §10): shadowed rebindings
//! of the same name are treated as one guard, and two locals with the
//! same name in different functions share a lock class.

use crate::callgraph::receiver_chain;
use crate::cfg::Cfg;
use crate::dataflow::{forward, BitSet};
use crate::lexer::{Token, TokenKind};
use crate::parser::FnDef;
use crate::source::SourceFile;

/// Method names that produce a guard when called with no arguments.
const ACQUIRE_METHODS: &[&str] = &["lock", "read", "write"];

/// One guard with its lock class and live range.
#[derive(Debug)]
pub struct Guard {
    /// Canonical lock identity (see [`lock_class`]).
    pub class: String,
    /// Token index of the acquiring method name.
    pub acquire_idx: usize,
    /// 1-based line of the acquisition.
    pub line: u32,
    /// 1-based column of the acquisition.
    pub col: u32,
    /// Lexical token-index bound (in the file's token stream): from just
    /// after the acquisition call to the end of the enclosing block (for
    /// a binding) or statement (for a temporary). The refined liveness
    /// in [`Guard::covers`] never extends past this range.
    pub range: (usize, usize),
    /// CFG-refined live segments: sorted, disjoint token sub-ranges of
    /// `range` on which some path still holds the guard.
    live: Vec<(usize, usize)>,
}

impl Guard {
    /// Is the guard (possibly) still held at token `idx`? True when any
    /// refined live segment contains the index — i.e. at least one
    /// control-flow path reaches `idx` without dropping or moving the
    /// guard first.
    pub fn covers(&self, idx: usize) -> bool {
        self.live.iter().any(|&(a, b)| (a..b).contains(&idx))
    }
}

/// Every guard acquired in `def`'s body, with liveness refined over the
/// function's `cfg`.
pub fn guards_in(file: &SourceFile, def: &FnDef, cfg: &Cfg) -> Vec<Guard> {
    let tokens = &file.tokens;
    let (start, end) = (def.body.0, def.body.1.min(tokens.len()));
    let mut out = Vec::new();
    let mut i = start;
    while i < end {
        let t = &tokens[i];
        let is_acquire = t.kind == TokenKind::Ident
            && ACQUIRE_METHODS.contains(&t.text.as_str())
            && i > start
            && tokens[i - 1].is_punct('.')
            && tokens.get(i + 1).is_some_and(|t| t.is_punct('('))
            && tokens.get(i + 2).is_some_and(|t| t.is_punct(')'));
        if !is_acquire {
            i += 1;
            continue;
        }
        let chain = receiver_chain(tokens, start, i - 1);
        let class = lock_class(&chain, def);
        let after = i + 3; // past `name ( )`
        let (bound, live) = match let_binding(tokens, start, i) {
            Some(name) => {
                let bound = let_scope_end(tokens, after, end);
                let kills = guard_kills(tokens, after, bound, &name);
                (bound, refine_live(cfg, i, after, bound, &kills))
            }
            None => {
                // A temporary dies at a fixed lexical point regardless of
                // branching: one segment, no dataflow needed.
                let bound = temp_guard_range(tokens, start, after, end, i);
                (bound, vec![(after, bound)])
            }
        };
        out.push(Guard {
            class,
            acquire_idx: i,
            line: t.line,
            col: t.col,
            range: (after, bound),
            live,
        });
        i = after;
    }
    out
}

/// Canonical lock identity from a receiver chain:
///
/// * `self.field` → `Owner::field` (the impl type owns the lock);
/// * `param.field` where the parameter's declared type names `T` →
///   `T::field`;
/// * a bare local/param (`slots[i].lock()`) → `local:name` — name-based,
///   shared across functions (over-approximation, see module docs);
/// * an unknown receiver (call-chain) → `local:?`.
pub fn lock_class(chain: &[String], def: &FnDef) -> String {
    match chain {
        [] => "local:?".to_string(),
        [only] => format!("local:{only}"),
        [first, rest @ ..] => {
            let owner: Option<String> = if first == "self" {
                def.owner.clone()
            } else {
                def.params
                    .iter()
                    .find(|p| &p.name == first)
                    .and_then(|p| p.type_idents.last().cloned())
            };
            match owner {
                Some(ty) => format!("{ty}::{}", rest.join(".")),
                None => format!("local:{first}.{}", rest.join(".")),
            }
        }
    }
}

/// Is the acquisition at `idx` the RHS of `let [mut] name = …`? The
/// receiver chain may sit between: `let g = self.inner.lock()`.
pub(crate) fn let_binding(tokens: &[Token], start: usize, idx: usize) -> Option<String> {
    // Walk back over the receiver chain to its head.
    let mut k = idx; // the method name; tokens[k-1] is `.`
    loop {
        if k <= start + 1 {
            return None;
        }
        let prev = &tokens[k - 1];
        if prev.is_punct('.') || prev.is_punct(':') || prev.kind == TokenKind::Ident {
            k -= 1;
            continue;
        }
        if prev.is_punct(']') {
            let mut depth = 0i32;
            while k > start {
                k -= 1;
                if tokens[k].is_punct(']') {
                    depth += 1;
                } else if tokens[k].is_punct('[') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
            }
            continue;
        }
        break;
    }
    // Now expect `= name [mut] let` walking backwards.
    if !(k > start && tokens[k - 1].is_punct('=')) {
        return None;
    }
    // Reject `==`, `+=`, `<=` … compound forms.
    if k >= 2 && tokens[k - 2].is_punct('=') {
        return None;
    }
    let mut b = k - 1;
    let name = tokens.get(b.checked_sub(1)?)?;
    if name.kind != TokenKind::Ident {
        return None;
    }
    b -= 1;
    let mut intro = b.checked_sub(1)?;
    if tokens[intro].is_ident("mut") {
        intro = intro.checked_sub(1)?;
    }
    if tokens[intro].is_ident("let") {
        Some(name.text.clone())
    } else {
        None
    }
}

/// Lexical scope bound of a let-bound guard: the close of the enclosing
/// block, or the end of the body.
fn let_scope_end(tokens: &[Token], after: usize, end: usize) -> usize {
    let mut depth = 0i32;
    let mut k = after;
    while k < end {
        let t = &tokens[k];
        if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct('}') || t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
            if depth < 0 {
                return k; // enclosing block closed
            }
        }
        k += 1;
    }
    end
}

/// Token positions at which guard `name` stops being held *on the path
/// through that token*: `drop(name)` calls, and bare `name` arguments
/// (not `&name`) where ownership moves into the callee. A move kill is
/// placed just before the callee name so the transferring call itself
/// does not count as running under the guard.
fn guard_kills(tokens: &[Token], after: usize, bound: usize, name: &str) -> Vec<usize> {
    let mut kills = Vec::new();
    for k in after..bound.min(tokens.len()) {
        let t = &tokens[k];
        if t.is_ident("drop")
            && tokens.get(k + 1).is_some_and(|t| t.is_punct('('))
            && tokens.get(k + 2).is_some_and(|t| t.is_ident(name))
            && tokens.get(k + 3).is_some_and(|t| t.is_punct(')'))
        {
            kills.push(k);
        } else if t.is_ident(name)
            && tokens
                .get(k.wrapping_sub(1))
                .is_some_and(|p| p.is_punct('(') || p.is_punct(','))
            && tokens
                .get(k + 1)
                .is_some_and(|n| n.is_punct(')') || n.is_punct(','))
            && !tokens
                .get(k.wrapping_sub(2))
                .is_some_and(|p| p.is_punct('&'))
        {
            kills.push(k.saturating_sub(2));
        }
    }
    kills.sort_unstable();
    kills.dedup();
    kills
}

/// Refine a let-bound guard's liveness over the CFG. With no kill sites
/// the guard is held on every path to the scope end: one segment. With
/// kills, a single "still held" fact is propagated forward — generated
/// in the acquiring block (unless a kill follows the acquisition in that
/// same block), killed by any block containing a kill site — and each
/// live-in block contributes a segment clipped at its first kill.
fn refine_live(
    cfg: &Cfg,
    acquire_idx: usize,
    after: usize,
    bound: usize,
    kills: &[usize],
) -> Vec<(usize, usize)> {
    if after >= bound {
        return Vec::new();
    }
    if kills.is_empty() {
        return vec![(after, bound)];
    }
    let Some(acq_b) = cfg.block_of(acquire_idx) else {
        // Acquisition outside the CFG (malformed body): fall back to the
        // lexical bound — over-approximating toward more coverage.
        return vec![(after, bound)];
    };
    let n = cfg.blocks.len();
    let in_block = |b: usize, k: usize| {
        let r = cfg.blocks[b].range;
        (r.0..r.1).contains(&k)
    };
    let mut gen = vec![BitSet::new(1); n];
    let mut kill = vec![BitSet::new(1); n];
    for (b, set) in kill.iter_mut().enumerate() {
        if kills.iter().any(|&k| in_block(b, k)) {
            set.insert(0);
        }
    }
    let first_kill_after_acq = kills
        .iter()
        .copied()
        .filter(|&k| in_block(acq_b, k) && k >= after)
        .min();
    if first_kill_after_acq.is_none() {
        gen[acq_b].insert(0);
    }
    let (ins, _) = forward(cfg, 1, &gen, &kill);

    let mut segs = Vec::new();
    let acq_end = cfg.blocks[acq_b].range.1;
    segs.push((after, first_kill_after_acq.unwrap_or(acq_end).min(acq_end)));
    for (b, inb) in ins.iter().enumerate() {
        if !inb.contains(0) {
            continue;
        }
        let r = cfg.blocks[b].range;
        let first_kill = kills.iter().copied().filter(|&k| in_block(b, k)).min();
        segs.push((r.0, first_kill.unwrap_or(r.1)));
    }
    // Clamp to the guard's lexical window, then merge into disjoint
    // sorted segments.
    let mut clamped: Vec<(usize, usize)> = segs
        .into_iter()
        .map(|(a, b)| (a.max(after), b.min(bound)))
        .filter(|&(a, b)| a < b)
        .collect();
    clamped.sort_unstable();
    let mut merged: Vec<(usize, usize)> = Vec::new();
    for (a, b) in clamped {
        match merged.last_mut() {
            Some(last) if a <= last.1 => last.1 = last.1.max(b),
            _ => merged.push((a, b)),
        }
    }
    merged
}

/// Live range of a temporary guard: to the end of its statement. The
/// statement ends at a `;` at the acquisition's nesting depth, at the
/// close of an attached block opened at that depth (`if let` / `match`
/// bodies — unless an `else` continues the statement), at the close of
/// the *enclosing* block, or — when the guard sits on the left of a
/// plain `=` assignment — already at the `=`, because Rust evaluates the
/// right operand first.
fn temp_guard_range(
    tokens: &[Token],
    start: usize,
    after: usize,
    end: usize,
    acquire_idx: usize,
) -> usize {
    let _ = start;
    let _ = acquire_idx;
    let mut depth = 0i32;
    let mut k = after;
    while k < end {
        let t = &tokens[k];
        if t.is_punct('{') {
            // An attached block at depth 0: the temporary lives through
            // it (if-let / match scrutinee semantics) but not past it.
            if depth == 0 {
                let close = crate::parser::match_delim(tokens, k);
                if tokens.get(close + 1).is_some_and(|t| t.is_ident("else")) {
                    k = close + 1;
                    continue;
                }
                return close.min(end);
            }
            depth += 1;
        } else if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
            if depth < 0 {
                return k;
            }
        } else if depth == 0 && t.is_punct(';') {
            return k;
        } else if depth == 0
            && t.is_punct('=')
            && !tokens.get(k + 1).is_some_and(|n| n.is_punct('='))
            && !tokens.get(k.wrapping_sub(1)).is_some_and(|p| {
                p.is_punct('=') || p.is_punct('!') || p.is_punct('<') || p.is_punct('>')
            })
        {
            // `*x.lock() = rhs` — the RHS ran before the lock was taken.
            return k;
        }
        k += 1;
    }
    end
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::Model;
    use crate::source::SourceFile;

    fn guards(src: &str) -> (Vec<Guard>, SourceFile) {
        let file = SourceFile::parse("test.rs".to_string(), src, &[]);
        let model = Model::build(std::slice::from_ref(&file));
        let def = model.fns[0].clone();
        let cfg = model.cfgs[0].clone();
        let file = SourceFile::parse("test.rs".to_string(), src, &[]);
        (guards_in(&file, &def, &cfg), file)
    }

    fn covers(file: &SourceFile, g: &Guard, ident: &str) -> bool {
        file.tokens
            .iter()
            .enumerate()
            .any(|(i, t)| t.is_ident(ident) && g.covers(i))
    }

    #[test]
    fn let_bound_guard_lives_to_drop() {
        let src = "impl S { fn f(&self) { let g = self.a.lock(); one(); drop(g); two(); } }";
        let (gs, file) = guards(src);
        assert_eq!(gs.len(), 1);
        assert_eq!(gs[0].class, "S::a");
        assert!(covers(&file, &gs[0], "one"));
        assert!(!covers(&file, &gs[0], "two"));
    }

    #[test]
    fn let_bound_guard_lives_to_block_end_without_drop() {
        let src = "fn f(m: &Holder) { { let g = m.inner.lock(); one(); } two(); }";
        let (gs, file) = guards(src);
        assert_eq!(gs.len(), 1);
        assert_eq!(gs[0].class, "Holder::inner");
        assert!(covers(&file, &gs[0], "one"));
        assert!(!covers(&file, &gs[0], "two"));
    }

    #[test]
    fn moved_guard_ends_at_the_transferring_call() {
        let src = "impl S { fn f(&self) { let g = self.a.lock(); self.finish(g); after(); } }";
        let (gs, file) = guards(src);
        assert!(!covers(&file, &gs[0], "after"));
        // …but a borrow keeps it live.
        let src2 = "impl S { fn f(&self) { let g = self.a.lock(); look(&g); after(); } }";
        let (gs2, file2) = guards(src2);
        assert!(covers(&file2, &gs2[0], "after"));
    }

    #[test]
    fn temporary_guard_ends_at_statement_semicolon() {
        let src = "fn f(c: &Cache) { c.map.lock().insert(k, v); later(); }";
        let (gs, file) = guards(src);
        assert_eq!(gs[0].class, "Cache::map");
        assert!(covers(&file, &gs[0], "insert"));
        assert!(!covers(&file, &gs[0], "later"));
    }

    #[test]
    fn assignment_lhs_guard_does_not_cover_the_rhs() {
        let src = "fn f() { *slots[i].lock() = compute(x); later(); }";
        let (gs, file) = guards(src);
        assert_eq!(gs[0].class, "local:slots");
        assert!(!covers(&file, &gs[0], "compute"));
    }

    #[test]
    fn if_let_scrutinee_guard_lives_through_the_body_not_past_it() {
        let src = "fn f(c: &Cache) { if let Some(r) = c.map.lock().get(k) { body(); } past(); }";
        let (gs, file) = guards(src);
        assert!(covers(&file, &gs[0], "body"));
        assert!(!covers(&file, &gs[0], "past"));
    }

    #[test]
    fn conditional_drop_keeps_the_skipping_path_live() {
        // `drop(g)` only runs when `c` holds: `two()` is still reached
        // with the guard held on the other path. The pre-CFG model ended
        // the range at the first textual drop and missed this.
        let src = "impl S { fn f(&self) { let g = self.a.lock(); if c { drop(g); } two(); } }";
        let (gs, file) = guards(src);
        assert_eq!(gs.len(), 1);
        assert!(covers(&file, &gs[0], "two"));
    }

    #[test]
    fn drop_on_every_path_ends_liveness_at_the_rejoin() {
        let src = "impl S { fn f(&self) { let g = self.a.lock(); \
                   if c { drop(g); } else { drop(g); } two(); } }";
        let (gs, file) = guards(src);
        assert_eq!(gs.len(), 1);
        assert!(!covers(&file, &gs[0], "two"));
    }

    #[test]
    fn code_after_a_branch_drop_inside_that_branch_is_not_covered() {
        let src = "impl S { fn f(&self) { let g = self.a.lock(); \
                   if c { drop(g); in_branch(); } two(); } }";
        let (gs, file) = guards(src);
        assert!(!covers(&file, &gs[0], "in_branch"));
        assert!(covers(&file, &gs[0], "two"));
    }

    #[test]
    fn conditional_move_keeps_the_skipping_path_live() {
        let src = "impl S { fn f(&self) { let g = self.a.lock(); \
                   if c { self.finish(g); } two(); } }";
        let (gs, file) = guards(src);
        assert!(covers(&file, &gs[0], "two"));
        assert!(!covers(&file, &gs[0], "finish"));
    }

    #[test]
    fn rwlock_read_write_and_bare_locals_classify() {
        let src = "fn f(l: &Shared) { let r = l.table.read(); use_it(&r); }";
        let (gs, _) = guards(src);
        assert_eq!(gs[0].class, "Shared::table");
        // read()/write() with arguments are IO, not lock acquisitions.
        let src2 = "fn g(mut f: File) { f.read(buf); f.write(buf); }";
        let (gs2, _) = guards(src2);
        assert!(gs2.is_empty());
    }
}
