//! The incremental cache: skip re-analysis of unchanged inputs.
//!
//! Two layers, both stored in one human-greppable TSV under the cache
//! directory (`target/lint-cache` by default):
//!
//! * **file entries** — the post-suppression findings of the *local*
//!   rules (see [`crate::rules::Rule::is_local`]) plus that file's
//!   malformed-suppression findings, keyed on the file's content hash.
//!   A file whose hash is unchanged skips its local analysis entirely.
//! * **one global entry** — the post-suppression findings of every
//!   cross-file rule (call graph, lock order, R9–R11), keyed on the
//!   *workspace fingerprint*: the hash of every file's `(path, hash)`
//!   pair plus `DESIGN.md`. The call graph makes these rules global, so
//!   any change anywhere invalidates them — per-file keys are kept
//!   anyway, both for the hit statistics and as the seam a finer
//!   local/global rule split would reuse.
//!
//! Every entry is additionally keyed on [`ruleset_id`]: editing a rule's
//! semantics bumps [`RULESET_VERSION`], and adding/renaming a rule
//! changes the id string, so stale caches self-invalidate. The baseline
//! is *not* cached — it is applied after cache assembly, so editing
//! `lint.baseline` never requires re-analysis.
//!
//! Cache corruption of any kind (truncated file, unknown rule name,
//! unparsable line) degrades to a cold run, never to wrong findings.

use crate::rules::Finding;
use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::Path;

/// Bump when any rule's semantics change without its name changing —
/// cached findings from older semantics must not survive.
pub const RULESET_VERSION: u32 = 1;

/// Cache file name inside the cache directory.
const CACHE_FILE: &str = "cache.tsv";

/// The full analysis identity: version plus every suppressible name, so
/// adding, removing, or renaming a rule invalidates the cache.
pub fn ruleset_id() -> String {
    format!(
        "{RULESET_VERSION} {}",
        crate::rules::suppressible_names().join(",")
    )
}

/// FNV-1a 64-bit: the content hash for cache keys. Not cryptographic —
/// a collision costs a stale lint report, not a correctness bug in the
/// shipped code — and dependency-free, which the linter is by design.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Key for the global (cross-file) entry: every input's `(path, hash)`
/// in scan order, `DESIGN.md`, and the ruleset id.
pub fn workspace_fingerprint(ruleset: &str, design: Option<&str>, files: &[(&str, u64)]) -> u64 {
    let mut acc = String::new();
    acc.push_str(ruleset);
    acc.push('\0');
    if let Some(d) = design {
        acc.push_str(d);
    }
    acc.push('\0');
    for (path, hash) in files {
        acc.push_str(path);
        acc.push('\0');
        acc.push_str(&format!("{hash:016x}\0"));
    }
    fnv1a64(acc.as_bytes())
}

/// Cached per-file result: local-rule + malformed-suppression findings
/// that survived suppression, and how many were suppressed.
#[derive(Debug, Clone, Default)]
pub struct FileEntry {
    /// Content hash of the file the entry was computed from.
    pub hash: u64,
    /// Post-suppression findings whose `path` is this file.
    pub findings: Vec<Finding>,
    /// Local findings silenced by valid `lint:allow` directives.
    pub suppressed: u32,
}

/// Cached cross-file result for one workspace fingerprint.
#[derive(Debug, Clone, Default)]
pub struct GlobalEntry {
    /// The [`workspace_fingerprint`] the entry was computed from.
    pub fingerprint: u64,
    /// Post-suppression findings of every global rule.
    pub findings: Vec<Finding>,
    /// Global findings silenced by valid `lint:allow` directives.
    pub suppressed: u32,
}

/// Everything one cache file holds.
#[derive(Debug, Clone, Default)]
pub struct Cache {
    /// Per-file entries by workspace-relative path.
    pub files: BTreeMap<String, FileEntry>,
    /// The cross-file entry, when one has been written.
    pub global: Option<GlobalEntry>,
}

/// Load the cache under `dir`. Any mismatch — missing file, wrong
/// ruleset id, corrupt line, unknown rule name — returns an empty cache:
/// a cold run, never a wrong one.
pub fn load(dir: &Path, ruleset: &str) -> Cache {
    let Ok(text) = fs::read_to_string(dir.join(CACHE_FILE)) else {
        return Cache::default();
    };
    parse(&text, ruleset).unwrap_or_default()
}

fn parse(text: &str, ruleset: &str) -> Option<Cache> {
    let mut lines = text.lines();
    let header = lines.next()?;
    if header != format!("lint-cache {ruleset}") {
        return None;
    }
    // Findings carry `&'static str` rule names: map cached names back to
    // the live registry (plus the engine's own synthetic rules).
    let mut names: BTreeMap<&str, &'static str> = BTreeMap::new();
    for rule in crate::rules::RULES {
        names.insert(rule.name(), rule.name());
    }
    names.insert("suppression", "suppression");

    let mut cache = Cache::default();
    let mut current: Option<(String, FileEntry)> = None;
    for line in lines {
        let fields: Vec<&str> = line.split('\t').collect();
        match fields.as_slice() {
            ["file", path, hash, suppressed] => {
                if let Some((p, e)) = current.take() {
                    cache.files.insert(p, e);
                }
                current = Some((
                    (*path).to_string(),
                    FileEntry {
                        hash: u64::from_str_radix(hash, 16).ok()?,
                        findings: Vec::new(),
                        suppressed: suppressed.parse().ok()?,
                    },
                ));
            }
            ["f", rule, line_no, col, message] => {
                let (path, entry) = current.as_mut()?;
                entry.findings.push(Finding {
                    rule: names.get(rule)?,
                    path: path.clone(),
                    line: line_no.parse().ok()?,
                    col: col.parse().ok()?,
                    message: unescape(message)?,
                });
            }
            ["global", fingerprint, suppressed] => {
                if let Some((p, e)) = current.take() {
                    cache.files.insert(p, e);
                }
                cache.global = Some(GlobalEntry {
                    fingerprint: u64::from_str_radix(fingerprint, 16).ok()?,
                    findings: Vec::new(),
                    suppressed: suppressed.parse().ok()?,
                });
            }
            ["g", rule, path, line_no, col, message] => {
                let global = cache.global.as_mut()?;
                global.findings.push(Finding {
                    rule: names.get(rule)?,
                    path: unescape(path)?,
                    line: line_no.parse().ok()?,
                    col: col.parse().ok()?,
                    message: unescape(message)?,
                });
            }
            _ => return None,
        }
    }
    if let Some((p, e)) = current.take() {
        cache.files.insert(p, e);
    }
    Some(cache)
}

/// Write the cache under `dir`, creating it as needed. Written to a
/// temporary name then renamed, so a crash mid-write leaves either the
/// old cache or none — [`load`] treats both correctly.
pub fn store(dir: &Path, ruleset: &str, cache: &Cache) -> io::Result<()> {
    fs::create_dir_all(dir)?;
    let mut out = format!("lint-cache {ruleset}\n");
    for (path, entry) in &cache.files {
        out.push_str(&format!(
            "file\t{path}\t{:016x}\t{}\n",
            entry.hash, entry.suppressed
        ));
        for f in &entry.findings {
            out.push_str(&format!(
                "f\t{}\t{}\t{}\t{}\n",
                f.rule,
                f.line,
                f.col,
                escape(&f.message)
            ));
        }
    }
    if let Some(global) = &cache.global {
        out.push_str(&format!(
            "global\t{:016x}\t{}\n",
            global.fingerprint, global.suppressed
        ));
        for f in &global.findings {
            out.push_str(&format!(
                "g\t{}\t{}\t{}\t{}\t{}\n",
                f.rule,
                escape(&f.path),
                f.line,
                f.col,
                escape(&f.message)
            ));
        }
    }
    let tmp = dir.join(format!("{CACHE_FILE}.tmp"));
    fs::write(&tmp, out)?;
    fs::rename(&tmp, dir.join(CACHE_FILE))
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

fn unescape(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next()? {
            '\\' => out.push('\\'),
            't' => out.push('\t'),
            'n' => out.push('\n'),
            'r' => out.push('\r'),
            _ => return None,
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Cache {
        let mut cache = Cache::default();
        cache.files.insert(
            "src/a.rs".to_string(),
            FileEntry {
                hash: 0xdead_beef,
                findings: vec![Finding {
                    rule: crate::rules::RULES[0].name(),
                    path: "src/a.rs".to_string(),
                    line: 3,
                    col: 7,
                    message: "tab\there, newline\nthere, slash\\done".to_string(),
                }],
                suppressed: 2,
            },
        );
        cache.global = Some(GlobalEntry {
            fingerprint: 42,
            findings: vec![Finding {
                rule: crate::rules::RULES[8].name(),
                path: "crates/x/src/lib.rs".to_string(),
                line: 9,
                col: 0,
                message: "hot".to_string(),
            }],
            suppressed: 1,
        });
        cache
    }

    #[test]
    fn round_trips_through_disk() {
        let dir = std::env::temp_dir().join("lint-cache-roundtrip-test");
        let _ = fs::remove_dir_all(&dir);
        let ruleset = ruleset_id();
        let cache = sample();
        store(&dir, &ruleset, &cache).unwrap();
        let loaded = load(&dir, &ruleset);
        assert_eq!(loaded.files.len(), 1);
        let entry = &loaded.files["src/a.rs"];
        assert_eq!(entry.hash, 0xdead_beef);
        assert_eq!(entry.suppressed, 2);
        assert_eq!(entry.findings, cache.files["src/a.rs"].findings);
        let global = loaded.global.unwrap();
        assert_eq!(global.fingerprint, 42);
        assert_eq!(global.findings, cache.global.unwrap().findings);
    }

    #[test]
    fn ruleset_mismatch_is_a_cold_cache() {
        let dir = std::env::temp_dir().join("lint-cache-version-test");
        let _ = fs::remove_dir_all(&dir);
        store(&dir, "0 old-rules", &sample()).unwrap();
        let loaded = load(&dir, &ruleset_id());
        assert!(loaded.files.is_empty());
        assert!(loaded.global.is_none());
    }

    #[test]
    fn corrupt_cache_is_a_cold_cache() {
        let dir = std::env::temp_dir().join("lint-cache-corrupt-test");
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let ruleset = ruleset_id();
        fs::write(
            dir.join(CACHE_FILE),
            format!("lint-cache {ruleset}\nfile\tsrc/a.rs\tnothex\t0\n"),
        )
        .unwrap();
        assert!(load(&dir, &ruleset).files.is_empty());
        // An unknown rule name (retired rule) also degrades to cold.
        fs::write(
            dir.join(CACHE_FILE),
            format!("lint-cache {ruleset}\nfile\tsrc/a.rs\t00000000000000ff\t0\nf\tno-such-rule\t1\t1\tm\n"),
        )
        .unwrap();
        assert!(load(&dir, &ruleset).files.is_empty());
    }

    #[test]
    fn fingerprint_changes_with_any_input() {
        let base = workspace_fingerprint("id", None, &[("a.rs", 1), ("b.rs", 2)]);
        assert_ne!(
            base,
            workspace_fingerprint("id", None, &[("a.rs", 1), ("b.rs", 3)]),
            "content change must move the fingerprint"
        );
        assert_ne!(
            base,
            workspace_fingerprint("id", None, &[("a.rs", 1)]),
            "file removal must move the fingerprint"
        );
        assert_ne!(
            base,
            workspace_fingerprint("id", Some("design"), &[("a.rs", 1), ("b.rs", 2)]),
            "DESIGN.md change must move the fingerprint"
        );
        assert_ne!(
            base,
            workspace_fingerprint("id2", None, &[("a.rs", 1), ("b.rs", 2)]),
            "ruleset change must move the fingerprint"
        );
    }
}
