//! A hand-rolled Rust lexer, just deep enough for static analysis.
//!
//! The linter must never fire on text inside comments, string literals,
//! raw strings, or char literals — `// call SystemTime::now() here?` is
//! prose, not a violation — so the lexer's whole job is to separate code
//! tokens from everything that merely looks like code. It understands:
//!
//! * line comments (`//`, `///`, `//!`) and **nested** block comments;
//! * string/byte-string literals with escapes, raw (byte) strings with an
//!   arbitrary number of `#` guards, char and byte-char literals;
//! * the `'a` lifetime vs `'a'` char-literal ambiguity;
//! * raw identifiers (`r#type`);
//! * enough numeric-literal shape to step over suffixes and floats.
//!
//! Comments are kept (with line spans) because suppression directives
//! live in them; everything else becomes a flat [`Token`] stream that the
//! rules pattern-match over.

/// What a token is; the linter needs no finer grain than this.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (raw identifiers are stripped of `r#`).
    Ident,
    /// Single punctuation character (`::` arrives as two `:` tokens).
    Punct,
    /// String, byte-string, raw-string, char, or numeric literal. The
    /// token text preserves the source spelling, prefixes and quotes
    /// included.
    Literal,
    /// A lifetime such as `'a` (without the tick).
    Lifetime,
}

/// One lexed token with its 1-based source position.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// Source text (see [`TokenKind`] for per-kind conventions).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
    /// 1-based column (in chars) the token starts at.
    pub col: u32,
}

impl Token {
    /// Is this an identifier with exactly this text?
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == text
    }

    /// Is this a punctuation token with exactly this character?
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokenKind::Punct
            && self.text.len() == ch.len_utf8()
            && self.text.starts_with(ch)
    }
}

/// One comment (line or block) with the lines it spans.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based line the comment ends on (same as `line` for `//`).
    pub end_line: u32,
    /// Full comment text including the `//` or `/* */` delimiters.
    pub text: String,
}

/// The lexer's output: code tokens plus the comments they were cut from.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Lex `src`. Unterminated constructs (EOF inside a string or block
/// comment) are tolerated: the open construct simply runs to EOF — the
/// compiler, not the linter, owns rejecting malformed files.
pub fn lex(src: &str) -> Lexed {
    Lexer {
        chars: src.char_indices().collect(),
        pos: 0,
        line: 1,
        col: 1,
        out: Lexed::default(),
        src,
    }
    .run()
}

struct Lexer<'a> {
    chars: Vec<(usize, char)>,
    pos: usize,
    line: u32,
    col: u32,
    out: Lexed,
    src: &'a str,
}

impl Lexer<'_> {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).map(|&(_, c)| c)
    }

    fn byte_at(&self, pos: usize) -> usize {
        self.chars.get(pos).map_or(self.src.len(), |&(b, _)| b)
    }

    /// Advance one char, tracking the line/column counters.
    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn slice(&self, from_pos: usize) -> String {
        self.src[self.byte_at(from_pos)..self.byte_at(self.pos)].to_string()
    }

    fn push(&mut self, kind: TokenKind, text: String, line: u32, col: u32) {
        self.out.tokens.push(Token {
            kind,
            text,
            line,
            col,
        });
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            let start = self.pos;
            let line = self.line;
            let col = self.col;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(start, line),
                '/' if self.peek(1) == Some('*') => self.block_comment(start, line),
                '"' => {
                    self.bump();
                    self.quoted_string(start, line, col, '"');
                }
                'r' | 'b' if self.literal_prefix(start, line, col) => {}
                '\'' => self.tick(start, line, col),
                c if is_ident_start(c) => {
                    while self.peek(0).is_some_and(is_ident_continue) {
                        self.bump();
                    }
                    let text = self.slice(start);
                    self.push(TokenKind::Ident, text, line, col);
                }
                c if c.is_ascii_digit() => self.number(start, line, col),
                _ => {
                    self.bump();
                    let text = self.slice(start);
                    self.push(TokenKind::Punct, text, line, col);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self, start: usize, line: u32) {
        while self.peek(0).is_some_and(|c| c != '\n') {
            self.bump();
        }
        self.out.comments.push(Comment {
            line,
            end_line: line,
            text: self.slice(start),
        });
    }

    /// Block comments nest in Rust: `/* /* */ */` is one comment.
    fn block_comment(&mut self, start: usize, line: u32) {
        self.bump();
        self.bump(); // consume `/*`
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some('*'), Some('/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break, // unterminated: runs to EOF
            }
        }
        self.out.comments.push(Comment {
            line,
            end_line: self.line,
            text: self.slice(start),
        });
    }

    /// Consume the rest of a `"`-quoted (byte) string; the opening quote
    /// and any prefix were consumed by the caller.
    fn quoted_string(&mut self, start: usize, line: u32, col: u32, quote: char) {
        loop {
            match self.bump() {
                Some('\\') => {
                    self.bump(); // escaped char, never the closer
                }
                Some(c) if c == quote => break,
                Some(_) => {}
                None => break,
            }
        }
        let text = self.slice(start);
        self.push(TokenKind::Literal, text, line, col);
    }

    /// Handle the `r` / `b` family: raw strings `r"…"` / `r#"…"#`, byte
    /// strings `b"…"`, raw byte strings `br#"…"#`, byte chars `b'x'`, and
    /// raw identifiers `r#type`. Returns false when the `r`/`b` is just
    /// the start of a plain identifier (the caller lexes it then).
    fn literal_prefix(&mut self, start: usize, line: u32, col: u32) -> bool {
        let mut ahead = 1;
        let raw = match self.peek(0) {
            Some('b') if self.peek(1) == Some('r') => {
                ahead = 2;
                true
            }
            Some('r') => true,
            _ => false,
        };
        // Count `#` guards after the prefix.
        let mut hashes = 0usize;
        while raw && self.peek(ahead) == Some('#') {
            hashes += 1;
            ahead += 1;
        }
        match self.peek(ahead) {
            Some('"') if raw => {
                for _ in 0..=ahead {
                    self.bump(); // prefix, guards, opening quote
                }
                self.raw_string_body(start, line, col, hashes);
                true
            }
            // `b"…"` and `b'x'` (non-raw byte literals).
            Some('"') if ahead == 1 && self.peek(0) == Some('b') => {
                self.bump();
                self.bump();
                self.quoted_string(start, line, col, '"');
                true
            }
            Some('\'') if ahead == 1 && self.peek(0) == Some('b') => {
                self.bump();
                self.bump();
                self.char_literal_body(start, line, col);
                true
            }
            // Raw identifier `r#type`: strip the `r#` so rules match the
            // bare name.
            Some(c) if hashes == 1 && self.peek(0) == Some('r') && is_ident_start(c) => {
                self.bump();
                self.bump();
                let ident_start = self.pos;
                while self.peek(0).is_some_and(is_ident_continue) {
                    self.bump();
                }
                let text = self.slice(ident_start);
                self.push(TokenKind::Ident, text, line, col);
                true
            }
            _ => false,
        }
    }

    /// Body of a raw string whose opener is consumed: ends at `"` followed
    /// by `hashes` `#` characters. Quotes and `//` inside are plain text.
    fn raw_string_body(&mut self, start: usize, line: u32, col: u32, hashes: usize) {
        'scan: while let Some(c) = self.bump() {
            if c == '"' {
                for k in 0..hashes {
                    if self.peek(k) != Some('#') {
                        continue 'scan;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
        let text = self.slice(start);
        self.push(TokenKind::Literal, text, line, col);
    }

    /// After a consumed opening `'` of a definite char literal: consume
    /// through the closing `'`.
    fn char_literal_body(&mut self, start: usize, line: u32, col: u32) {
        match self.bump() {
            Some('\\') => {
                self.bump();
                // Escapes like `\u{1F600}` contain braces; skip to the tick.
                while self.peek(0).is_some_and(|c| c != '\'') {
                    self.bump();
                }
                self.bump();
            }
            Some(_) => {
                self.bump(); // closing tick
            }
            None => {}
        }
        let text = self.slice(start);
        self.push(TokenKind::Literal, text, line, col);
    }

    /// A `'` is either a char literal or a lifetime. `'x'` (tick, one
    /// char, tick) and `'\…'` are char literals; `'ident` without a
    /// closing tick is a lifetime.
    fn tick(&mut self, start: usize, line: u32, col: u32) {
        match (self.peek(1), self.peek(2)) {
            (Some('\\'), _) => {
                self.bump();
                self.char_literal_body(start, line, col);
            }
            (Some(_), Some('\'')) => {
                self.bump();
                self.char_literal_body(start, line, col);
            }
            (Some(c), _) if is_ident_start(c) => {
                self.bump(); // tick
                let ident_start = self.pos;
                while self.peek(0).is_some_and(is_ident_continue) {
                    self.bump();
                }
                let text = self.slice(ident_start);
                self.push(TokenKind::Lifetime, text, line, col);
            }
            _ => {
                self.bump();
                self.push(TokenKind::Punct, "'".to_string(), line, col);
            }
        }
    }

    /// Numbers only need to be stepped over correctly; the one rule that
    /// reads them ([`journal-format`](crate::rules::journal_format))
    /// parses decimal integers from the token text. `0..5` must lex as
    /// `0`, `.`, `.`, `5` — a `.` is part of the number only when a digit
    /// follows it.
    fn number(&mut self, start: usize, line: u32, col: u32) {
        while self
            .peek(0)
            .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_')
        {
            self.bump();
        }
        if self.peek(0) == Some('.') && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
            self.bump();
            while self
                .peek(0)
                .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_')
            {
                self.bump();
            }
        }
        let text = self.slice(start);
        self.push(TokenKind::Literal, text, line, col);
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn raw_string_with_embedded_comment_and_quotes_is_one_literal() {
        let src = r####"let x = r#"quote " and // not a comment "#; call()"####;
        let lexed = lex(src);
        assert!(lexed.comments.is_empty(), "// inside a raw string is text");
        let lit: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Literal)
            .collect();
        assert_eq!(lit.len(), 1);
        assert!(lit[0].text.contains("not a comment"));
        assert_eq!(idents(src), ["let", "x", "call"]);
    }

    #[test]
    fn raw_string_guard_counts_must_match() {
        // The `"#` inside the body does not close an `r##"…"##` string.
        let src = r####"r##"inner "# still inside"## tail"####;
        let lexed = lex(src);
        assert_eq!(lexed.tokens.len(), 2);
        assert!(lexed.tokens[0].text.ends_with(r####""##"####));
        assert!(lexed.tokens[1].is_ident("tail"));
    }

    #[test]
    fn nested_block_comments_close_at_matching_depth() {
        let src = "before /* outer /* inner */ still comment */ after";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 1);
        assert!(lexed.comments[0].text.contains("still comment"));
        assert_eq!(idents(src), ["before", "after"]);
    }

    #[test]
    fn block_comment_line_span_is_tracked() {
        let src = "a\n/* one\ntwo\nthree */\nb";
        let lexed = lex(src);
        assert_eq!(lexed.comments[0].line, 2);
        assert_eq!(lexed.comments[0].end_line, 4);
        assert_eq!(lexed.tokens[1].line, 5);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) { let c = 'x'; let e = '\\n'; }";
        let lexed = lex(src);
        let lifetimes: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, ["a", "a"]);
        let literals: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Literal)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(literals, ["'x'", "'\\n'"]);
    }

    #[test]
    fn string_escapes_do_not_end_the_string() {
        let src = r#"let s = "with \" escaped // quote"; next"#;
        let lexed = lex(src);
        assert!(lexed.comments.is_empty());
        assert!(lexed
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Literal && t.text.contains("escaped")));
        assert!(lexed.tokens.last().unwrap().is_ident("next"));
    }

    #[test]
    fn byte_strings_and_raw_idents() {
        let src = r##"let m = *b"CWJ1"; let t = r#type; let raw = br#"x"#;"##;
        let lexed = lex(src);
        assert!(lexed
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Literal && t.text == "b\"CWJ1\""));
        assert!(lexed.tokens.iter().any(|t| t.is_ident("type")));
        assert!(lexed
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Literal && t.text == "br#\"x\"#"));
    }

    #[test]
    fn numbers_do_not_swallow_range_dots() {
        let src = "for i in 0..35 { let f = 1.5; let h = 0xFF_u32; }";
        let lexed = lex(src);
        let lits: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Literal)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lits, ["0", "35", "1.5", "0xFF_u32"]);
    }
}
