//! The intraprocedural dataflow layer: a small bitset-based forward
//! fixpoint framework over a [`Cfg`], plus def-use chains for
//! `let`-bound locals — the machinery R7's block-scoped guard liveness
//! and the resource rules (R9–R11) share.
//!
//! Everything here is an over-approximation in a *documented* direction
//! (DESIGN.md §10): uses resolve to the latest strictly-earlier def in
//! token order filtered by CFG reachability, so chains are acyclic by
//! construction; loop-carried reads are recovered conservatively by
//! [`DefUse::is_read`].

use crate::cfg::{BlockId, Cfg};
use crate::lexer::{Token, TokenKind};

// ---------------------------------------------------------------- bitset

/// A fixed-width bitset over `len` facts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// The empty set over `len` bits.
    pub fn new(len: usize) -> BitSet {
        BitSet {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Set bit `i`; returns `true` when the set changed.
    pub fn insert(&mut self, i: usize) -> bool {
        if i >= self.len {
            return false;
        }
        let (w, b) = (i / 64, 1u64 << (i % 64));
        let had = self.words[w] & b != 0;
        self.words[w] |= b;
        !had
    }

    /// Clear bit `i`.
    pub fn remove(&mut self, i: usize) {
        if i < self.len {
            self.words[i / 64] &= !(1u64 << (i % 64));
        }
    }

    /// Is bit `i` set?
    pub fn contains(&self, i: usize) -> bool {
        i < self.len && self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Union `other` into `self`; returns `true` when anything changed.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        let mut changed = false;
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            let new = *w | o;
            changed |= new != *w;
            *w = new;
        }
        changed
    }

    /// Remove every bit set in `other`.
    pub fn subtract(&mut self, other: &BitSet) {
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w &= !o;
        }
    }

    /// No bits set?
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|w| *w == 0)
    }
}

/// Forward may-analysis to a fixpoint over `cfg` with the classic
/// transfer `out[b] = (in[b] \ kill[b]) ∪ gen[b]` and union meet:
/// `in[b] = ∪ out[p]` over predecessors. Returns `(ins, outs)` indexed
/// by block. Facts are whatever the caller numbers 0..`nbits` (guard
/// ids for R7 liveness). Terminates because sets only grow.
pub fn forward(
    cfg: &Cfg,
    nbits: usize,
    gen: &[BitSet],
    kill: &[BitSet],
) -> (Vec<BitSet>, Vec<BitSet>) {
    let n = cfg.blocks.len();
    let mut ins: Vec<BitSet> = (0..n).map(|_| BitSet::new(nbits)).collect();
    let mut outs: Vec<BitSet> = (0..n).map(|_| BitSet::new(nbits)).collect();
    // Seed every block's out with its gen so facts flow even before the
    // first full pass reaches it.
    let mut work: Vec<BlockId> = (0..n).collect();
    while let Some(b) = work.pop() {
        let mut inb = BitSet::new(nbits);
        for &p in &cfg.blocks[b].preds {
            inb.union_with(&outs[p]);
        }
        let mut outb = inb.clone();
        if let Some(k) = kill.get(b) {
            outb.subtract(k);
        }
        if let Some(g) = gen.get(b) {
            outb.union_with(g);
        }
        let in_changed = ins[b] != inb;
        let out_changed = outs[b] != outb;
        ins[b] = inb;
        outs[b] = outb;
        if out_changed || in_changed {
            for &s in &cfg.blocks[b].succs {
                if !work.contains(&s) {
                    work.push(s);
                }
            }
        }
    }
    (ins, outs)
}

// --------------------------------------------------------------- def-use

/// One definition of a local: a `let` binding (including `if let` /
/// `while let` / destructuring patterns) or a plain `name = …`
/// reassignment at statement level.
#[derive(Debug, Clone)]
pub struct Def {
    /// The bound name (`_` for wildcard discards — R11 reads those).
    pub name: String,
    /// Token index of the binding identifier.
    pub name_idx: usize,
    /// Token range of the initializer expression (empty when the binding
    /// has none, e.g. `let x;`).
    pub rhs: (usize, usize),
    /// 1-based line of the binding identifier.
    pub line: u32,
    /// 1-based column of the binding identifier.
    pub col: u32,
    /// Introduced by `let` (as opposed to a reassignment)?
    pub is_let: bool,
}

/// Def-use chains for one function body.
#[derive(Debug)]
pub struct DefUse {
    /// All defs in token order.
    pub defs: Vec<Def>,
    /// Per def (parallel to `defs`), the token indices of uses that
    /// resolve to it.
    pub uses: Vec<Vec<usize>>,
}

impl DefUse {
    /// Is this def ever read? Counts resolved uses plus — conservatively
    /// — loop-carried reads: a same-name use textually *before* the def
    /// whose block the def's block can reach back to (e.g. `loop {
    /// use(x); x = io(); }`). Over-approximating reads keeps R11 from
    /// flagging bindings that are consumed on the next iteration.
    pub fn is_read(&self, cfg: &Cfg, tokens: &[Token], def_idx: usize) -> bool {
        if !self.uses[def_idx].is_empty() {
            return true;
        }
        let def = &self.defs[def_idx];
        if def.name == "_" {
            return false;
        }
        let Some(db) = cfg.block_of(def.name_idx) else {
            return true; // unknown position: assume read
        };
        let reach = cfg.reachable_from(db);
        for (i, t) in tokens[cfg.body.0..cfg.body.1.min(tokens.len())]
            .iter()
            .enumerate()
        {
            let idx = cfg.body.0 + i;
            if idx >= def.name_idx || !t.is_ident(&def.name) || self.is_def_site(idx) {
                continue;
            }
            if let Some(ub) = cfg.block_of(idx) {
                if reach[ub] {
                    return true; // def flows around a back edge into it
                }
            }
        }
        false
    }

    fn is_def_site(&self, idx: usize) -> bool {
        self.defs.iter().any(|d| d.name_idx == idx)
    }

    /// The def a use at token `idx` resolves to, if any.
    pub fn binding_of(&self, idx: usize) -> Option<usize> {
        self.uses.iter().position(|u| u.contains(&idx))
    }
}

/// Keywords that can appear inside a `let` pattern without binding.
const PATTERN_KEYWORDS: &[&str] = &["mut", "ref", "box"];

/// Build def-use chains for the body covered by `cfg`.
pub fn def_use(tokens: &[Token], cfg: &Cfg) -> DefUse {
    let (start, end) = (cfg.body.0, cfg.body.1.min(tokens.len()));
    let mut defs = collect_defs(tokens, start, end);
    defs.sort_by_key(|d| d.name_idx);
    let mut uses: Vec<Vec<usize>> = vec![Vec::new(); defs.len()];

    // Resolve every candidate use to the latest strictly-earlier def of
    // the same name whose rhs does not contain the use (so initializers
    // see the *previous* binding: `let x = x + 1` links to the outer x)
    // and whose block reaches the use's block.
    for u in start..end {
        let t = &tokens[u];
        if t.kind != TokenKind::Ident || t.text == "_" {
            continue;
        }
        if defs.iter().any(|d| d.name_idx == u) {
            continue; // a binding position, not a use
        }
        // `.name` (field/method), `name:` (struct field init / ascription
        // — but not `name::`), `::name` (path segment) are not local uses.
        if u > 0 && tokens[u - 1].is_punct('.') {
            continue;
        }
        if u >= 2 && tokens[u - 1].is_punct(':') && tokens[u - 2].is_punct(':') {
            continue;
        }
        if tokens.get(u + 1).is_some_and(|n| n.is_punct(':'))
            && !tokens.get(u + 2).is_some_and(|n| n.is_punct(':'))
        {
            continue;
        }
        let ub = cfg.block_of(u);
        let candidate = defs
            .iter()
            .enumerate()
            .rev()
            .filter(|(_, d)| d.name == t.text && d.name_idx < u)
            .find(|(_, d)| {
                if (d.rhs.0..d.rhs.1).contains(&u) {
                    return false; // its own initializer
                }
                match (cfg.block_of(d.name_idx), ub) {
                    (Some(db), Some(ub)) => db == ub || cfg.reachable_from(db)[ub],
                    _ => true, // unknown blocks: keep (conservative)
                }
            });
        if let Some((di, _)) = candidate {
            uses[di].push(u);
        }
    }
    DefUse { defs, uses }
}

/// Scan `start..end` for `let` bindings and statement-level
/// reassignments. The scan continues *inside* each initializer: a
/// block-valued rhs (`let x = if c { let y = …; … } else { … };`) holds
/// real bindings that later uses must resolve to, so only the pattern
/// and `=` are stepped over, never the rhs itself.
fn collect_defs(tokens: &[Token], start: usize, end: usize) -> Vec<Def> {
    let mut defs = Vec::new();
    let mut i = start;
    while i < end {
        let t = &tokens[i];
        if t.is_ident("let") {
            let in_cond =
                i > start && (tokens[i - 1].is_ident("if") || tokens[i - 1].is_ident("while"));
            let (binders, eq) = let_pattern(tokens, i + 1, end);
            let rhs = match eq {
                Some(eq) => rhs_range(tokens, eq + 1, end, in_cond),
                None => {
                    let p = binders.last().map(|&b| b + 1).unwrap_or(i + 1);
                    (p, p)
                }
            };
            for b in &binders {
                defs.push(Def {
                    name: tokens[*b].text.clone(),
                    name_idx: *b,
                    rhs,
                    line: tokens[*b].line,
                    col: tokens[*b].col,
                    is_let: true,
                });
            }
            i = rhs.0.max(i + 1);
            continue;
        }
        // `name = …` reassignment at statement level: previous token is a
        // statement boundary, next is a single `=` (not `==` / `=>`).
        if t.kind == TokenKind::Ident
            && t.text != "_"
            && (i == start
                || tokens[i - 1].is_punct(';')
                || tokens[i - 1].is_punct('{')
                || tokens[i - 1].is_punct('}'))
            && tokens.get(i + 1).is_some_and(|n| n.is_punct('='))
            && !tokens
                .get(i + 2)
                .is_some_and(|n| n.is_punct('=') || n.is_punct('>'))
        {
            let rhs = rhs_range(tokens, i + 2, end, false);
            defs.push(Def {
                name: t.text.clone(),
                name_idx: i,
                rhs,
                line: t.line,
                col: t.col,
                is_let: false,
            });
            i = rhs.0.max(i + 1);
            continue;
        }
        i += 1;
    }
    defs
}

/// Parse the pattern after a `let`: collect binding identifiers (skipping
/// type ascriptions after `:` and uppercase path/constructor names) up to
/// the `=` / `;` / `{` that ends it. Returns `(binders, eq_idx)`.
fn let_pattern(tokens: &[Token], from: usize, end: usize) -> (Vec<usize>, Option<usize>) {
    let mut binders = Vec::new();
    let mut depth = 0i32;
    let mut in_type = false;
    let limit = end.min(from + 96); // a 96-token pattern is already absurd
    let mut k = from;
    while k < limit {
        let t = &tokens[k];
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct('{') {
            // `let S { a, b } = …` — a brace *after a path ident* opens a
            // struct pattern; anywhere else it ends the let (malformed).
            if k > from && tokens[k - 1].kind == TokenKind::Ident {
                depth += 1;
            } else {
                return (binders, None);
            }
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
            if depth < 0 {
                return (binders, None);
            }
        } else if depth == 0 && t.is_punct('=') {
            // `=` ends the pattern (a `==` cannot appear here).
            return (binders, Some(k));
        } else if depth == 0 && t.is_punct(';') {
            return (binders, None); // `let x;` — no initializer
        } else if depth == 0
            && t.is_punct(':')
            && !tokens.get(k + 1).is_some_and(|n| n.is_punct(':'))
        {
            in_type = true; // `let x: Type = …`
        } else if !in_type
            && t.kind == TokenKind::Ident
            && !PATTERN_KEYWORDS.contains(&t.text.as_str())
            && !t.text.starts_with(|c: char| c.is_ascii_uppercase())
            // At nesting depth an ident followed by `:` is a struct-pattern
            // field *name* (`S { x: y }`); at depth 0 the `:` is the type
            // ascription, so the ident is the binder itself.
            && (depth == 0 || !tokens.get(k + 1).is_some_and(|n| n.is_punct(':')))
        {
            binders.push(k);
        }
        k += 1;
    }
    (binders, None)
}

/// The initializer range from `from`: to the `;` at depth 0, a depth-0
/// `{` when the let sits in an `if let`/`while let` condition, a depth-0
/// `else` (let-else), or the close of the enclosing block.
fn rhs_range(tokens: &[Token], from: usize, end: usize, stop_at_brace: bool) -> (usize, usize) {
    let mut depth = 0i32;
    let mut k = from;
    while k < end {
        let t = &tokens[k];
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct('{') {
            if depth == 0 && stop_at_brace {
                return (from, k);
            }
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
            if depth < 0 {
                return (from, k);
            }
        } else if depth == 0 && (t.is_punct(';') || t.is_ident("else")) {
            return (from, k);
        }
        k += 1;
    }
    (from, end)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn analyze(src: &str) -> (DefUse, Cfg, SourceFile) {
        let file = SourceFile::parse("test.rs".to_string(), src, &[]);
        let parsed = crate::parser::parse_file(&file, 0);
        let def = parsed.fns[0].clone();
        let cfg = Cfg::build(&file.tokens, def.body);
        let du = def_use(&file.tokens, &cfg);
        (du, cfg, file)
    }

    fn def_named<'a>(du: &'a DefUse, name: &str) -> (usize, &'a Def) {
        du.defs
            .iter()
            .enumerate()
            .find(|(_, d)| d.name == name)
            .unwrap_or_else(|| panic!("no def of {name}"))
    }

    #[test]
    fn let_bindings_collect_their_uses() {
        let (du, _, _) = analyze("fn f() { let x = make(); sink(x); x.consume(); }");
        let (i, d) = def_named(&du, "x");
        assert!(d.is_let);
        assert_eq!(du.uses[i].len(), 2, "sink(x) and x.consume()");
    }

    #[test]
    fn shadowing_resolves_to_the_latest_def() {
        let (du, _, _) = analyze("fn f() { let x = a(); let x = b(); use_it(x); }");
        let first = du.defs.iter().position(|d| d.name == "x").unwrap();
        let second = first + 1;
        assert_eq!(du.defs.len(), 2);
        assert!(du.uses[first].is_empty(), "shadowed def has no uses");
        assert_eq!(du.uses[second].len(), 1);
    }

    #[test]
    fn initializer_sees_the_previous_binding_not_itself() {
        let (du, _, _) = analyze("fn f() { let x = seed(); let x = x + 1; done(x); }");
        let first = 0;
        let second = 1;
        // the `x` inside the second initializer resolves to the first def
        assert_eq!(du.uses[first].len(), 1);
        assert_eq!(du.uses[second].len(), 1); // done(x)
    }

    #[test]
    fn destructuring_binds_every_lowercase_ident() {
        let (du, _, _) = analyze("fn f() { let (a, Some(b)) = pair(); go(a); go(b); }");
        assert!(def_named(&du, "a").1.is_let);
        assert!(def_named(&du, "b").1.is_let);
        assert!(!du.defs.iter().any(|d| d.name == "Some"));
    }

    #[test]
    fn wildcard_discard_is_a_def_with_no_reads() {
        let (du, cfg, file) = analyze("fn f() { let _ = io_call(); }");
        let (i, d) = def_named(&du, "_");
        assert!(du.uses[i].is_empty());
        assert!(!du.is_read(&cfg, &file.tokens, i));
        // The rhs covers the call.
        let call = file
            .tokens
            .iter()
            .position(|t| t.is_ident("io_call"))
            .unwrap();
        assert!((d.rhs.0..d.rhs.1).contains(&call));
    }

    #[test]
    fn type_ascriptions_and_field_inits_are_not_uses() {
        let (du, _, _) = analyze("fn f() { let x: Wide = mk(); let s = S { x: 1 }; keep(s); }");
        let (xi, _) = def_named(&du, "x");
        assert!(du.uses[xi].is_empty(), "field init `x: 1` is not a use");
    }

    #[test]
    fn unreachable_uses_do_not_resolve() {
        let (du, _, _) =
            analyze("fn f() { if c() { let x = io(); return; } else { return; } sink(x); }");
        let (xi, _) = def_named(&du, "x");
        // sink(x) is in unreachable code; the def cannot flow there —
        // but either way the chain stays acyclic and in-bounds.
        for &u in &du.uses[xi] {
            assert!(u > du.defs[xi].name_idx);
        }
    }

    #[test]
    fn loop_carried_reads_count_via_is_read() {
        let (du, cfg, file) = analyze("fn f() { let mut x = init(); loop { send(x); x = io(); } }");
        let re = du
            .defs
            .iter()
            .position(|d| !d.is_let && d.name == "x")
            .expect("reassignment def");
        // `send(x)` is textually before `x = io()` but reads it on the
        // next iteration: is_read must say true.
        assert!(du.is_read(&cfg, &file.tokens, re));
    }

    #[test]
    fn chains_are_acyclic() {
        let (du, _, _) =
            analyze("fn f() { let a = { let b = one(); b }; let c = a; let a = c; out(a); }");
        // def -> def edges via uses in initializers must have no cycle.
        let n = du.defs.len();
        let mut edges: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (di, d) in du.defs.iter().enumerate() {
            for (ui, uses) in du.uses.iter().enumerate() {
                if uses.iter().any(|u| (d.rhs.0..d.rhs.1).contains(u)) {
                    edges[di].push(ui);
                }
            }
        }
        // Kahn: a cycle leaves nodes unprocessed.
        let mut indeg = vec![0usize; n];
        for es in &edges {
            for &e in es {
                indeg[e] += 1;
            }
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut seen = 0;
        while let Some(v) = queue.pop() {
            seen += 1;
            for &e in &edges[v] {
                indeg[e] -= 1;
                if indeg[e] == 0 {
                    queue.push(e);
                }
            }
        }
        assert_eq!(seen, n, "def-use chain has a cycle");
    }

    #[test]
    fn bitset_forward_fixpoint_reaches_loop_blocks() {
        let file = SourceFile::parse(
            "t.rs".into(),
            "fn f() { seed(); loop { body(); if done() { break; } } tail(); }",
            &[],
        );
        let parsed = crate::parser::parse_file(&file, 0);
        let cfg = Cfg::build(&file.tokens, parsed.fns[0].body);
        let n = cfg.blocks.len();
        let mut gen: Vec<BitSet> = (0..n).map(|_| BitSet::new(1)).collect();
        gen[cfg.entry].insert(0);
        let kill: Vec<BitSet> = (0..n).map(|_| BitSet::new(1)).collect();
        let (ins, outs) = forward(&cfg, 1, &gen, &kill);
        // The fact born in the entry must flow into every reachable block.
        let reach = cfg.reachable_from(cfg.entry);
        for b in 0..n {
            if reach[b] && b != cfg.entry {
                assert!(ins[b].contains(0), "block {b} must see the fact");
            }
        }
        assert!(outs[cfg.entry].contains(0));
    }
}
