//! R10 `unbounded-growth`: collections on long-lived structs must
//! shrink somewhere.
//!
//! Long-lived structs are those reachable — through field types, workspace
//! wide — from the process-lifetime roots `Store`, `QueryService`,
//! `FetchCache`, and `StudyReport`. For every collection-typed field of
//! such a struct (`Vec`, `VecDeque`, `HashMap`, `BTreeMap`, `HashSet`,
//! `BTreeSet`, `BinaryHeap`) the rule scans the whole workspace for
//! growth calls (`push`/`insert`/`extend`/…) and shrink evidence
//! (`remove`/`clear`/`drain`/`truncate`/`pop`/`retain`/… or a plain
//! reassignment, which replaces the collection wholesale). A field that
//! grows but never shrinks is memory the 1M-domain goal (ROADMAP item 2)
//! cannot afford: the 45k-site study fits in RAM, a production crawl
//! does not.
//!
//! Documented over-approximations (DESIGN.md §10): field usage is
//! matched by *name* (`.field.push(...)` anywhere in the workspace), so
//! a same-named field or local on any type contributes both growth and
//! shrink evidence; and a field that is only ever built once at startup
//! (bounded by construction) still counts as growing if built via
//! `push` — suppress with the reason.

use crate::lexer::{Token, TokenKind};
use crate::parser::match_delim;
use crate::rules::{Finding, Rule, Workspace};
use std::collections::{BTreeMap, BTreeSet};

/// Structs that live for the whole process (reachability roots).
const ROOT_STRUCTS: &[&str] = &["Store", "QueryService", "FetchCache", "StudyReport"];

/// Field types that can grow without bound.
const GROWABLE: &[&str] = &[
    "Vec",
    "VecDeque",
    "HashMap",
    "BTreeMap",
    "HashSet",
    "BTreeSet",
    "BinaryHeap",
];

/// Method names that add elements.
const GROW_OPS: &[&str] = &[
    "push",
    "push_back",
    "push_front",
    "insert",
    "extend",
    "extend_from_slice",
    "append",
    "entry",
];

/// Method names that remove elements or bound the collection.
const SHRINK_OPS: &[&str] = &[
    "remove",
    "remove_entry",
    "clear",
    "drain",
    "truncate",
    "pop",
    "pop_front",
    "pop_back",
    "retain",
    "swap_remove",
    "shift_remove",
    "split_off",
    "dedup",
    "take",
];

/// Calls that *drain their argument*: a field passed as `&mut x.field`
/// to one of these is emptied (`mem::take`, `mem::replace`, `mem::swap`,
/// `Vec::append`), which is the store's staging-buffer eviction idiom.
const DRAIN_CALLS: &[&str] = &["take", "replace", "swap", "append"];

/// One named field of a brace struct.
struct FieldDef {
    name: String,
    type_idents: Vec<String>,
    line: u32,
    col: u32,
}

/// One brace-struct definition found in a file.
struct StructDef {
    name: String,
    file: usize,
    fields: Vec<FieldDef>,
}

/// R10: no grow-only collections on long-lived structs.
pub struct UnboundedGrowth;

impl Rule for UnboundedGrowth {
    fn name(&self) -> &'static str {
        "unbounded-growth"
    }

    fn code(&self) -> &'static str {
        "R10"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        // All brace structs, workspace-wide, in (file, decl) order.
        let mut structs: Vec<StructDef> = Vec::new();
        for (file_idx, file) in ws.files.iter().enumerate() {
            structs.extend(structs_in(&file.tokens, file_idx));
        }
        let by_name: BTreeMap<&str, usize> = structs
            .iter()
            .enumerate()
            .map(|(i, s)| (s.name.as_str(), i))
            .collect();

        // Reachability from the long-lived roots through field types.
        let mut live: BTreeSet<usize> = BTreeSet::new();
        let mut queue: Vec<(usize, String)> = Vec::new();
        for root in ROOT_STRUCTS {
            if let Some(&i) = by_name.get(root) {
                if live.insert(i) {
                    queue.push((i, root.to_string()));
                }
            }
        }
        let mut root_of: BTreeMap<usize, String> = queue.iter().cloned().collect();
        let mut head = 0;
        while head < queue.len() {
            let (i, root) = queue[head].clone();
            head += 1;
            for field in &structs[i].fields {
                for ty in &field.type_idents {
                    if let Some(&j) = by_name.get(ty.as_str()) {
                        if live.insert(j) {
                            root_of.insert(j, root.clone());
                            queue.push((j, root.clone()));
                        }
                    }
                }
            }
        }

        // Workspace-wide growth/shrink evidence per field *name*.
        let mut grows: BTreeMap<String, (String, u32, String)> = BTreeMap::new();
        let mut shrinks: BTreeSet<String> = BTreeSet::new();
        for file in &ws.files {
            let tokens = &file.tokens;
            for k in 1..tokens.len() {
                let t = &tokens[k];
                if t.kind != TokenKind::Ident || !tokens[k - 1].is_punct('.') {
                    continue;
                }
                // `.field.op(` — a method driven off the field.
                if tokens.get(k + 1).is_some_and(|n| n.is_punct('.')) {
                    if let Some(op) = tokens.get(k + 2).filter(|o| o.kind == TokenKind::Ident) {
                        if tokens.get(k + 3).is_some_and(|p| p.is_punct('(')) {
                            if GROW_OPS.contains(&op.text.as_str()) {
                                grows.entry(t.text.clone()).or_insert_with(|| {
                                    (file.path.clone(), op.line, op.text.clone())
                                });
                            } else if SHRINK_OPS.contains(&op.text.as_str()) {
                                shrinks.insert(t.text.clone());
                            }
                        }
                    }
                }
                // `.field = …` — wholesale replacement bounds the old
                // contents (but `==` comparisons do not).
                if tokens.get(k + 1).is_some_and(|n| n.is_punct('='))
                    && !tokens.get(k + 2).is_some_and(|n| n.is_punct('='))
                {
                    shrinks.insert(t.text.clone());
                }
            }
            // Drain-by-argument: any `.field` ending an argument of
            // `take`/`replace`/`swap`/`append` is emptied by the call.
            for k in 0..tokens.len() {
                let t = &tokens[k];
                if t.kind != TokenKind::Ident
                    || !DRAIN_CALLS.contains(&t.text.as_str())
                    || !tokens.get(k + 1).is_some_and(|n| n.is_punct('('))
                {
                    continue;
                }
                let close = match_delim(tokens, k + 1);
                for a in k + 2..close.min(tokens.len()) {
                    if tokens[a].kind == TokenKind::Ident
                        && tokens[a - 1].is_punct('.')
                        && tokens
                            .get(a + 1)
                            .is_some_and(|n| n.is_punct(')') || n.is_punct(','))
                    {
                        shrinks.insert(tokens[a].text.clone());
                    }
                }
            }
        }

        for (i, s) in structs.iter().enumerate() {
            if !live.contains(&i) {
                continue;
            }
            let file = &ws.files[s.file];
            for field in &s.fields {
                let coll = field
                    .type_idents
                    .iter()
                    .find(|ty| GROWABLE.contains(&ty.as_str()));
                let Some(coll) = coll else {
                    continue;
                };
                let Some((grow_path, grow_line, grow_op)) = grows.get(&field.name) else {
                    continue;
                };
                if shrinks.contains(&field.name) {
                    continue;
                }
                let root = root_of.get(&i).cloned().unwrap_or_default();
                out.push(Finding {
                    rule: self.name(),
                    path: file.path.clone(),
                    line: field.line,
                    col: field.col,
                    message: format!(
                        "`{}.{}` ({coll}) grows via `{grow_op}()` ({grow_path}:{grow_line}) but \
                         never shrinks anywhere in the workspace — unbounded memory on the \
                         long-lived `{root}` graph breaks the 1M-domain goal (ROADMAP item 2)",
                        s.name, field.name
                    ),
                });
            }
        }
    }
}

/// Scan one file's tokens for brace-struct definitions with named fields.
/// Tuple structs, unit structs, and enums are skipped; attributes and
/// visibility modifiers inside the body are stepped over.
fn structs_in(tokens: &[Token], file_idx: usize) -> Vec<StructDef> {
    let mut out = Vec::new();
    let mut i = 0;
    while i + 1 < tokens.len() {
        if !tokens[i].is_ident("struct") || tokens[i + 1].kind != TokenKind::Ident {
            i += 1;
            continue;
        }
        let name = tokens[i + 1].text.clone();
        // Walk past generics/where to the body `{`; `;` or `(` first
        // means unit/tuple struct.
        let mut j = i + 2;
        let mut angle = 0i32;
        let open = loop {
            match tokens.get(j) {
                None => break None,
                Some(t) if t.is_punct('<') => angle += 1,
                Some(t) if t.is_punct('>') => angle = (angle - 1).max(0),
                Some(t) if angle == 0 && (t.is_punct(';') || t.is_punct('(')) => break None,
                Some(t) if angle == 0 && t.is_punct('{') => break Some(j),
                Some(_) => {}
            }
            j += 1;
        };
        let Some(open) = open else {
            i += 2;
            continue;
        };
        let close = match_delim(tokens, open);
        out.push(StructDef {
            name,
            file: file_idx,
            fields: fields_in(tokens, open + 1, close),
        });
        i = close + 1;
    }
    out
}

/// Parse `name: Type, …` fields between a struct's braces.
fn fields_in(tokens: &[Token], start: usize, end: usize) -> Vec<FieldDef> {
    let mut fields = Vec::new();
    let mut k = start;
    while k < end.min(tokens.len()) {
        let t = &tokens[k];
        // Attributes and visibility before a field.
        if t.is_punct('#') && tokens.get(k + 1).is_some_and(|n| n.is_punct('[')) {
            k = match_delim(tokens, k + 1) + 1;
            continue;
        }
        if t.is_ident("pub") {
            k += 1;
            if tokens.get(k).is_some_and(|n| n.is_punct('(')) {
                k = match_delim(tokens, k) + 1;
            }
            continue;
        }
        // `name :` (single colon) starts a field.
        if t.kind == TokenKind::Ident
            && tokens.get(k + 1).is_some_and(|n| n.is_punct(':'))
            && !tokens.get(k + 2).is_some_and(|n| n.is_punct(':'))
        {
            let ty_start = k + 2;
            let mut depth = 0i32;
            let mut angle = 0i32;
            let mut e = ty_start;
            while e < end {
                let ty = &tokens[e];
                if ty.is_punct('(') || ty.is_punct('[') || ty.is_punct('{') {
                    depth += 1;
                } else if ty.is_punct(')') || ty.is_punct(']') || ty.is_punct('}') {
                    depth -= 1;
                } else if ty.is_punct('<') {
                    angle += 1;
                } else if ty.is_punct('>') {
                    angle = (angle - 1).max(0);
                } else if ty.is_punct(',') && depth == 0 && angle == 0 {
                    break;
                }
                e += 1;
            }
            fields.push(FieldDef {
                name: t.text.clone(),
                type_idents: tokens[ty_start..e.min(tokens.len())]
                    .iter()
                    .filter(|ty| ty.kind == TokenKind::Ident)
                    .map(|ty| ty.text.clone())
                    .collect(),
                line: t.line,
                col: t.col,
            });
            k = e + 1;
            continue;
        }
        k += 1;
    }
    fields
}
