//! R6 `lock-order`: no cycles in the may-hold-while-acquiring graph.
//!
//! For every guard live range (see [`crate::locks`]) the rule records an
//! edge `held → acquired` for each lock acquired while the guard is
//! live — directly in the same body, or transitively through any
//! resolved call in the range (lock acquisitions propagate up the call
//! graph to a fixpoint). A cycle in that graph is a potential deadlock:
//! two sweeps taking the same locks in opposite orders hang a 45k-site
//! crawl with no error. Each distinct cycle is reported exactly once,
//! with the full multi-function witness chain of spans for every edge.

use crate::callgraph::{witness_chain, CallTarget, Origin};
use crate::locks;
use crate::rules::{Finding, Rule, Workspace};
use std::collections::{BTreeMap, BTreeSet};

/// R6: deadlock-free lock ordering.
pub struct LockOrder;

/// One `held → acquired` edge with its report location and witness.
struct EdgeInfo {
    path: String,
    line: u32,
    col: u32,
    witness: String,
}

impl Rule for LockOrder {
    fn name(&self) -> &'static str {
        "lock-order"
    }

    fn code(&self) -> &'static str {
        "R6"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        let model = &ws.model;

        // Per-function direct acquisitions, as facts keyed by lock class.
        let mut direct: Vec<Vec<(String, Origin)>> = vec![Vec::new(); model.fns.len()];
        let mut guards_by_fn = Vec::with_capacity(model.fns.len());
        for (id, def) in model.fns.iter().enumerate() {
            if def.is_test {
                guards_by_fn.push(Vec::new());
                continue;
            }
            let file = &ws.files[def.file];
            let guards = locks::guards_in(file, def, &model.cfgs[id]);
            for g in &guards {
                direct[id].push((
                    g.class.clone(),
                    Origin::Direct {
                        line: g.line,
                        what: format!("`{}` acquired", g.class),
                    },
                ));
            }
            guards_by_fn.push(guards);
        }
        let acquires = crate::callgraph::propagate_facts(model, &direct);

        // Build the lock graph: held-class → acquired-class.
        let mut edges: BTreeMap<(String, String), EdgeInfo> = BTreeMap::new();
        for (id, def) in model.fns.iter().enumerate() {
            if def.is_test {
                continue;
            }
            let file = &ws.files[def.file];
            for g in &guards_by_fn[id] {
                let held = format!(
                    "`{}` held in `{}` ({}:{})",
                    g.class,
                    model.display(id),
                    file.path,
                    g.line
                );
                // Direct nested acquisitions inside the live range.
                for other in &guards_by_fn[id] {
                    if other.class != g.class && g.covers(other.acquire_idx) {
                        edges
                            .entry((g.class.clone(), other.class.clone()))
                            .or_insert_with(|| EdgeInfo {
                                path: file.path.clone(),
                                line: g.line,
                                col: g.col,
                                witness: format!(
                                    "{held} → `{}` acquired ({}:{})",
                                    other.class, file.path, other.line
                                ),
                            });
                    }
                }
                // Transitive acquisitions through calls in the range.
                for site in &model.calls[id] {
                    if !g.covers(site.idx) {
                        continue;
                    }
                    let CallTarget::Resolved(callees) = &site.target else {
                        continue;
                    };
                    for &callee in callees {
                        for class in acquires[callee].keys() {
                            if *class == g.class {
                                continue;
                            }
                            let chain = witness_chain(model, &ws.files, &acquires, callee, class);
                            edges
                                .entry((g.class.clone(), class.clone()))
                                .or_insert_with(|| EdgeInfo {
                                    path: file.path.clone(),
                                    line: g.line,
                                    col: g.col,
                                    witness: format!(
                                        "{held} → via `{}()` ({}:{}) → {chain}",
                                        site.name, file.path, site.line
                                    ),
                                });
                        }
                    }
                }
            }
        }

        // Cycle detection over the lock graph; each distinct cycle is
        // reported once, canonicalized by its sorted lock set.
        let mut adjacency: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
        for (held, acquired) in edges.keys() {
            adjacency
                .entry(held.as_str())
                .or_default()
                .push(acquired.as_str());
        }
        let mut reported: BTreeSet<Vec<String>> = BTreeSet::new();
        for start in adjacency.keys().copied().collect::<Vec<_>>() {
            let mut stack = vec![start];
            find_cycles(
                start,
                start,
                &adjacency,
                &mut stack,
                &mut reported,
                &edges,
                out,
                self.name(),
            );
        }
    }
}

/// Depth-first enumeration of simple cycles through `start`; every cycle
/// whose canonical (sorted) lock set is new becomes one finding.
#[allow(clippy::too_many_arguments)]
fn find_cycles<'a>(
    start: &'a str,
    at: &'a str,
    adjacency: &BTreeMap<&'a str, Vec<&'a str>>,
    stack: &mut Vec<&'a str>,
    reported: &mut BTreeSet<Vec<String>>,
    edges: &BTreeMap<(String, String), EdgeInfo>,
    out: &mut Vec<Finding>,
    rule: &'static str,
) {
    if stack.len() > 16 {
        return; // cycles longer than any plausible lock chain
    }
    let Some(nexts) = adjacency.get(at) else {
        return;
    };
    for &next in nexts {
        if next == start {
            let mut canon: Vec<String> = stack.iter().map(|s| s.to_string()).collect();
            canon.sort();
            if !reported.insert(canon) {
                continue;
            }
            // Assemble the cycle's witness: every edge, in order.
            let mut cycle_edges = Vec::new();
            for w in 0..stack.len() {
                let held = stack[w].to_string();
                let acquired = stack.get(w + 1).copied().unwrap_or(start).to_string();
                if let Some(info) = edges.get(&(held, acquired)) {
                    cycle_edges.push(info);
                }
            }
            let Some(first) = cycle_edges.first() else {
                continue;
            };
            let order: Vec<&str> = stack.iter().copied().chain([start]).collect();
            let witness: Vec<String> = cycle_edges
                .iter()
                .map(|e| format!("[{}]", e.witness))
                .collect();
            out.push(Finding {
                rule,
                path: first.path.clone(),
                line: first.line,
                col: first.col,
                message: format!(
                    "lock-order cycle `{}`: opposite acquisition orders can deadlock — {}",
                    order.join("` → `"),
                    witness.join(" and ")
                ),
            });
        } else if !stack.contains(&next) {
            stack.push(next);
            find_cycles(start, next, adjacency, stack, reported, edges, out, rule);
            stack.pop();
        }
    }
}
