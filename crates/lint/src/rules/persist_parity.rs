//! R3 `persist-parity`: every `#[serde(skip…)]` field on a type the
//! persisted report graph can reach must be round-tripped by the
//! hand-rolled codec in `analysis::persist` — this is the exact bug class
//! PR 3 hand-patched (serde-skipped diagnostics silently missing from
//! resumed runs, making a resumed failure taxonomy diverge from an
//! uninterrupted one).
//!
//! Reachability roots are `StudyReport` plus every `Serialize` type named
//! in the signatures of `persist::encode_record` / `persist::decode_record`
//! (today that adds `CrawlRecord`, the store payload type); edges follow
//! field-type identifiers into other `Serialize` items in the scan set. A
//! skip field on a reachable type passes only when its name appears in
//! *both* codec function bodies.

use super::{Finding, Rule, Workspace};
use crate::items::{fn_body, range_has_ident, serialize_items, SerializeItem};
use crate::source::SourceFile;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Workspace-relative path of the codec module this rule audits.
pub const PERSIST_PATH: &str = "crates/analysis/src/persist.rs";
/// Reachability root: the serialized study report.
pub const ROOT_TYPE: &str = "StudyReport";

/// R3: serde-skip fields must have a codec pair.
pub struct PersistParity;

impl Rule for PersistParity {
    fn name(&self) -> &'static str {
        "persist-parity"
    }

    fn code(&self) -> &'static str {
        "R3"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        // Collect every Serialize item in the workspace, keyed by name.
        let mut items: BTreeMap<String, (&SourceFile, SerializeItem)> = BTreeMap::new();
        for file in &ws.files {
            for item in serialize_items(file) {
                items.entry(item.name.clone()).or_insert((file, item));
            }
        }

        let persist = ws.file(PERSIST_PATH);
        let encode = persist.and_then(|f| fn_body(f, "encode_record").map(|b| (f, b)));
        let decode = persist.and_then(|f| fn_body(f, "decode_record").map(|b| (f, b)));

        // Roots: StudyReport + types named in the codec signatures.
        let mut queue: VecDeque<String> = VecDeque::new();
        let mut reachable: BTreeSet<String> = BTreeSet::new();
        let enqueue = |name: &str, queue: &mut VecDeque<String>, seen: &mut BTreeSet<String>| {
            if items.contains_key(name) && seen.insert(name.to_string()) {
                queue.push_back(name.to_string());
            }
        };
        enqueue(ROOT_TYPE, &mut queue, &mut reachable);
        if let Some(f) = persist {
            for fn_name in ["encode_record", "decode_record"] {
                for name in signature_idents(f, fn_name) {
                    enqueue(&name, &mut queue, &mut reachable);
                }
            }
        }
        while let Some(name) = queue.pop_front() {
            let Some((_, item)) = items.get(&name) else {
                continue;
            };
            let field_types: Vec<String> = item
                .fields
                .iter()
                .flat_map(|f| f.type_idents.iter().cloned())
                .collect();
            for t in field_types {
                enqueue(&t, &mut queue, &mut reachable);
            }
        }

        for name in &reachable {
            let (file, item) = &items[name];
            for field in item.fields.iter().filter(|f| f.serde_skip) {
                if field.name.is_empty() {
                    continue;
                }
                let in_encode = encode
                    .as_ref()
                    .is_some_and(|(f, body)| range_has_ident(f, *body, &field.name));
                let in_decode = decode
                    .as_ref()
                    .is_some_and(|(f, body)| range_has_ident(f, *body, &field.name));
                if in_encode && in_decode {
                    continue;
                }
                let missing = match (in_encode, in_decode) {
                    (false, false) => "neither encode_record nor decode_record".to_string(),
                    (true, false) => "decode_record".to_string(),
                    (false, true) => "encode_record".to_string(),
                    _ => unreachable!("handled above"),
                };
                out.push(Finding {
                    rule: self.name(),
                    path: file.path.clone(),
                    line: field.line,
                    col: 0,
                    message: format!(
                        "serde-skipped field `{}` of report-reachable type `{}` is not \
                         round-tripped by {missing} in `{PERSIST_PATH}` — a resumed run \
                         would silently drop it",
                        field.name, item.name
                    ),
                });
            }
        }
    }
}

/// Identifier tokens in the signature of `fn name` (between the name and
/// the body's opening brace), used to discover the persisted type(s).
fn signature_idents(file: &SourceFile, name: &str) -> Vec<String> {
    let tokens = &file.tokens;
    let mut out = Vec::new();
    let mut i = 0;
    while i + 1 < tokens.len() {
        if tokens[i].is_ident("fn") && tokens[i + 1].is_ident(name) {
            let mut j = i + 2;
            while j < tokens.len() && !tokens[j].is_punct('{') && !tokens[j].is_punct(';') {
                if tokens[j].kind == crate::lexer::TokenKind::Ident {
                    out.push(tokens[j].text.clone());
                }
                j += 1;
            }
            return out;
        }
        i += 1;
    }
    out
}
