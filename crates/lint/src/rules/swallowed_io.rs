//! R11 `swallowed-io-errors`: a fallible IO `Result` must be handled or
//! propagated, never silently discarded.
//!
//! An *IO call* is a call site that is an R7 blocking root (channel
//! waits, fetches, disk writes, every `StorageBackend` method) or that
//! resolves to a workspace function which returns a `Result` and
//! transitively blocks — `Store::checkpoint` is an IO call because its
//! body reaches `write_all`, even though `checkpoint` itself is not on
//! the root list. Def-use chains over the function's CFG make the
//! discard check precise; flagged shapes:
//!
//! * `let _ = io_call(...);` — explicitly thrown away;
//! * `io_call(...).ok();` in statement position — the error is mapped to
//!   `None` and the `None` is dropped;
//! * `let x = io_call(...);` where `x` is never read on any path.
//!
//! A `?`, a read of the binding, or any surrounding expression consuming
//! the value counts as handled. Swallowed IO errors are how the store
//! corrupts silently: PR 5's review fix exists because a journal append
//! failure that nobody looked at left disk offsets wrong (DESIGN.md §9).
//!
//! Documented over-approximation (DESIGN.md §10): a binding that is only
//! *conditionally* read still counts as read — the rule under-reports
//! rather than flagging every partially-handled Result.

use crate::callgraph::CallTarget;
use crate::dataflow;
use crate::locks;
use crate::rules::blocking_under_lock::blocking_root;
use crate::rules::{Finding, Rule, Workspace};

/// R11: IO results are handled or propagated, never dropped.
pub struct SwallowedIo;

impl Rule for SwallowedIo {
    fn name(&self) -> &'static str {
        "swallowed-io-errors"
    }

    fn code(&self) -> &'static str {
        "R11"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        let model = &ws.model;

        // Which functions transitively block (same propagation as R7):
        // an IO call either *is* a blocking root or resolves to a
        // Result-returning function that blocks somewhere below.
        let mut blocks = vec![false; model.fns.len()];
        for (id, sites) in model.calls.iter().enumerate() {
            if sites.iter().any(blocking_root) {
                blocks[id] = true;
            }
        }
        loop {
            let mut changed = false;
            for id in 0..model.fns.len() {
                if blocks[id] {
                    continue;
                }
                let reaches = model.calls[id].iter().any(|site| {
                    matches!(&site.target, CallTarget::Resolved(callees)
                        if callees.iter().any(|&c| blocks[c]))
                });
                if reaches {
                    blocks[id] = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        for (id, def) in model.fns.iter().enumerate() {
            if def.is_test {
                continue;
            }
            let file = &ws.files[def.file];
            let tokens = &file.tokens;
            // Built lazily: def-use is only needed when a named binding
            // must be checked for reads.
            let mut du: Option<dataflow::DefUse> = None;
            for site in &model.calls[id] {
                let is_io = blocking_root(site)
                    || matches!(&site.target, CallTarget::Resolved(callees)
                        if callees.iter().any(|&c| blocks[c] && model.fns[c].returns_result));
                if !is_io {
                    continue;
                }
                // `site.args.1` is the call's closing paren.
                let after = site.args.1 + 1;
                if tokens.get(after).is_some_and(|t| t.is_punct('?')) {
                    continue; // propagated
                }
                let how = match locks::let_binding(tokens, def.body.0, site.idx) {
                    Some(name) if name == "_" => Some("bound to `_`".to_string()),
                    Some(name) => {
                        let cfg = &model.cfgs[id];
                        let du = du.get_or_insert_with(|| dataflow::def_use(tokens, cfg));
                        // The innermost def whose initializer contains
                        // this call and binds the same name.
                        let def_idx = du
                            .defs
                            .iter()
                            .enumerate()
                            .filter(|(_, d)| {
                                d.name == name && (d.rhs.0..d.rhs.1).contains(&site.idx)
                            })
                            .max_by_key(|(_, d)| d.rhs.0)
                            .map(|(i, _)| i);
                        match def_idx {
                            Some(d) if !du.is_read(cfg, tokens, d) => {
                                Some(format!("bound to `{name}`, which is never read"))
                            }
                            _ => None,
                        }
                    }
                    None => {
                        // Statement-position `io_call(...).ok();`.
                        let ok_discard = tokens.get(after).is_some_and(|t| t.is_punct('.'))
                            && tokens.get(after + 1).is_some_and(|t| t.is_ident("ok"))
                            && tokens.get(after + 2).is_some_and(|t| t.is_punct('('))
                            && tokens.get(after + 3).is_some_and(|t| t.is_punct(')'))
                            && tokens.get(after + 4).is_some_and(|t| t.is_punct(';'));
                        ok_discard.then(|| "mapped away with `.ok()`".to_string())
                    }
                };
                if let Some(how) = how {
                    out.push(Finding {
                        rule: self.name(),
                        path: file.path.clone(),
                        line: site.line,
                        col: site.col,
                        message: format!(
                            "IO `Result` of `{}()` is swallowed ({how}) — handle or propagate \
                             it: an unseen IO failure corrupts the store silently",
                            site.name
                        ),
                    });
                }
            }
        }
    }
}
