//! R8 `seed-taint`: RNG/fault-hash state must derive only from the CLI
//! seed / `PopulationConfig`, never from an ambient source.
//!
//! Sinks are the RNG-seeding constructors (`from_seed`,
//! `seed_from_u64`). For every argument identifier the rule computes a
//! backward slice: intra-function `let` chains, plus interprocedural
//! steps from a parameter to every caller's matching argument expression
//! (depth-bounded, memoized). The slice is tainted if it reaches an
//! ambient origin — `SystemTime::now`, `Instant::now`, `thread_rng`,
//! `from_entropy`, `DefaultHasher::new`, `RandomState::new` — either as
//! a call in a traced binding or via a called function whose body uses
//! one (propagated through the call graph). This complements R1's local
//! token ban: R1 flags the ambient call itself; R8 flags seed state that
//! *flows* from one, across function boundaries.
//!
//! Documented approximations (DESIGN.md §10): struct fields and calls
//! with [`Unknown`](crate::callgraph::CallTarget::Unknown) targets are
//! trusted, and `std::env::args` in `src/main.rs` is the CLI seed
//! boundary (R1 owns ambient-env discipline).

use crate::callgraph::{witness_chain, CallSite, CallTarget, FnId, Model, Origin};
use crate::lexer::TokenKind;
use crate::rules::{Finding, Rule, Workspace};
use crate::source::SourceFile;
use std::collections::{BTreeMap, BTreeSet};

/// Call names that seed an RNG (taint sinks).
const SINKS: &[&str] = &["from_seed", "seed_from_u64"];

/// Bare call names that are ambient origins wherever they appear.
const AMBIENT_FREE: &[&str] = &["thread_rng", "from_entropy"];

/// `Owner::name` pairs that are ambient origins.
const AMBIENT_ASSOC: &[(&str, &str)] = &[
    ("SystemTime", "now"),
    ("Instant", "now"),
    ("DefaultHasher", "new"),
    ("RandomState", "new"),
];

/// Maximum interprocedural steps when slicing a parameter backwards.
const MAX_SLICE_DEPTH: usize = 8;

/// Is this call site an ambient origin?
fn ambient_origin(site: &CallSite) -> bool {
    if AMBIENT_FREE.contains(&site.name.as_str()) {
        return true;
    }
    let owner = if site.method {
        site.recv.last().map(String::as_str)
    } else {
        site.qualifier.last().map(String::as_str)
    };
    owner.is_some_and(|o| AMBIENT_ASSOC.contains(&(o, site.name.as_str())))
}

/// R8: interprocedural seed-determinism taint.
pub struct SeedTaint;

impl Rule for SeedTaint {
    fn name(&self) -> &'static str {
        "seed-taint"
    }

    fn code(&self) -> &'static str {
        "R8"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        let model = &ws.model;

        // Which functions transitively use an ambient origin anywhere in
        // their body (used to taint `let x = helper();` bindings).
        let mut direct: Vec<Vec<(String, Origin)>> = vec![Vec::new(); model.fns.len()];
        for (id, sites) in model.calls.iter().enumerate() {
            for site in sites {
                if ambient_origin(site) {
                    direct[id].push((
                        "ambient".to_string(),
                        Origin::Direct {
                            line: site.line,
                            what: format!("ambient `{}()`", site.name),
                        },
                    ));
                }
            }
        }
        let ambient = crate::callgraph::propagate_facts(model, &direct);

        for (id, def) in model.fns.iter().enumerate() {
            if def.is_test {
                continue;
            }
            let file = &ws.files[def.file];
            for site in &model.calls[id] {
                if !SINKS.contains(&site.name.as_str()) {
                    continue;
                }
                let mut visited = BTreeSet::new();
                if let Some(trail) = slice_range(
                    SliceCx {
                        model,
                        files: &ws.files,
                        ambient: &ambient,
                    },
                    id,
                    site.args,
                    &mut visited,
                    0,
                ) {
                    out.push(Finding {
                        rule: self.name(),
                        path: file.path.clone(),
                        line: site.line,
                        col: site.col,
                        message: format!(
                            "seed for `{}()` is tainted by an ambient source: {trail} — \
                             derive RNG state only from the CLI seed / PopulationConfig",
                            site.name
                        ),
                    });
                }
            }
        }
    }
}

/// Shared read-only state for the backward slice.
#[derive(Clone, Copy)]
struct SliceCx<'a> {
    model: &'a Model,
    files: &'a [SourceFile],
    ambient: &'a [BTreeMap<String, Origin>],
}

/// Slice a token range inside `id`'s body: tainted if it contains an
/// ambient origin call, a call to an ambient-deriving function, or an
/// identifier whose binding (or caller-supplied value) is tainted.
/// Returns the human-readable taint trail, or `None` when clean.
fn slice_range(
    cx: SliceCx<'_>,
    id: FnId,
    range: (usize, usize),
    visited: &mut BTreeSet<(FnId, String)>,
    depth: usize,
) -> Option<String> {
    let def = &cx.model.fns[id];
    let file = &cx.files[def.file];
    let tokens = &file.tokens;
    let (start, end) = (range.0, range.1.min(tokens.len()));

    // Calls inside the range: ambient origins and ambient-deriving fns.
    let mut callee_names = BTreeSet::new();
    for site in &cx.model.calls[id] {
        if !(start..end).contains(&site.idx) {
            continue;
        }
        callee_names.insert(site.name.clone());
        if ambient_origin(site) {
            return Some(format!(
                "ambient `{}()` in `{}` ({}:{})",
                site.name,
                cx.model.display(id),
                file.path,
                site.line
            ));
        }
        if let CallTarget::Resolved(callees) = &site.target {
            for &callee in callees {
                if cx.ambient[callee].contains_key("ambient") {
                    let chain = witness_chain(cx.model, cx.files, cx.ambient, callee, "ambient");
                    return Some(format!(
                        "via `{}()` ({}:{}) → {chain}",
                        site.name, file.path, site.line
                    ));
                }
            }
        }
    }

    // Identifiers in the range: trace each through its binding. Skip
    // callee names, field accesses (`x.field` tails), and keywords.
    let mut k = start;
    while k < end {
        let t = &tokens[k];
        if t.kind != TokenKind::Ident
            || callee_names.contains(&t.text)
            || t.text == "self"
            || tokens
                .get(k.wrapping_sub(1))
                .is_some_and(|p| p.is_punct('.'))
        {
            k += 1;
            continue;
        }
        if let Some(trail) = slice_ident(cx, id, &t.text, visited, depth) {
            return Some(trail);
        }
        k += 1;
    }
    None
}

/// Slice one identifier: find its `let` binding in the body and slice the
/// right-hand side; a parameter is sliced through every caller's matching
/// argument expression.
fn slice_ident(
    cx: SliceCx<'_>,
    id: FnId,
    ident: &str,
    visited: &mut BTreeSet<(FnId, String)>,
    depth: usize,
) -> Option<String> {
    if depth > MAX_SLICE_DEPTH || !visited.insert((id, ident.to_string())) {
        return None;
    }
    let def = &cx.model.fns[id];
    let file = &cx.files[def.file];
    let tokens = &file.tokens;
    let (start, end) = (def.body.0, def.body.1.min(tokens.len()));

    // `let [mut] ident = rhs ;` anywhere in the body.
    let mut k = start;
    while k + 2 < end {
        if tokens[k].is_ident("let") {
            let mut n = k + 1;
            if tokens[n].is_ident("mut") {
                n += 1;
            }
            if tokens[n].is_ident(ident) && tokens.get(n + 1).is_some_and(|t| t.is_punct('=')) {
                let rhs_start = n + 2;
                let mut rhs_end = rhs_start;
                let mut delim = 0i32;
                while rhs_end < end {
                    let t = &tokens[rhs_end];
                    if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                        delim += 1;
                    } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                        delim -= 1;
                        if delim < 0 {
                            break;
                        }
                    } else if delim == 0 && t.is_punct(';') {
                        break;
                    }
                    rhs_end += 1;
                }
                if let Some(trail) = slice_range(cx, id, (rhs_start, rhs_end), visited, depth) {
                    return Some(format!("`{ident}` ← {trail}"));
                }
            }
        }
        k += 1;
    }

    // A parameter: slice every caller's matching argument expression.
    let pos = def.params.iter().position(|p| p.name == ident)?;
    for (caller, s) in cx.model.callers_of(id) {
        let site = &cx.model.calls[caller][s];
        // Method calls bind `self` as param 0; shift positional args.
        let shift =
            usize::from(site.method && def.params.first().is_some_and(|p| p.name == "self"));
        let Some(arg_pos) = pos.checked_sub(shift) else {
            continue;
        };
        let caller_file = &cx.files[cx.model.fns[caller].file];
        let args =
            crate::parser::split_top_level_commas(&caller_file.tokens, site.args.0, site.args.1);
        let Some(&(a_start, a_end)) = args.get(arg_pos) else {
            continue;
        };
        if let Some(trail) = slice_range(cx, caller, (a_start, a_end), visited, depth + 1) {
            return Some(format!(
                "param `{ident}` of `{}` ← (caller `{}`) {trail}",
                cx.model.display(id),
                cx.model.display(caller)
            ));
        }
    }
    None
}
