//! R4 `panic-hygiene`: the crawl orchestrator, the browser, and the
//! persistent store must degrade, not die — a panic in one worker is
//! contained by `catch_unwind`, but that containment is a backstop, not a
//! license to write panicking code. `unwrap` / `expect` / `panic!` /
//! `todo!` / `unimplemented!` are banned in those modules' non-test code;
//! return an error or record the failure instead.

use super::{Finding, Rule, Workspace};
use crate::source::SourceFile;

/// Modules under the no-panic contract: path prefixes and exact files.
const SCOPE_PREFIXES: &[&str] = &["crates/browser/src/", "crates/store/src/"];
const SCOPE_FILES: &[&str] = &["crates/analysis/src/crawl.rs"];

/// R4: no panics in crawl/browser/store code.
pub struct PanicHygiene;

impl Rule for PanicHygiene {
    fn name(&self) -> &'static str {
        "panic-hygiene"
    }

    fn code(&self) -> &'static str {
        "R4"
    }

    fn is_local(&self) -> bool {
        true
    }

    fn check_file(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        let in_scope = SCOPE_PREFIXES.iter().any(|p| file.path.starts_with(p))
            || SCOPE_FILES.contains(&file.path.as_str());
        if !in_scope {
            return;
        }
        let tokens = &file.tokens;
        for (i, tok) in tokens.iter().enumerate() {
            if file.in_test_region(i) {
                continue;
            }
            let what = if (tok.is_ident("unwrap") || tok.is_ident("expect"))
                && i > 0
                && tokens[i - 1].is_punct('.')
                && tokens.get(i + 1).is_some_and(|t| t.is_punct('('))
            {
                format!(".{}(…)", tok.text)
            } else if (tok.is_ident("panic")
                || tok.is_ident("todo")
                || tok.is_ident("unimplemented"))
                && tokens.get(i + 1).is_some_and(|t| t.is_punct('!'))
            {
                format!("{}!", tok.text)
            } else {
                continue;
            };
            out.push(Finding {
                rule: self.name(),
                path: file.path.clone(),
                line: tok.line,
                col: tok.col,
                message: format!(
                    "`{what}` in crawl/browser/store non-test code — these modules must \
                     degrade instead of panicking (catch_unwind is a backstop, not a \
                     license); return or record the failure"
                ),
            });
        }
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        for file in &ws.files {
            self.check_file(file, out);
        }
    }
}
