//! R9 `hot-path-allocation`: no avoidable allocation in functions on the
//! per-visit hot path.
//!
//! The hot path is everything transitively reachable — over the resolved
//! call graph — from the per-visit roots: `measure_site` (one cell of
//! the region × domain matrix), `Browser::fetch_document`, the `webdom`
//! parse entry points, and `pierce_shadow_roots` (the §3 shadow-DOM
//! workaround). Inside those functions the rule flags the classic
//! allocation idioms: `.clone()` / `.to_vec()` / `.to_owned()` /
//! `.to_string()`, `String::from(...)`, `format!(...)`, and a
//! `Vec::new()` binding that is later `push`ed into (growing from empty
//! on every visit). Findings aggregate per function — one entry per hot
//! function listing every allocation site — so the report reads as the
//! ranked work-list for the ROADMAP item 1 arena rewrite.
//!
//! Documented over-approximations (DESIGN.md §10): method-call edges
//! without a receiver-type hint resolve to every same-named method, so
//! reachability can pull in cold same-named functions; allocation in a
//! closure body counts against the defining function; and the rule
//! cannot see whether a `clone` result actually escapes the visit.

use crate::callgraph::{CallTarget, FnId};
use crate::rules::{Finding, Rule, Workspace};
use std::collections::BTreeMap;

/// Per-visit roots as `(path fragment, owner, name)` filters; `None`
/// matches anything.
const ROOTS: &[(Option<&str>, Option<&str>, &str)] = &[
    (None, None, "measure_site"),
    (None, Some("Browser"), "fetch_document"),
    (Some("webdom"), None, "parse"),
    (Some("webdom"), None, "parse_fragment_into"),
    (None, None, "pierce_shadow_roots"),
];

/// Zero-argument methods that allocate an owned copy.
const ALLOC_METHODS: &[&str] = &["clone", "to_vec", "to_owned", "to_string"];

/// Crates never on the per-visit path: the analyzer and the bench
/// harness analyzing/measuring it.
const COLD_PATHS: &[&str] = &["crates/lint/", "crates/bench/"];

/// R9: allocation-free per-visit hot path (arena-rewrite work-list).
pub struct HotPathAlloc;

impl Rule for HotPathAlloc {
    fn name(&self) -> &'static str {
        "hot-path-allocation"
    }

    fn code(&self) -> &'static str {
        "R9"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        let model = &ws.model;

        // Breadth-first reachability from the roots, remembering which
        // root reached each function and in how many hops (the report's
        // ranking signal). Roots are seeded in declaration order and the
        // worklist is processed in order, so the labeling — and with it
        // the findings — is deterministic.
        let mut via: BTreeMap<FnId, (String, usize)> = BTreeMap::new();
        let mut queue: Vec<FnId> = Vec::new();
        for (id, def) in model.fns.iter().enumerate() {
            let path = &ws.files[def.file].path;
            let is_root = ROOTS.iter().any(|(frag, owner, name)| {
                frag.is_none_or(|f| path.contains(f))
                    && owner.is_none_or(|o| def.owner.as_deref() == Some(o))
                    && def.name == *name
            });
            if is_root && !def.is_test {
                via.insert(id, (model.display(id), 0));
                queue.push(id);
            }
        }
        let mut head = 0;
        while head < queue.len() {
            let id = queue[head];
            head += 1;
            let (root, hops) = via[&id].clone();
            for site in &model.calls[id] {
                let CallTarget::Resolved(callees) = &site.target else {
                    continue;
                };
                for &callee in callees {
                    if model.fns[callee].is_test || via.contains_key(&callee) {
                        continue;
                    }
                    via.insert(callee, (root.clone(), hops + 1));
                    queue.push(callee);
                }
            }
        }

        for (id, def) in model.fns.iter().enumerate() {
            let Some((root, hops)) = via.get(&id) else {
                continue;
            };
            let file = &ws.files[def.file];
            if COLD_PATHS.iter().any(|p| file.path.starts_with(p)) {
                continue;
            }
            let mut sites: Vec<(u32, String)> = Vec::new();
            for site in &model.calls[id] {
                if site.method
                    && site.args.0 == site.args.1
                    && ALLOC_METHODS.contains(&site.name.as_str())
                {
                    sites.push((site.line, format!("`.{}()`", site.name)));
                } else if !site.method
                    && site.name == "from"
                    && site.qualifier.last().is_some_and(|q| q == "String")
                {
                    sites.push((site.line, "`String::from`".to_string()));
                } else if !site.method
                    && site.name == "new"
                    && site.qualifier.last().is_some_and(|q| q == "Vec")
                {
                    // `let v = Vec::new()` that is later pushed into:
                    // grows from empty on every visit.
                    let tokens = &file.tokens;
                    let Some(name) = crate::locks::let_binding(tokens, def.body.0, site.idx) else {
                        continue;
                    };
                    let end = def.body.1.min(tokens.len());
                    let pushed = (site.idx..end).any(|k| {
                        tokens[k].is_ident(&name)
                            && tokens.get(k + 1).is_some_and(|t| t.is_punct('.'))
                            && tokens.get(k + 2).is_some_and(|t| t.is_ident("push"))
                            && tokens.get(k + 3).is_some_and(|t| t.is_punct('('))
                    });
                    if pushed {
                        sites.push((site.line, format!("`Vec::new`-then-push `{name}`")));
                    }
                }
            }
            // `format!` expands to an allocation but is a macro, not a
            // call site: match it on the token stream.
            let tokens = &file.tokens;
            let end = def.body.1.min(tokens.len());
            for k in def.body.0..end {
                if tokens[k].is_ident("format")
                    && tokens.get(k + 1).is_some_and(|t| t.is_punct('!'))
                {
                    sites.push((tokens[k].line, "`format!`".to_string()));
                }
            }
            if sites.is_empty() {
                continue;
            }
            sites.sort();
            let listed: Vec<String> = sites
                .iter()
                .map(|(line, what)| format!("{what} (line {line})"))
                .collect();
            out.push(Finding {
                rule: self.name(),
                path: file.path.clone(),
                line: def.line,
                col: 0,
                message: format!(
                    "per-visit hot path `{}` ({} hop{} from root `{root}`) allocates {} time{}: \
                     {} — arena-rewrite work-list (ROADMAP item 1)",
                    model.display(id),
                    hops,
                    if *hops == 1 { "" } else { "s" },
                    sites.len(),
                    if sites.len() == 1 { "" } else { "s" },
                    listed.join(", ")
                ),
            });
        }
    }
}
