//! The rule engine: rule trait, the registry, and the workspace view the
//! rules run over. Each rule enforces one repo invariant (see DESIGN.md
//! §10) and reports [`Finding`]s; suppression and baseline handling live
//! in [`crate::engine`], so rules always report what they see.

pub mod blocking_under_lock;
pub mod determinism;
pub mod hot_path_alloc;
pub mod journal_format;
pub mod lock_order;
pub mod ordered_serialization;
pub mod panic_hygiene;
pub mod persist_parity;
pub mod seed_taint;
pub mod swallowed_io;
pub mod unbounded_growth;

use crate::callgraph::Model;
use crate::lexer::Token;
use crate::source::SourceFile;

/// The eleven invariant rules, in report order. `R1`–`R11` aliases match
/// the issue/DESIGN numbering; either name works in `lint:allow(...)`.
pub const RULES: &[&dyn Rule] = &[
    &determinism::Determinism,
    &ordered_serialization::OrderedSerialization,
    &persist_parity::PersistParity,
    &panic_hygiene::PanicHygiene,
    &journal_format::JournalFormat,
    &lock_order::LockOrder,
    &blocking_under_lock::BlockingUnderLock,
    &seed_taint::SeedTaint,
    &hot_path_alloc::HotPathAlloc,
    &unbounded_growth::UnboundedGrowth,
    &swallowed_io::SwallowedIo,
];

/// Names accepted in `lint:allow(...)`: every rule name plus its R-code.
pub fn suppressible_names() -> Vec<&'static str> {
    let mut names = Vec::new();
    for rule in RULES {
        names.push(rule.name());
        names.push(rule.code());
    }
    names
}

/// Everything a rule can look at: every scanned file plus the workspace
/// documentation the cross-file rules compare against.
pub struct Workspace {
    /// Scanned files in path order.
    pub files: Vec<SourceFile>,
    /// Contents of `DESIGN.md` at the workspace root, when present.
    pub design: Option<String>,
    /// The interprocedural model (call graph) over `files`, used by the
    /// cross-function rules R6–R8.
    pub model: Model,
}

impl Workspace {
    /// Find a scanned file by workspace-relative path.
    pub fn file(&self, path: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.path == path)
    }
}

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule name ([`Rule::name`], or `suppression` / `baseline` for the
    /// engine's own findings).
    pub rule: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column (0 when the finding has no precise span).
    pub col: u32,
    /// Human-readable description of the violation.
    pub message: String,
}

/// A named, suppressible invariant check.
pub trait Rule: Sync {
    /// Stable rule name used in reports and `lint:allow(...)`.
    fn name(&self) -> &'static str;
    /// The issue/DESIGN shorthand (`R1`…`R5`), also accepted in
    /// `lint:allow(...)`.
    fn code(&self) -> &'static str;
    /// True when findings are a pure function of one file's content (no
    /// call graph, no cross-file state). Local rules run per file through
    /// [`Rule::check_file`], which is what lets the incremental cache key
    /// their results on a single file's content hash (`crate::cache`).
    fn is_local(&self) -> bool {
        false
    }
    /// Scan one file. Only local rules implement this; the default does
    /// nothing so global rules can ignore it.
    fn check_file(&self, _file: &SourceFile, _out: &mut Vec<Finding>) {}
    /// Scan the workspace, appending findings.
    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>);
}

/// Does `tokens[i..]` start with the path `segments[0] :: segments[1] ::
/// …`? Returns the matched token length.
pub(crate) fn match_path(tokens: &[Token], i: usize, segments: &[&str]) -> Option<usize> {
    let mut k = i;
    for (n, seg) in segments.iter().enumerate() {
        if n > 0 {
            if !(tokens.get(k).is_some_and(|t| t.is_punct(':'))
                && tokens.get(k + 1).is_some_and(|t| t.is_punct(':')))
            {
                return None;
            }
            k += 2;
        }
        if !tokens.get(k).is_some_and(|t| t.is_ident(seg)) {
            return None;
        }
        k += 1;
    }
    Some(k - i)
}
