//! R7 `blocking-under-lock`: no guard live across a call that may block.
//!
//! A blocking root is a call that can park the thread or wait on IO:
//! `Condvar::wait`/`wait_timeout`/`wait_while`, channel `recv`/
//! `recv_timeout`, `JoinHandle::join`, the browser fetch entry points
//! (`fetch_document`, `fetch_domain_document`, `load_fetched`),
//! store/journal disk writes (`write_all`, `sync_all`, `fs::write`,
//! `fs::read`, `read_to_string`), and every `StorageBackend` IO method
//! (`read_file`, `write_file`, `append_file`, `truncate_file`,
//! `sync_file`) — a backend may be the real disk no matter what is
//! plugged in during tests. Blocking-ness propagates up the call
//! graph through resolved edges; a guard whose live range covers a
//! blocking call — directly or transitively — serializes every other
//! holder of that lock behind the wait, which is how a 45k-site sweep
//! hangs. Lock acquisitions themselves are R6's domain and are not roots.

use crate::callgraph::{witness_chain, CallSite, CallTarget, Origin};
use crate::locks;
use crate::rules::{Finding, Rule, Workspace};
use std::collections::BTreeSet;

/// Method/function names that block the calling thread.
pub(crate) const BLOCKING_METHODS: &[&str] = &[
    "recv",
    "recv_timeout",
    "join",
    "wait",
    "wait_timeout",
    "wait_while",
    "fetch_document",
    "fetch_domain_document",
    "load_fetched",
    "write_all",
    "sync_all",
    "read_to_string",
    // StorageBackend IO: whatever backend is plugged in, callers must
    // assume the real disk.
    "read_file",
    "write_file",
    "append_file",
    "truncate_file",
    "sync_file",
    // Snapshot IO: sealing writes and syncs an index slot, and opening a
    // snapshot re-reads every shard from disk — none of that may happen
    // while a guard serializes other holders behind it.
    "seal",
    "snapshot",
    "open_with",
];

/// Free `fs::…` calls that hit the disk.
pub(crate) const BLOCKING_FS: &[&str] = &["write", "read", "read_to_string", "create_dir_all"];

/// Is this call site a blocking root? `join` only counts with an empty
/// argument list — `JoinHandle::join(self)` takes none, while the
/// ubiquitous `Path::join(p)` / `[&str]::join(sep)` take one.
pub(crate) fn blocking_root(site: &CallSite) -> bool {
    if site.name == "join" && site.args.0 != site.args.1 {
        return false;
    }
    if !site.method && site.qualifier.last().is_some_and(|q| q == "fs") {
        return BLOCKING_FS.contains(&site.name.as_str());
    }
    BLOCKING_METHODS.contains(&site.name.as_str())
}

/// R7: guards must not be held across (transitively) blocking calls.
pub struct BlockingUnderLock;

impl Rule for BlockingUnderLock {
    fn name(&self) -> &'static str {
        "blocking-under-lock"
    }

    fn code(&self) -> &'static str {
        "R7"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        let model = &ws.model;

        // Per-function blocking facts, keyed by the root's name.
        let mut direct: Vec<Vec<(String, Origin)>> = vec![Vec::new(); model.fns.len()];
        for (id, sites) in model.calls.iter().enumerate() {
            for site in sites {
                if blocking_root(site) {
                    direct[id].push((
                        site.name.clone(),
                        Origin::Direct {
                            line: site.line,
                            what: format!("blocking `{}()`", site.name),
                        },
                    ));
                }
            }
        }
        let blocks = crate::callgraph::propagate_facts(model, &direct);

        for (id, def) in model.fns.iter().enumerate() {
            if def.is_test {
                continue;
            }
            let file = &ws.files[def.file];
            for g in locks::guards_in(file, def, &model.cfgs[id]) {
                // One finding per (guard, blocking reason): the same
                // over-approximated call must not fan out into duplicates.
                let mut seen: BTreeSet<String> = BTreeSet::new();
                for site in &model.calls[id] {
                    if !g.covers(site.idx) {
                        continue;
                    }
                    if blocking_root(site) {
                        if seen.insert(format!("direct:{}", site.name)) {
                            out.push(Finding {
                                rule: self.name(),
                                path: file.path.clone(),
                                line: site.line,
                                col: site.col,
                                message: format!(
                                    "blocking call `{}()` while `{}` (acquired {}:{}) is held — \
                                     every other holder of the lock waits behind it",
                                    site.name, g.class, file.path, g.line
                                ),
                            });
                        }
                        continue;
                    }
                    let CallTarget::Resolved(callees) = &site.target else {
                        continue;
                    };
                    for &callee in callees {
                        let Some(key) = blocks[callee].keys().next().cloned() else {
                            continue;
                        };
                        if !seen.insert(format!("via:{}:{key}", site.name)) {
                            continue;
                        }
                        let chain = witness_chain(model, &ws.files, &blocks, callee, &key);
                        out.push(Finding {
                            rule: self.name(),
                            path: file.path.clone(),
                            line: site.line,
                            col: site.col,
                            message: format!(
                                "call `{}()` may block while `{}` (acquired {}:{}) is held: \
                                 {chain}",
                                site.name, g.class, file.path, g.line
                            ),
                        });
                    }
                }
            }
        }
    }
}
