//! R2 `ordered-serialization`: reports must serialize deterministically,
//! so no field of a `#[derive(Serialize)]` type may be a `HashMap` or
//! `HashSet` — their iteration order is randomized per process, which is
//! exactly the nondeterminism the byte-identical golden/resume tests
//! exist to rule out. Use `BTreeMap` / `BTreeSet` (or a sorted `Vec`).

use super::{Finding, Rule, Workspace};
use crate::items::serialize_items;
use crate::source::SourceFile;

/// R2: no hash-ordered containers in serialized types.
pub struct OrderedSerialization;

impl Rule for OrderedSerialization {
    fn name(&self) -> &'static str {
        "ordered-serialization"
    }

    fn code(&self) -> &'static str {
        "R2"
    }

    fn is_local(&self) -> bool {
        true
    }

    fn check_file(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        for item in serialize_items(file) {
            for field in &item.fields {
                let Some(bad) = field
                    .type_idents
                    .iter()
                    .find(|t| *t == "HashMap" || *t == "HashSet")
                else {
                    continue;
                };
                let ordered = if bad == "HashMap" {
                    "BTreeMap"
                } else {
                    "BTreeSet"
                };
                let place = if field.name.is_empty() {
                    format!("a variant of `Serialize` enum `{}`", item.name)
                } else {
                    format!("field `{}` of `Serialize` type `{}`", field.name, item.name)
                };
                out.push(Finding {
                    rule: self.name(),
                    path: file.path.clone(),
                    line: field.line,
                    col: 0,
                    message: format!(
                        "{place} uses `{bad}` — serialized collections must iterate \
                         deterministically; use `{ordered}`"
                    ),
                });
            }
        }
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        for file in &ws.files {
            self.check_file(file, out);
        }
    }
}
