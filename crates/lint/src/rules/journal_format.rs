//! R5 `journal-format`: the store's on-disk formats are compatibility
//! contracts — their magics, fixed overheads, file names, and hash
//! functions are documented in DESIGN.md and must match what the store
//! actually compiles. A silent constant drift would make every existing
//! store unreadable (or worse, misread), so source and documentation are
//! checked against each other.
//!
//! Two formats are audited, each gated independently on its source file
//! so rule-specific fixture trees can exercise one without the other:
//! the `CWJ1` journal (DESIGN.md §8, `crates/store/src/journal.rs`) and
//! the `CWI1` sealed-segment index (DESIGN.md §11,
//! `crates/store/src/index.rs`).
//!
//! DESIGN.md documents the values in small machine-readable lists:
//!
//! ```text
//! - journal magic: "CWJ1"
//! - journal file: "journal.wal"
//! - journal record overhead: 35
//! - journal hash function: content_hash
//! - index magic: "CWI1"
//! - index file: "index"
//! - index entry overhead: 39
//! - index hash function: content_hash
//! ```

use super::{Finding, Rule, Workspace};
use crate::items::{fn_body, range_has_ident};
use crate::lexer::TokenKind;
use crate::source::SourceFile;

/// Workspace-relative path of the journal codec this rule audits (the
/// store's format contract lives in its own module since the backend
/// split).
pub const STORE_PATH: &str = "crates/store/src/journal.rs";

/// Workspace-relative path of the sealed-segment index codec.
pub const INDEX_PATH: &str = "crates/store/src/index.rs";

/// One on-disk format contract: where it lives, how DESIGN.md spells its
/// keys, and which constants/functions must match.
struct Contract {
    /// Format name used in messages ("journal", "index").
    noun: &'static str,
    /// Source file holding the codec; the pass is skipped when absent.
    path: &'static str,
    /// DESIGN.md section documenting the contract.
    section: &'static str,
    /// Documented keys: magic, file name, fixed overhead, hash function.
    key_magic: &'static str,
    key_file: &'static str,
    key_overhead: &'static str,
    key_hash: &'static str,
    /// Constants the source must define to the documented values.
    const_magic: &'static str,
    const_file: &'static str,
    const_overhead: &'static str,
    /// Encoder/decoder pair that must call the documented hash function.
    hash_fns: [&'static str; 2],
}

const JOURNAL: Contract = Contract {
    noun: "journal",
    path: STORE_PATH,
    section: "§8",
    key_magic: "journal magic",
    key_file: "journal file",
    key_overhead: "journal record overhead",
    key_hash: "journal hash function",
    const_magic: "MAGIC",
    const_file: "JOURNAL_FILE",
    const_overhead: "RECORD_OVERHEAD",
    hash_fns: ["encode_record", "parse_record"],
};

const INDEX: Contract = Contract {
    noun: "index",
    path: INDEX_PATH,
    section: "§11",
    key_magic: "index magic",
    key_file: "index file",
    key_overhead: "index entry overhead",
    key_hash: "index hash function",
    const_magic: "INDEX_MAGIC",
    const_file: "INDEX_FILE",
    const_overhead: "INDEX_ENTRY_OVERHEAD",
    hash_fns: ["encode_index", "parse_index"],
};

/// R5: store constants must match their DESIGN.md documentation.
pub struct JournalFormat;

impl Rule for JournalFormat {
    fn name(&self) -> &'static str {
        "journal-format"
    }

    fn code(&self) -> &'static str {
        "R5"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        check_contract(ws, &JOURNAL, out);
        check_contract(ws, &INDEX, out);
    }
}

fn check_contract(ws: &Workspace, contract: &Contract, out: &mut Vec<Finding>) {
    // Without the codec there is no contract to check (rule-specific
    // fixture trees rely on this to exercise one format at a time).
    let Some(store) = ws.file(contract.path) else {
        return;
    };
    let mut report = |line: u32, message: String| {
        out.push(Finding {
            rule: "journal-format",
            path: contract.path.to_string(),
            line,
            col: 0,
            message,
        });
    };

    let keys = [
        contract.key_magic,
        contract.key_file,
        contract.key_overhead,
        contract.key_hash,
    ];
    let mut documented = std::collections::BTreeMap::new();
    if let Some(design) = &ws.design {
        for line in design.lines() {
            let line = line.trim_start_matches(['-', '*', ' ', '\t']);
            for key in keys {
                if let Some(rest) = line.strip_prefix(key).and_then(|r| r.strip_prefix(':')) {
                    documented
                        .entry(key)
                        .or_insert_with(|| rest.trim().trim_matches(['`', '"']).to_string());
                }
            }
        }
    }
    for key in keys {
        if !documented.contains_key(&key) {
            report(
                1,
                format!(
                    "DESIGN.md documents no `{key}:` value for the {} format — \
                     the on-disk contract must be written down (see DESIGN.md {})",
                    contract.noun, contract.section
                ),
            );
        }
    }

    // Magic: `const MAGIC: [u8; 4] = *b"CWJ1";` (or the index spelling).
    if let Some(want) = documented.get(contract.key_magic) {
        match const_tokens(store, contract.const_magic)
            .and_then(|(line, toks)| byte_string(toks).map(|s| (line, s)))
        {
            Some((line, got)) if &got != want => report(
                line,
                format!(
                    "{} magic `{got}` does not match the documented `{want}` \
                     (DESIGN.md {}) — bumping the magic is a format break",
                    contract.noun, contract.section
                ),
            ),
            Some(_) => {}
            None => report(
                1,
                format!(
                    "store defines no `{}` byte-string constant for the {}",
                    contract.const_magic, contract.noun
                ),
            ),
        }
    }

    // File name: `const JOURNAL_FILE: &str = "journal.wal";` etc.
    if let Some(want) = documented.get(contract.key_file) {
        match const_tokens(store, contract.const_file)
            .and_then(|(line, toks)| plain_string(toks).map(|s| (line, s)))
        {
            Some((line, got)) if &got != want => report(
                line,
                format!(
                    "{} file name `{got}` does not match the documented `{want}`",
                    contract.noun
                ),
            ),
            Some(_) => {}
            None => report(
                1,
                format!("store defines no `{}` string constant", contract.const_file),
            ),
        }
    }

    // Fixed overhead: a sum of integer literals.
    if let Some(want) = documented.get(contract.key_overhead) {
        let want_n = want.trim_end_matches(" bytes").trim().parse::<u64>().ok();
        match (
            want_n,
            const_tokens(store, contract.const_overhead)
                .and_then(|(line, toks)| int_sum(toks).map(|n| (line, n))),
        ) {
            (Some(want_n), Some((line, got))) if got != want_n => report(
                line,
                format!(
                    "{} is {got} bytes in the source but documented as {want_n} \
                     (DESIGN.md {})",
                    contract.key_overhead, contract.section
                ),
            ),
            (Some(_), Some(_)) => {}
            (None, _) => report(
                1,
                format!(
                    "documented {} `{want}` is not an integer",
                    contract.key_overhead
                ),
            ),
            (_, None) => report(
                1,
                format!(
                    "store defines no integer `{}` constant",
                    contract.const_overhead
                ),
            ),
        }
    }

    // Hash function: both the encoder and the parser must use the
    // documented function.
    if let Some(want) = documented.get(contract.key_hash) {
        for func in contract.hash_fns {
            match fn_body(store, func) {
                Some(body) if !range_has_ident(store, body, want) => report(
                    store.tokens[body.0].line,
                    format!(
                        "`{func}` does not call the documented {} hash function \
                         `{want}` — {} hashes from other builds would not verify",
                        contract.noun, contract.noun
                    ),
                ),
                Some(_) => {}
                None => report(
                    1,
                    format!(
                        "store defines no `{func}` function to audit the {} hash in",
                        contract.noun
                    ),
                ),
            }
        }
    }
}

/// Tokens of `const NAME … = <tokens> ;` plus the line of `NAME`.
fn const_tokens<'a>(file: &'a SourceFile, name: &str) -> Option<(u32, &'a [crate::lexer::Token])> {
    let tokens = &file.tokens;
    let mut i = 0;
    while i + 1 < tokens.len() {
        if tokens[i].is_ident("const") && tokens[i + 1].is_ident(name) {
            let line = tokens[i + 1].line;
            let mut j = i + 2;
            while j < tokens.len() && !tokens[j].is_punct('=') {
                j += 1;
            }
            let start = j + 1;
            let mut k = start;
            while k < tokens.len() && !tokens[k].is_punct(';') {
                k += 1;
            }
            return Some((line, &tokens[start..k]));
        }
        i += 1;
    }
    None
}

/// Extract the inner text of the first (byte-)string literal, tolerating
/// a leading `*` deref as in `*b"CWJ1"`.
fn byte_string(tokens: &[crate::lexer::Token]) -> Option<String> {
    tokens
        .iter()
        .find(|t| t.kind == TokenKind::Literal && t.text.contains('"'))
        .map(|t| string_inner(&t.text))
}

fn plain_string(tokens: &[crate::lexer::Token]) -> Option<String> {
    byte_string(tokens)
}

fn string_inner(text: &str) -> String {
    let open = text.find('"').map_or(0, |i| i + 1);
    let close = text.rfind('"').unwrap_or(text.len());
    text[open..close.max(open)].to_string()
}

/// Evaluate a `a + b + …` chain of decimal integer literals.
fn int_sum(tokens: &[crate::lexer::Token]) -> Option<u64> {
    let mut sum = 0u64;
    let mut expect_int = true;
    let mut any = false;
    for t in tokens {
        if expect_int {
            let n: u64 = t.text.parse().ok()?;
            sum += n;
            any = true;
            expect_int = false;
        } else if t.is_punct('+') {
            expect_int = true;
        } else {
            return None;
        }
    }
    (any && !expect_int).then_some(sum)
}
