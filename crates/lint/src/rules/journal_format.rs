//! R5 `journal-format`: the on-disk journal is the store's compatibility
//! contract — its magic, fixed record overhead, file name, and hash
//! function are documented in DESIGN.md §8 and must match what
//! `crates/store/src/journal.rs` actually compiles. A silent constant drift
//! would make every existing store unreadable (or worse, misread), so the
//! source and the documentation are checked against each other.
//!
//! DESIGN.md documents the values in a small machine-readable list:
//!
//! ```text
//! - journal magic: "CWJ1"
//! - journal file: "journal.wal"
//! - journal record overhead: 35
//! - journal hash function: content_hash
//! ```

use super::{Finding, Rule, Workspace};
use crate::items::{fn_body, range_has_ident};
use crate::lexer::TokenKind;
use crate::source::SourceFile;

/// Workspace-relative path of the journal codec this rule audits (the
/// store's format contract lives in its own module since the backend
/// split).
pub const STORE_PATH: &str = "crates/store/src/journal.rs";

/// The documented journal-format keys, as spelled in DESIGN.md.
const KEYS: [&str; 4] = [
    "journal magic",
    "journal file",
    "journal record overhead",
    "journal hash function",
];

/// R5: store constants must match their DESIGN.md documentation.
pub struct JournalFormat;

impl Rule for JournalFormat {
    fn name(&self) -> &'static str {
        "journal-format"
    }

    fn code(&self) -> &'static str {
        "R5"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        // Without a store implementation there is no contract to check
        // (rule-specific fixture trees rely on this).
        let Some(store) = ws.file(STORE_PATH) else {
            return;
        };
        let mut report = |line: u32, message: String| {
            out.push(Finding {
                rule: "journal-format",
                path: STORE_PATH.to_string(),
                line,
                col: 0,
                message,
            });
        };

        let mut documented = std::collections::BTreeMap::new();
        if let Some(design) = &ws.design {
            for line in design.lines() {
                let line = line.trim_start_matches(['-', '*', ' ', '\t']);
                for key in KEYS {
                    if let Some(rest) = line.strip_prefix(key).and_then(|r| r.strip_prefix(':')) {
                        documented
                            .entry(key)
                            .or_insert_with(|| rest.trim().trim_matches(['`', '"']).to_string());
                    }
                }
            }
        }
        for key in KEYS {
            if !documented.contains_key(&key) {
                report(
                    1,
                    format!(
                        "DESIGN.md documents no `{key}:` value for the journal format — \
                         the on-disk contract must be written down (see DESIGN.md §8)"
                    ),
                );
            }
        }

        // MAGIC: `const MAGIC: [u8; 4] = *b"CWJ1";`
        if let Some(want) = documented.get("journal magic") {
            match const_tokens(store, "MAGIC")
                .and_then(|(line, toks)| byte_string(toks).map(|s| (line, s)))
            {
                Some((line, got)) if &got != want => report(
                    line,
                    format!(
                        "journal magic `{got}` does not match the documented `{want}` \
                         (DESIGN.md §8) — bumping the magic is a format break"
                    ),
                ),
                Some(_) => {}
                None => report(
                    1,
                    "store defines no `MAGIC` byte-string constant for the journal".to_string(),
                ),
            }
        }

        // JOURNAL_FILE: `const JOURNAL_FILE: &str = "journal.wal";`
        if let Some(want) = documented.get("journal file") {
            match const_tokens(store, "JOURNAL_FILE")
                .and_then(|(line, toks)| plain_string(toks).map(|s| (line, s)))
            {
                Some((line, got)) if &got != want => report(
                    line,
                    format!("journal file name `{got}` does not match the documented `{want}`"),
                ),
                Some(_) => {}
                None => report(
                    1,
                    "store defines no `JOURNAL_FILE` string constant".to_string(),
                ),
            }
        }

        // RECORD_OVERHEAD: a sum of integer literals.
        if let Some(want) = documented.get("journal record overhead") {
            let want_n = want.trim_end_matches(" bytes").trim().parse::<u64>().ok();
            match (
                want_n,
                const_tokens(store, "RECORD_OVERHEAD")
                    .and_then(|(line, toks)| int_sum(toks).map(|n| (line, n))),
            ) {
                (Some(want_n), Some((line, got))) if got != want_n => report(
                    line,
                    format!(
                        "journal record overhead is {got} bytes in the source but documented \
                         as {want_n} (DESIGN.md §8)"
                    ),
                ),
                (Some(_), Some(_)) => {}
                (None, _) => report(
                    1,
                    format!("documented journal record overhead `{want}` is not an integer"),
                ),
                (_, None) => report(
                    1,
                    "store defines no integer `RECORD_OVERHEAD` constant".to_string(),
                ),
            }
        }

        // Hash function: both the record writer and the replay parser must
        // use the documented function.
        if let Some(want) = documented.get("journal hash function") {
            for func in ["encode_record", "parse_record"] {
                match fn_body(store, func) {
                    Some(body) if !range_has_ident(store, body, want) => report(
                        store.tokens[body.0].line,
                        format!(
                            "`{func}` does not call the documented journal hash function \
                             `{want}` — journal hashes from other builds would not verify"
                        ),
                    ),
                    Some(_) => {}
                    None => report(
                        1,
                        format!("store defines no `{func}` function to audit the journal hash in"),
                    ),
                }
            }
        }
    }
}

/// Tokens of `const NAME … = <tokens> ;` plus the line of `NAME`.
fn const_tokens<'a>(file: &'a SourceFile, name: &str) -> Option<(u32, &'a [crate::lexer::Token])> {
    let tokens = &file.tokens;
    let mut i = 0;
    while i + 1 < tokens.len() {
        if tokens[i].is_ident("const") && tokens[i + 1].is_ident(name) {
            let line = tokens[i + 1].line;
            let mut j = i + 2;
            while j < tokens.len() && !tokens[j].is_punct('=') {
                j += 1;
            }
            let start = j + 1;
            let mut k = start;
            while k < tokens.len() && !tokens[k].is_punct(';') {
                k += 1;
            }
            return Some((line, &tokens[start..k]));
        }
        i += 1;
    }
    None
}

/// Extract the inner text of the first (byte-)string literal, tolerating
/// a leading `*` deref as in `*b"CWJ1"`.
fn byte_string(tokens: &[crate::lexer::Token]) -> Option<String> {
    tokens
        .iter()
        .find(|t| t.kind == TokenKind::Literal && t.text.contains('"'))
        .map(|t| string_inner(&t.text))
}

fn plain_string(tokens: &[crate::lexer::Token]) -> Option<String> {
    byte_string(tokens)
}

fn string_inner(text: &str) -> String {
    let open = text.find('"').map_or(0, |i| i + 1);
    let close = text.rfind('"').unwrap_or(text.len());
    text[open..close.max(open)].to_string()
}

/// Evaluate a `a + b + …` chain of decimal integer literals.
fn int_sum(tokens: &[crate::lexer::Token]) -> Option<u64> {
    let mut sum = 0u64;
    let mut expect_int = true;
    let mut any = false;
    for t in tokens {
        if expect_int {
            let n: u64 = t.text.parse().ok()?;
            sum += n;
            any = true;
            expect_int = false;
        } else if t.is_punct('+') {
            expect_int = true;
        } else {
            return None;
        }
    }
    (any && !expect_int).then_some(sum)
}
