//! R1 `determinism`: the measurement pipeline must be a pure function of
//! its seeds. Wall-clock reads (`SystemTime::now`, `Instant::now`),
//! ambient randomness (`thread_rng`), and process-environment reads
//! (`std::env::…`) are banned everywhere except `crates/bench` (real
//! timing is its job), the CLI entry point `src/main.rs` (flags and exit
//! paths), and `#[cfg(test)]` code.

use super::{match_path, Finding, Rule, Workspace};
use crate::source::SourceFile;

/// `std::env` accessors that leak ambient process state into a run.
const ENV_READS: &[&str] = &[
    "var",
    "var_os",
    "vars",
    "vars_os",
    "args",
    "args_os",
    "temp_dir",
    "current_dir",
    "current_exe",
    "home_dir",
    "set_var",
    "remove_var",
];

/// R1: offline determinism.
pub struct Determinism;

impl Rule for Determinism {
    fn name(&self) -> &'static str {
        "determinism"
    }

    fn code(&self) -> &'static str {
        "R1"
    }

    fn is_local(&self) -> bool {
        true
    }

    fn check_file(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        if file.path.starts_with("crates/bench/") || file.path == "src/main.rs" {
            return;
        }
        let tokens = &file.tokens;
        let mut i = 0;
        while i < tokens.len() {
            if file.in_test_region(i) {
                i += 1;
                continue;
            }
            let hit: Option<(usize, String)> =
                if let Some(n) = match_path(tokens, i, &["SystemTime", "now"]) {
                    Some((n, "SystemTime::now".to_string()))
                } else if let Some(n) = match_path(tokens, i, &["Instant", "now"]) {
                    Some((n, "Instant::now".to_string()))
                } else if tokens[i].is_ident("thread_rng") {
                    Some((1, "thread_rng".to_string()))
                } else if let Some((n, f)) = env_read(tokens, i) {
                    Some((n, f))
                } else {
                    None
                };
            match hit {
                Some((n, what)) => {
                    out.push(Finding {
                        rule: self.name(),
                        path: file.path.clone(),
                        line: tokens[i].line,
                        col: tokens[i].col,
                        message: format!(
                            "call to `{what}` — wall-clock, ambient RNG, and process-environment \
                             reads are banned outside `crates/bench`, `src/main.rs`, and \
                             `#[cfg(test)]` code (use the seeded/virtual equivalents)"
                        ),
                    });
                    i += n;
                }
                None => i += 1,
            }
        }
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        for file in &ws.files {
            self.check_file(file, out);
        }
    }
}

/// Match `std::env::<read>` or a bare `env::<read>` (from `use std::env`).
/// The bare form must not be the tail of a longer path (`std::env::var`
/// matches once, at `std`).
fn env_read(tokens: &[crate::lexer::Token], i: usize) -> Option<(usize, String)> {
    for read in ENV_READS {
        if let Some(n) = match_path(tokens, i, &["std", "env", read]) {
            return Some((n, format!("std::env::{read}")));
        }
    }
    if i > 0 && tokens[i - 1].is_punct(':') {
        return None;
    }
    for read in ENV_READS {
        if let Some(n) = match_path(tokens, i, &["env", read]) {
            return Some((n, format!("env::{read}")));
        }
    }
    None
}
