//! Per-function control-flow graphs over the token stream.
//!
//! A [`Cfg`] partitions a function body's token range into basic blocks
//! and connects them with edges for `if`/`else if`/`else`, `match` arms,
//! `loop`/`while`/`for` (back edges plus `break`/`continue` targets),
//! `return`, and the early-exit edge of every `?`. Closure bodies become
//! *nested* CFGs recorded in [`Cfg::closures`]; their tokens stay inside
//! the enclosing block's range so that range-based queries over the
//! outer function conservatively include captured work (documented
//! over-approximation, DESIGN.md §10).
//!
//! Like the item parser this is tolerant, not a Rust parser: it never
//! panics or loops on arbitrary input (pinned by the CFG proptests), and
//! control nesting deeper than [`crate::parser::MAX_DELIM_DEPTH`]
//! degrades to straight-line consumption instead of recursing further.
//!
//! Block ranges tile the body left to right: every token belongs to at
//! most one block, a construct's closing `}` belongs to the *following*
//! block (join/else), and blocks that no path can reach (code after a
//! diverging `if`/`match`, a `loop` without `break`) are listed in
//! [`Cfg::unreachable`] — "every block is reachable or reported".

use crate::lexer::{Token, TokenKind};
use crate::parser::{match_delim, MAX_DELIM_DEPTH};

/// Index of a block in [`Cfg::blocks`].
pub type BlockId = usize;

/// One basic block: a contiguous token range plus its CFG edges.
#[derive(Debug, Clone)]
pub struct Block {
    /// Token-index range `[start, end)` in the file's token stream; may
    /// be empty for synthetic blocks (the exit, empty joins).
    pub range: (usize, usize),
    /// Successor blocks.
    pub succs: Vec<BlockId>,
    /// Predecessor blocks (mirror of `succs`).
    pub preds: Vec<BlockId>,
}

/// A closure found inside the function: its body token range and the
/// nested CFG built over that range.
#[derive(Debug, Clone)]
pub struct Closure {
    /// Token range of the closure body (inside the braces for block
    /// bodies, the whole expression otherwise).
    pub body: (usize, usize),
    /// The closure's own control-flow graph.
    pub cfg: Cfg,
}

/// The control-flow graph of one function body.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// All blocks; `blocks[entry]` starts the body, `blocks[exit]` is the
    /// synthetic exit every `return`/`?`/fallthrough edge targets.
    pub blocks: Vec<Block>,
    /// Entry block id (always 0).
    pub entry: BlockId,
    /// Synthetic exit block id (always 1, empty range).
    pub exit: BlockId,
    /// Nested closure CFGs in source order.
    pub closures: Vec<Closure>,
    /// Blocks (other than the exit) unreachable from the entry — code no
    /// path executes. Reported instead of silently dropped.
    pub unreachable: Vec<BlockId>,
    /// The body token range the graph covers.
    pub body: (usize, usize),
}

impl Cfg {
    /// Build the CFG for the body token range `body` (exclusive of the
    /// fn's braces, as in [`crate::parser::FnDef::body`]). Total work is
    /// linear in the range; malformed input degrades to coarser blocks.
    pub fn build(tokens: &[Token], body: (usize, usize)) -> Cfg {
        Self::build_bounded(tokens, body, 0)
    }

    fn build_bounded(tokens: &[Token], body: (usize, usize), closure_depth: u32) -> Cfg {
        let start = body.0.min(tokens.len());
        let end = body.1.min(tokens.len()).max(start);
        let mut b = Builder {
            tokens,
            end,
            blocks: vec![
                Block {
                    range: (start, start),
                    succs: Vec::new(),
                    preds: Vec::new(),
                },
                Block {
                    range: (end, end),
                    succs: Vec::new(),
                    preds: Vec::new(),
                },
            ],
            closures: Vec::new(),
            loops: Vec::new(),
            depth: 0,
            closure_depth,
        };
        if let Some(fall) = b.lower(start, end, 0) {
            b.edge(fall, 1);
        }
        let mut cfg = Cfg {
            blocks: b.blocks,
            entry: 0,
            exit: 1,
            closures: b.closures,
            unreachable: Vec::new(),
            body: (start, end),
        };
        cfg.finalize();
        cfg
    }

    /// Fill `preds`, compute `unreachable`.
    fn finalize(&mut self) {
        for id in 0..self.blocks.len() {
            let succs = self.blocks[id].succs.clone();
            for s in succs {
                if !self.blocks[s].preds.contains(&id) {
                    self.blocks[s].preds.push(id);
                }
            }
        }
        let reach = self.reachable_from(self.entry);
        self.unreachable = (0..self.blocks.len())
            .filter(|&id| id != self.exit && !reach[id])
            .collect();
    }

    /// The block whose range contains token `idx`, if any (the synthetic
    /// exit and empty joins own no tokens; tokens consumed past the depth
    /// budget may fall into coarse blocks but never into none — gaps only
    /// appear on malformed input).
    pub fn block_of(&self, idx: usize) -> Option<BlockId> {
        self.blocks
            .iter()
            .position(|b| (b.range.0..b.range.1).contains(&idx))
    }

    /// Bitvector of blocks reachable from `from` (inclusive) via `succs`.
    pub fn reachable_from(&self, from: BlockId) -> Vec<bool> {
        let mut seen = vec![false; self.blocks.len()];
        if from >= self.blocks.len() {
            return seen;
        }
        let mut work = vec![from];
        seen[from] = true;
        while let Some(b) = work.pop() {
            for &s in &self.blocks[b].succs {
                if s < seen.len() && !seen[s] {
                    seen[s] = true;
                    work.push(s);
                }
            }
        }
        seen
    }
}

/// An enclosing loop during lowering: where `continue` and `break` go.
struct LoopCtx {
    continue_to: BlockId,
    break_to: BlockId,
}

struct Builder<'t> {
    tokens: &'t [Token],
    end: usize,
    blocks: Vec<Block>,
    closures: Vec<Closure>,
    loops: Vec<LoopCtx>,
    depth: u32,
    closure_depth: u32,
}

/// Closures nested deeper than this get a trivial single-block CFG
/// instead of a real one — fuzzed input nests arbitrarily.
const MAX_CLOSURE_DEPTH: u32 = 8;

impl<'t> Builder<'t> {
    fn new_block(&mut self, at: usize) -> BlockId {
        self.blocks.push(Block {
            range: (at, at),
            succs: Vec::new(),
            preds: Vec::new(),
        });
        self.blocks.len() - 1
    }

    fn edge(&mut self, from: BlockId, to: BlockId) {
        if !self.blocks[from].succs.contains(&to) {
            self.blocks[from].succs.push(to);
        }
    }

    /// Extend `b`'s range to cover tokens up to `to` (exclusive).
    fn extend(&mut self, b: BlockId, to: usize) {
        let r = &mut self.blocks[b].range;
        r.1 = r.1.max(to.min(self.end));
    }

    /// Lower `start..end` starting in block `cur`; return the block that
    /// falls through past `end`, or `None` when every path diverges.
    fn lower(&mut self, start: usize, end: usize, cur: BlockId) -> Option<BlockId> {
        if self.depth >= MAX_DELIM_DEPTH {
            // Past the budget: consume straight-line, never recurse.
            self.extend(cur, end);
            return Some(cur);
        }
        self.depth += 1;
        let out = self.lower_inner(start, end, cur);
        self.depth -= 1;
        out
    }

    fn lower_inner(&mut self, start: usize, end: usize, mut cur: BlockId) -> Option<BlockId> {
        let mut i = start;
        while i < end {
            let t = &self.tokens[i];
            let next = if t.kind == TokenKind::Ident {
                match t.text.as_str() {
                    "if" => {
                        let (fall, ni) = self.lower_if(i, end, cur);
                        match fall {
                            Some(b) => cur = b,
                            None => {
                                if ni >= end {
                                    return None;
                                }
                                cur = self.new_block(ni); // unreachable tail
                            }
                        }
                        ni
                    }
                    "match" => {
                        let (fall, ni) = self.lower_match(i, end, cur);
                        match fall {
                            Some(b) => cur = b,
                            None => {
                                if ni >= end {
                                    return None;
                                }
                                cur = self.new_block(ni);
                            }
                        }
                        ni
                    }
                    "loop" | "while" | "for" => {
                        let (fall, ni) = self.lower_loop(i, end, cur);
                        cur = fall;
                        ni
                    }
                    "return" | "break" | "continue" => {
                        let ni = self.lower_jump(i, end, cur);
                        if ni >= end {
                            return None;
                        }
                        cur = self.new_block(ni); // code after a jump
                        ni
                    }
                    "fn" => {
                        // A nested `fn` item: its body is a separate
                        // function (with its own CFG via the model); the
                        // tokens stay in `cur` as opaque straight-line.
                        self.opaque_to_block_end(i, end, cur)
                    }
                    _ => {
                        self.extend(cur, i + 1);
                        i + 1
                    }
                }
            } else if t.is_punct('?') {
                // Early return on `Err`/`None`: edge to the exit, then a
                // fresh fallthrough block on the `Ok` path.
                self.extend(cur, i + 1);
                self.edge(cur, 1);
                let nxt = self.new_block(i + 1);
                self.edge(cur, nxt);
                cur = nxt;
                i + 1
            } else if t.is_punct('{') {
                // A bare/`unsafe` block or struct literal: lower inline —
                // inner control flow is real control flow.
                let close = match_delim(self.tokens, i);
                self.extend(cur, i + 1);
                match self.lower(i + 1, close.min(end), cur) {
                    Some(b) => {
                        cur = b;
                        self.extend(cur, (close + 1).min(end));
                    }
                    None => {
                        if close + 1 >= end {
                            return None;
                        }
                        cur = self.new_block(close + 1);
                    }
                }
                close + 1
            } else if t.is_punct('|') && self.closure_starts(start, i) {
                match self.lower_closure(i, end, cur) {
                    Some(ni) => ni,
                    None => {
                        self.extend(cur, i + 1);
                        i + 1
                    }
                }
            } else {
                self.extend(cur, i + 1);
                i + 1
            };
            i = next.max(i + 1);
        }
        Some(cur)
    }

    /// Lower `if cond { … } [else if … ] [else { … }]` with `tokens[i]`
    /// being the `if`. Returns the fallthrough block (`None` when both
    /// arms diverge) and the index after the whole chain.
    fn lower_if(&mut self, i: usize, end: usize, cur: BlockId) -> (Option<BlockId>, usize) {
        let Some(open) = self.find_open_brace(i + 1, end) else {
            self.extend(cur, i + 1);
            return (Some(cur), i + 1);
        };
        self.extend(cur, open + 1); // cond tokens + `{` stay pre-branch
        let close = match_delim(self.tokens, open).min(end);
        let then_entry = self.new_block(open + 1);
        self.edge(cur, then_entry);
        let then_exit = self.lower(open + 1, close, then_entry);

        let has_else = close + 1 < end && self.tokens[close + 1].is_ident("else");
        if !has_else {
            let after = (close + 1).min(end);
            let join = self.new_block(close.min(end)); // owns the `}`
            self.extend(join, after);
            self.edge(cur, join); // false path skips the then-block
            if let Some(b) = then_exit {
                self.edge(b, join);
            }
            return (Some(join), after);
        }

        // `} else` tokens open the else block.
        let else_entry = self.new_block(close);
        self.edge(cur, else_entry);
        let e = close + 2; // token after `else`
        let (else_exit, after) = if e < end && self.tokens[e].is_ident("if") {
            self.extend(else_entry, e);
            self.lower_if(e, end, else_entry)
        } else if e < end && self.tokens[e].is_punct('{') {
            self.extend(else_entry, e + 1);
            let close2 = match_delim(self.tokens, e).min(end);
            let exit = self.lower(e + 1, close2, else_entry);
            // The else's closing `}` belongs to its fallthrough block.
            if let Some(b) = exit {
                self.extend(b, (close2 + 1).min(end));
            }
            (exit, (close2 + 1).min(end))
        } else {
            // Malformed `else` tail: fall through.
            self.extend(else_entry, e.min(end));
            (Some(else_entry), e.min(end))
        };

        match (then_exit, else_exit) {
            (None, None) => (None, after),
            _ => {
                let join = self.new_block(after);
                if let Some(b) = then_exit {
                    self.edge(b, join);
                }
                if let Some(b) = else_exit {
                    self.edge(b, join);
                }
                (Some(join), after)
            }
        }
    }

    /// Lower `match scrutinee { pat [if g] => body, … }`. Each arm gets
    /// its own block edging to a join after the match; the match itself
    /// is total, so `cur` only reaches the join through an arm.
    fn lower_match(&mut self, i: usize, end: usize, cur: BlockId) -> (Option<BlockId>, usize) {
        let Some(open) = self.find_open_brace(i + 1, end) else {
            self.extend(cur, i + 1);
            return (Some(cur), i + 1);
        };
        self.extend(cur, open + 1);
        let close = match_delim(self.tokens, open).min(end);
        let join = self.new_block(close); // owns the closing `}`
        self.extend(join, (close + 1).min(end));
        let mut any_arm = false;
        let mut any_falls = false;

        let mut p = open + 1;
        while p < close {
            // `pattern [if guard] =>` — find the arrow at depth 0.
            let Some(arrow) = self.find_arrow(p, close) else {
                // Malformed tail: lower what remains as one arm.
                let entry = self.new_block(p);
                self.edge(cur, entry);
                if let Some(b) = self.lower(p, close, entry) {
                    self.edge(b, join);
                    any_falls = true;
                }
                any_arm = true;
                break;
            };
            let entry = self.new_block(p);
            self.edge(cur, entry);
            self.extend(entry, arrow + 2); // pattern + guard + `=>`
            let (body_end, next_p) = self.arm_body_end(arrow + 2, close);
            let exit = self.lower(arrow + 2, body_end, entry);
            if let Some(b) = exit {
                self.extend(b, next_p); // the `,`/`}` ending the arm
                self.edge(b, join);
                any_falls = true;
            }
            any_arm = true;
            p = next_p.max(p + 1);
        }
        if !any_arm {
            // `match x {}` (or unparsed): conservatively fall through.
            self.edge(cur, join);
            any_falls = true;
        }
        let after = (close + 1).min(end);
        if any_falls {
            (Some(join), after)
        } else {
            (None, after)
        }
    }

    /// Lower `loop`/`while`/`for` at `tokens[i]`. Returns the join block
    /// (where `break` lands / the loop condition fails) and the index
    /// after the loop. The join of a break-less `loop` keeps no preds and
    /// is reported unreachable — which is exactly right.
    fn lower_loop(&mut self, i: usize, end: usize, cur: BlockId) -> (BlockId, usize) {
        let kw = self.tokens[i].text.as_str();
        let Some(open) = self.find_open_brace(i + 1, end) else {
            self.extend(cur, i + 1);
            // Treat as a plain token; reuse cur as the "join".
            return (cur, i + 1);
        };
        let close = match_delim(self.tokens, open).min(end);
        let join = self.new_block(close); // owns the closing `}`
        self.extend(join, (close + 1).min(end));
        let (head, body_entry) = if kw == "loop" {
            self.extend(cur, open + 1);
            let body = self.new_block(open + 1);
            self.edge(cur, body);
            (body, body) // `continue` re-enters the body directly
        } else {
            // `while cond {` / `for pat in iter {`: the head re-evaluates
            // the condition/iterator each round and can exit to the join.
            let head = self.new_block(i);
            self.edge(cur, head);
            self.extend(head, open + 1);
            let body = self.new_block(open + 1);
            self.edge(head, body);
            self.edge(head, join);
            (head, body)
        };
        self.loops.push(LoopCtx {
            continue_to: head,
            break_to: join,
        });
        let body_exit = self.lower(open + 1, close, body_entry);
        self.loops.pop();
        if let Some(b) = body_exit {
            self.edge(b, head); // back edge
        }
        (join, (close + 1).min(end))
    }

    /// Lower `return`/`break`/`continue` plus its value expression up to
    /// the statement boundary; add the jump edge. Returns the index after
    /// the statement — the caller starts a fresh (unreachable) block.
    fn lower_jump(&mut self, i: usize, end: usize, cur: BlockId) -> usize {
        let target = match self.tokens[i].text.as_str() {
            "return" => 1,
            "break" => self.loops.last().map(|l| l.break_to).unwrap_or(1),
            _ => self.loops.last().map(|l| l.continue_to).unwrap_or(1),
        };
        // Consume the value expression (e.g. `return Err(e);`) as
        // straight line: it runs before the jump. Control flow *inside*
        // it is not decomposed (documented over-approximation).
        let mut depth = 0i32;
        let mut k = i + 1;
        while k < end {
            let t = &self.tokens[k];
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                depth -= 1;
                if depth < 0 {
                    break; // enclosing block closes the statement
                }
            } else if depth == 0 && t.is_punct(';') {
                k += 1; // the `;` belongs to the jump statement
                break;
            }
            k += 1;
        }
        self.extend(cur, k.min(end));
        self.edge(cur, target);
        k.min(end)
    }

    /// Can the `|` at `i` start a closure? Only after tokens that cannot
    /// end a value: start of range, an opening delimiter, `,`/`=`/`;`/
    /// `:`/`{`/`[`/`(`, or one of the few keywords an expression can
    /// follow. `a | b` and or-patterns stay bitwise/pattern ors.
    fn closure_starts(&self, start: usize, i: usize) -> bool {
        if i == start || i == 0 {
            return true;
        }
        let prev = &self.tokens[i - 1];
        match prev.kind {
            TokenKind::Ident => matches!(
                prev.text.as_str(),
                "move" | "return" | "else" | "in" | "if" | "while" | "match" | "break"
            ),
            TokenKind::Punct => matches!(
                prev.text.as_str(),
                "(" | "," | "=" | ";" | "{" | "[" | ":" | ">"
            ),
            _ => false,
        }
    }

    /// Lower a closure starting at the `|` at `i`: find the closing `|`,
    /// take the body (braced block or trailing expression), build its
    /// nested CFG, and consume the whole closure into `cur` as straight
    /// line. Returns the index after the closure, or `None` when the
    /// shape does not parse as a closure.
    fn lower_closure(&mut self, i: usize, end: usize, cur: BlockId) -> Option<usize> {
        // Params: scan for the closing `|` at delimiter depth 0.
        let mut depth = 0i32;
        let mut k = i + 1;
        let params_close = loop {
            if k >= end || k - i > 64 {
                return None;
            }
            let t = &self.tokens[k];
            if depth == 0 && t.is_punct('|') {
                break k;
            }
            if t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                depth -= 1;
                if depth < 0 {
                    return None;
                }
            } else if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
                return None;
            }
            k += 1;
        };
        // Body: skip `-> Type` to a braced block, else take the
        // expression up to the enclosing `,` / `;` / closing delimiter.
        let mut b = params_close + 1;
        if b < end
            && self.tokens[b].is_punct('-')
            && self.tokens.get(b + 1).is_some_and(|t| t.is_punct('>'))
        {
            while b < end && !self.tokens[b].is_punct('{') {
                b += 1;
            }
        }
        let body = if b < end && self.tokens[b].is_punct('{') {
            let close = match_delim(self.tokens, b).min(end);
            ((b + 1).min(close), close)
        } else {
            let mut depth = 0i32;
            let mut k = b;
            while k < end {
                let t = &self.tokens[k];
                if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                    depth += 1;
                } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                    depth -= 1;
                    if depth < 0 {
                        break;
                    }
                } else if depth == 0 && (t.is_punct(',') || t.is_punct(';')) {
                    break;
                }
                k += 1;
            }
            (b, k)
        };
        let after = if b < end && self.tokens[b].is_punct('{') {
            (body.1 + 1).min(end)
        } else {
            body.1
        };
        let cfg = if self.closure_depth >= MAX_CLOSURE_DEPTH {
            Cfg::build_bounded(self.tokens, (body.0, body.0), self.closure_depth + 1)
        } else {
            Cfg::build_bounded(self.tokens, body, self.closure_depth + 1)
        };
        self.closures.push(Closure { body, cfg });
        // The closure's tokens stay straight-line in the outer block.
        self.extend(cur, after.max(i + 1));
        Some(after.max(i + 1))
    }

    /// First `{` at delimiter depth 0 in `from..end` (an `if`/`while`/
    /// `for`/`match` header cannot contain a top-level brace).
    fn find_open_brace(&self, from: usize, end: usize) -> Option<usize> {
        let mut depth = 0i32;
        for k in from..end {
            let t = &self.tokens[k];
            if t.is_punct('{') && depth == 0 {
                return Some(k);
            }
            if t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                depth -= 1;
                if depth < 0 {
                    return None;
                }
            } else if depth == 0 && t.is_punct(';') {
                return None;
            }
        }
        None
    }

    /// First `=>` at delimiter depth 0 in `from..end`.
    fn find_arrow(&self, from: usize, end: usize) -> Option<usize> {
        let mut depth = 0i32;
        let mut k = from;
        while k + 1 < end {
            let t = &self.tokens[k];
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                depth -= 1;
                if depth < 0 {
                    return None;
                }
            } else if depth == 0
                && t.is_punct('=')
                && self.tokens[k + 1].is_punct('>')
                && !(k > from && self.tokens[k - 1].is_punct('='))
            {
                return Some(k);
            }
            k += 1;
        }
        None
    }

    /// End of a match-arm body starting at `from`: a braced body ends at
    /// its `}` (plus an optional `,`), an expression body at the next
    /// `,` at depth 0 or the match's close. Returns `(body_end,
    /// next_arm_start)`.
    fn arm_body_end(&self, from: usize, close: usize) -> (usize, usize) {
        if from < close && self.tokens[from].is_punct('{') {
            let c = match_delim(self.tokens, from).min(close);
            let mut next = c + 1;
            if next < close && self.tokens[next].is_punct(',') {
                next += 1;
            }
            return ((c + 1).min(close), next);
        }
        let mut depth = 0i32;
        let mut k = from;
        while k < close {
            let t = &self.tokens[k];
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                depth -= 1;
            } else if depth == 0 && t.is_punct(',') {
                return (k, k + 1);
            }
            k += 1;
        }
        (close, close)
    }

    /// Consume an opaque item (a nested `fn`) up to the end of its body
    /// braces into `cur`; returns the index to continue from.
    fn opaque_to_block_end(&mut self, i: usize, end: usize, cur: BlockId) -> usize {
        match self.find_open_brace(i + 1, end) {
            Some(open) => {
                let close = match_delim(self.tokens, open).min(end);
                self.extend(cur, (close + 1).min(end));
                (close + 1).min(end)
            }
            None => {
                self.extend(cur, i + 1);
                i + 1
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    /// Build the CFG of the first fn in `src`; return it with the file.
    fn cfg_of(src: &str) -> (Cfg, SourceFile) {
        let file = SourceFile::parse("test.rs".to_string(), src, &[]);
        let parsed = crate::parser::parse_file(&file, 0);
        let def = parsed.fns[0].clone();
        let cfg = Cfg::build(&file.tokens, def.body);
        (cfg, file)
    }

    fn block_of_ident(cfg: &Cfg, file: &SourceFile, ident: &str) -> BlockId {
        let idx = file
            .tokens
            .iter()
            .position(|t| t.is_ident(ident))
            .unwrap_or_else(|| panic!("ident {ident} not found"));
        cfg.block_of(idx)
            .unwrap_or_else(|| panic!("ident {ident} (token {idx}) not in any block"))
    }

    /// Is there a path from `a`'s block to `b`'s block?
    fn reaches(cfg: &Cfg, file: &SourceFile, a: &str, b: &str) -> bool {
        let from = block_of_ident(cfg, file, a);
        let to = block_of_ident(cfg, file, b);
        cfg.reachable_from(from)[to]
    }

    #[test]
    fn straight_line_is_one_block() {
        let (cfg, _) = cfg_of("fn f() { a(); b(); c(); }");
        assert_eq!(cfg.blocks[cfg.entry].succs, vec![cfg.exit]);
        assert!(cfg.unreachable.is_empty());
    }

    #[test]
    fn if_else_branches_and_join() {
        let (cfg, file) = cfg_of("fn f() { if c() { t(); } else { e(); } j(); }");
        // then and else do not reach each other; both reach the join.
        assert!(!reaches(&cfg, &file, "t", "e"));
        assert!(!reaches(&cfg, &file, "e", "t"));
        assert!(reaches(&cfg, &file, "t", "j"));
        assert!(reaches(&cfg, &file, "e", "j"));
        // the condition reaches both arms.
        assert!(reaches(&cfg, &file, "c", "t"));
        assert!(reaches(&cfg, &file, "c", "e"));
        assert!(cfg.unreachable.is_empty());
    }

    #[test]
    fn if_without_else_can_skip_the_then_block() {
        let (cfg, file) = cfg_of("fn f() { if c() { t(); } j(); }");
        let cond = block_of_ident(&cfg, &file, "c");
        let then = block_of_ident(&cfg, &file, "t");
        let join = block_of_ident(&cfg, &file, "j");
        assert!(cfg.blocks[cond].succs.contains(&then));
        assert!(cfg.blocks[cond].succs.contains(&join));
    }

    #[test]
    fn else_if_chains_join_at_the_end() {
        let (cfg, file) =
            cfg_of("fn f() { if a() { x(); } else if b() { y(); } else { z(); } j(); }");
        for arm in ["x", "y", "z"] {
            assert!(reaches(&cfg, &file, arm, "j"), "{arm} must reach join");
        }
        assert!(!reaches(&cfg, &file, "x", "y"));
        assert!(!reaches(&cfg, &file, "y", "z"));
    }

    #[test]
    fn match_arms_are_parallel_blocks() {
        let (cfg, file) = cfg_of(
            "fn f(v: u8) { match v { 0 => zero(), 1 if odd() => { one(); } _ => other(), } j(); }",
        );
        for arm in ["zero", "one", "other"] {
            assert!(reaches(&cfg, &file, arm, "j"), "{arm} must reach join");
        }
        assert!(!reaches(&cfg, &file, "zero", "one"));
        assert!(!reaches(&cfg, &file, "one", "other"));
    }

    #[test]
    fn return_diverges_and_tail_is_unreachable() {
        let (cfg, file) = cfg_of("fn f() { if c() { return; } live(); }");
        assert!(reaches(&cfg, &file, "c", "live"));
        let (cfg2, file2) = cfg_of("fn g() { return; dead(); }");
        let dead = block_of_ident(&cfg2, &file2, "dead");
        assert!(
            cfg2.unreachable.contains(&dead),
            "code after return must be reported unreachable"
        );
    }

    #[test]
    fn both_arms_diverging_make_the_tail_unreachable() {
        let (cfg, file) = cfg_of("fn f() { if c() { return; } else { return; } dead(); }");
        let dead = block_of_ident(&cfg, &file, "dead");
        assert!(cfg.unreachable.contains(&dead));
    }

    #[test]
    fn loops_have_back_edges_and_break_targets() {
        let (cfg, file) = cfg_of("fn f() { loop { step(); if done() { break; } } after(); }");
        // the loop body reaches itself (back edge) and `after` via break.
        assert!(reaches(&cfg, &file, "step", "step"));
        assert!(reaches(&cfg, &file, "step", "after"));
        // A break-less loop never reaches the code after it.
        let (cfg2, file2) = cfg_of("fn g() { loop { step(); } after(); }");
        assert!(!reaches(&cfg2, &file2, "step", "after"));
        let after = block_of_ident(&cfg2, &file2, "after");
        assert!(cfg2
            .unreachable
            .iter()
            .any(|&b| b == after || cfg2.reachable_from(b)[after]));
    }

    #[test]
    fn while_and_for_can_skip_their_bodies() {
        let (cfg, file) = cfg_of("fn f(n: u32) { while more(n) { work(); } done(); }");
        assert!(reaches(&cfg, &file, "more", "done"));
        assert!(reaches(&cfg, &file, "work", "more")); // back edge
        let head = block_of_ident(&cfg, &file, "more");
        let body = block_of_ident(&cfg, &file, "work");
        let join = block_of_ident(&cfg, &file, "done");
        assert!(cfg.blocks[head].succs.contains(&body));
        assert!(cfg.blocks[head].succs.contains(&join));
    }

    #[test]
    fn continue_edges_back_to_the_loop_head() {
        let (cfg, file) =
            cfg_of("fn f() { for x in xs() { if skip(x) { continue; } use_it(x); } end(); }");
        assert!(reaches(&cfg, &file, "skip", "use_it"));
        assert!(reaches(&cfg, &file, "use_it", "end"));
        // continue re-reaches the head, so the body reaches itself.
        assert!(reaches(&cfg, &file, "skip", "skip"));
    }

    #[test]
    fn question_mark_edges_to_the_exit() {
        let (cfg, file) = cfg_of("fn f() -> R { step()?; after(); }");
        let step = block_of_ident(&cfg, &file, "step");
        // the `?` block must have the exit among its successors.
        assert!(
            cfg.blocks[step].succs.contains(&cfg.exit),
            "`?` must edge to the exit"
        );
        assert!(reaches(&cfg, &file, "step", "after"));
    }

    #[test]
    fn closures_get_nested_cfgs_and_stay_in_the_outer_block() {
        let (cfg, file) = cfg_of("fn f() { run(|x| { if x { a(); } b(); }); tail(); }");
        assert_eq!(cfg.closures.len(), 1);
        let nested = &cfg.closures[0].cfg;
        assert!(nested.blocks.len() > 2, "closure body has real structure");
        // The closure tokens are still covered by the outer graph.
        assert!(reaches(&cfg, &file, "run", "tail"));
        let a_idx = file.tokens.iter().position(|t| t.is_ident("a")).unwrap();
        assert!(cfg.block_of(a_idx).is_some());
        // `a` sits inside the nested body range.
        let (bs, be) = cfg.closures[0].body;
        assert!((bs..be).contains(&a_idx));
    }

    #[test]
    fn bitwise_or_is_not_a_closure() {
        let (cfg, _) = cfg_of("fn f(a: u8, b: u8) -> u8 { let c = a | b; c }");
        assert!(cfg.closures.is_empty());
        let (cfg2, _) = cfg_of("fn g(x: bool, y: bool) -> bool { x || y }");
        assert!(cfg2.closures.is_empty());
    }

    #[test]
    fn every_token_lands_in_exactly_one_block() {
        let src = "fn f(v: u8) -> R { if a() { b()?; } match v { 0 => c(), _ => { d(); } } \
                   for i in 0..v { e(i); } g() }";
        let (cfg, file) = cfg_of(src);
        let parsed = crate::parser::parse_file(&file, 0);
        let (s, e) = parsed.fns[0].body;
        for idx in s..e {
            let owners = cfg
                .blocks
                .iter()
                .filter(|b| (b.range.0..b.range.1).contains(&idx))
                .count();
            assert!(
                owners >= 1,
                "token {idx} `{}` not in any block",
                file.tokens[idx].text
            );
        }
    }

    #[test]
    fn preds_mirror_succs_and_unreachable_is_exact() {
        let (cfg, _) = cfg_of("fn f() { if a() { return; } else { return; } dead(); }");
        for (id, b) in cfg.blocks.iter().enumerate() {
            for &s in &b.succs {
                assert!(cfg.blocks[s].preds.contains(&id));
            }
            for &p in &b.preds {
                assert!(cfg.blocks[p].succs.contains(&id));
            }
        }
        let reach = cfg.reachable_from(cfg.entry);
        for (id, reachable) in reach.iter().enumerate() {
            let listed = cfg.unreachable.contains(&id);
            assert_eq!(listed, id != cfg.exit && !reachable, "block {id}");
        }
    }

    #[test]
    fn pathological_nesting_stays_bounded() {
        let mut src = String::from("fn deep() { ");
        for _ in 0..300 {
            src.push_str("if a() { ");
        }
        for _ in 0..300 {
            src.push('}');
        }
        src.push('}');
        let (cfg, _) = cfg_of(&src); // must not overflow the stack
        assert!(cfg.blocks.len() < 10_000);
    }
}
