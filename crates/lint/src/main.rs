//! CLI for the workspace invariant linter.
//!
//! ```text
//! cargo run -p lint --                      # lint this workspace
//! cargo run -p lint -- --root DIR           # lint another tree (fixtures)
//! cargo run -p lint -- --update-baseline    # grandfather current findings
//! cargo run -p lint -- --list-rules         # what the rules enforce
//! cargo run -p lint -- --format json        # machine-readable findings
//! ```
//!
//! Exit status: 0 clean, 1 findings, 2 usage/IO error.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut baseline: Option<PathBuf> = None;
    let mut update = false;
    let mut json = false;
    // lint:allow(determinism) — CLI flag parsing at the binary entry point
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage("--root needs a directory"),
            },
            "--baseline" => match args.next() {
                Some(file) => baseline = Some(PathBuf::from(file)),
                None => return usage("--baseline needs a file"),
            },
            "--update-baseline" => update = true,
            "--format" => match args.next().as_deref() {
                Some("json") => json = true,
                Some("text") => json = false,
                Some(other) => return usage(&format!("unknown format `{other}`")),
                None => return usage("--format needs `text` or `json`"),
            },
            "--list-rules" => {
                for rule in lint::RULES {
                    println!("{:<4} {}", rule.code(), rule.name());
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unknown flag `{other}`")),
        }
    }
    let root = root.unwrap_or_else(find_workspace_root);

    if update {
        return match lint::update_baseline(&root, baseline.as_deref()) {
            Ok(0) => {
                println!("lint: workspace clean, baseline removed");
                ExitCode::SUCCESS
            }
            Ok(n) => {
                println!("lint: baselined {n} findings");
                ExitCode::SUCCESS
            }
            Err(e) => fail(&format!("updating baseline: {e}")),
        };
    }

    match lint::run(&root, baseline.as_deref()) {
        Ok(report) => {
            if json {
                println!("{}", report.render_json());
            } else {
                print!("{}", report.render());
            }
            if report.failing() == 0 {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => fail(&format!("scanning {}: {e}", root.display())),
    }
}

/// Default to the workspace this binary was built from: the linter runs
/// from any cwd under `cargo run -p lint` because the manifest dir is
/// baked in at compile time.
fn find_workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| PathBuf::from("."))
}

fn usage(error: &str) -> ExitCode {
    if !error.is_empty() {
        eprintln!("lint: {error}");
    }
    eprintln!(
        "usage: cargo run -p lint -- [--root DIR] [--baseline FILE] \
         [--update-baseline] [--list-rules] [--format text|json]"
    );
    ExitCode::from(2)
}

fn fail(message: &str) -> ExitCode {
    eprintln!("lint: {message}");
    ExitCode::from(2)
}
