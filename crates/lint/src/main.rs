//! CLI for the workspace invariant linter.
//!
//! ```text
//! cargo run -p lint --                      # lint this workspace
//! cargo run -p lint -- --root DIR           # lint another tree (fixtures)
//! cargo run -p lint -- --update-baseline    # grandfather current findings
//! cargo run -p lint -- --list-rules         # what the rules enforce
//! cargo run -p lint -- --format json        # machine-readable findings
//! cargo run -p lint -- --jobs 8             # per-file fan-out (0 = auto)
//! cargo run -p lint -- --cache              # incremental cache in
//!                                           #   <root>/target/lint-cache
//! cargo run -p lint -- --cache-dir DIR      # incremental cache in DIR
//! ```
//!
//! With the cache on, hit/miss statistics go to stderr (`lint: cache:
//! 107/107 files hit, global hit`) so scripts can assert warm runs.
//! Exit status: 0 clean, 1 findings, 2 usage/IO error.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut baseline: Option<PathBuf> = None;
    let mut update = false;
    let mut json = false;
    let mut jobs = 0usize;
    let mut cache = false;
    let mut cache_dir: Option<PathBuf> = None;
    // lint:allow(determinism) — CLI flag parsing at the binary entry point
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage("--root needs a directory"),
            },
            "--baseline" => match args.next() {
                Some(file) => baseline = Some(PathBuf::from(file)),
                None => return usage("--baseline needs a file"),
            },
            "--jobs" => match args.next().map(|n| n.parse::<usize>()) {
                Some(Ok(n)) => jobs = n,
                Some(Err(_)) => return usage("--jobs needs a number (0 = auto)"),
                None => return usage("--jobs needs a number (0 = auto)"),
            },
            "--cache" => cache = true,
            "--cache-dir" => match args.next() {
                Some(dir) => {
                    cache = true;
                    cache_dir = Some(PathBuf::from(dir));
                }
                None => return usage("--cache-dir needs a directory"),
            },
            "--update-baseline" => update = true,
            "--format" => match args.next().as_deref() {
                Some("json") => json = true,
                Some("text") => json = false,
                Some(other) => return usage(&format!("unknown format `{other}`")),
                None => return usage("--format needs `text` or `json`"),
            },
            "--list-rules" => {
                for rule in lint::RULES {
                    println!("{:<4} {}", rule.code(), rule.name());
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unknown flag `{other}`")),
        }
    }
    let root = root.unwrap_or_else(find_workspace_root);

    if update {
        return match lint::update_baseline(&root, baseline.as_deref()) {
            Ok(0) => {
                println!("lint: workspace clean, baseline removed");
                ExitCode::SUCCESS
            }
            Ok(n) => {
                println!("lint: baselined {n} findings");
                ExitCode::SUCCESS
            }
            Err(e) => fail(&format!("updating baseline: {e}")),
        };
    }

    let opts = lint::Options {
        jobs,
        cache_dir: cache.then(|| cache_dir.unwrap_or_else(|| root.join("target/lint-cache"))),
    };
    match lint::run_with(&root, baseline.as_deref(), &opts) {
        Ok(report) => {
            if let Some(stats) = &report.cache {
                eprintln!(
                    "lint: cache: {}/{} files hit, global {}",
                    stats.file_hits,
                    stats.file_total,
                    if stats.global_hit { "hit" } else { "miss" }
                );
            }
            if json {
                println!("{}", report.render_json());
            } else {
                print!("{}", report.render());
            }
            if report.failing() == 0 {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => fail(&format!("scanning {}: {e}", root.display())),
    }
}

/// Default to the workspace this binary was built from: the linter runs
/// from any cwd under `cargo run -p lint` because the manifest dir is
/// baked in at compile time.
fn find_workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| PathBuf::from("."))
}

fn usage(error: &str) -> ExitCode {
    if !error.is_empty() {
        eprintln!("lint: {error}");
    }
    eprintln!(
        "usage: cargo run -p lint -- [--root DIR] [--baseline FILE] \
         [--update-baseline] [--list-rules] [--format text|json] \
         [--jobs N] [--cache] [--cache-dir DIR]"
    );
    ExitCode::from(2)
}

fn fail(message: &str) -> ExitCode {
    eprintln!("lint: {message}");
    ExitCode::from(2)
}
