//! The linter driver: scan a workspace root, run every rule, apply
//! suppressions and the grandfathering baseline, and render the report.

use crate::rules::{suppressible_names, Finding, Workspace, RULES};
use crate::source::{self, SourceFile};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// File (relative to the root) holding grandfathered findings.
pub const BASELINE_FILE: &str = "lint.baseline";

/// How one reported finding counts toward the exit status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// A new violation: fails the run.
    Failing,
    /// Matched a baseline entry: reported, does not fail.
    Grandfathered,
}

/// Result of one lint run.
pub struct Report {
    /// Findings with their status, sorted by (path, line, rule, message).
    pub findings: Vec<(Finding, Status)>,
    /// Files scanned.
    pub files_scanned: usize,
    /// Findings silenced by valid `lint:allow` directives.
    pub suppressed: usize,
}

impl Report {
    /// Findings that fail the run (everything not grandfathered).
    pub fn failing(&self) -> usize {
        self.findings
            .iter()
            .filter(|(_, s)| *s == Status::Failing)
            .count()
    }

    /// Findings matched against the baseline.
    pub fn grandfathered(&self) -> usize {
        self.findings.len() - self.failing()
    }

    /// Human-readable report: one line per finding plus a summary. The
    /// format is pinned by the golden test — change it deliberately.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (f, status) in &self.findings {
            let suffix = match status {
                Status::Failing => "",
                Status::Grandfathered => " (grandfathered)",
            };
            out.push_str(&format!(
                "{}:{}: [{}] {}{}\n",
                f.path, f.line, f.rule, f.message, suffix
            ));
        }
        out.push_str(&format!(
            "lint: {} failing, {} grandfathered, {} suppressed across {} files\n",
            self.failing(),
            self.grandfathered(),
            self.suppressed,
            self.files_scanned
        ));
        out
    }

    /// Machine-readable report. The schema is stable (CI and editors
    /// depend on it): a top-level object with `findings` (each carrying
    /// `rule`, `code`, `path`, `line`, `span.col`, `message`, `status`)
    /// and `summary` counts. `line` and `span.col` are 1-based;
    /// synthetic findings (malformed suppressions, stale baseline
    /// entries) anchor at column 1. Suppressed findings never appear —
    /// only `failing` and `grandfathered` statuses exist.
    pub fn render_json(&self) -> String {
        let code_of = |rule: &str| {
            crate::rules::RULES
                .iter()
                .find(|r| r.name() == rule)
                .map(|r| r.code())
                .unwrap_or("")
        };
        let mut out = String::from("{\n  \"findings\": [");
        for (n, (f, status)) in self.findings.iter().enumerate() {
            if n > 0 {
                out.push(',');
            }
            let status = match status {
                Status::Failing => "failing",
                Status::Grandfathered => "grandfathered",
            };
            out.push_str(&format!(
                "\n    {{\"rule\": {}, \"code\": {}, \"path\": {}, \"line\": {}, \
                 \"span\": {{\"col\": {}}}, \"message\": {}, \"status\": {}}}",
                json_str(f.rule),
                json_str(code_of(f.rule)),
                json_str(&f.path),
                f.line,
                f.col,
                json_str(&f.message),
                json_str(status),
            ));
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str(&format!(
            "],\n  \"summary\": {{\"failing\": {}, \"grandfathered\": {}, \
             \"suppressed\": {}, \"files_scanned\": {}}}\n}}",
            self.failing(),
            self.grandfathered(),
            self.suppressed,
            self.files_scanned
        ));
        out
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars) —
/// the linter is zero-dependency by design, so no serde here.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Run every rule over the workspace at `root`. `baseline` overrides the
/// default `<root>/lint.baseline` (which applies only when it exists).
pub fn run(root: &Path, baseline: Option<&Path>) -> io::Result<Report> {
    let known = suppressible_names();
    let mut files = Vec::new();
    for path in source::collect_files(root)? {
        let text = fs::read_to_string(&path)?;
        let rel = source::relative_path(root, &path);
        files.push(SourceFile::parse(rel, &text, &known));
    }
    let model = crate::callgraph::Model::build(&files);
    let ws = Workspace {
        files,
        design: fs::read_to_string(root.join("DESIGN.md")).ok(),
        model,
    };

    let mut raw = Vec::new();
    for rule in RULES {
        rule.check(&ws, &mut raw);
    }

    // Suppressions: a valid `lint:allow(rule)` covering the finding's line
    // silences it; malformed directives are findings themselves.
    let mut suppressed = 0usize;
    let mut findings: Vec<Finding> = Vec::new();
    for f in raw {
        let by_name = ws.file(&f.path).is_some_and(|file| {
            let code = RULES
                .iter()
                .find(|r| r.name() == f.rule)
                .map(|r| r.code())
                .unwrap_or("");
            file.suppressed(f.rule, f.line) || file.suppressed(code, f.line)
        });
        if by_name {
            suppressed += 1;
        } else {
            findings.push(f);
        }
    }
    for file in &ws.files {
        for bad in &file.bad_suppressions {
            findings.push(Finding {
                rule: "suppression",
                path: file.path.clone(),
                line: bad.line,
                col: 1, // synthetic: anchor at line start, col is 1-based
                message: bad.message.clone(),
            });
        }
    }

    // Baseline: grandfather matching findings, flag stale entries so the
    // baseline can only ratchet down.
    let baseline_path = baseline
        .map(Path::to_path_buf)
        .unwrap_or_else(|| root.join(BASELINE_FILE));
    let mut entries = load_baseline(&baseline_path)?;
    let mut out: Vec<(Finding, Status)> = Vec::new();
    for f in findings {
        let matched = entries.iter().position(|e| {
            !e.used && e.rule == f.rule && e.path == f.path && e.message == f.message
        });
        match matched {
            Some(i) => {
                entries[i].used = true;
                out.push((f, Status::Grandfathered));
            }
            None => out.push((f, Status::Failing)),
        }
    }
    let baseline_rel = source::relative_path(root, &baseline_path);
    for e in entries.iter().filter(|e| !e.used) {
        out.push((
            Finding {
                rule: "baseline",
                path: baseline_rel.clone(),
                line: e.line,
                col: 1, // synthetic: anchor at line start, col is 1-based
                message: format!(
                    "stale baseline entry `{}\t{}` matches no current finding — delete it \
                     (the baseline only ratchets down)",
                    e.rule, e.path
                ),
            },
            Status::Failing,
        ));
    }

    out.sort_by(|(a, _), (b, _)| {
        (&a.path, a.line, a.rule, &a.message).cmp(&(&b.path, b.line, b.rule, &b.message))
    });
    Ok(Report {
        findings: out,
        files_scanned: ws.files.len(),
        suppressed,
    })
}

/// Rewrite the baseline to grandfather every currently-failing rule
/// finding (engine findings about suppressions/baselines are never
/// baselined — they must be fixed).
pub fn update_baseline(root: &Path, baseline: Option<&Path>) -> io::Result<usize> {
    let report = run(root, baseline)?;
    let path = baseline
        .map(Path::to_path_buf)
        .unwrap_or_else(|| root.join(BASELINE_FILE));
    let mut lines = String::from(
        "# lint baseline: grandfathered findings, one `rule<TAB>path<TAB>message` per line.\n\
         # Regenerate with `cargo run -p lint -- --update-baseline`; only ever shrink it.\n",
    );
    let mut count = 0usize;
    for (f, status) in &report.findings {
        if *status == Status::Failing && f.rule != "suppression" && f.rule != "baseline" {
            lines.push_str(&format!("{}\t{}\t{}\n", f.rule, f.path, f.message));
            count += 1;
        }
    }
    if count == 0 {
        if path.exists() {
            fs::remove_file(&path)?;
        }
        return Ok(0);
    }
    fs::write(&path, lines)?;
    Ok(count)
}

struct BaselineEntry {
    rule: String,
    path: String,
    message: String,
    line: u32,
    used: bool,
}

fn load_baseline(path: &PathBuf) -> io::Result<Vec<BaselineEntry>> {
    let text = match fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    let mut entries = Vec::new();
    for (n, line) in text.lines().enumerate() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.splitn(3, '\t');
        let (Some(rule), Some(path), Some(message)) = (parts.next(), parts.next(), parts.next())
        else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "malformed baseline line {}: expected rule\\tpath\\tmessage",
                    n + 1
                ),
            ));
        };
        entries.push(BaselineEntry {
            rule: rule.to_string(),
            path: path.to_string(),
            message: message.to_string(),
            line: (n + 1) as u32,
            used: false,
        });
    }
    Ok(entries)
}
