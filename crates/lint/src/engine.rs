//! The linter driver: scan a workspace root, run every rule, apply
//! suppressions and the grandfathering baseline, and render the report.
//!
//! The engine is production-shaped: the per-file phase (parse + local
//! rules) fans out across `--jobs` worker threads, the global rules run
//! one-per-thread, and an optional incremental cache (`crate::cache`)
//! skips whatever the content hashes prove unchanged. Findings are
//! sorted at the end, so the report is byte-identical at any job count
//! and on any hit/miss mix.

use crate::cache;
use crate::rules::{suppressible_names, Finding, Rule, Workspace, RULES};
use crate::source::{self, SourceFile};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// File (relative to the root) holding grandfathered findings.
pub const BASELINE_FILE: &str = "lint.baseline";

/// Engine knobs: parallelism and the incremental cache.
#[derive(Debug, Clone, Default)]
pub struct Options {
    /// Worker threads for the per-file phase; 0 means one per available
    /// core. The findings are byte-identical at every job count.
    pub jobs: usize,
    /// Cache directory (conventionally `<root>/target/lint-cache`);
    /// `None` disables the incremental cache.
    pub cache_dir: Option<PathBuf>,
}

/// What the incremental cache did for one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Files whose content hash matched a cached entry.
    pub file_hits: usize,
    /// Files scanned.
    pub file_total: usize,
    /// Did the cross-file entry's workspace fingerprint match?
    pub global_hit: bool,
}

/// How one reported finding counts toward the exit status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// A new violation: fails the run.
    Failing,
    /// Matched a baseline entry: reported, does not fail.
    Grandfathered,
}

/// Result of one lint run.
pub struct Report {
    /// Findings with their status, sorted by (path, line, rule, message).
    pub findings: Vec<(Finding, Status)>,
    /// Files scanned.
    pub files_scanned: usize,
    /// Findings silenced by valid `lint:allow` directives.
    pub suppressed: usize,
    /// Cache hit/miss statistics; `None` when the cache was disabled.
    pub cache: Option<CacheStats>,
}

impl Report {
    /// Findings that fail the run (everything not grandfathered).
    pub fn failing(&self) -> usize {
        self.findings
            .iter()
            .filter(|(_, s)| *s == Status::Failing)
            .count()
    }

    /// Findings matched against the baseline.
    pub fn grandfathered(&self) -> usize {
        self.findings.len() - self.failing()
    }

    /// Human-readable report: one line per finding plus a summary. The
    /// format is pinned by the golden test — change it deliberately.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (f, status) in &self.findings {
            let suffix = match status {
                Status::Failing => "",
                Status::Grandfathered => " (grandfathered)",
            };
            out.push_str(&format!(
                "{}:{}: [{}] {}{}\n",
                f.path, f.line, f.rule, f.message, suffix
            ));
        }
        out.push_str(&format!(
            "lint: {} failing, {} grandfathered, {} suppressed across {} files\n",
            self.failing(),
            self.grandfathered(),
            self.suppressed,
            self.files_scanned
        ));
        out
    }

    /// Machine-readable report. The schema is stable (CI and editors
    /// depend on it): a top-level object with `findings` (each carrying
    /// `rule`, `code`, `path`, `line`, `span.col`, `message`, `status`)
    /// and `summary` counts. `line` and `span.col` are 1-based;
    /// synthetic findings (malformed suppressions, stale baseline
    /// entries) anchor at column 1. Suppressed findings never appear —
    /// only `failing` and `grandfathered` statuses exist.
    pub fn render_json(&self) -> String {
        let code_of = |rule: &str| {
            crate::rules::RULES
                .iter()
                .find(|r| r.name() == rule)
                .map(|r| r.code())
                .unwrap_or("")
        };
        let mut out = String::from("{\n  \"findings\": [");
        for (n, (f, status)) in self.findings.iter().enumerate() {
            if n > 0 {
                out.push(',');
            }
            let status = match status {
                Status::Failing => "failing",
                Status::Grandfathered => "grandfathered",
            };
            out.push_str(&format!(
                "\n    {{\"rule\": {}, \"code\": {}, \"path\": {}, \"line\": {}, \
                 \"span\": {{\"col\": {}}}, \"message\": {}, \"status\": {}}}",
                json_str(f.rule),
                json_str(code_of(f.rule)),
                json_str(&f.path),
                f.line,
                f.col,
                json_str(&f.message),
                json_str(status),
            ));
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str(&format!(
            "],\n  \"summary\": {{\"failing\": {}, \"grandfathered\": {}, \
             \"suppressed\": {}, \"files_scanned\": {}}}\n}}",
            self.failing(),
            self.grandfathered(),
            self.suppressed,
            self.files_scanned
        ));
        out
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars) —
/// the linter is zero-dependency by design, so no serde here.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Run every rule over the workspace at `root` with default options
/// (auto parallelism, no cache). `baseline` overrides the default
/// `<root>/lint.baseline` (which applies only when it exists).
pub fn run(root: &Path, baseline: Option<&Path>) -> io::Result<Report> {
    run_with(root, baseline, &Options::default())
}

/// [`run`] with explicit parallelism and cache options.
pub fn run_with(root: &Path, baseline: Option<&Path>, opts: &Options) -> io::Result<Report> {
    let known = suppressible_names();
    let mut inputs: Vec<(String, String, u64)> = Vec::new();
    for path in source::collect_files(root)? {
        let text = fs::read_to_string(&path)?;
        let hash = cache::fnv1a64(text.as_bytes());
        inputs.push((source::relative_path(root, &path), text, hash));
    }
    let design = fs::read_to_string(root.join("DESIGN.md")).ok();
    let ruleset = cache::ruleset_id();
    let keys: Vec<(&str, u64)> = inputs.iter().map(|(p, _, h)| (p.as_str(), *h)).collect();
    let fingerprint = cache::workspace_fingerprint(&ruleset, design.as_deref(), &keys);

    let cached = opts
        .cache_dir
        .as_deref()
        .map(|dir| cache::load(dir, &ruleset));
    let hits: Vec<bool> = inputs
        .iter()
        .map(|(p, _, h)| {
            cached
                .as_ref()
                .is_some_and(|c| c.files.get(p.as_str()).is_some_and(|e| e.hash == *h))
        })
        .collect();
    let stats = cached.as_ref().map(|c| CacheStats {
        file_hits: hits.iter().filter(|h| **h).count(),
        file_total: inputs.len(),
        global_hit: c
            .global
            .as_ref()
            .is_some_and(|g| g.fingerprint == fingerprint),
    });

    // Full hit: every file and the cross-file entry are current, so the
    // findings are assembled straight from the cache — no parse, no call
    // graph, no rules.
    let full_hit = stats.is_some_and(|s| s.global_hit && s.file_hits == s.file_total);
    let (findings, suppressed) = if full_hit {
        let c = cached.as_ref().expect("full hit implies a loaded cache");
        let mut findings = Vec::new();
        let mut suppressed = 0usize;
        for (path, _, _) in &inputs {
            let entry = &c.files[path.as_str()];
            findings.extend(entry.findings.iter().cloned());
            suppressed += entry.suppressed as usize;
        }
        let global = c.global.as_ref().expect("full hit implies a global entry");
        findings.extend(global.findings.iter().cloned());
        suppressed += global.suppressed as usize;
        (findings, suppressed)
    } else {
        analyze(
            &inputs,
            &hits,
            design,
            &known,
            opts,
            cached.as_ref(),
            fingerprint,
            &ruleset,
        )?
    };

    // Baseline: grandfather matching findings, flag stale entries so the
    // baseline can only ratchet down.
    let baseline_path = baseline
        .map(Path::to_path_buf)
        .unwrap_or_else(|| root.join(BASELINE_FILE));
    let mut entries = load_baseline(&baseline_path)?;
    let mut out: Vec<(Finding, Status)> = Vec::new();
    for f in findings {
        let matched = entries.iter().position(|e| {
            !e.used && e.rule == f.rule && e.path == f.path && e.message == f.message
        });
        match matched {
            Some(i) => {
                entries[i].used = true;
                out.push((f, Status::Grandfathered));
            }
            None => out.push((f, Status::Failing)),
        }
    }
    let baseline_rel = source::relative_path(root, &baseline_path);
    for e in entries.iter().filter(|e| !e.used) {
        out.push((
            Finding {
                rule: "baseline",
                path: baseline_rel.clone(),
                line: e.line,
                col: 1, // synthetic: anchor at line start, col is 1-based
                message: format!(
                    "stale baseline entry `{}\t{}` matches no current finding — delete it \
                     (the baseline only ratchets down)",
                    e.rule, e.path
                ),
            },
            Status::Failing,
        ));
    }

    out.sort_by(|(a, _), (b, _)| {
        (&a.path, a.line, a.rule, &a.message).cmp(&(&b.path, b.line, b.rule, &b.message))
    });
    Ok(Report {
        findings: out,
        files_scanned: inputs.len(),
        suppressed,
        cache: stats,
    })
}

/// One worker thread per available core, bounded by the work items.
fn effective_jobs(requested: usize, items: usize) -> usize {
    let jobs = if requested == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        requested
    };
    jobs.clamp(1, items.max(1))
}

/// Local analysis of one parsed file: every local rule, then that file's
/// suppressions, then its malformed directives as findings. This is the
/// unit the per-file cache stores.
fn local_findings(file: &SourceFile) -> (Vec<Finding>, u32) {
    let mut raw = Vec::new();
    for rule in RULES.iter().filter(|r| r.is_local()) {
        rule.check_file(file, &mut raw);
    }
    let mut suppressed = 0u32;
    let mut keep = Vec::new();
    for f in raw {
        if suppressed_at(file, &f) {
            suppressed += 1;
        } else {
            keep.push(f);
        }
    }
    for bad in &file.bad_suppressions {
        keep.push(Finding {
            rule: "suppression",
            path: file.path.clone(),
            line: bad.line,
            col: 1, // synthetic: anchor at line start, col is 1-based
            message: bad.message.clone(),
        });
    }
    (keep, suppressed)
}

/// Does a valid `lint:allow` on the finding's line name its rule (by
/// name or R-code)?
fn suppressed_at(file: &SourceFile, f: &Finding) -> bool {
    let code = RULES
        .iter()
        .find(|r| r.name() == f.rule)
        .map(|r| r.code())
        .unwrap_or("");
    file.suppressed(f.rule, f.line) || file.suppressed(code, f.line)
}

/// One file after the per-file phase: the parsed source plus its local
/// findings and suppression count (`None` when the cache already holds
/// them).
type ParsedFile = (SourceFile, Option<(Vec<Finding>, u32)>);

/// The cache-miss path: parse every file (cached local results are
/// reused, missed ones recomputed in the same fan-out), build the
/// interprocedural model, run the global rules one-per-thread, and
/// rewrite the cache.
#[allow(clippy::too_many_arguments)]
fn analyze(
    inputs: &[(String, String, u64)],
    hits: &[bool],
    design: Option<String>,
    known: &[&str],
    opts: &Options,
    cached: Option<&cache::Cache>,
    fingerprint: u64,
    ruleset: &str,
) -> io::Result<(Vec<Finding>, usize)> {
    let jobs = effective_jobs(opts.jobs, inputs.len());

    // Per-file phase: parse, plus local analysis for files the cache
    // does not cover. Contiguous chunks reassemble in input order, so
    // the result is independent of the job count.
    let chunk_len = inputs.len().div_ceil(jobs).max(1);
    let work: Vec<(&(String, String, u64), bool)> =
        inputs.iter().zip(hits.iter().copied()).collect();
    let parsed: Vec<ParsedFile> = if jobs <= 1 {
        work.iter()
            .map(|(input, hit)| parse_one(input, *hit, known))
            .collect()
    } else {
        let chunks: Vec<Vec<ParsedFile>> = crossbeam::thread::scope(|s| {
            let handles: Vec<_> = work
                .chunks(chunk_len)
                .map(|c| {
                    s.spawn(move |_| {
                        c.iter()
                            .map(|(input, hit)| parse_one(input, *hit, known))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("lint parse worker panicked"))
                .collect()
        })
        .expect("lint parse scope");
        chunks.into_iter().flatten().collect()
    };

    let mut files = Vec::with_capacity(parsed.len());
    let mut locals: Vec<(Vec<Finding>, u32)> = Vec::with_capacity(parsed.len());
    for ((file, local), (path, _, _)) in parsed.into_iter().zip(inputs) {
        let entry = match local {
            Some(computed) => computed,
            None => {
                let e = cached
                    .and_then(|c| c.files.get(path.as_str()))
                    .expect("hit flag implies a cache entry");
                (e.findings.clone(), e.suppressed)
            }
        };
        files.push(file);
        locals.push(entry);
    }

    let model = crate::callgraph::Model::build(&files);
    let ws = Workspace {
        files,
        design,
        model,
    };

    // Global rules: one thread each (they have very different costs, so
    // rule-granular scheduling is enough), reassembled in registry order.
    let globals: Vec<&&dyn Rule> = RULES.iter().filter(|r| !r.is_local()).collect();
    let per_rule: Vec<Vec<Finding>> = if jobs <= 1 {
        globals
            .iter()
            .map(|rule| {
                let mut v = Vec::new();
                rule.check(&ws, &mut v);
                v
            })
            .collect()
    } else {
        let ws_ref = &ws;
        crossbeam::thread::scope(|s| {
            let handles: Vec<_> = globals
                .iter()
                .map(|rule| {
                    s.spawn(move |_| {
                        let mut v = Vec::new();
                        rule.check(ws_ref, &mut v);
                        v
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("lint rule worker panicked"))
                .collect()
        })
        .expect("lint rule scope")
    };

    let mut global_suppressed = 0u32;
    let mut global_kept: Vec<Finding> = Vec::new();
    for f in per_rule.into_iter().flatten() {
        if ws.file(&f.path).is_some_and(|file| suppressed_at(file, &f)) {
            global_suppressed += 1;
        } else {
            global_kept.push(f);
        }
    }

    if let Some(dir) = opts.cache_dir.as_deref() {
        let mut next = cache::Cache::default();
        for ((path, _, hash), (findings, suppressed)) in inputs.iter().zip(&locals) {
            next.files.insert(
                path.clone(),
                cache::FileEntry {
                    hash: *hash,
                    findings: findings.clone(),
                    suppressed: *suppressed,
                },
            );
        }
        next.global = Some(cache::GlobalEntry {
            fingerprint,
            findings: global_kept.clone(),
            suppressed: global_suppressed,
        });
        cache::store(dir, ruleset, &next)?;
    }

    let mut findings: Vec<Finding> = Vec::new();
    let mut suppressed = global_suppressed as usize;
    for (local, count) in locals {
        findings.extend(local);
        suppressed += count as usize;
    }
    findings.extend(global_kept);
    Ok((findings, suppressed))
}

/// Parse one input and, when the cache has no current entry for it, run
/// its local analysis in the same worker.
fn parse_one(
    input: &(String, String, u64),
    hit: bool,
    known: &[&str],
) -> (SourceFile, Option<(Vec<Finding>, u32)>) {
    let (rel, text, _) = input;
    let file = SourceFile::parse(rel.clone(), text, known);
    let local = if hit {
        None
    } else {
        Some(local_findings(&file))
    };
    (file, local)
}

/// Rewrite the baseline to grandfather every currently-failing rule
/// finding (engine findings about suppressions/baselines are never
/// baselined — they must be fixed).
pub fn update_baseline(root: &Path, baseline: Option<&Path>) -> io::Result<usize> {
    let report = run(root, baseline)?;
    let path = baseline
        .map(Path::to_path_buf)
        .unwrap_or_else(|| root.join(BASELINE_FILE));
    let mut lines = String::from(
        "# lint baseline: grandfathered findings, one `rule<TAB>path<TAB>message` per line.\n\
         # Regenerate with `cargo run -p lint -- --update-baseline`; only ever shrink it.\n",
    );
    let mut count = 0usize;
    for (f, status) in &report.findings {
        if *status == Status::Failing && f.rule != "suppression" && f.rule != "baseline" {
            lines.push_str(&format!("{}\t{}\t{}\n", f.rule, f.path, f.message));
            count += 1;
        }
    }
    if count == 0 {
        if path.exists() {
            fs::remove_file(&path)?;
        }
        return Ok(0);
    }
    fs::write(&path, lines)?;
    Ok(count)
}

struct BaselineEntry {
    rule: String,
    path: String,
    message: String,
    line: u32,
    used: bool,
}

fn load_baseline(path: &PathBuf) -> io::Result<Vec<BaselineEntry>> {
    let text = match fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    let mut entries = Vec::new();
    for (n, line) in text.lines().enumerate() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.splitn(3, '\t');
        let (Some(rule), Some(path), Some(message)) = (parts.next(), parts.next(), parts.next())
        else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "malformed baseline line {}: expected rule\\tpath\\tmessage",
                    n + 1
                ),
            ));
        };
        entries.push(BaselineEntry {
            rule: rule.to_string(),
            path: path.to_string(),
            message: message.to_string(),
            line: (n + 1) as u32,
            used: false,
        });
    }
    Ok(entries)
}
