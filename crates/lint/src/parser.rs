//! A tolerant recursive-descent *item* parser over the token stream: it
//! recovers `fn` definitions (with their `impl` owner, parameters, and
//! body token range), inline `mod` nesting, and `use` aliases — the
//! structure the interprocedural rules (R6–R8) build their call graph
//! from.
//!
//! Like [`crate::items`] it is deliberately not a Rust parser: it
//! brace-matches balanced delimiters, pattern-matches the item shapes it
//! cares about, and silently skips anything else. Two hard guarantees
//! instead of completeness:
//!
//! * it never panics or loops on arbitrary input (pinned by the
//!   robustness proptest in `tests/proptests.rs`);
//! * delimiter nesting deeper than [`MAX_DELIM_DEPTH`] makes the rest of
//!   the enclosing item opaque instead of recursing further, so
//!   pathological input degrades to "no items seen", never to a stack
//!   overflow.

use crate::lexer::{Token, TokenKind};
use crate::source::SourceFile;

/// Delimiter-nesting budget: deeper than this, the parser stops looking
/// inside (a hand-written 64-deep expression is already absurd; fuzzed
/// input goes far past it).
pub const MAX_DELIM_DEPTH: u32 = 64;

/// One parsed function definition.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Index of the defining file in the workspace scan order.
    pub file: usize,
    /// Function name.
    pub name: String,
    /// `impl` target type when the fn is a method/associated fn.
    pub owner: Option<String>,
    /// Inline `mod` path within the file (outermost first).
    pub module: Vec<String>,
    /// Parameters in order, `self` included (as a typeless param).
    pub params: Vec<Param>,
    /// Token-index range of the body, exclusive of the braces; `(i, i)`
    /// for bodyless signatures.
    pub body: (usize, usize),
    /// Line of the `fn` keyword.
    pub line: u32,
    /// The definition sits inside a `#[cfg(test)]` / `#[test]` region.
    pub is_test: bool,
    /// The signature's return type mentions `Result` (a *hint* from the
    /// tokens between the parameter list and the body, not a resolved
    /// type — used by R11 to spot discarded fallible IO).
    pub returns_result: bool,
}

/// One parameter of a [`FnDef`].
#[derive(Debug, Clone)]
pub struct Param {
    /// Binding name (`self` for receivers; empty for unnamed patterns).
    pub name: String,
    /// Identifier tokens appearing in the declared type (a *hint* for
    /// receiver-type resolution, not a resolved type).
    pub type_idents: Vec<String>,
}

/// Everything the parser recovered from one file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// Function definitions in source order.
    pub fns: Vec<FnDef>,
    /// `use` aliases: `(alias, original final segment)`. Plain `use a::b`
    /// contributes `(b, b)` so resolution can tell imported names apart
    /// from unknown ones.
    pub aliases: Vec<(String, String)>,
}

/// Parse the items of `file` (workspace file index `file_idx`).
pub fn parse_file(file: &SourceFile, file_idx: usize) -> ParsedFile {
    let mut out = ParsedFile::default();
    let tokens = &file.tokens;
    let mut module: Vec<(String, usize)> = Vec::new(); // (name, close idx)
    let mut owners: Vec<(String, usize)> = Vec::new(); // (impl type, close idx)
    let mut i = 0usize;
    while i < tokens.len() {
        module.retain(|&(_, close)| i <= close);
        owners.retain(|&(_, close)| i <= close);
        let t = &tokens[i];
        if t.is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            i = match_delim(tokens, i + 1) + 1;
            continue;
        }
        if t.is_ident("mod") {
            if let (Some(name), Some(open)) = (
                tokens.get(i + 1).filter(|t| t.kind == TokenKind::Ident),
                tokens.get(i + 2),
            ) {
                if open.is_punct('{') {
                    module.push((name.text.clone(), match_delim(tokens, i + 2)));
                    i += 3;
                    continue;
                }
            }
            i += 1;
            continue;
        }
        if t.is_ident("impl") {
            if let Some((ty, open)) = impl_target(tokens, i) {
                owners.push((ty, match_delim(tokens, open)));
                i = open + 1;
                continue;
            }
            i += 1;
            continue;
        }
        if t.is_ident("use") {
            i = parse_use(tokens, i, &mut out.aliases);
            continue;
        }
        if t.is_ident("fn") {
            if let Some((def, next)) = parse_fn(file, file_idx, tokens, i, &module, &owners) {
                let after_body = def.body.1.max(i);
                out.fns.push(def);
                // Keep scanning *inside* the body too: nested fns and
                // closures define further items the graph should see.
                i = next.min(after_body + 1).max(i + 1);
                continue;
            }
            i += 1;
            continue;
        }
        i += 1;
    }
    out
}

/// Parse one `fn` at `tokens[at]`. Returns the definition and the token
/// index scanning should continue from (just after the signature, so
/// nested items inside the body are still visited).
fn parse_fn(
    file: &SourceFile,
    file_idx: usize,
    tokens: &[Token],
    at: usize,
    module: &[(String, usize)],
    owners: &[(String, usize)],
) -> Option<(FnDef, usize)> {
    let name_tok = tokens.get(at + 1).filter(|t| t.kind == TokenKind::Ident)?;
    // Skip generics to the parameter list.
    let mut j = at + 2;
    if tokens.get(j).is_some_and(|t| t.is_punct('<')) {
        j = match_angle(tokens, j)? + 1;
    }
    if !tokens.get(j).is_some_and(|t| t.is_punct('(')) {
        return None;
    }
    let params_close = match_delim(tokens, j);
    let params = parse_params(tokens, j + 1, params_close);
    // Find the body `{` (skipping `-> Type` and `where` clauses); a `;`
    // first means a bodyless trait/extern signature.
    let mut k = params_close + 1;
    let mut angle = 0i32;
    let body = loop {
        let Some(t) = tokens.get(k) else {
            break (k, k);
        };
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            angle = (angle - 1).max(0);
        } else if angle == 0 && t.is_punct(';') {
            break (k, k);
        } else if angle == 0 && t.is_punct('{') {
            break (k + 1, match_delim(tokens, k));
        } else if angle == 0 && (t.is_punct('(') || t.is_punct('[')) {
            // e.g. `-> (A, B)` / `-> [u8; 4]` return types.
            k = match_delim(tokens, k);
        }
        k += 1;
    };
    let returns_result = tokens[params_close + 1..body.0.min(tokens.len())]
        .iter()
        .any(|t| t.is_ident("Result"));
    let def = FnDef {
        file: file_idx,
        name: name_tok.text.clone(),
        owner: owners.last().map(|(ty, _)| ty.clone()),
        module: module.iter().map(|(m, _)| m.clone()).collect(),
        params,
        body,
        line: tokens[at].line,
        is_test: file.in_test_region(at),
        returns_result,
    };
    Some((def, params_close + 1))
}

/// Parse a parameter list between `start..end` (inside the parens).
fn parse_params(tokens: &[Token], start: usize, end: usize) -> Vec<Param> {
    let mut params = Vec::new();
    for range in split_top_level_commas(tokens, start, end) {
        let (s, e) = range;
        if s >= e {
            continue;
        }
        // Receiver forms: `self`, `&self`, `&mut self`, `&'a self`.
        if tokens[s..e].iter().any(|t| t.is_ident("self"))
            && !tokens[s..e].iter().any(|t| t.is_punct(':'))
        {
            params.push(Param {
                name: "self".to_string(),
                type_idents: Vec::new(),
            });
            continue;
        }
        // `pattern : Type` — the name is the first ident of the pattern
        // (`mut x`, `(a, b)` patterns contribute their first binding).
        let colon = (s..e).find(|&k| tokens[k].is_punct(':') && depth_at(tokens, s, k) == 0);
        let (pat_end, ty_start) = match colon {
            Some(c) => (c, c + 1),
            None => (e, e),
        };
        let name = tokens[s..pat_end]
            .iter()
            .find(|t| t.kind == TokenKind::Ident && !t.is_ident("mut") && !t.is_ident("ref"))
            .map(|t| t.text.clone())
            .unwrap_or_default();
        let type_idents = tokens[ty_start..e]
            .iter()
            .filter(|t| t.kind == TokenKind::Ident && !t.is_ident("mut") && !t.is_ident("dyn"))
            .map(|t| t.text.clone())
            .collect();
        params.push(Param { name, type_idents });
    }
    params
}

/// `impl<...> Type {` / `impl<...> Trait for Type {` — the target type
/// name and the index of the opening `{`.
fn impl_target(tokens: &[Token], at: usize) -> Option<(String, usize)> {
    let mut j = at + 1;
    if tokens.get(j).is_some_and(|t| t.is_punct('<')) {
        j = match_angle(tokens, j)? + 1;
    }
    let mut angle = 0i32;
    let mut last_ident: Option<&Token> = None;
    let mut after_for: Option<&Token> = None;
    let mut seen_for = false;
    while let Some(t) = tokens.get(j) {
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            angle = (angle - 1).max(0);
        } else if angle == 0 && t.is_punct('{') {
            let ty = after_for.or(last_ident)?;
            return Some((ty.text.clone(), j));
        } else if angle == 0 && (t.is_punct(';') || t.is_ident("fn")) {
            return None; // gave up: not an inherent/trait impl block shape
        } else if t.kind == TokenKind::Ident && angle == 0 {
            if t.is_ident("for") {
                seen_for = true;
                after_for = None;
            } else if t.is_ident("where") {
                // `where` clause: the target is already known.
            } else if seen_for {
                after_for = Some(t);
            } else {
                last_ident = Some(t);
            }
        }
        j += 1;
    }
    None
}

/// Parse a `use` item, recording aliases; returns the index after `;`.
fn parse_use(tokens: &[Token], at: usize, aliases: &mut Vec<(String, String)>) -> usize {
    let mut j = at + 1;
    let mut last: Option<String> = None;
    let mut pending_alias = false;
    while let Some(t) = tokens.get(j) {
        if t.is_punct(';') {
            if let Some(name) = last.take() {
                aliases.push((name.clone(), name));
            }
            return j + 1;
        }
        if t.is_punct('{') || t.is_punct(',') || t.is_punct('}') {
            if let Some(name) = last.take() {
                aliases.push((name.clone(), name));
            }
            pending_alias = false;
        } else if t.is_ident("as") {
            pending_alias = true;
        } else if t.kind == TokenKind::Ident {
            if pending_alias {
                // `use a::b as c` — c resolves to b.
                let original = last.take().unwrap_or_else(|| t.text.clone());
                aliases.push((t.text.clone(), original));
                pending_alias = false;
            } else {
                last = Some(t.text.clone());
            }
        }
        j += 1;
    }
    tokens.len()
}

/// Split `start..end` at top-level commas (delimiters and `<>` nested).
pub(crate) fn split_top_level_commas(
    tokens: &[Token],
    start: usize,
    end: usize,
) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut angle = 0i32;
    let mut seg = start;
    let end = end.min(tokens.len());
    for (k, t) in tokens.iter().enumerate().take(end).skip(start) {
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
        } else if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            angle = (angle - 1).max(0);
        } else if depth == 0 && angle == 0 && t.is_punct(',') {
            out.push((seg, k));
            seg = k + 1;
        }
    }
    if seg < end {
        out.push((seg, end));
    }
    out
}

/// Brace/bracket/paren depth of `at` relative to `start`.
fn depth_at(tokens: &[Token], start: usize, at: usize) -> i32 {
    let mut depth = 0i32;
    for t in &tokens[start..at] {
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
        }
    }
    depth
}

/// Index of the delimiter matching `tokens[open]` (`{`/`(`/`[`), with the
/// [`MAX_DELIM_DEPTH`] budget: deeper nesting is treated as opaque and
/// the scan runs to the end (callers then see "no item here").
pub(crate) fn match_delim(tokens: &[Token], open: usize) -> usize {
    let (inc, dec) = match tokens.get(open).map(|t| t.text.as_str()) {
        Some("(") => ('(', ')'),
        Some("[") => ('[', ']'),
        _ => ('{', '}'),
    };
    let mut depth = 0u32;
    for (k, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct(inc) {
            depth += 1;
            if depth > MAX_DELIM_DEPTH {
                return tokens.len().saturating_sub(1);
            }
        } else if t.is_punct(dec) {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return k;
            }
        }
    }
    tokens.len().saturating_sub(1)
}

/// Index of the `>` closing the `<` at `open` (angle brackets do not
/// nest with other delimiters reliably; `None` past the depth budget or
/// at EOF so callers fall back to "not generics").
fn match_angle(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0u32;
    for (k, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct('<') {
            depth += 1;
            if depth > MAX_DELIM_DEPTH {
                return None;
            }
        } else if t.is_punct('>') {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return Some(k);
            }
        } else if t.is_punct(';') || t.is_punct('{') {
            return None; // statement boundary: this `<` was a comparison
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn parse(src: &str) -> ParsedFile {
        parse_file(&SourceFile::parse("test.rs".to_string(), src, &[]), 0)
    }

    #[test]
    fn free_fn_and_method_are_recovered_with_owner_and_params() {
        let src = "fn free(a: u32, mut b: &str) -> u32 { a }\n\
                   struct S;\n\
                   impl S {\n\
                       pub fn method(&self, cache: &FetchCache) -> bool { true }\n\
                   }\n\
                   impl Clone for S { fn clone(&self) -> S { S } }";
        let parsed = parse(src);
        let names: Vec<(&str, Option<&str>)> = parsed
            .fns
            .iter()
            .map(|f| (f.name.as_str(), f.owner.as_deref()))
            .collect();
        assert_eq!(
            names,
            [("free", None), ("method", Some("S")), ("clone", Some("S"))]
        );
        let free = &parsed.fns[0];
        assert_eq!(free.params.len(), 2);
        assert_eq!(free.params[0].name, "a");
        assert_eq!(free.params[1].name, "b");
        let method = &parsed.fns[1];
        assert_eq!(method.params[0].name, "self");
        assert_eq!(method.params[1].name, "cache");
        assert!(method.params[1]
            .type_idents
            .contains(&"FetchCache".to_string()));
    }

    #[test]
    fn generic_fn_where_clause_and_return_types_do_not_confuse_the_body() {
        let src = "fn g<T: Ord>(x: Vec<T>) -> Option<(T, T)> where T: Clone { inner(x) }";
        let parsed = parse(src);
        assert_eq!(parsed.fns.len(), 1);
        let f = &parsed.fns[0];
        assert!(f.body.1 > f.body.0);
        assert_eq!(f.params.len(), 1);
        assert_eq!(f.params[0].name, "x");
    }

    #[test]
    fn inline_mod_path_and_test_regions_are_tracked() {
        let src = "mod inner { fn here() { a(); } }\n\
                   #[cfg(test)]\nmod tests { fn t() { b(); } }\n\
                   fn after() {}";
        let parsed = parse(src);
        let here = parsed.fns.iter().find(|f| f.name == "here").unwrap();
        assert_eq!(here.module, ["inner"]);
        assert!(!here.is_test);
        let t = parsed.fns.iter().find(|f| f.name == "t").unwrap();
        assert!(t.is_test);
        let after = parsed.fns.iter().find(|f| f.name == "after").unwrap();
        assert!(after.module.is_empty());
    }

    #[test]
    fn use_aliases_and_groups_are_recorded() {
        let src = "use std::mem::take;\nuse a::b as c;\nuse x::{y, z as w};\nfn f() {}";
        let parsed = parse(src);
        assert!(parsed.aliases.contains(&("take".into(), "take".into())));
        assert!(parsed.aliases.contains(&("c".into(), "b".into())));
        assert!(parsed.aliases.contains(&("y".into(), "y".into())));
        assert!(parsed.aliases.contains(&("w".into(), "z".into())));
    }

    #[test]
    fn trait_signature_without_body_yields_empty_body() {
        let src = "trait T { fn sig(&self) -> u8; }\nfn real() { x(); }";
        let parsed = parse(src);
        let sig = parsed.fns.iter().find(|f| f.name == "sig").unwrap();
        assert_eq!(sig.body.0, sig.body.1);
        let real = parsed.fns.iter().find(|f| f.name == "real").unwrap();
        assert!(real.body.1 > real.body.0);
    }

    #[test]
    fn nested_fn_inside_a_body_is_still_visited() {
        let src = "fn outer() { fn inner(q: u8) { leaf(); } inner(1); }";
        let parsed = parse(src);
        let names: Vec<&str> = parsed.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["outer", "inner"]);
    }

    #[test]
    fn pathological_nesting_stays_bounded_and_silent() {
        let mut src = String::from("fn deep() { ");
        for _ in 0..5000 {
            src.push('(');
        }
        for _ in 0..5000 {
            src.push(')');
        }
        src.push('}');
        let parsed = parse(&src); // must not overflow the stack or loop
        assert!(parsed.fns.len() <= 1);
    }
}
