//! Workspace scanning: which files the linter reads, and the per-file
//! facts every rule needs — the token stream, the `#[cfg(test)]` regions,
//! and the `lint:allow` suppression directives.

use crate::lexer::{self, Comment, Lexed, Token};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directory names never descended into. `tests`, `benches` and
/// `examples` hold test/demo code outside every rule's scope; `fixtures`
/// keeps the linter's own known-bad corpus from failing the real tree;
/// `vendor` and `target` are not ours to lint.
const SKIP_DIRS: &[&str] = &[
    "tests", "benches", "examples", "fixtures", "vendor", "target",
];

/// One scanned source file with everything the rules pattern-match over.
pub struct SourceFile {
    /// Path relative to the workspace root, `/`-separated.
    pub path: String,
    /// Lexed code tokens in source order.
    pub tokens: Vec<Token>,
    /// Comments in source order (suppressions live here).
    pub comments: Vec<Comment>,
    /// Valid suppression directives parsed from the comments.
    pub suppressions: Vec<Suppression>,
    /// `lint:allow` directives that are malformed (no reason, unknown
    /// rule); each is a finding in its own right.
    pub bad_suppressions: Vec<BadSuppression>,
    /// Token-index ranges covered by `#[cfg(test)]` / `#[test]` items.
    test_regions: Vec<(usize, usize)>,
}

/// A well-formed `// lint:allow(rule, …) — reason` directive.
#[derive(Debug)]
pub struct Suppression {
    /// Rules the directive names.
    pub rules: Vec<String>,
    /// Lines the directive covers: its own line(s) and the next line, so
    /// it works both as a trailing comment and on the line above.
    pub lines: (u32, u32),
}

/// A malformed suppression and why it is rejected.
#[derive(Debug)]
pub struct BadSuppression {
    /// Line of the directive.
    pub line: u32,
    /// What is wrong with it.
    pub message: String,
}

impl SourceFile {
    /// Parse one file's text into the rule-facing model.
    pub fn parse(path: String, text: &str, known_rules: &[&str]) -> SourceFile {
        let Lexed { tokens, comments } = lexer::lex(text);
        let test_regions = find_test_regions(&tokens);
        let mut suppressions = Vec::new();
        let mut bad_suppressions = Vec::new();
        for comment in &comments {
            parse_suppressions(
                comment,
                known_rules,
                &mut suppressions,
                &mut bad_suppressions,
            );
        }
        SourceFile {
            path,
            tokens,
            comments,
            suppressions,
            bad_suppressions,
            test_regions,
        }
    }

    /// Is the token at `idx` inside a `#[cfg(test)]` item?
    pub fn in_test_region(&self, idx: usize) -> bool {
        self.test_regions
            .iter()
            .any(|&(start, end)| (start..=end).contains(&idx))
    }

    /// Does a valid suppression for `rule` cover `line`? Rule names are
    /// matched case-insensitively so `lint:allow(r9)` and
    /// `lint:allow(R9)` are the same directive.
    pub fn suppressed(&self, rule: &str, line: u32) -> bool {
        self.suppressions.iter().any(|s| {
            (s.lines.0..=s.lines.1).contains(&line)
                && s.rules.iter().any(|r| r.eq_ignore_ascii_case(rule))
        })
    }
}

/// Parse a suppression directive from one comment. The grammar:
///
/// ```text
/// // lint:allow(rule[, rule…]) — reason text
/// ```
///
/// The directive must be a plain `//` or `/* */` comment (doc comments
/// document APIs, they cannot suppress) and must *start* the comment, so
/// prose that merely mentions the syntax is never parsed as a directive.
/// The reason is mandatory (a suppression that does not say *why* is an
/// error, not a suppression) and `—`, `-`, or `:` may introduce it.
fn parse_suppressions(
    comment: &Comment,
    known_rules: &[&str],
    ok: &mut Vec<Suppression>,
    bad: &mut Vec<BadSuppression>,
) {
    let body = if let Some(line) = comment.text.strip_prefix("//") {
        // `///` and `//!` are doc comments.
        if line.starts_with('/') || line.starts_with('!') {
            return;
        }
        line
    } else if let Some(block) = comment.text.strip_prefix("/*") {
        // `/**` and `/*!` are doc comments.
        if block.starts_with('*') || block.starts_with('!') {
            return;
        }
        block
    } else {
        return;
    };
    let rest = body.trim_start();
    let Some(rest) = rest.strip_prefix("lint:allow") else {
        return;
    };
    let Some(open) = rest.strip_prefix('(') else {
        bad.push(BadSuppression {
            line: comment.line,
            message: "lint:allow must be followed by a parenthesized rule list".to_string(),
        });
        return;
    };
    let Some(close) = open.find(')') else {
        bad.push(BadSuppression {
            line: comment.line,
            message: "unclosed rule list in lint:allow(...)".to_string(),
        });
        return;
    };
    let rules: Vec<String> = open[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty() {
        bad.push(BadSuppression {
            line: comment.line,
            message: "lint:allow names no rule".to_string(),
        });
        return;
    }
    if let Some(unknown) = rules
        .iter()
        .find(|r| !known_rules.iter().any(|k| k.eq_ignore_ascii_case(r)))
    {
        bad.push(BadSuppression {
            line: comment.line,
            message: format!("lint:allow names unknown rule `{unknown}`"),
        });
        return;
    }
    // Reason: the remainder of the comment after the rule list, with the
    // introducing dash/colon stripped, must contain a word. `*/` tails of
    // block comments do not count.
    let reason = open[close + 1..]
        .trim_start_matches([' ', '\t', '—', '-', ':', '–'])
        .trim_end_matches(['*', '/', ' ', '\t', '\n']);
    if reason.chars().filter(|c| c.is_alphanumeric()).count() < 3 {
        bad.push(BadSuppression {
            line: comment.line,
            message: format!(
                "lint:allow({}) has no reason — write `lint:allow(rule) — why`",
                rules.join(", ")
            ),
        });
        return;
    }
    ok.push(Suppression {
        rules,
        lines: (comment.line, comment.end_line + 1),
    });
}

/// Find token-index ranges belonging to `#[cfg(test)]` (or `#[test]`)
/// items: the attribute, any further attributes, and the item's body up
/// to its matching close brace (or terminating `;`).
fn find_test_regions(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if !(tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('['))) {
            i += 1;
            continue;
        }
        let attr_start = i;
        let (content_start, attr_end) = match attr_span(tokens, i) {
            Some(span) => span,
            None => break, // unterminated attribute at EOF
        };
        if !attr_is_test(&tokens[content_start..attr_end]) {
            i = attr_end + 1;
            continue;
        }
        // Skip any further attributes between #[cfg(test)] and the item.
        let mut j = attr_end + 1;
        while j < tokens.len()
            && tokens[j].is_punct('#')
            && tokens.get(j + 1).is_some_and(|t| t.is_punct('['))
        {
            match attr_span(tokens, j) {
                Some((_, end)) => j = end + 1,
                None => return regions,
            }
        }
        // The item runs to its first top-level `;` or the brace block that
        // starts at its first top-level `{`.
        let mut depth_paren = 0i32;
        let mut end = j;
        while end < tokens.len() {
            let t = &tokens[end];
            if t.is_punct('(') || t.is_punct('[') {
                depth_paren += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                depth_paren -= 1;
            } else if depth_paren == 0 && t.is_punct(';') {
                break;
            } else if depth_paren == 0 && t.is_punct('{') {
                end = match_brace(tokens, end);
                break;
            }
            end += 1;
        }
        regions.push((attr_start, end.min(tokens.len().saturating_sub(1))));
        i = end + 1;
    }
    regions
}

/// Given `tokens[open]` == `#` and `tokens[open+1]` == `[`, return the
/// token range of the attribute content and the index of the closing `]`.
fn attr_span(tokens: &[Token], open: usize) -> Option<(usize, usize)> {
    let mut depth = 0i32;
    let mut k = open + 1;
    while k < tokens.len() {
        if tokens[k].is_punct('[') {
            depth += 1;
        } else if tokens[k].is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return Some((open + 2, k));
            }
        }
        k += 1;
    }
    None
}

/// Is this attribute content `cfg(test)`-like (`cfg` whose arguments
/// mention `test`) or a bare `#[test]`?
fn attr_is_test(content: &[Token]) -> bool {
    match content.first() {
        Some(t) if t.is_ident("test") && content.len() == 1 => true,
        Some(t) if t.is_ident("cfg") => content.iter().skip(1).any(|t| t.is_ident("test")),
        _ => false,
    }
}

/// Index of the `}` matching the `{` at `open` (or the last token when
/// unbalanced).
fn match_brace(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    for (k, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return k;
            }
        }
    }
    tokens.len().saturating_sub(1)
}

/// Recursively collect the `.rs` files the linter scans: `src/**` at the
/// workspace root and under every `crates/*`, skipping [`SKIP_DIRS`].
pub fn collect_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let root_src = root.join("src");
    if root_src.is_dir() {
        walk(&root_src, &mut out)?;
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        crate_dirs.sort();
        for dir in crate_dirs {
            let src = dir.join("src");
            if src.is_dir() {
                walk(&src, &mut out)?;
            }
        }
    }
    out.sort();
    Ok(out)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if SKIP_DIRS.contains(&name) {
                continue;
            }
            walk(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Render `path` relative to `root` with `/` separators.
pub fn relative_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> SourceFile {
        SourceFile::parse(
            "test.rs".to_string(),
            src,
            &["determinism", "panic-hygiene"],
        )
    }

    #[test]
    fn cfg_test_module_region_is_detected() {
        let src = "fn live() { before(); }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn t() { inside(); }\n\
                   }\n\
                   fn after() { outside(); }";
        let f = parse(src);
        let inside = f.tokens.iter().position(|t| t.is_ident("inside")).unwrap();
        let before = f.tokens.iter().position(|t| t.is_ident("before")).unwrap();
        let outside = f.tokens.iter().position(|t| t.is_ident("outside")).unwrap();
        assert!(f.in_test_region(inside));
        assert!(!f.in_test_region(before));
        assert!(!f.in_test_region(outside));
    }

    #[test]
    fn cfg_test_with_extra_attributes_and_test_fns() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nmod t { fn x() { a(); } }\n\
                   #[test]\nfn unit() { b(); }\nfn live() { c(); }";
        let f = parse(src);
        let a = f.tokens.iter().position(|t| t.is_ident("a")).unwrap();
        let b = f.tokens.iter().position(|t| t.is_ident("b")).unwrap();
        let c = f.tokens.iter().position(|t| t.is_ident("c")).unwrap();
        assert!(f.in_test_region(a));
        assert!(f.in_test_region(b));
        assert!(!f.in_test_region(c));
    }

    #[test]
    fn cfg_all_test_counts_as_test_region() {
        let src = "#[cfg(all(test, feature = \"x\"))]\nmod t { fn x() { a(); } }";
        let f = parse(src);
        let a = f.tokens.iter().position(|t| t.is_ident("a")).unwrap();
        assert!(f.in_test_region(a));
    }

    #[test]
    fn suppression_with_reason_covers_its_line_and_the_next() {
        let src = "// lint:allow(determinism) — wall-clock metrics only\nlet t = now();";
        let f = parse(src);
        assert!(f.bad_suppressions.is_empty());
        assert!(f.suppressed("determinism", 1));
        assert!(f.suppressed("determinism", 2));
        assert!(!f.suppressed("determinism", 3));
        assert!(!f.suppressed("panic-hygiene", 2));
    }

    #[test]
    fn suppression_without_reason_is_rejected() {
        let src = "// lint:allow(determinism)\nlet t = now();";
        let f = parse(src);
        assert_eq!(f.suppressions.len(), 0);
        assert_eq!(f.bad_suppressions.len(), 1);
        assert!(f.bad_suppressions[0].message.contains("no reason"));
    }

    #[test]
    fn suppression_with_unknown_rule_is_rejected() {
        let src = "// lint:allow(made-up) — because\nx();";
        let f = parse(src);
        assert!(f.suppressions.is_empty());
        assert!(f.bad_suppressions[0].message.contains("unknown rule"));
    }

    #[test]
    fn multi_rule_suppression_parses() {
        let src = "stmt(); // lint:allow(determinism, panic-hygiene): intentional here\n";
        let f = parse(src);
        assert!(f.bad_suppressions.is_empty());
        assert!(f.suppressed("determinism", 1));
        assert!(f.suppressed("panic-hygiene", 1));
    }
}
