//! # lint — the workspace invariant linter
//!
//! A from-scratch, offline static-analysis gate (no `syn`, no `clippy`
//! plumbing: a hand-rolled comment/string/raw-string-aware Rust lexer
//! plus a small rule engine) that enforces the repo's correctness
//! invariants at build time instead of test time:
//!
//! | rule | invariant |
//! |------|-----------|
//! | R1 `determinism` | no wall-clock / ambient-RNG / env reads outside bench, `src/main.rs`, tests |
//! | R2 `ordered-serialization` | no `HashMap`/`HashSet` fields in `Serialize` types |
//! | R3 `persist-parity` | every serde-skipped field on report-reachable types round-trips through `analysis::persist` |
//! | R4 `panic-hygiene` | no `unwrap`/`expect`/`panic!`/`todo!` in crawl/browser/store non-test code |
//! | R5 `journal-format` | `crates/store` journal constants match DESIGN.md §8 |
//! | R6 `lock-order` | no cycles in the may-hold-while-acquiring graph (interprocedural) |
//! | R7 `blocking-under-lock` | no guard live across a transitively blocking call (CFG block-scoped liveness) |
//! | R8 `seed-taint` | RNG seed state flows only from the CLI seed / `PopulationConfig` |
//! | R9 `hot-path-allocation` | no avoidable allocation in functions reachable from the per-visit roots |
//! | R10 `unbounded-growth` | collections on long-lived structs must shrink somewhere |
//! | R11 `swallowed-io-errors` | IO `Result`s are handled or propagated, never discarded |
//!
//! Each rule is suppressible inline with `// lint:allow(rule) — reason`
//! (the reason is mandatory) and adoptable incrementally through a
//! checked-in `lint.baseline` of grandfathered findings that can only
//! ratchet down. See DESIGN.md §10 for the policy.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod callgraph;
pub mod cfg;
pub mod dataflow;
pub mod engine;
pub mod items;
pub mod lexer;
pub mod locks;
pub mod parser;
pub mod rules;
pub mod source;

pub use engine::{
    run, run_with, update_baseline, CacheStats, Options, Report, Status, BASELINE_FILE,
};
pub use rules::{Finding, Rule, Workspace, RULES};
