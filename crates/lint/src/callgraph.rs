//! The workspace call graph: call-site extraction from function bodies,
//! path-based resolution (final path segment + `use`-alias tracking, with
//! a receiver-type hint for method calls), and a generic fact-propagation
//! fixpoint the interprocedural rules (R6–R8) share.
//!
//! Resolution is a deliberate over-approximation: a method call resolves
//! to *every* known method of that name when the receiver type is not
//! hinted, and a call that resolves to nothing is recorded as an
//! [`Unknown`](CallTarget::Unknown) edge rather than dropped — rules stay
//! sound-by-default by treating unknown edges per their own policy
//! (documented in DESIGN.md §10).

use crate::cfg::Cfg;
use crate::lexer::{Token, TokenKind};
use crate::parser::{self, FnDef, ParsedFile};
use crate::source::SourceFile;
use std::collections::BTreeMap;

/// Index of a function in [`Model::fns`].
pub type FnId = usize;

/// What a call site resolves to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallTarget {
    /// Candidate definitions in the workspace (over-approximated: every
    /// plausible match).
    Resolved(Vec<FnId>),
    /// No workspace definition matched (std / vendored / macro).
    Unknown,
}

/// One call or method-call site inside a function body.
#[derive(Debug)]
pub struct CallSite {
    /// Token index of the callee name.
    pub idx: usize,
    /// 1-based line of the callee name.
    pub line: u32,
    /// 1-based column of the callee name.
    pub col: u32,
    /// Final path segment (the called name).
    pub name: String,
    /// Path segments before the name (`a::b::name` → `["a", "b"]`).
    pub qualifier: Vec<String>,
    /// `.name(...)` method call?
    pub method: bool,
    /// For method calls: identifier chain of the receiver, outermost
    /// first (`self.inner.lock()` → `["self", "inner"]`); empty when the
    /// receiver is itself a call chain.
    pub recv: Vec<String>,
    /// Token range of the argument list, exclusive of the parens.
    pub args: (usize, usize),
    /// What the call resolves to.
    pub target: CallTarget,
}

/// The whole-workspace interprocedural model: every parsed function, its
/// call sites, and name-resolution indexes.
pub struct Model {
    /// All function definitions, workspace-wide, in (file, source) order.
    pub fns: Vec<FnDef>,
    /// Call sites per function (indexed by [`FnId`]).
    pub calls: Vec<Vec<CallSite>>,
    /// Per-function control-flow graph (indexed by [`FnId`]), shared by
    /// every dataflow-backed rule so each body is lowered exactly once.
    pub cfgs: Vec<Cfg>,
    /// Per-file parse results (aliases), in file order.
    pub parsed: Vec<ParsedFile>,
}

impl Model {
    /// Parse every file and build the resolved call graph.
    pub fn build(files: &[SourceFile]) -> Model {
        let parsed: Vec<ParsedFile> = files
            .iter()
            .enumerate()
            .map(|(i, f)| parser::parse_file(f, i))
            .collect();
        let mut fns: Vec<FnDef> = Vec::new();
        for p in &parsed {
            fns.extend(p.fns.iter().cloned());
        }

        // Name indexes for resolution.
        let mut by_name: BTreeMap<&str, Vec<FnId>> = BTreeMap::new();
        let mut by_owner_name: BTreeMap<(&str, &str), Vec<FnId>> = BTreeMap::new();
        for (id, f) in fns.iter().enumerate() {
            by_name.entry(&f.name).or_default().push(id);
            if let Some(owner) = &f.owner {
                by_owner_name.entry((owner, &f.name)).or_default().push(id);
            }
        }

        let mut calls = Vec::with_capacity(fns.len());
        for f in &fns {
            let file = &files[f.file];
            let aliases = &parsed[f.file].aliases;
            let mut sites = extract_calls(file, f.body);
            // Innermost-definition-wins: drop sites that belong to a
            // nested fn whose body is strictly inside this one.
            sites.retain(|site| {
                !fns.iter().any(|other| {
                    !std::ptr::eq(other, f)
                        && other.file == f.file
                        && other.body.0 > f.body.0
                        && other.body.1 <= f.body.1
                        && (other.body.0..other.body.1).contains(&site.idx)
                })
            });
            for site in &mut sites {
                site.target = resolve(site, f, aliases, &by_name, &by_owner_name);
            }
            calls.push(sites);
        }
        let cfgs = fns
            .iter()
            .map(|f| {
                let tokens = &files[f.file].tokens;
                Cfg::build(tokens, (f.body.0, f.body.1.min(tokens.len())))
            })
            .collect();
        Model {
            fns,
            calls,
            cfgs,
            parsed,
        }
    }

    /// The function whose body contains token `idx` of file `file`
    /// (innermost definition wins).
    pub fn fn_at(&self, file: usize, idx: usize) -> Option<FnId> {
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, f)| f.file == file && (f.body.0..f.body.1).contains(&idx))
            .max_by_key(|(_, f)| f.body.0)
            .map(|(id, _)| id)
    }

    /// Qualified display name (`Owner::name` / `name`) for reports.
    pub fn display(&self, id: FnId) -> String {
        let f = &self.fns[id];
        match &f.owner {
            Some(owner) => format!("{owner}::{}", f.name),
            None => f.name.clone(),
        }
    }

    /// Resolved call sites of every function calling `callee`, as
    /// `(caller, call-site index)` pairs.
    pub fn callers_of(&self, callee: FnId) -> Vec<(FnId, usize)> {
        let mut out = Vec::new();
        for (caller, sites) in self.calls.iter().enumerate() {
            for (s, site) in sites.iter().enumerate() {
                if let CallTarget::Resolved(ids) = &site.target {
                    if ids.contains(&callee) {
                        out.push((caller, s));
                    }
                }
            }
        }
        out
    }
}

/// Resolve one call site against the workspace indexes.
fn resolve(
    site: &CallSite,
    caller: &FnDef,
    aliases: &[(String, String)],
    by_name: &BTreeMap<&str, Vec<FnId>>,
    by_owner_name: &BTreeMap<(&str, &str), Vec<FnId>>,
) -> CallTarget {
    // `use x as y` — calls through the alias resolve to the original.
    let name = aliases
        .iter()
        .find(|(alias, _)| *alias == site.name)
        .map(|(_, original)| original.as_str())
        .unwrap_or(&site.name);

    if site.method {
        // Receiver-type hint: `self` → the impl owner; a parameter whose
        // declared type names a known owner narrows to that owner. A
        // call-chain receiver (`make().len()`) carries no chain at all
        // and stays Unknown — over-approximating those to every `len`
        // in the workspace drowns real findings in noise.
        let Some(first) = site.recv.first().map(String::as_str) else {
            return CallTarget::Unknown;
        };
        let hint: Option<&str> = if first == "self" {
            caller.owner.as_deref()
        } else {
            caller
                .params
                .iter()
                .find(|p| p.name == first)
                .and_then(|p| {
                    p.type_idents
                        .iter()
                        .find(|ty| by_owner_name.contains_key(&(ty.as_str(), name)))
                        .map(String::as_str)
                })
        };
        if let Some(owner) = hint {
            if let Some(ids) = by_owner_name.get(&(owner, name)) {
                return CallTarget::Resolved(ids.clone());
            }
        }
        // Conservative over-approximation: every method of that name.
        let mut ids: Vec<FnId> = Vec::new();
        for ((_, n), methods) in by_owner_name.iter() {
            if *n == name {
                ids.extend_from_slice(methods);
            }
        }
        return if ids.is_empty() {
            CallTarget::Unknown
        } else {
            CallTarget::Resolved(ids)
        };
    }

    // `Type::assoc(...)` — the last qualifier segment names the owner
    // (`Self` meaning the enclosing impl type). A qualified call whose
    // owner is not a workspace type targets std/vendored code: Unknown,
    // never the same-named fns of unrelated workspace types.
    if let Some(owner) = site.qualifier.last() {
        let owner = if owner == "Self" {
            caller.owner.as_deref().unwrap_or(owner)
        } else {
            owner
        };
        return match by_owner_name.get(&(owner, name)) {
            Some(ids) => CallTarget::Resolved(ids.clone()),
            None => CallTarget::Unknown,
        };
    }
    // Unqualified call: every definition of that name is a candidate —
    // free fns and, inside an impl block, same-named associated fns
    // called without `Self::`.
    match by_name.get(name) {
        Some(ids) => CallTarget::Resolved(ids.clone()),
        None => CallTarget::Unknown,
    }
}

/// Extract call and method-call sites from a body token range.
pub fn extract_calls(file: &SourceFile, body: (usize, usize)) -> Vec<CallSite> {
    const NOT_CALLS: &[&str] = &[
        "if", "while", "for", "match", "return", "loop", "fn", "let", "else", "in", "as", "move",
        "break", "continue", "unsafe", "struct", "enum", "impl", "use", "mod", "where",
    ];
    let tokens = &file.tokens;
    let (start, end) = (body.0, body.1.min(tokens.len()));
    let mut out = Vec::new();
    let mut i = start;
    while i < end {
        let t = &tokens[i];
        if t.kind != TokenKind::Ident || NOT_CALLS.contains(&t.text.as_str()) {
            i += 1;
            continue;
        }
        // `name(` — possibly with a `::<T>` turbofish between.
        let mut open = i + 1;
        if tokens.get(open).is_some_and(|t| t.is_punct(':'))
            && tokens.get(open + 1).is_some_and(|t| t.is_punct(':'))
            && tokens.get(open + 2).is_some_and(|t| t.is_punct('<'))
        {
            let mut angle = 0i32;
            let mut k = open + 2;
            loop {
                match tokens.get(k) {
                    Some(t) if t.is_punct('<') => angle += 1,
                    Some(t) if t.is_punct('>') => {
                        angle -= 1;
                        if angle == 0 {
                            break;
                        }
                    }
                    Some(t) if t.is_punct(';') => break,
                    Some(_) => {}
                    None => break,
                }
                k += 1;
            }
            open = k + 1;
        }
        if !tokens.get(open).is_some_and(|t| t.is_punct('(')) {
            i += 1;
            continue;
        }
        // `name!(…)` macros are not calls; `fn name(` is a definition.
        if i > start
            && (tokens[i - 1].is_punct('!')
                || tokens[i - 1].is_ident("fn")
                || tokens[i - 1].is_punct('#'))
        {
            i += 1;
            continue;
        }
        let close = parser::match_delim(tokens, open);
        let method = i > start && tokens[i - 1].is_punct('.');
        let (qualifier, recv) = if method {
            (Vec::new(), receiver_chain(tokens, start, i - 1))
        } else {
            (qualifier_chain(tokens, start, i), Vec::new())
        };
        out.push(CallSite {
            idx: i,
            line: t.line,
            col: t.col,
            name: t.text.clone(),
            qualifier,
            method,
            recv,
            args: (open + 1, close),
            target: CallTarget::Unknown,
        });
        i += 1;
    }
    out
}

/// Walk the `a::b::` path segments preceding a free call name.
fn qualifier_chain(tokens: &[Token], start: usize, name_idx: usize) -> Vec<String> {
    let mut segs = Vec::new();
    let mut k = name_idx;
    while k >= start + 3
        && tokens[k - 1].is_punct(':')
        && tokens[k - 2].is_punct(':')
        && tokens[k - 3].kind == TokenKind::Ident
    {
        segs.push(tokens[k - 3].text.clone());
        k -= 3;
    }
    segs.reverse();
    segs
}

/// The identifier chain of a method receiver, walking back from the `.`
/// at `dot`: `self.inner.lock()` → `["self", "inner"]`. Indexing
/// (`slots[i]`) is stepped over; a receiver ending in a call chain
/// (`foo().bar()`) yields an empty chain (unknown receiver).
pub(crate) fn receiver_chain(tokens: &[Token], start: usize, dot: usize) -> Vec<String> {
    let mut chain = Vec::new();
    let mut k = dot; // tokens[k] is the `.`
    loop {
        if k == start || k == 0 {
            break;
        }
        let prev = &tokens[k - 1];
        if prev.is_punct(']') {
            // step over an index expression
            let mut depth = 0i32;
            let mut j = k - 1;
            loop {
                if tokens[j].is_punct(']') {
                    depth += 1;
                } else if tokens[j].is_punct('[') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if j == start || j == 0 {
                    break;
                }
                j -= 1;
            }
            k = j;
            continue;
        }
        if prev.is_punct(')') {
            return Vec::new(); // receiver is a call chain — unknown
        }
        if prev.kind == TokenKind::Ident {
            chain.push(prev.text.clone());
            k -= 1;
            // keep walking through `a.b` / `a::b` links
            if k > start
                && k >= 2
                && ((tokens[k - 1].is_punct('.'))
                    || (tokens[k - 1].is_punct(':') && tokens[k - 2].is_punct(':')))
            {
                if tokens[k - 1].is_punct('.') {
                    k -= 1;
                } else {
                    k -= 2;
                }
                continue;
            }
            break;
        }
        break;
    }
    chain.reverse();
    chain
}

/// How a propagated fact reached a function.
#[derive(Debug, Clone)]
pub enum Origin {
    /// The fact holds directly in this function's body.
    Direct {
        /// 1-based line of the witnessing token.
        line: u32,
        /// What the witness is (e.g. the acquired lock or blocking call).
        what: String,
    },
    /// The fact holds in a callee reached from this call site.
    Via {
        /// 1-based line of the forwarding call site.
        line: u32,
        /// Name of the call at the site.
        call: String,
        /// The callee the fact came from.
        callee: FnId,
    },
}

/// Propagate per-function facts up the call graph to a fixpoint: a
/// function has fact `k` if its body witnesses it directly or any
/// resolved callee has it. Unknown edges propagate nothing (documented
/// approximation). Returns, per function, the facts with one witness
/// each — chains are reconstructed by following [`Origin::Via`].
pub fn propagate_facts(
    model: &Model,
    direct: &[Vec<(String, Origin)>],
) -> Vec<BTreeMap<String, Origin>> {
    let mut facts: Vec<BTreeMap<String, Origin>> =
        direct.iter().map(|v| v.iter().cloned().collect()).collect();
    loop {
        let mut changed = false;
        for id in 0..model.fns.len() {
            for site in &model.calls[id] {
                let CallTarget::Resolved(callees) = &site.target else {
                    continue;
                };
                for &callee in callees {
                    if callee == id {
                        continue;
                    }
                    let keys: Vec<String> = facts[callee].keys().cloned().collect();
                    for k in keys {
                        facts[id].entry(k).or_insert_with(|| {
                            changed = true;
                            Origin::Via {
                                line: site.line,
                                call: site.name.clone(),
                                callee,
                            }
                        });
                    }
                }
            }
        }
        if !changed {
            return facts;
        }
    }
}

/// Render the witness chain for fact `key` starting at `id`:
/// `held in f (a.rs:3) → via g() (a.rs:4) → acquired in h (b.rs:9)`.
pub fn witness_chain(
    model: &Model,
    files: &[SourceFile],
    facts: &[BTreeMap<String, Origin>],
    id: FnId,
    key: &str,
) -> String {
    let mut parts = Vec::new();
    let mut cur = id;
    let mut guard = 0usize;
    loop {
        guard += 1;
        if guard > 64 {
            break; // cycles in Via links cannot happen, but stay bounded
        }
        let path = |f: FnId| files[model.fns[f].file].path.clone();
        match facts[cur].get(key) {
            Some(Origin::Direct { line, what }) => {
                parts.push(format!(
                    "{} in `{}` ({}:{})",
                    what,
                    model.display(cur),
                    path(cur),
                    line
                ));
                break;
            }
            Some(Origin::Via { line, call, callee }) => {
                parts.push(format!(
                    "via `{}()` in `{}` ({}:{})",
                    call,
                    model.display(cur),
                    path(cur),
                    line
                ));
                cur = *callee;
            }
            None => break,
        }
    }
    parts.join(" → ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn model(src: &str) -> (Model, Vec<SourceFile>) {
        let files = vec![SourceFile::parse("test.rs".to_string(), src, &[])];
        (Model::build(&files), files)
    }

    fn fn_id(m: &Model, name: &str) -> FnId {
        m.fns.iter().position(|f| f.name == name).unwrap()
    }

    #[test]
    fn free_calls_resolve_and_unknowns_are_recorded() {
        let (m, _) = model("fn a() { b(); missing(); }\nfn b() {}");
        let a = fn_id(&m, "a");
        let b = fn_id(&m, "b");
        let targets: Vec<(&str, &CallTarget)> = m.calls[a]
            .iter()
            .map(|s| (s.name.as_str(), &s.target))
            .collect();
        assert_eq!(targets.len(), 2);
        assert_eq!(*targets[0].1, CallTarget::Resolved(vec![b]));
        assert_eq!(*targets[1].1, CallTarget::Unknown);
    }

    #[test]
    fn method_calls_resolve_by_receiver_hint() {
        let src = "struct A; struct B;\n\
                   impl A { fn go(&self) {} }\n\
                   impl B { fn go(&self) {} }\n\
                   fn use_a(a: &A) { a.go(); }";
        let (m, _) = model(src);
        let use_a = fn_id(&m, "use_a");
        let a_go = m
            .fns
            .iter()
            .position(|f| f.name == "go" && f.owner.as_deref() == Some("A"))
            .unwrap();
        assert_eq!(m.calls[use_a][0].target, CallTarget::Resolved(vec![a_go]));
    }

    #[test]
    fn unhinted_method_calls_over_approximate_to_all_candidates() {
        let src = "struct A; struct B;\n\
                   impl A { fn go(&self) {} }\n\
                   impl B { fn go(&self) {} }\n\
                   fn any(x: &Unknown) { x.go(); }";
        let (m, _) = model(src);
        let any = fn_id(&m, "any");
        match &m.calls[any][0].target {
            CallTarget::Resolved(ids) => assert_eq!(ids.len(), 2),
            other => panic!("expected over-approximated resolution, got {other:?}"),
        }
    }

    #[test]
    fn use_alias_resolves_to_the_original() {
        let src = "use helpers::real as fake;\nfn a() { fake(); }\nfn real() {}";
        let (m, _) = model(src);
        let a = fn_id(&m, "a");
        let real = fn_id(&m, "real");
        assert_eq!(m.calls[a][0].target, CallTarget::Resolved(vec![real]));
    }

    #[test]
    fn receiver_chains_walk_fields_and_indexing() {
        let src = "fn f(&self) { self.inner.lock(); slots[i].lock(); make().lock(); }";
        let (m, _) = model(src);
        let f = fn_id(&m, "f");
        let recvs: Vec<Vec<String>> = m.calls[f]
            .iter()
            .filter(|s| s.name == "lock")
            .map(|s| s.recv.clone())
            .collect();
        assert_eq!(recvs[0], ["self", "inner"]);
        assert_eq!(recvs[1], ["slots"]);
        assert!(recvs[2].is_empty());
    }

    #[test]
    fn facts_propagate_transitively_with_witness_chains() {
        let src = "fn top() { mid(); }\nfn mid() { leaf(); }\nfn leaf() {}";
        let (m, files) = model(src);
        let leaf = fn_id(&m, "leaf");
        let top = fn_id(&m, "top");
        let mut direct: Vec<Vec<(String, Origin)>> = vec![Vec::new(); m.fns.len()];
        direct[leaf].push((
            "blocks".to_string(),
            Origin::Direct {
                line: 3,
                what: "calls `recv`".to_string(),
            },
        ));
        let facts = propagate_facts(&m, &direct);
        assert!(facts[top].contains_key("blocks"));
        let chain = witness_chain(&m, &files, &facts, top, "blocks");
        assert!(chain.contains("`mid()`"), "chain: {chain}");
        assert!(chain.contains("calls `recv`"), "chain: {chain}");
    }
}
