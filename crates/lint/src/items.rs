//! A tolerant mini-parser over the token stream for the item shapes the
//! rules care about: `#[derive(Serialize)]` structs/enums (their fields,
//! serde attributes, and field-type identifiers) and named `fn` bodies.
//!
//! It is deliberately not a Rust parser — it brace-matches and pattern
//! matches just enough structure, and silently skips anything it does not
//! understand (the compiler owns rejecting malformed code; the linter
//! must only never misattribute).

use crate::lexer::{Token, TokenKind};
use crate::source::SourceFile;

/// A struct or enum that derives `Serialize`.
#[derive(Debug)]
pub struct SerializeItem {
    /// Type name.
    pub name: String,
    /// Line the `struct` / `enum` keyword is on.
    pub line: u32,
    /// Token-index range of the item body (inside the braces/parens),
    /// empty for unit structs.
    pub body: (usize, usize),
    /// Named fields (struct fields; enum variant payloads contribute
    /// anonymous fields with an empty name).
    pub fields: Vec<Field>,
}

/// One field of a [`SerializeItem`].
#[derive(Debug)]
pub struct Field {
    /// Field name (empty for tuple/variant payload positions).
    pub name: String,
    /// Line the field name (or its type, when unnamed) is on.
    pub line: u32,
    /// The field carries `#[serde(skip…)]` — `skip`, `skip_serializing`,
    /// or `skip_serializing_if`.
    pub serde_skip: bool,
    /// Identifier tokens appearing in the field's type.
    pub type_idents: Vec<String>,
}

/// Collect every `#[derive(…Serialize…)]` struct/enum in `file`.
pub fn serialize_items(file: &SourceFile) -> Vec<SerializeItem> {
    let tokens = &file.tokens;
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if !(tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('['))) {
            i += 1;
            continue;
        }
        let Some((content, end)) = attr_span(tokens, i) else {
            break;
        };
        let attr = &tokens[content..end];
        let derives_serialize = attr.first().is_some_and(|t| t.is_ident("derive"))
            && attr.iter().any(|t| t.is_ident("Serialize"));
        i = end + 1;
        if !derives_serialize {
            continue;
        }
        // Skip further attributes (e.g. #[serde(...)] on the type itself).
        while i < tokens.len()
            && tokens[i].is_punct('#')
            && tokens.get(i + 1).is_some_and(|t| t.is_punct('['))
        {
            match attr_span(tokens, i) {
                Some((_, end)) => i = end + 1,
                None => return out,
            }
        }
        // Expect (pub)? (struct|enum) Name … body.
        let mut j = i;
        while j < tokens.len() && !is_item_keyword(&tokens[j]) {
            j += 1;
            // Derives apply to the very next item; give up after a few
            // tokens so a stray derive cannot swallow the file.
            if j - i > 4 {
                break;
            }
        }
        let Some(kw) = tokens.get(j).filter(|t| is_item_keyword(t)) else {
            continue;
        };
        let is_struct = kw.is_ident("struct");
        let Some(name_tok) = tokens.get(j + 1).filter(|t| t.kind == TokenKind::Ident) else {
            continue;
        };
        // Find the body: first top-level `{` or `(`; a `;` first means a
        // unit struct.
        let mut k = j + 2;
        let mut angle = 0i32;
        let mut body = None;
        while k < tokens.len() {
            let t = &tokens[k];
            if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>') {
                angle -= 1;
            } else if angle <= 0 && t.is_punct(';') {
                break;
            } else if angle <= 0 && (t.is_punct('{') || t.is_punct('(')) {
                let close = match_delim(tokens, k);
                body = Some((k + 1, close));
                break;
            }
            k += 1;
        }
        let (body_start, body_end) = body.unwrap_or((k, k));
        let fields = if is_struct {
            parse_fields(tokens, body_start, body_end)
        } else {
            parse_enum_fields(tokens, body_start, body_end)
        };
        out.push(SerializeItem {
            name: name_tok.text.clone(),
            line: kw.line,
            body: (body_start, body_end),
            fields,
        });
        i = body_end.max(i) + 1;
    }
    out
}

/// Parse named fields of a brace body: `[attrs] [pub(..)] name: Type,`.
fn parse_fields(tokens: &[Token], start: usize, end: usize) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut i = start;
    while i < end {
        // Attributes before the field.
        let mut serde_skip = false;
        while i < end
            && tokens[i].is_punct('#')
            && tokens.get(i + 1).is_some_and(|t| t.is_punct('['))
        {
            let Some((content, attr_end)) = attr_span(tokens, i) else {
                return fields;
            };
            let attr = &tokens[content..attr_end.min(end)];
            if attr.first().is_some_and(|t| t.is_ident("serde"))
                && attr
                    .iter()
                    .any(|t| t.kind == TokenKind::Ident && t.text.starts_with("skip"))
            {
                serde_skip = true;
            }
            i = attr_end + 1;
        }
        // Visibility.
        if i < end && tokens[i].is_ident("pub") {
            i += 1;
            if i < end && tokens[i].is_punct('(') {
                i = match_delim(tokens, i) + 1;
            }
        }
        // name : Type ,
        let Some(name_tok) = tokens.get(i).filter(|t| t.kind == TokenKind::Ident) else {
            break;
        };
        if !tokens.get(i + 1).is_some_and(|t| t.is_punct(':')) {
            break;
        }
        let name = name_tok.text.clone();
        let line = name_tok.line;
        let mut j = i + 2;
        let mut depth = 0i32;
        let mut type_idents = Vec::new();
        while j < end {
            let t = &tokens[j];
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') || t.is_punct('<') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') || t.is_punct('>') {
                depth -= 1;
            } else if depth <= 0 && t.is_punct(',') {
                break;
            } else if t.kind == TokenKind::Ident {
                type_idents.push(t.text.clone());
            }
            j += 1;
        }
        fields.push(Field {
            name,
            line,
            serde_skip,
            type_idents,
        });
        i = j + 1;
    }
    fields
}

/// Enum bodies: every identifier inside a variant's payload counts as a
/// type identifier (reachability follows them); serde-skip on variants is
/// out of scope.
fn parse_enum_fields(tokens: &[Token], start: usize, end: usize) -> Vec<Field> {
    let mut i = start;
    let mut fields = Vec::new();
    while i < end {
        // Variant name, optionally followed by a payload.
        while i < end
            && tokens[i].is_punct('#')
            && tokens.get(i + 1).is_some_and(|t| t.is_punct('['))
        {
            match attr_span(tokens, i) {
                Some((_, attr_end)) => i = attr_end + 1,
                None => return fields,
            }
        }
        let Some(variant) = tokens.get(i).filter(|t| t.kind == TokenKind::Ident) else {
            break;
        };
        let line = variant.line;
        i += 1;
        let mut type_idents = Vec::new();
        if i < end && (tokens[i].is_punct('(') || tokens[i].is_punct('{')) {
            let close = match_delim(tokens, i);
            for t in &tokens[i + 1..close.min(end)] {
                if t.kind == TokenKind::Ident {
                    type_idents.push(t.text.clone());
                }
            }
            i = close + 1;
        }
        // Skip discriminant `= expr` and the trailing comma.
        while i < end && !tokens[i].is_punct(',') {
            i += 1;
        }
        i += 1;
        fields.push(Field {
            name: String::new(),
            line,
            serde_skip: false,
            type_idents,
        });
    }
    fields
}

/// Token-index range (exclusive of braces) of the body of `fn name`, or
/// `None` when the file has no such function.
pub fn fn_body(file: &SourceFile, name: &str) -> Option<(usize, usize)> {
    let tokens = &file.tokens;
    let mut i = 0;
    while i + 1 < tokens.len() {
        if tokens[i].is_ident("fn") && tokens[i + 1].is_ident(name) {
            let mut j = i + 2;
            while j < tokens.len() && !tokens[j].is_punct('{') {
                if tokens[j].is_punct(';') {
                    return None; // a trait signature, not a body
                }
                j += 1;
            }
            if j < tokens.len() {
                let close = match_delim(tokens, j);
                return Some((j + 1, close));
            }
            return None;
        }
        i += 1;
    }
    None
}

/// Do any of the tokens in `range` equal identifier `ident`?
pub fn range_has_ident(file: &SourceFile, range: (usize, usize), ident: &str) -> bool {
    file.tokens[range.0..range.1.min(file.tokens.len())]
        .iter()
        .any(|t| t.is_ident(ident))
}

fn is_item_keyword(t: &Token) -> bool {
    t.is_ident("struct") || t.is_ident("enum")
}

/// Given `tokens[open]` == `#` and `[`, the attribute content range and
/// closing-`]` index.
fn attr_span(tokens: &[Token], open: usize) -> Option<(usize, usize)> {
    let mut depth = 0i32;
    let mut k = open + 1;
    while k < tokens.len() {
        if tokens[k].is_punct('[') {
            depth += 1;
        } else if tokens[k].is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return Some((open + 2, k));
            }
        }
        k += 1;
    }
    None
}

/// Index of the delimiter matching the one at `open` (`{`/`(`/`[`).
fn match_delim(tokens: &[Token], open: usize) -> usize {
    let (inc, dec) = match tokens[open].text.as_str() {
        "(" => ('(', ')'),
        "[" => ('[', ']'),
        _ => ('{', '}'),
    };
    let mut depth = 0i32;
    for (k, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct(inc) {
            depth += 1;
        } else if t.is_punct(dec) {
            depth -= 1;
            if depth == 0 {
                return k;
            }
        }
    }
    tokens.len().saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn parse(src: &str) -> SourceFile {
        SourceFile::parse("test.rs".to_string(), src, &[])
    }

    #[test]
    fn serialize_struct_fields_and_skip_attrs_are_parsed() {
        let src = "#[derive(Debug, Clone, Serialize)]\n\
                   pub struct Report {\n\
                       pub rows: Vec<Row>,\n\
                       #[serde(skip)]\n\
                       pub diag: Option<Diag>,\n\
                       #[serde(skip_serializing_if = \"Option::is_none\")]\n\
                       pub extra: Option<Extra>,\n\
                   }\n\
                   struct NotSerialized { m: HashMap<u8, u8> }";
        let f = parse(src);
        let items = serialize_items(&f);
        assert_eq!(items.len(), 1);
        let item = &items[0];
        assert_eq!(item.name, "Report");
        assert_eq!(item.fields.len(), 3);
        assert!(!item.fields[0].serde_skip);
        assert!(item.fields[1].serde_skip);
        assert!(item.fields[2].serde_skip);
        assert!(item.fields[0].type_idents.contains(&"Row".to_string()));
        assert!(item.fields[1].type_idents.contains(&"Diag".to_string()));
    }

    #[test]
    fn serialize_enum_variant_payloads_contribute_type_idents() {
        let src = "#[derive(Serialize)]\nenum Kind { A, B(Inner), C { x: Deep } }";
        let f = parse(src);
        let items = serialize_items(&f);
        assert_eq!(items.len(), 1);
        let idents: Vec<&String> = items[0]
            .fields
            .iter()
            .flat_map(|v| v.type_idents.iter())
            .collect();
        assert!(idents.iter().any(|s| *s == "Inner"));
        assert!(idents.iter().any(|s| *s == "Deep"));
    }

    #[test]
    fn fn_body_extraction_brace_matches() {
        let src = "fn other() { a(); }\nfn target(x: u8) -> u8 { if x > 0 { inner(); } 3 }";
        let f = parse(src);
        let body = fn_body(&f, "target").unwrap();
        assert!(range_has_ident(&f, body, "inner"));
        assert!(!range_has_ident(&f, body, "a"));
        assert!(fn_body(&f, "missing").is_none());
    }
}
