//! Property-based tests for the population generator and its servers.

use httpsim::{Network, Region, Request, Url};
use proptest::prelude::*;
use std::sync::Arc;
use webgen::{
    domain_name, format_price, plan_trackers, planned_cookie_total, server, stable_hash,
    stable_shuffle, Currency, Period, Population, PopulationConfig, PriceSpec,
};

proptest! {
    /// Domain names are unique per (language, tld) and always parse as
    /// registrable domains.
    #[test]
    fn domain_names_well_formed(idx in 0usize..10_000) {
        for lang in [langid::Language::German, langid::Language::English] {
            let d = domain_name(lang, "de", idx);
            prop_assert!(Url::parse(&d).is_ok());
            prop_assert_eq!(httpsim::registrable_domain(&d), Some(d.as_str()));
            // Injective per index within the same pool.
            if idx > 0 {
                prop_assert_ne!(d, domain_name(lang, "de", idx - 1));
            }
        }
    }

    /// stable_hash and stable_shuffle are pure functions of their inputs.
    #[test]
    fn determinism_primitives(key in "[a-z0-9/]{1,30}", n in 1usize..50) {
        prop_assert_eq!(stable_hash(&key), stable_hash(&key));
        let mut a: Vec<usize> = (0..n).collect();
        let mut b: Vec<usize> = (0..n).collect();
        stable_shuffle(&mut a, &key);
        stable_shuffle(&mut b, &key);
        prop_assert_eq!(&a, &b);
        // Shuffle is a permutation.
        let mut sorted = a.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..n).collect::<Vec<_>>());
    }

    /// Tracker plans always hit their exact cookie budget, for any budget.
    #[test]
    fn tracker_plan_budget_exact(site in "[a-z]{3,10}", visit in 0u64..20, total in 0u32..180) {
        let plans = plan_trackers(&format!("{site}.de"), visit, total);
        prop_assert_eq!(planned_cookie_total(&plans), total);
        // Every host is a listed tracker (so every planned cookie counts as
        // tracking under the justdomains classifier).
        let db = blocklist::TrackerDb::justdomains();
        for p in &plans {
            prop_assert!(db.is_tracking_domain(p.host));
            if let Some(s) = p.sync_with {
                prop_assert!(db.is_tracking_domain(s));
            }
        }
    }

    /// Every price the generator can render is parsed back by the
    /// bannerclick extractor to the same monthly EUR value.
    #[test]
    fn price_render_extract_roundtrip(
        cents in 99u32..5000,
        yearly in any::<bool>(),
        cur in 0usize..4,
        lang_idx in 0usize..8,
    ) {
        let currency = [Currency::Eur, Currency::Usd, Currency::Gbp, Currency::Aud][cur];
        let period = if yearly { Period::Year } else { Period::Month };
        let spec = PriceSpec { amount_cents: cents, currency, period };
        let lang = langid::Language::ALL[lang_idx];
        let text = format!(
            "Abo: {} {}",
            format_price(lang, &spec),
            webgen::period_phrase(lang, period)
        );
        let got = bannerclick::subscription_price(&text)
            .ok_or_else(|| TestCaseError::fail(format!("no price in {text:?}")))?;
        let want = spec.monthly_eur();
        prop_assert!(
            (got.monthly_eur - want).abs() < 0.02,
            "{:?}: got {} want {}",
            text, got.monthly_eur, want
        );
    }
}

#[test]
fn every_tiny_site_page_is_parseable_and_self_consistent() {
    let pop = Arc::new(Population::generate(PopulationConfig::tiny()));
    let net = Network::new();
    server::install(Arc::clone(&pop), &net);
    for domain in pop.merged_targets() {
        let url = Url::parse(&domain).unwrap();
        let resp = net.dispatch(&Request::navigation(url, Region::Germany));
        assert_eq!(resp.status, 200, "{domain}");
        let doc = webdom::parse(&resp.body_text());
        // Serialization round-trips for every generated page.
        let again = webdom::parse(&doc.to_html());
        assert_eq!(doc.to_html(), again.to_html(), "{domain} round-trip");
        // Pages have a body and a title mentioning the domain.
        assert!(doc.body().is_some(), "{domain}");
        assert!(doc.visible_text(doc.root()).len() > 50, "{domain}");
    }
}

#[test]
fn population_scales_are_consistent() {
    // The same roster strata appear at every scale; counts shrink
    // monotonically.
    let tiny = Population::generate(PopulationConfig::tiny());
    let small = Population::generate(PopulationConfig::small());
    assert!(tiny.ground_truth_walls().len() < small.ground_truth_walls().len());
    assert!(tiny.merged_targets().len() < small.merged_targets().len());
    for pop in [&tiny, &small] {
        // Walls never exceed targets; SMP partner lists are disjoint.
        let cp: std::collections::HashSet<_> =
            pop.smp_partners(webgen::Smp::Contentpass).iter().collect();
        let fc: std::collections::HashSet<_> =
            pop.smp_partners(webgen::Smp::Freechoice).iter().collect();
        assert!(cp.is_disjoint(&fc), "a site has one SMP at most");
    }
}

#[test]
fn dead_domains_are_unreachable_and_calibration_unaffected() {
    let mut cfg = PopulationConfig::tiny();
    cfg.unreachable_per_mille = 100; // 10% of banner-less filler sites die
    let pop = Arc::new(Population::generate(cfg.clone()));
    assert!(pop.dead_count() > 0, "some sites must be dead");
    let net = Network::new();
    server::install(Arc::clone(&pop), &net);
    // Dead domains fail like lapsed registrations.
    let dead = pop.sites().iter().find(|s| pop.is_dead(&s.domain)).unwrap();
    let resp = net.dispatch(&Request::navigation(
        Url::parse(&dead.domain).unwrap(),
        Region::Germany,
    ));
    assert_eq!(resp.status, 0, "connection failure");
    // The calibrated populations (walls, decoys, banner sites) never die.
    for s in pop.ground_truth_walls() {
        assert!(!pop.is_dead(&s.domain), "{}", s.domain);
    }
    for s in pop.decoys() {
        assert!(!pop.is_dead(&s.domain));
    }
    // And the paper-scale config keeps everything reachable (the 45,222
    // targets are the *reachable* union by construction).
    assert_eq!(PopulationConfig::paper().unreachable_per_mille, 0);
}
