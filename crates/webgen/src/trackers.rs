//! Tracker and third-party ecosystems of the synthetic web.
//!
//! Two pools exist, mirroring reality's split that makes the justdomains
//! classification meaningful (§4.3):
//!
//! * the **listed tracker pool** — exactly the justdomains entries from the
//!   `blocklist` crate; cookies from these hosts count as tracking cookies;
//! * the **benign third-party pool** — CDNs, font and widget hosts that set
//!   cookies but are *not* on the tracker list; their cookies are
//!   third-party yet non-tracking.

use crate::names::rng_for;
use rand::Rng;

/// Hosts that set third-party cookies but are not on the justdomains list.
pub const BENIGN_THIRD_PARTIES: &[&str] = &[
    "cdn.webstatichub.net",
    "assets.sitecloud.io",
    "fonts.typeserve.org",
    "static.pagespeedy.com",
    "media.imagefarm.net",
    "embed.videowidgets.io",
    "api.weatherbox.net",
    "comments.discusso.org",
    "maps.geotiles.io",
    "search.sitefinder.net",
    "newsletter.mailblast.io",
    "cdn.scriptmirror.org",
    "player.audiocast.net",
    "badges.sharebuttons.io",
    "quiz.pollmaker.org",
];

/// The listed tracker pool (re-exported from the blocklist data so the
/// generator and the classifier can never disagree).
pub(crate) fn tracker_pool() -> &'static [&'static str] {
    blocklist::data::JUSTDOMAINS
}

/// One tracker script a page embeds for a given visit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrackerPlan {
    /// Host serving the tracker script.
    pub host: &'static str,
    /// Cookies this tracker sets on this visit.
    pub cookies: u32,
    /// Cookie-name offset: lets one host be embedded twice in very heavy
    /// plans without its second batch replacing the first (jar keys are
    /// (name, domain, path)).
    pub name_offset: u32,
    /// Cookie-sync partner: after setting its cookies the tracker redirects
    /// to this host, which sets `1` more cookie (classic cookie syncing).
    pub sync_with: Option<&'static str>,
}

/// Plan which trackers a page visit embeds so that the total number of
/// tracker-set cookies is exactly `total_cookies`, spread over a plausible
/// number of distinct trackers. Deterministic in `(site, visit)`.
// lint:allow(r9) — the simulated origin renders page HTML per request — the String is the payload itself; buffer reuse is scoped in ROADMAP item 1
pub fn plan_trackers(site: &str, visit: u64, total_cookies: u32) -> Vec<TrackerPlan> {
    if total_cookies == 0 {
        return Vec::new();
    }
    let pool = tracker_pool();
    let mut rng = rng_for(&format!("trackers/{site}"), visit);
    // Each tracker sets 2–5 cookies; pick enough trackers to cover.
    let mut plans: Vec<TrackerPlan> = Vec::new();
    let mut remaining = total_cookies;
    // Stable per-site tracker subset: rotate the pool by a site-derived
    // offset so different sites use different (but overlapping) trackers.
    let offset = rng.random_range(0..pool.len());
    let mut per_host_offset: std::collections::HashMap<&str, u32> =
        std::collections::HashMap::new();
    let mut idx = 0;
    while remaining > 0 {
        let host = pool[(offset + idx) % pool.len()];
        idx += 1;
        let per = rng.random_range(2..=5).min(remaining);
        // ~20% of trackers cookie-sync with the next pool entry. The sync
        // partner sets one of the budgeted cookies.
        let sync = remaining > per && rng.random_bool(0.2);
        let sync_with = sync.then(|| pool[(offset + idx) % pool.len()]);
        remaining -= per;
        if sync_with.is_some() {
            remaining = remaining.saturating_sub(1);
        }
        // Extremely heavy plans wrap around the pool; the per-host name
        // offset keeps every cookie distinct under jar replacement.
        let slot = per_host_offset.entry(host).or_insert(0);
        let name_offset = *slot;
        *slot += per;
        plans.push(TrackerPlan {
            host,
            cookies: per,
            name_offset,
            sync_with,
        });
    }
    plans
}

/// Plan the benign third parties for a visit: each sets exactly one cookie.
// lint:allow(r9) — the simulated origin renders page HTML per request — the String is the payload itself; buffer reuse is scoped in ROADMAP item 1
pub fn plan_benign(site: &str, visit: u64, total_cookies: u32) -> Vec<&'static str> {
    let mut rng = rng_for(&format!("benign/{site}"), visit);
    let offset = rng.random_range(0..BENIGN_THIRD_PARTIES.len());
    (0..total_cookies as usize)
        .map(|i| BENIGN_THIRD_PARTIES[(offset + i) % BENIGN_THIRD_PARTIES.len()])
        .collect()
}

/// Total cookies a tracker plan will set (including sync-partner cookies).
pub fn planned_cookie_total(plans: &[TrackerPlan]) -> u32 {
    plans
        .iter()
        .map(|p| p.cookies + u32::from(p.sync_with.is_some()))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pools_disjoint() {
        let trackers: std::collections::HashSet<_> = tracker_pool().iter().collect();
        for b in BENIGN_THIRD_PARTIES {
            let rd = httpsim::registrable_domain(b).unwrap();
            assert!(!trackers.contains(&rd), "{b} must not be a listed tracker");
        }
    }

    #[test]
    fn plan_hits_exact_total() {
        for total in [1u32, 3, 10, 43, 70, 120] {
            let plans = plan_trackers("zeitung.de", 0, total);
            assert_eq!(planned_cookie_total(&plans), total, "total {total}");
        }
        assert!(plan_trackers("zeitung.de", 0, 0).is_empty());
    }

    #[test]
    fn plan_deterministic_per_visit() {
        let a = plan_trackers("site.de", 1, 43);
        let b = plan_trackers("site.de", 1, 43);
        assert_eq!(a, b);
        let c = plan_trackers("site.de", 2, 43);
        assert_ne!(a, c, "different visit ⇒ different plan");
    }

    #[test]
    fn different_sites_use_different_trackers() {
        let a: Vec<_> = plan_trackers("alpha.de", 0, 20)
            .iter()
            .map(|p| p.host)
            .collect();
        let b: Vec<_> = plan_trackers("beta.de", 0, 20)
            .iter()
            .map(|p| p.host)
            .collect();
        assert_ne!(a, b);
    }

    #[test]
    fn benign_plan_sizes() {
        assert_eq!(plan_benign("x.de", 0, 7).len(), 7);
        assert!(plan_benign("x.de", 0, 0).is_empty());
        // All hosts come from the benign pool.
        for h in plan_benign("x.de", 3, 30) {
            assert!(BENIGN_THIRD_PARTIES.contains(&h));
        }
    }

    #[test]
    fn heavy_plans_have_many_trackers() {
        let plans = plan_trackers("heavy.de", 0, 100);
        assert!(
            plans.len() >= 15,
            "100 cookies need many trackers: {}",
            plans.len()
        );
        let syncs = plans.iter().filter(|p| p.sync_with.is_some()).count();
        assert!(syncs >= 1, "cookie syncing should occur in large plans");
    }
}
