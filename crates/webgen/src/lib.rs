//! # webgen — the calibrated synthetic web population
//!
//! The paper crawls 45,222 real websites from eight vantage points. This
//! crate is the substitute for that live universe: a deterministic
//! generator producing, from a single [`PopulationConfig`], the complete
//! measurement substrate —
//!
//! * seven CrUX-style country toplists whose union at paper scale is
//!   exactly 45,222 unique domains ([`Population::merged_targets`]),
//! * the calibrated roster of 280 cookiewall sites matching every marginal
//!   the paper publishes (toplists, TLDs, languages, embeddings, serving
//!   infrastructure, SMP membership, geographic targeting, prices),
//! * five decoy paywalls that trap the word classifier (the 98.2%
//!   precision figure),
//! * the off-list partner sites of the two Subscription Management
//!   Platforms (contentpass-style: 219 total; freechoice-style: 167),
//! * a filler population of regular-banner and banner-less sites with
//!   realistic cookie behaviour,
//! * and the [`server`] module that mounts all of it onto an
//!   [`httpsim::Network`] as geo-aware, consent-aware origin servers.
//!
//! The ground truth ([`SiteSpec`]) is the oracle the analysis crate
//! validates detections against; the measurement pipeline itself only ever
//! sees HTTP responses and rendered HTML.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod content;
mod names;
mod population;
mod roster;
pub mod server;
mod spec;
mod trackers;

pub use content::{
    accept_label, adblock_message, banner_text, body_sentences, decoy_paywall_text, format_price,
    period_phrase, reject_label, settings_label, subscribe_label, wall_text,
};
pub use names::{domain_name, rng_for, stable_hash, stable_shuffle};
pub use population::{Population, PopulationConfig, Toplist};
pub use roster::{
    paper_roster, scaled_roster, DecoyAssignment, WallAssignment, WallClass, WallGroup,
};
pub use spec::{
    BannerKind, BannerSpec, Cmp, CookieCounts, CookieProfile, CookiewallSpec, Country, Currency,
    Embedding, Period, PriceSpec, RankBucket, Serving, SiteSpec, Smp, ToplistEntry, Visibility,
};
pub use trackers::{
    plan_benign, plan_trackers, planned_cookie_total, TrackerPlan, BENIGN_THIRD_PARTIES,
};
