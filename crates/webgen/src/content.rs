//! Language-specific page content: body prose, banner and cookiewall copy,
//! button labels, and price formatting.
//!
//! The texts here are what the measurement pipeline actually gets to read —
//! the language detector labels sites from this prose, and the cookiewall
//! classifier matches its word corpus against this banner copy. They are
//! intentionally distinct sentences from the `langid` training corpora.

use crate::spec::{Currency, Period, PriceSpec};
use langid::Language;

/// Body paragraphs per language. Sites cycle through these by a
/// domain-derived offset, so different sites show different (but same-
/// language) text.
pub fn body_sentences(lang: Language) -> &'static [&'static str] {
    match lang {
        Language::German => &[
            "Am Dienstag entschied der Stadtrat über die Sanierung der alten Brücke, die seit Jahren gesperrt ist.",
            "Die Feuerwehr rückte in der Nacht zu einem Brand in einem leerstehenden Lagerhaus aus, verletzt wurde niemand.",
            "Im Interview spricht die Trainerin über den Aufstieg, die kommende Saison und den Druck im Verein.",
            "Nach dem Sturm räumten viele Freiwillige die umgestürzten Bäume von den Wegen im Stadtpark.",
            "Der neue Fahrplan bringt mehr Verbindungen am Wochenende, allerdings steigen auch die Preise leicht.",
            "Forschende der Hochschule stellten ein Verfahren vor, das Wärme aus Abwasser zurückgewinnt.",
            "Die Ausstellung im Museum zeigt Fotografien aus hundert Jahren Stadtgeschichte und läuft bis Oktober.",
            "Beim Wochenmarkt gilt ab sofort ein neues Konzept mit mehr regionalen Ständen und längeren Öffnungszeiten.",
        ],
        Language::English => &[
            "On Tuesday the council voted to refurbish the old bridge, which has been closed for years.",
            "Firefighters were called to a blaze in an empty warehouse overnight; nobody was hurt.",
            "In an interview the coach discusses promotion, the coming season and the pressure at the club.",
            "After the storm, volunteers cleared fallen trees from the paths in the city park.",
            "The new timetable adds weekend services, although fares will rise slightly as well.",
            "University researchers presented a process that recovers heat from waste water.",
            "The museum exhibition shows a century of city photography and runs until October.",
            "The weekly market moves to a new format with more regional stalls and longer hours.",
        ],
        Language::Italian => &[
            "Martedì il consiglio comunale ha approvato il restauro del vecchio ponte, chiuso da anni.",
            "I vigili del fuoco sono intervenuti nella notte per un incendio in un magazzino vuoto, nessun ferito.",
            "Nell'intervista l'allenatrice parla della promozione, della prossima stagione e della pressione nel club.",
            "Dopo la tempesta molti volontari hanno liberato i sentieri del parco dagli alberi caduti.",
            "Il nuovo orario aggiunge corse nel fine settimana, anche se i biglietti aumenteranno leggermente.",
            "I ricercatori dell'università hanno presentato un processo che recupera calore dalle acque reflue.",
            "La mostra al museo racconta cento anni di storia della città e resterà aperta fino a ottobre.",
        ],
        Language::Swedish => &[
            "På tisdagen beslutade kommunfullmäktige att renovera den gamla bron som varit avstängd i flera år.",
            "Räddningstjänsten ryckte ut till en brand i ett tomt lagerhus under natten, ingen skadades.",
            "I intervjun berättar tränaren om uppflyttningen, den kommande säsongen och pressen i klubben.",
            "Efter stormen röjde frivilliga bort fallna träd från gångvägarna i stadsparken.",
            "Den nya tidtabellen ger fler avgångar på helgerna, samtidigt höjs biljettpriserna något.",
            "Forskare vid högskolan presenterade en metod som återvinner värme ur avloppsvatten.",
        ],
        Language::French => &[
            "Mardi, le conseil municipal a voté la rénovation du vieux pont, fermé depuis des années.",
            "Les pompiers sont intervenus dans la nuit pour un incendie dans un entrepôt vide, personne n'a été blessé.",
            "Dans un entretien, l'entraîneuse évoque la montée, la saison à venir et la pression au club.",
            "Après la tempête, des bénévoles ont dégagé les arbres tombés sur les allées du parc municipal.",
            "Le nouvel horaire ajoute des liaisons le week-end, même si les tarifs augmentent légèrement.",
        ],
        Language::Portuguese => &[
            "Na terça-feira, a câmara aprovou a reabilitação da ponte antiga, fechada há anos.",
            "Os bombeiros foram chamados durante a noite para um incêndio num armazém vazio; ninguém ficou ferido.",
            "Na entrevista, a treinadora fala da subida, da próxima época e da pressão no clube.",
            "Depois da tempestade, voluntários retiraram as árvores caídas dos caminhos do parque da cidade.",
            "O novo horário acrescenta ligações ao fim de semana, embora os bilhetes fiquem um pouco mais caros.",
        ],
        Language::Spanish => &[
            "El martes el ayuntamiento aprobó la rehabilitación del puente viejo, cerrado desde hace años.",
            "Los bomberos acudieron por la noche a un incendio en un almacén vacío; nadie resultó herido.",
            "En la entrevista, la entrenadora habla del ascenso, de la próxima temporada y de la presión en el club.",
            "Tras la tormenta, voluntarios retiraron los árboles caídos de los caminos del parque municipal.",
            "El nuevo horario añade servicios los fines de semana, aunque los billetes subirán ligeramente.",
        ],
        Language::Dutch => &[
            "Dinsdag stemde de gemeenteraad in met de renovatie van de oude brug, die al jaren dicht is.",
            "De brandweer rukte 's nachts uit voor een brand in een leegstaande loods; niemand raakte gewond.",
            "In het interview vertelt de trainer over de promotie, het komende seizoen en de druk bij de club.",
            "Na de storm ruimden vrijwilligers de omgevallen bomen van de paden in het stadspark.",
            "De nieuwe dienstregeling voegt weekendritten toe, al stijgen de ticketprijzen licht.",
        ],
    }
}

/// Copy for a regular cookie banner (contains consent vocabulary but no
/// subscription offer — must *not* trigger the cookiewall classifier).
pub fn banner_text(lang: Language) -> &'static str {
    match lang {
        Language::German => "Wir verwenden Cookies, um Inhalte und Anzeigen zu personalisieren und unsere Zugriffe zu analysieren. Sie können der Verwendung zustimmen oder sie ablehnen. Details finden Sie in der Datenschutzerklärung.",
        Language::English => "We use cookies to personalise content and ads and to analyse our traffic. You can consent to their use or decline. See our privacy policy for details.",
        Language::Italian => "Utilizziamo i cookie per personalizzare contenuti e annunci e per analizzare il traffico. Puoi acconsentire al loro utilizzo oppure rifiutare. Dettagli nell'informativa sulla privacy.",
        Language::Swedish => "Vi använder kakor för att anpassa innehåll och annonser och för att analysera vår trafik. Du kan godkänna användningen eller neka. Läs mer i vår integritetspolicy.",
        Language::French => "Nous utilisons des cookies pour personnaliser le contenu et les annonces et pour analyser notre trafic. Vous pouvez consentir à leur utilisation ou refuser. Détails dans la politique de confidentialité.",
        Language::Portuguese => "Utilizamos cookies para personalizar conteúdos e anúncios e para analisar o nosso tráfego. Pode consentir a utilização ou recusar. Detalhes na política de privacidade.",
        Language::Spanish => "Utilizamos cookies para personalizar el contenido y los anuncios y para analizar nuestro tráfico. Puede consentir su uso o rechazarlo. Más detalles en la política de privacidad.",
        Language::Dutch => "Wij gebruiken cookies om inhoud en advertenties te personaliseren en ons verkeer te analyseren. U kunt toestemming geven of weigeren. Details vindt u in de privacyverklaring.",
    }
}

/// Accept-button label per language. These are drawn from BannerClick's
/// multilingual accept-word corpus.
pub fn accept_label(lang: Language) -> &'static str {
    match lang {
        Language::German => "Akzeptieren und weiter",
        Language::English => "Accept all",
        Language::Italian => "Accetta e continua",
        Language::Swedish => "Godkänn alla",
        Language::French => "Tout accepter",
        Language::Portuguese => "Aceitar tudo",
        Language::Spanish => "Aceptar todo",
        Language::Dutch => "Alles accepteren",
    }
}

/// Reject-button label per language.
pub fn reject_label(lang: Language) -> &'static str {
    match lang {
        Language::German => "Ablehnen",
        Language::English => "Reject all",
        Language::Italian => "Rifiuta",
        Language::Swedish => "Neka alla",
        Language::French => "Tout refuser",
        Language::Portuguese => "Rejeitar",
        Language::Spanish => "Rechazar",
        Language::Dutch => "Alles weigeren",
    }
}

/// Settings-button label per language ("options"/"manage my cookies" in
/// the paper's Figure 8 banner screenshot).
pub fn settings_label(lang: Language) -> &'static str {
    match lang {
        Language::German => "Einstellungen verwalten",
        Language::English => "Manage my cookies",
        Language::Italian => "Gestisci le preferenze",
        Language::Swedish => "Hantera inställningar",
        Language::French => "Gérer mes préférences",
        Language::Portuguese => "Gerir preferências",
        Language::Spanish => "Gestionar preferencias",
        Language::Dutch => "Voorkeuren beheren",
    }
}

/// Subscribe-button label per language (contains the subscription words the
/// cookiewall corpus looks for: abo/abonnent/abbonamento/abonne/subscribe).
pub fn subscribe_label(lang: Language) -> &'static str {
    match lang {
        Language::German => "Jetzt Abo abschließen",
        Language::English => "Subscribe now",
        Language::Italian => "Sottoscrivi l'abbonamento",
        Language::Swedish => "Teckna abonnemang",
        Language::French => "S'abonner maintenant",
        Language::Portuguese => "Subscrever agora",
        Language::Spanish => "Suscribirse ahora",
        Language::Dutch => "Nu abonneren",
    }
}

/// Format a price the way sites in this language render it.
///
/// German-style locales put the symbol after a comma-decimal amount
/// (`2,99 €`), English-style locales prefix the symbol (`$3.49`), CHF is
/// conventionally written as a prefix word (`CHF 2.50`).
pub fn format_price(lang: Language, price: &PriceSpec) -> String {
    let units = price.amount_cents / 100;
    let cents = price.amount_cents % 100;
    let symbol = price.currency.symbol();
    let comma_locale = !matches!(lang, Language::English);
    let amount = if comma_locale {
        format!("{units},{cents:02}")
    } else {
        format!("{units}.{cents:02}")
    };
    match price.currency {
        Currency::Chf => format!("CHF {amount}"),
        Currency::Eur if comma_locale => format!("{amount} {symbol}"),
        _ => format!("{symbol}{amount}"),
    }
}

/// The per-period suffix (`pro Monat`, `per month`, `im Jahr`, …).
pub fn period_phrase(lang: Language, period: Period) -> &'static str {
    match (lang, period) {
        (Language::German, Period::Month) => "pro Monat",
        (Language::German, Period::Year) => "pro Jahr",
        (Language::English, Period::Month) => "per month",
        (Language::English, Period::Year) => "per year",
        (Language::Italian, Period::Month) => "al mese",
        (Language::Italian, Period::Year) => "all'anno",
        (Language::Swedish, Period::Month) => "per månad",
        (Language::Swedish, Period::Year) => "per år",
        (Language::French, Period::Month) => "par mois",
        (Language::French, Period::Year) => "par an",
        (Language::Portuguese, Period::Month) => "por mês",
        (Language::Portuguese, Period::Year) => "por ano",
        (Language::Spanish, Period::Month) => "al mes",
        (Language::Spanish, Period::Year) => "al año",
        (Language::Dutch, Period::Month) => "per maand",
        (Language::Dutch, Period::Year) => "per jaar",
    }
}

/// Copy for a cookiewall: the accept-or-pay pitch, including the price.
/// Contains both halves of the §3 detection corpus — subscription words and
/// a currency/price combination.
pub fn wall_text(
    lang: Language,
    site_name: &str,
    price: &PriceSpec,
    smp_name: Option<&str>,
) -> String {
    let price_str = format_price(lang, price);
    let period = period_phrase(lang, price.period);
    let via = smp_name.map(|n| (n, true));
    match lang {
        Language::German => {
            let base = format!(
                "Mit Werbung und Tracking weiterlesen — oder {site_name} werbefrei nutzen: \
                 Das Pur-Abo kostet nur {price_str} {period} und ist jederzeit kündbar."
            );
            match via {
                Some((n, _)) => format!(
                    "{base} Als {n}-Abonnent erhalten Sie Zugriff auf alle Partnerseiten ohne personalisierte Werbung."
                ),
                None => base,
            }
        }
        Language::English => {
            let base = format!(
                "Continue with advertising and tracking — or enjoy {site_name} ad-free: \
                 subscribe for just {price_str} {period}, cancel anytime."
            );
            match via {
                Some((n, _)) => format!(
                    "{base} A {n} subscription covers every partner site without personalised ads."
                ),
                None => base,
            }
        }
        Language::Italian => format!(
            "Continua con pubblicità e tracciamento — oppure leggi {site_name} senza pubblicità: \
             l'abbonamento costa solo {price_str} {period} ed è disdicibile in ogni momento."
        ),
        Language::Swedish => format!(
            "Fortsätt med annonser och spårning — eller läs {site_name} reklamfritt: \
             abonnemanget kostar bara {price_str} {period} och kan sägas upp när som helst."
        ),
        Language::French => format!(
            "Continuez avec publicité et suivi — ou lisez {site_name} sans publicité : \
             l'abonnement coûte seulement {price_str} {period}, résiliable à tout moment."
        ),
        Language::Portuguese => format!(
            "Continue com publicidade e rastreamento — ou leia {site_name} sem anúncios: \
             a assinatura custa apenas {price_str} {period} e pode ser cancelada a qualquer momento."
        ),
        Language::Spanish => format!(
            "Continúe con publicidad y seguimiento — o lea {site_name} sin anuncios: \
             la suscripción cuesta solo {price_str} {period} y puede cancelarse en cualquier momento."
        ),
        Language::Dutch => format!(
            "Ga verder met advertenties en tracking — of lees {site_name} reclamevrij: \
             het abonnement kost slechts {price_str} {period} en is maandelijks opzegbaar."
        ),
    }
}

/// Copy for the decoy hard paywall (a *false positive* trap): mentions a
/// subscription price **and** the word "cookies" in passing, but offers no
/// accept-tracking alternative — it is a paywall, not a cookiewall.
pub fn decoy_paywall_text(lang: Language, site_name: &str, price: &PriceSpec) -> String {
    let price_str = format_price(lang, price);
    let period = period_phrase(lang, price.period);
    match lang {
        Language::German => format!(
            "Dieser Artikel ist Teil von {site_name} Plus. Lesen Sie alle Premium-Artikel \
             für {price_str} {period}. Hinweis: Diese Website verwendet technisch notwendige Cookies."
        ),
        _ => format!(
            "This article is part of {site_name} Plus. Read all premium stories for \
             {price_str} {period}. Note: this website uses technically necessary cookies."
        ),
    }
}

/// The adblock-detection interstitial message (hausbau-forum case).
pub fn adblock_message(lang: Language) -> &'static str {
    match lang {
        Language::German => "Bitte deaktivieren Sie Ihren Werbeblocker, um diese Seite zu nutzen.",
        _ => "Please disable your ad blocker to continue using this site.",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Currency, Period, PriceSpec};

    fn eur(cents: u32, period: Period) -> PriceSpec {
        PriceSpec {
            amount_cents: cents,
            currency: Currency::Eur,
            period,
        }
    }

    #[test]
    fn every_language_has_content() {
        for lang in Language::ALL {
            assert!(!body_sentences(lang).is_empty());
            assert!(banner_text(lang).len() > 40);
            assert!(!accept_label(lang).is_empty());
            assert!(!reject_label(lang).is_empty());
            assert!(!subscribe_label(lang).is_empty());
        }
    }

    #[test]
    fn body_text_is_detectable() {
        // The language detector must label generator prose correctly —
        // this is the end-to-end contract between webgen and langid.
        for lang in Language::ALL {
            let text = body_sentences(lang).join(" ");
            let detected = langid::detect(&text).expect("long enough");
            assert_eq!(detected.language, lang, "body text for {lang:?}");
        }
    }

    #[test]
    fn price_formats() {
        assert_eq!(
            format_price(Language::German, &eur(299, Period::Month)),
            "2,99 €"
        );
        assert_eq!(
            format_price(Language::English, &eur(299, Period::Month)),
            "€2.99"
        );
        let usd = PriceSpec {
            amount_cents: 349,
            currency: Currency::Usd,
            period: Period::Month,
        };
        assert_eq!(format_price(Language::English, &usd), "$3.49");
        let chf = PriceSpec {
            amount_cents: 250,
            currency: Currency::Chf,
            period: Period::Month,
        };
        assert_eq!(format_price(Language::German, &chf), "CHF 2,50");
        let aud = PriceSpec {
            amount_cents: 499,
            currency: Currency::Aud,
            period: Period::Month,
        };
        assert_eq!(format_price(Language::English, &aud), "A$4.99");
    }

    #[test]
    fn wall_text_contains_corpus_signals() {
        let p = eur(299, Period::Month);
        let t = wall_text(Language::German, "beispiel.de", &p, Some("contentpass"));
        assert!(t.contains("2,99 €"));
        assert!(t.to_lowercase().contains("abo"));
        assert!(t.contains("contentpass"));
        let t = wall_text(Language::English, "example.com", &p, None);
        assert!(t.contains("ad-free"));
        assert!(t.contains("subscribe"));
    }

    #[test]
    fn banner_text_lacks_price_signals() {
        for lang in Language::ALL {
            let t = banner_text(lang);
            assert!(!t.contains('€') && !t.contains('$') && !t.contains('£'));
            assert!(!t.chars().any(|c| c.is_ascii_digit()));
        }
    }

    #[test]
    fn decoy_has_price_and_cookie_word() {
        let t = decoy_paywall_text(Language::German, "blatt.de", &eur(499, Period::Month));
        assert!(t.contains("4,99 €"));
        assert!(t.to_lowercase().contains("cookies"));
    }

    #[test]
    fn yearly_phrases() {
        assert_eq!(period_phrase(Language::German, Period::Year), "pro Jahr");
        assert_eq!(period_phrase(Language::English, Period::Year), "per year");
    }
}
