//! Deterministic domain-name generation and stable hashing.
//!
//! Every piece of randomness in the synthetic web is derived from a stable
//! 64-bit FNV-1a hash of a string key, fed into ChaCha8. The same
//! population config therefore always produces byte-identical sites, across
//! runs and across platforms — the property that makes every experiment in
//! the study exactly reproducible.

use langid::Language;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Stable FNV-1a 64-bit hash (not DoS-resistant, not needed here; stability
/// across Rust versions is what matters — `DefaultHasher` does not
/// guarantee that).
pub fn stable_hash(key: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in key.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// A ChaCha8 RNG seeded from a string key (plus a numeric lane so one key
/// can drive several independent streams).
// lint:allow(r9) — RNG lane label, one short String per derived stream; ROADMAP item 1
pub fn rng_for(key: &str, lane: u64) -> ChaCha8Rng {
    let mut seed = [0u8; 32];
    let h1 = stable_hash(key);
    let h2 = stable_hash(&format!("{key}/{lane}"));
    seed[..8].copy_from_slice(&h1.to_le_bytes());
    seed[8..16].copy_from_slice(&h2.to_le_bytes());
    seed[16..24].copy_from_slice(&h1.rotate_left(32).to_le_bytes());
    seed[24..32].copy_from_slice(&lane.to_le_bytes());
    ChaCha8Rng::from_seed(seed)
}

const DE_FIRST: &[&str] = &[
    "abend", "morgen", "stadt", "land", "nord", "sued", "west", "ost", "neue", "alte", "gross",
    "klein", "berg", "tal", "fluss", "wald", "markt", "haupt", "heim", "echt", "frisch", "blau",
    "gruen", "rot", "gold", "silber", "stern", "sonnen", "mond", "wetter", "tages", "wochen",
];
const DE_SECOND: &[&str] = &[
    "kurier",
    "anzeiger",
    "bote",
    "blatt",
    "post",
    "rundschau",
    "welt",
    "zeit",
    "spiegel",
    "magazin",
    "portal",
    "forum",
    "treff",
    "haus",
    "laden",
    "werk",
    "hof",
    "feld",
    "quelle",
    "wissen",
    "technik",
    "sport",
    "reise",
    "garten",
    "kueche",
    "gesund",
    "geld",
    "boerse",
    "spiele",
    "kino",
    "musik",
    "netz",
];
const EN_FIRST: &[&str] = &[
    "daily", "evening", "morning", "city", "metro", "north", "south", "west", "east", "new", "old",
    "grand", "first", "prime", "true", "fresh", "blue", "green", "red", "gold", "silver", "star",
    "sun", "moon", "global", "local", "urban", "rural", "open", "clear", "bright", "swift",
];
const EN_SECOND: &[&str] = &[
    "herald",
    "tribune",
    "courier",
    "gazette",
    "journal",
    "times",
    "post",
    "review",
    "digest",
    "monitor",
    "observer",
    "portal",
    "hub",
    "forum",
    "wire",
    "report",
    "insider",
    "weekly",
    "outlook",
    "beacon",
    "ledger",
    "chronicle",
    "dispatch",
    "bulletin",
    "record",
    "express",
    "standard",
    "sentinel",
    "register",
    "examiner",
    "inquirer",
    "planet",
];
const IT_FIRST: &[&str] = &[
    "nuovo", "vecchio", "grande", "piccolo", "alto", "basso", "nord", "sud", "vero", "primo",
    "bel", "buon", "mio", "gran", "mezzo", "doppio",
];
const IT_SECOND: &[&str] = &[
    "giornale",
    "corriere",
    "gazzetta",
    "messaggero",
    "notizie",
    "portale",
    "mercato",
    "tempo",
    "mondo",
    "paese",
    "sole",
    "stella",
    "faro",
    "ponte",
    "piazza",
    "voce",
];
const SV_FIRST: &[&str] = &[
    "dagens", "nya", "gamla", "stora", "norra", "soedra", "vaestra", "oestra", "fria", "svenska",
    "lokala", "baesta", "snabba", "klara", "ljusa", "moerka",
];
const SV_SECOND: &[&str] = &[
    "nyheter",
    "posten",
    "bladet",
    "kuriren",
    "tidningen",
    "portalen",
    "torget",
    "kaellan",
    "vaerlden",
    "tiden",
    "handeln",
    "marknaden",
    "sporten",
    "resan",
    "huset",
    "skogen",
];

fn pools(lang: Language) -> (&'static [&'static str], &'static [&'static str]) {
    match lang {
        Language::German | Language::Dutch => (DE_FIRST, DE_SECOND),
        Language::English => (EN_FIRST, EN_SECOND),
        Language::Italian | Language::Spanish | Language::Portuguese | Language::French => {
            (IT_FIRST, IT_SECOND)
        }
        Language::Swedish => (SV_FIRST, SV_SECOND),
    }
}

/// Generate the `index`-th domain name for a language and TLD.
///
/// Uniqueness: the (first, second) pools give `32×32 = 1024` base names per
/// language family; beyond that an index-derived numeric suffix is added, so
/// arbitrarily many unique names exist per (language, tld) and the name is a
/// pure function of its inputs.
pub fn domain_name(lang: Language, tld: &str, index: usize) -> String {
    let (first, second) = pools(lang);
    let base = first.len() * second.len();
    let f = first[index % first.len()];
    let s = second[(index / first.len()) % second.len()];
    if index < base {
        format!("{f}{s}.{tld}")
    } else {
        // Suffix with the overflow counter; hyphenated to stay readable.
        format!("{f}{s}-{}.{tld}", index / base)
    }
}

/// Shuffle a slice deterministically with a keyed RNG (Fisher–Yates).
pub fn stable_shuffle<T>(items: &mut [T], key: &str) {
    let mut rng = rng_for(key, 0);
    for i in (1..items.len()).rev() {
        let j = rng.random_range(0..=i);
        items.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_stable() {
        // Pinned values: if these change, every generated population
        // changes, silently invalidating recorded experiment outputs.
        assert_eq!(stable_hash(""), 0xcbf29ce484222325);
        assert_eq!(stable_hash("spiegel.de"), stable_hash("spiegel.de"));
        assert_ne!(stable_hash("a"), stable_hash("b"));
    }

    #[test]
    fn rng_streams_independent() {
        let mut a = rng_for("key", 0);
        let mut b = rng_for("key", 1);
        let mut a2 = rng_for("key", 0);
        let x: u64 = a.random();
        assert_eq!(x, a2.random::<u64>(), "same key+lane ⇒ same stream");
        assert_ne!(x, b.random::<u64>(), "different lane ⇒ different stream");
    }

    #[test]
    fn domain_names_unique_and_valid() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..5000 {
            let d = domain_name(Language::German, "de", i);
            assert!(seen.insert(d.clone()), "duplicate at {i}: {d}");
            assert!(d.ends_with(".de"));
            assert!(httpsim::Url::parse(&d).is_ok(), "unparseable domain {d}");
            assert_eq!(httpsim::registrable_domain(&d), Some(d.as_str()));
        }
    }

    #[test]
    fn names_language_flavoured() {
        let de = domain_name(Language::German, "de", 0);
        let en = domain_name(Language::English, "com", 0);
        let sv = domain_name(Language::Swedish, "net", 2);
        assert_ne!(de, en);
        assert!(sv.ends_with(".net"));
    }

    #[test]
    fn shuffle_deterministic() {
        let mut a: Vec<u32> = (0..100).collect();
        let mut b: Vec<u32> = (0..100).collect();
        stable_shuffle(&mut a, "k");
        stable_shuffle(&mut b, "k");
        assert_eq!(a, b);
        let mut c: Vec<u32> = (0..100).collect();
        stable_shuffle(&mut c, "other");
        assert_ne!(a, c);
    }
}
