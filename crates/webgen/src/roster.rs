//! The cookiewall roster: the calibrated ground-truth assignment of every
//! cookiewall (and decoy) site in the synthetic web.
//!
//! The paper reports a *joint* distribution over cookiewall properties —
//! which toplist the site is on, its TLD, language, geographic targeting,
//! structural embedding, serving infrastructure, SMP membership, and price.
//! This module reconstructs a concrete population satisfying those published
//! marginals exactly at paper scale:
//!
//! * 280 cookiewalls: 259 on the German toplist (85 in the top-1k bucket),
//!   15 Swedish, 5 Australian, 1 Brazilian-list special case (the
//!   `climate-data`-style site of footnote 2);
//! * TLDs: 233 `.de`, 14 `.com`, 14 `.net`, 4 `.org`, 6 `.it`, 4 `.at`,
//!   2 `.fr`, 2 `.ch`, 1 `.eu`;
//! * languages: 252 German, 12 English, 6 Italian, 10 other — and zero
//!   Swedish, matching Table 1's Sweden "Language" column;
//! * embedding: 76 shadow DOM, 132 iframe, 72 main DOM (§3);
//! * serving: 196 blockable (SMP CDN or CMP script) vs 84 first-party,
//!   yielding the 70% uBlock bypass rate (§4.5);
//! * SMPs: 76 contentpass + 62 freechoice partners in-list (§4.4);
//! * visibility: 200 global, 76 EU-only, 4 Germany-only, producing the
//!   EU ≈ 280 vs non-EU ≈ 195 detection split (Table 1);
//! * prices: €2.99 for all SMP sites, a calibrated spread for the rest
//!   (~80% ≤ €3, ~90% ≤ €4, a ≥ €9 tail; `.it` cheaper — Figure 2).

use crate::names::stable_shuffle;
use crate::spec::{
    Country, Currency, Embedding, Period, PriceSpec, RankBucket, Serving, Smp, Visibility,
};
use categorize::Category;
use langid::Language;

/// Which detection group a wall site belongs to (the single toplist it
/// appears on).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WallGroup {
    /// German toplist (259 sites at paper scale).
    De,
    /// Swedish toplist (15).
    Se,
    /// Australian toplist (5).
    Au,
    /// The Brazilian-toplist special case: a German-operated site whose
    /// Portuguese subdomain is popular in Brazil but walls only EU visitors.
    BrSpecial,
}

impl WallGroup {
    /// The toplist country of this group.
    pub fn country(self) -> Country {
        match self {
            WallGroup::De => Country::De,
            WallGroup::Se => Country::Se,
            WallGroup::Au => Country::Au,
            WallGroup::BrSpecial => Country::Br,
        }
    }
}

/// Serving/embedding/SMP class of a wall.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WallClass {
    /// Who serves the markup.
    pub serving: Serving,
    /// Structural embedding.
    pub embedding: Embedding,
    /// SMP operating the wall, if any.
    pub smp: Option<Smp>,
}

/// One cookiewall site's complete ground-truth assignment.
#[derive(Debug, Clone)]
pub struct WallAssignment {
    /// Toplist group.
    pub group: WallGroup,
    /// Popularity bucket on that toplist.
    pub bucket: RankBucket,
    /// TLD the domain is registered under.
    pub tld: &'static str,
    /// Content language.
    pub language: Language,
    /// Geographic wall targeting.
    pub visibility: Visibility,
    /// Serving/embedding/SMP class.
    pub class: WallClass,
    /// Subscription offer.
    pub price: PriceSpec,
    /// Website category.
    pub category: Category,
    /// The hausbau-forum-style adblock detector site.
    pub detects_adblock: bool,
    /// The promipool-style scroll-broken-when-blocked site.
    pub breaks_scroll: bool,
}

/// One decoy (false-positive trap) assignment: a hard paywall whose copy
/// mentions cookies and a price.
#[derive(Debug, Clone)]
pub struct DecoyAssignment {
    /// Toplist the decoy appears on.
    pub country: Country,
    /// Language of the decoy site.
    pub language: Language,
    /// TLD.
    pub tld: &'static str,
    /// The paywall price shown.
    pub price: PriceSpec,
}

fn eur(cents: u32) -> PriceSpec {
    PriceSpec {
        amount_cents: cents,
        currency: Currency::Eur,
        period: Period::Month,
    }
}

fn eur_year(cents: u32) -> PriceSpec {
    PriceSpec {
        amount_cents: cents,
        currency: Currency::Eur,
        period: Period::Year,
    }
}

/// Expand `(count, value)` runs into a flat vector.
fn expand<T: Copy>(runs: &[(usize, T)]) -> Vec<T> {
    runs.iter()
        .flat_map(|&(n, v)| std::iter::repeat_n(v, n))
        .collect()
}

/// Build the full paper-scale roster: 280 walls + 5 decoys.
///
/// Every column is expanded from its published marginal, deterministically
/// shuffled with an independent key, and zipped — so marginals hold exactly
/// while the joint assignment is pseudo-random but stable.
pub fn paper_roster() -> (Vec<WallAssignment>, Vec<DecoyAssignment>) {
    let mut walls = Vec::with_capacity(280);
    walls.extend(build_de_group());
    walls.extend(build_se_group());
    walls.extend(build_au_group());
    walls.push(build_br_special());
    assert_eq!(walls.len(), 280);

    // Categories across all 280 (Figure 1 marginals: news > 1/4, business
    // 9%, IT 7%, remainder spread).
    let mut categories = expand(&[
        (74, Category::NewsAndMedia),
        (25, Category::Business),
        (20, Category::InformationTechnology),
        (18, Category::Shopping),
        (22, Category::Entertainment),
        (20, Category::Sports),
        (16, Category::Travel),
        (12, Category::Education),
        (14, Category::Health),
        (12, Category::Finance),
        (12, Category::Games),
        (35, Category::GeneralInterest),
    ]);
    assert_eq!(categories.len(), 280);
    stable_shuffle(&mut categories, "roster/categories");
    for (w, c) in walls.iter_mut().zip(categories) {
        w.category = c;
    }

    // The two §4.5 special cases live among blockable DE-group sites.
    let mut specials = walls
        .iter_mut()
        .filter(|w| w.group == WallGroup::De && w.class.serving != Serving::FirstParty);
    specials
        .next()
        .expect("blockable DE site exists")
        .detects_adblock = true;
    specials
        .next()
        .expect("second blockable DE site exists")
        .breaks_scroll = true;

    (walls, decoys())
}

/// The German-toplist group: 259 walls carrying all SMP deployments.
fn build_de_group() -> Vec<WallAssignment> {
    let n = 259;

    let mut tlds = expand(&[
        (233, "de"),
        (6, "com"),
        (8, "net"),
        (2, "org"),
        (2, "it"),
        (4, "at"),
        (2, "fr"),
        (1, "ch"),
        (1, "eu"),
    ]);
    let mut langs = expand(&[
        (243, Language::German),
        (5, Language::English),
        (2, Language::Italian),
        (5, Language::Dutch),
        (3, Language::Spanish),
        (1, Language::Portuguese),
    ]);
    let mut vis = expand(&[
        (185, Visibility::Global),
        (70, Visibility::EuOnly),
        (4, Visibility::DeOnly),
    ]);
    let mut buckets = expand(&[(85, RankBucket::Top1k), (174, RankBucket::Top10k)]);

    // Serving/embedding/SMP classes. Blockable: 76 contentpass + 62
    // freechoice + 58 CMP-script = 196 across all groups; the DE group holds
    // every SMP deployment and most of the CMP ones.
    let mut classes = Vec::with_capacity(n);
    classes.extend(expand(&[
        // contentpass: 70 iframe + 6 shadow (script-injected into shadow).
        (
            70,
            WallClass {
                serving: Serving::SmpCdn,
                embedding: Embedding::Iframe,
                smp: Some(Smp::Contentpass),
            },
        ),
        (
            3,
            WallClass {
                serving: Serving::SmpCdn,
                embedding: Embedding::ShadowOpen,
                smp: Some(Smp::Contentpass),
            },
        ),
        (
            3,
            WallClass {
                serving: Serving::SmpCdn,
                embedding: Embedding::ShadowClosed,
                smp: Some(Smp::Contentpass),
            },
        ),
        // freechoice: 55 iframe + 7 shadow.
        (
            55,
            WallClass {
                serving: Serving::SmpCdn,
                embedding: Embedding::Iframe,
                smp: Some(Smp::Freechoice),
            },
        ),
        (
            4,
            WallClass {
                serving: Serving::SmpCdn,
                embedding: Embedding::ShadowOpen,
                smp: Some(Smp::Freechoice),
            },
        ),
        (
            3,
            WallClass {
                serving: Serving::SmpCdn,
                embedding: Embedding::ShadowClosed,
                smp: Some(Smp::Freechoice),
            },
        ),
        // CMP-script walls in the DE group: 41 of the global 58.
        (
            2,
            WallClass {
                serving: Serving::CmpScript,
                embedding: Embedding::Iframe,
                smp: None,
            },
        ),
        (
            13,
            WallClass {
                serving: Serving::CmpScript,
                embedding: Embedding::ShadowOpen,
                smp: None,
            },
        ),
        (
            9,
            WallClass {
                serving: Serving::CmpScript,
                embedding: Embedding::ShadowClosed,
                smp: None,
            },
        ),
        (
            19,
            WallClass {
                serving: Serving::CmpScript,
                embedding: Embedding::MainDom,
                smp: None,
            },
        ),
        // First-party walls in the DE group: 80 of the global 84.
        (
            17,
            WallClass {
                serving: Serving::FirstParty,
                embedding: Embedding::ShadowOpen,
                smp: None,
            },
        ),
        (
            16,
            WallClass {
                serving: Serving::FirstParty,
                embedding: Embedding::ShadowClosed,
                smp: None,
            },
        ),
        (
            45,
            WallClass {
                serving: Serving::FirstParty,
                embedding: Embedding::MainDom,
                smp: None,
            },
        ),
    ]));
    assert_eq!(classes.len(), n);

    stable_shuffle(&mut tlds, "roster/de/tld");
    stable_shuffle(&mut langs, "roster/de/lang");
    stable_shuffle(&mut vis, "roster/de/vis");
    stable_shuffle(&mut buckets, "roster/de/bucket");
    stable_shuffle(&mut classes, "roster/de/class");

    // Price column for non-SMP sites (SMP price is fixed 2.99 EUR).
    // 121 non-SMP DE-group sites.
    let mut prices = expand(&[
        (22, eur(199)),
        (12, eur(249)),
        (28, eur(299)),
        (12, eur(349)),
        (17, eur(399)),
        (5, eur(449)),
        (4, eur(499)),
        (3, eur(599)),
        (3, eur(699)),
        (4, eur_year(3588)), // 35.88 €/year = 2.99/month
        (2, eur_year(4788)), // 47.88 €/year = 3.99/month
        (
            1,
            PriceSpec {
                amount_cents: 250,
                currency: Currency::Chf,
                period: Period::Month,
            },
        ),
        (5, eur(999)),
        (2, eur(1299)),
        (1, eur(1499)),
    ]);
    assert_eq!(prices.len(), 121);
    stable_shuffle(&mut prices, "roster/de/price");
    let mut price_iter = prices.into_iter();

    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let class = classes[i];
        let price = if class.smp.is_some() {
            eur(299)
        } else {
            price_iter
                .next()
                .expect("price column sized for non-SMP count")
        };
        // Italian TLD sites are cheaper on average (Figure 2 heatmap).
        let price = if tlds[i] == "it" && class.smp.is_none() {
            eur(149)
        } else {
            price
        };
        out.push(WallAssignment {
            group: WallGroup::De,
            bucket: buckets[i],
            tld: tlds[i],
            language: langs[i],
            visibility: vis[i],
            class,
            price,
            category: Category::GeneralInterest, // overwritten by caller
            detects_adblock: false,
            breaks_scroll: false,
        });
    }
    out
}

/// The Swedish-toplist group: 15 walls, none on `.se`, none in Swedish —
/// matching Table 1's zero ccTLD/Language cells for Sweden.
fn build_se_group() -> Vec<WallAssignment> {
    let n = 15;
    let mut tlds = expand(&[(3, "com"), (6, "net"), (4, "it"), (1, "org"), (1, "ch")]);
    let mut langs = expand(&[
        (9, Language::German),
        (2, Language::English),
        (4, Language::Italian),
    ]);
    let mut vis = expand(&[(10, Visibility::Global), (5, Visibility::EuOnly)]);
    let mut buckets = expand(&[(3, RankBucket::Top1k), (12, RankBucket::Top10k)]);
    let mut classes = expand(&[
        (
            3,
            WallClass {
                serving: Serving::CmpScript,
                embedding: Embedding::Iframe,
                smp: None,
            },
        ),
        (
            4,
            WallClass {
                serving: Serving::CmpScript,
                embedding: Embedding::ShadowOpen,
                smp: None,
            },
        ),
        (
            5,
            WallClass {
                serving: Serving::CmpScript,
                embedding: Embedding::MainDom,
                smp: None,
            },
        ),
        (
            2,
            WallClass {
                serving: Serving::FirstParty,
                embedding: Embedding::ShadowClosed,
                smp: None,
            },
        ),
        (
            1,
            WallClass {
                serving: Serving::FirstParty,
                embedding: Embedding::MainDom,
                smp: None,
            },
        ),
    ]);
    let mut prices = expand(&[
        (4, eur(199)),
        (4, eur(299)),
        (3, eur(399)),
        (2, eur(499)),
        (1, eur(999)),
        (
            1,
            PriceSpec {
                amount_cents: 399,
                currency: Currency::Gbp,
                period: Period::Month,
            },
        ),
    ]);
    stable_shuffle(&mut tlds, "roster/se/tld");
    stable_shuffle(&mut langs, "roster/se/lang");
    stable_shuffle(&mut vis, "roster/se/vis");
    stable_shuffle(&mut buckets, "roster/se/bucket");
    stable_shuffle(&mut classes, "roster/se/class");
    stable_shuffle(&mut prices, "roster/se/price");

    (0..n)
        .map(|i| WallAssignment {
            group: WallGroup::Se,
            bucket: buckets[i],
            tld: tlds[i],
            language: langs[i],
            visibility: vis[i],
            class: classes[i],
            price: if tlds[i] == "it" { eur(199) } else { prices[i] },
            category: Category::GeneralInterest,
            detects_adblock: false,
            breaks_scroll: false,
        })
        .collect()
}

/// The Australian-toplist group: 5 English `.com` walls, globally visible
/// (they must be detectable from the Australian vantage point).
fn build_au_group() -> Vec<WallAssignment> {
    let classes = expand(&[
        (
            2,
            WallClass {
                serving: Serving::CmpScript,
                embedding: Embedding::Iframe,
                smp: None,
            },
        ),
        (
            1,
            WallClass {
                serving: Serving::CmpScript,
                embedding: Embedding::ShadowOpen,
                smp: None,
            },
        ),
        (
            1,
            WallClass {
                serving: Serving::FirstParty,
                embedding: Embedding::ShadowOpen,
                smp: None,
            },
        ),
        (
            1,
            WallClass {
                serving: Serving::FirstParty,
                embedding: Embedding::MainDom,
                smp: None,
            },
        ),
    ]);
    let prices = [
        PriceSpec {
            amount_cents: 499,
            currency: Currency::Aud,
            period: Period::Month,
        },
        PriceSpec {
            amount_cents: 349,
            currency: Currency::Usd,
            period: Period::Month,
        },
        eur(299),
        PriceSpec {
            amount_cents: 299,
            currency: Currency::Gbp,
            period: Period::Month,
        },
        eur(399),
    ];
    (0..5)
        .map(|i| WallAssignment {
            group: WallGroup::Au,
            bucket: if i == 0 {
                RankBucket::Top1k
            } else {
                RankBucket::Top10k
            },
            tld: "com",
            language: Language::English,
            visibility: Visibility::Global,
            class: classes[i],
            price: prices[i],
            category: Category::GeneralInterest,
            detects_adblock: false,
            breaks_scroll: false,
        })
        .collect()
}

/// The footnote-2 special case: a site on the Brazilian toplist (its
/// Portuguese subdomain is popular in Brazil) that walls only EU visitors.
fn build_br_special() -> WallAssignment {
    WallAssignment {
        group: WallGroup::BrSpecial,
        bucket: RankBucket::Top10k,
        tld: "org",
        language: Language::Portuguese,
        visibility: Visibility::EuOnly,
        class: WallClass {
            serving: Serving::FirstParty,
            embedding: Embedding::MainDom,
            smp: None,
        },
        price: eur(199),
        category: Category::GeneralInterest,
        detects_adblock: false,
        breaks_scroll: false,
    }
}

/// The five decoy paywalls behind the 98.2% precision figure.
fn decoys() -> Vec<DecoyAssignment> {
    vec![
        DecoyAssignment {
            country: Country::De,
            language: Language::German,
            tld: "de",
            price: eur(499),
        },
        DecoyAssignment {
            country: Country::De,
            language: Language::German,
            tld: "de",
            price: eur(799),
        },
        DecoyAssignment {
            country: Country::De,
            language: Language::German,
            tld: "com",
            price: eur(699),
        },
        DecoyAssignment {
            country: Country::Us,
            language: Language::English,
            tld: "com",
            price: PriceSpec {
                amount_cents: 999,
                currency: Currency::Usd,
                period: Period::Month,
            },
        },
        DecoyAssignment {
            country: Country::Br,
            language: Language::Portuguese,
            tld: "com",
            price: eur(399),
        },
    ]
}

/// Deterministically subsample the paper roster down to roughly `1/divisor`
/// of its size, preserving strata approximately (stride sampling over the
/// grouped roster). Used by reduced-scale populations for tests and benches.
pub fn scaled_roster(divisor: usize) -> (Vec<WallAssignment>, Vec<DecoyAssignment>) {
    let (walls, decoys) = paper_roster();
    if divisor <= 1 {
        return (walls, decoys);
    }
    // Stride-sample within each group so every stratum survives — the
    // minority groups (Sweden, Australia, the Brazilian special case) keep
    // at least one representative.
    let mut out = Vec::new();
    for group in [
        WallGroup::De,
        WallGroup::Se,
        WallGroup::Au,
        WallGroup::BrSpecial,
    ] {
        let members: Vec<&WallAssignment> = walls.iter().filter(|w| w.group == group).collect();
        let keep = members.len().div_ceil(divisor).max(1);
        let stride = members.len().div_ceil(keep);
        out.extend(
            members
                .iter()
                .step_by(stride)
                .take(keep)
                .map(|w| (*w).clone()),
        );
    }
    let decoys = vec![decoys[0].clone()];
    (out, decoys)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_marginals_exact() {
        let (walls, decoys) = paper_roster();
        assert_eq!(walls.len(), 280);
        assert_eq!(decoys.len(), 5);

        // Group sizes.
        let count = |g: WallGroup| walls.iter().filter(|w| w.group == g).count();
        assert_eq!(count(WallGroup::De), 259);
        assert_eq!(count(WallGroup::Se), 15);
        assert_eq!(count(WallGroup::Au), 5);
        assert_eq!(count(WallGroup::BrSpecial), 1);

        // TLD marginals (§4.1).
        let tld = |t: &str| walls.iter().filter(|w| w.tld == t).count();
        assert_eq!(tld("de"), 233);
        assert_eq!(tld("com"), 14);
        assert_eq!(tld("net"), 14);
        assert_eq!(tld("org"), 4);
        assert_eq!(tld("it"), 6);
        assert_eq!(tld("at"), 4);
        assert_eq!(tld("fr"), 2);
        assert_eq!(tld("se"), 0, "Sweden ccTLD column is zero in Table 1");

        // Language marginals.
        let lang = |l: Language| walls.iter().filter(|w| w.language == l).count();
        assert_eq!(lang(Language::German), 252);
        assert_eq!(lang(Language::English), 12);
        assert_eq!(lang(Language::Italian), 6);
        assert_eq!(
            lang(Language::Swedish),
            0,
            "Language column for Sweden is 0"
        );

        // Embedding split (§3): 76 shadow / 132 iframe / 72 main.
        let emb_shadow = walls
            .iter()
            .filter(|w| w.class.embedding.is_shadow())
            .count();
        let emb_iframe = walls
            .iter()
            .filter(|w| w.class.embedding == Embedding::Iframe)
            .count();
        let emb_main = walls
            .iter()
            .filter(|w| w.class.embedding == Embedding::MainDom)
            .count();
        assert_eq!(emb_shadow, 76);
        assert_eq!(emb_iframe, 132);
        assert_eq!(emb_main, 72);

        // Blockability (§4.5): 196 of 280 = 70%.
        let blockable = walls
            .iter()
            .filter(|w| w.class.serving != Serving::FirstParty)
            .count();
        assert_eq!(blockable, 196);

        // SMP membership (§4.4): 76 contentpass + 62 freechoice in-list.
        let cp = walls
            .iter()
            .filter(|w| w.class.smp == Some(Smp::Contentpass))
            .count();
        let fc = walls
            .iter()
            .filter(|w| w.class.smp == Some(Smp::Freechoice))
            .count();
        assert_eq!(cp, 76);
        assert_eq!(fc, 62);

        // Visibility: EU sees 280, Sweden misses the 4 DeOnly sites.
        let de_only = walls
            .iter()
            .filter(|w| w.visibility == Visibility::DeOnly)
            .count();
        let global = walls
            .iter()
            .filter(|w| w.visibility == Visibility::Global)
            .count();
        assert_eq!(de_only, 4);
        assert_eq!(global, 200);

        // Top-1k bucket: 85 on the German list (8.5% of its top-1k).
        let de_top1k = walls
            .iter()
            .filter(|w| w.group == WallGroup::De && w.bucket == RankBucket::Top1k)
            .count();
        assert_eq!(de_top1k, 85);

        // Exactly one adblock-detector and one scroll-breaker, both blockable.
        let det: Vec<_> = walls.iter().filter(|w| w.detects_adblock).collect();
        let scr: Vec<_> = walls.iter().filter(|w| w.breaks_scroll).collect();
        assert_eq!(det.len(), 1);
        assert_eq!(scr.len(), 1);
        assert_ne!(det[0].class.serving, Serving::FirstParty);
        assert_ne!(scr[0].class.serving, Serving::FirstParty);
    }

    #[test]
    fn price_marginals() {
        let (walls, _) = paper_roster();
        let prices: Vec<f64> = walls.iter().map(|w| w.price.monthly_eur()).collect();
        let at_most =
            |x: f64| prices.iter().filter(|&&p| p <= x).count() as f64 / prices.len() as f64;
        // ~80% ≤ €3, ~90% ≤ €4 (§4.2).
        assert!(
            at_most(3.05) > 0.72 && at_most(3.05) < 0.88,
            "p≤3: {}",
            at_most(3.05)
        );
        assert!(
            at_most(4.05) > 0.85 && at_most(4.05) < 0.96,
            "p≤4: {}",
            at_most(4.05)
        );
        // A tail of sites at €9 or more.
        let expensive = prices.iter().filter(|&&p| p >= 9.0).count();
        assert!((5..=15).contains(&expensive), "expensive tail: {expensive}");
        // SMP sites are all €2.99.
        for w in walls.iter().filter(|w| w.class.smp.is_some()) {
            assert!((w.price.monthly_eur() - 2.99).abs() < 1e-9);
        }
        // Italian TLD is cheaper on average than German.
        let avg = |tld: &str| {
            let v: Vec<f64> = walls
                .iter()
                .filter(|w| w.tld == tld)
                .map(|w| w.price.monthly_eur())
                .collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        assert!(
            avg("it") < avg("de"),
            "it {} vs de {}",
            avg("it"),
            avg("de")
        );
        // Yearly-quoted offers exist (normalization must be exercised).
        assert!(walls.iter().any(|w| w.price.period == Period::Year));
    }

    #[test]
    fn category_marginals() {
        let (walls, _) = paper_roster();
        let news = walls
            .iter()
            .filter(|w| w.category == Category::NewsAndMedia)
            .count();
        assert!(news as f64 / 280.0 > 0.25, "news > one fourth: {news}");
        let business = walls
            .iter()
            .filter(|w| w.category == Category::Business)
            .count();
        assert_eq!(business, 25);
        let it = walls
            .iter()
            .filter(|w| w.category == Category::InformationTechnology)
            .count();
        assert_eq!(it, 20);
        // Every category appears.
        for c in Category::ALL {
            assert!(walls.iter().any(|w| w.category == c), "{c:?} missing");
        }
    }

    #[test]
    fn roster_is_deterministic() {
        let (a, _) = paper_roster();
        let (b, _) = paper_roster();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.tld, y.tld);
            assert_eq!(x.language, y.language);
            assert_eq!(x.price.monthly_eur(), y.price.monthly_eur());
            assert_eq!(x.category, y.category);
        }
    }

    #[test]
    fn scaled_roster_shrinks_but_keeps_strata() {
        let (walls, decoys) = scaled_roster(10);
        // 26 De + 2 Se + 1 Au + 1 BrSpecial.
        assert_eq!(walls.len(), 30);
        assert!(walls.iter().any(|w| w.group == WallGroup::BrSpecial));
        assert_eq!(decoys.len(), 1);
        // The dominant strata survive.
        assert!(walls.iter().any(|w| w.group == WallGroup::De));
        assert!(walls.iter().any(|w| w.group == WallGroup::Au));
        assert!(walls.iter().any(|w| w.class.smp.is_some()));
        assert!(walls.iter().any(|w| w.tld == "de"));
        let (full, _) = scaled_roster(1);
        assert_eq!(full.len(), 280);
    }
}
