//! Ground-truth site specifications.
//!
//! Every domain in the synthetic web is described by a [`SiteSpec`] — the
//! oracle record of what the site *really* is. The measurement pipeline
//! never reads these directly; it only sees rendered HTML and HTTP
//! responses. The analysis crate compares its detections against this
//! ground truth to compute the precision/recall numbers of §3.

use httpsim::Region;

/// ISO-ish country key for toplists (one per vantage-point country; the two
/// US vantage points share one list, as CrUX lists are per country).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Country {
    /// Germany.
    De,
    /// Sweden.
    Se,
    /// United States.
    Us,
    /// Brazil.
    Br,
    /// South Africa.
    Za,
    /// India.
    In,
    /// Australia.
    Au,
}

impl Country {
    /// All toplist countries.
    pub const ALL: [Country; 7] = [
        Country::De,
        Country::Se,
        Country::Us,
        Country::Br,
        Country::Za,
        Country::In,
        Country::Au,
    ];

    /// The toplist country a vantage point uses.
    pub fn for_region(region: Region) -> Country {
        match region {
            Region::Germany => Country::De,
            Region::Sweden => Country::Se,
            Region::UsEast | Region::UsWest => Country::Us,
            Region::Brazil => Country::Br,
            Region::SouthAfrica => Country::Za,
            Region::India => Country::In,
            Region::Australia => Country::Au,
        }
    }

    /// Two-letter lowercase code.
    pub fn code(self) -> &'static str {
        match self {
            Country::De => "de",
            Country::Se => "se",
            Country::Us => "us",
            Country::Br => "br",
            Country::Za => "za",
            Country::In => "in",
            Country::Au => "au",
        }
    }
}

/// CrUX-style popularity bucket. Google CrUX does not expose exact ranks,
/// only buckets (footnote 4 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RankBucket {
    /// Among the country's 1,000 most popular sites.
    Top1k,
    /// Among the top 10,000 (but not the top 1,000).
    Top10k,
}

/// Membership of a site in one country's toplist.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ToplistEntry {
    /// Which country's CrUX list.
    pub country: Country,
    /// Popularity bucket within that list.
    pub bucket: RankBucket,
}

/// Where the banner/wall markup structurally lives — the three embedding
/// channels §3 reports (76 shadow DOM / 132 iframe / 72 main DOM).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Embedding {
    /// Markup inline in the page's main DOM.
    MainDom,
    /// Markup inside an `<iframe>` whose document is served separately.
    Iframe,
    /// Markup behind an open shadow root.
    ShadowOpen,
    /// Markup behind a closed shadow root.
    ShadowClosed,
}

impl Embedding {
    /// Is this one of the shadow-DOM variants?
    pub fn is_shadow(self) -> bool {
        matches!(self, Embedding::ShadowOpen | Embedding::ShadowClosed)
    }
}

/// Who serves the wall/banner markup — determines adblock bypassability
/// (§4.5: third-party-served walls are blockable via filter lists).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Serving {
    /// Markup inline in the first-party HTML; filter lists cannot remove it.
    FirstParty,
    /// Served from a Subscription Management Platform CDN.
    SmpCdn,
    /// Injected by a third-party CMP script.
    CmpScript,
}

/// Consent Management Platforms serving regular banners (and some walls) —
/// the CMP ecosystem the paper's footnote 7 filter rules target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Cmp {
    /// opencmp-style CMP (the footnote's `*cdn.opencmp.net/*` rule).
    OpenCmp,
    /// consentmanager-style CMP (provides contentpass integration, §4.4).
    ConsentManager,
    /// usercentrics-style CMP.
    Usercentrics,
}

impl Cmp {
    /// All CMP providers.
    pub const ALL: [Cmp; 3] = [Cmp::OpenCmp, Cmp::ConsentManager, Cmp::Usercentrics];

    /// Provider name.
    pub fn name(self) -> &'static str {
        match self {
            Cmp::OpenCmp => "opencmp",
            Cmp::ConsentManager => "consentmanager",
            Cmp::Usercentrics => "usercentrics",
        }
    }

    /// Delivery host serving this CMP's banner/wall assets.
    pub fn host(self) -> &'static str {
        match self {
            Cmp::OpenCmp => blocklist::data::hosts::OPENCMP_CDN,
            Cmp::ConsentManager => blocklist::data::hosts::CONSENTMANAGER,
            Cmp::Usercentrics => blocklist::data::hosts::USERCENTRICS,
        }
    }

    /// Deterministic provider choice for a site.
    // lint:allow(r9) — the simulated origin renders page HTML per request — the String is the payload itself; buffer reuse is scoped in ROADMAP item 1
    pub fn for_domain(domain: &str) -> Cmp {
        let h = crate::names::stable_hash(&format!("cmp/{domain}"));
        Cmp::ALL[(h % 3) as usize]
    }
}

/// The two Subscription Management Platforms of §4.4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Smp {
    /// The contentpass-style platform (219 partner sites claimed).
    Contentpass,
    /// The freechoice-style platform (167 partner sites claimed).
    Freechoice,
}

impl Smp {
    /// Platform display name.
    pub fn name(self) -> &'static str {
        match self {
            Smp::Contentpass => "contentpass",
            Smp::Freechoice => "freechoice",
        }
    }

    /// CDN host serving this platform's wall assets.
    pub fn cdn_host(self) -> &'static str {
        match self {
            Smp::Contentpass => blocklist::data::hosts::CONTENTPASS_CDN,
            Smp::Freechoice => blocklist::data::hosts::FREECHOICE_CDN,
        }
    }

    /// Account/login host (subscription state lives here).
    pub fn account_host(self) -> &'static str {
        match self {
            Smp::Contentpass => blocklist::data::hosts::CONTENTPASS_ACCOUNT,
            Smp::Freechoice => blocklist::data::hosts::FREECHOICE_ACCOUNT,
        }
    }

    /// The session cookie name the account host sets after login.
    pub fn session_cookie(self) -> &'static str {
        match self {
            Smp::Contentpass => "cp_session",
            Smp::Freechoice => "fc_session",
        }
    }
}

/// Geographic visibility of a cookiewall: who gets shown the wall.
/// Produces the EU vs. non-EU detection deltas of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Visibility {
    /// Shown to every visitor (modulo per-region flakiness).
    Global,
    /// Shown only to EU visitors (GDPR targeting).
    EuOnly,
    /// Shown only to visitors from Germany (observed for a handful of
    /// sites, e.g. the climate-data footnote case is DE/SE-only).
    DeOnly,
}

/// Billing period a price is quoted in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Period {
    /// Per month.
    Month,
    /// Per year (the price extractor must normalize to monthly).
    Year,
}

/// Currencies appearing in wall offers (the paper's corpus covers the top
/// 10 global currencies plus VP-country currencies; these are the ones the
/// synthetic population actually uses).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Currency {
    /// Euro.
    Eur,
    /// US dollar.
    Usd,
    /// Swiss franc.
    Chf,
    /// Australian dollar.
    Aud,
    /// British pound.
    Gbp,
}

impl Currency {
    /// Conversion rate to EUR used by both the generator and the price
    /// normalizer (fixed snapshot; the paper likewise converts at a fixed
    /// rate: 4 EUR ≈ 4.33 USD ⇒ 1 USD ≈ 0.9238 EUR).
    pub fn eur_rate(self) -> f64 {
        match self {
            Currency::Eur => 1.0,
            Currency::Usd => 0.9238,
            Currency::Chf => 1.02,
            Currency::Aud => 0.61,
            Currency::Gbp => 1.16,
        }
    }

    /// Symbol used in price rendering.
    pub fn symbol(self) -> &'static str {
        match self {
            Currency::Eur => "€",
            Currency::Usd => "$",
            Currency::Chf => "CHF",
            Currency::Aud => "A$",
            Currency::Gbp => "£",
        }
    }
}

/// A subscription offer as shown on the wall.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PriceSpec {
    /// Amount in minor units (cents) of `currency` per `period`.
    pub amount_cents: u32,
    /// Currency the wall quotes.
    pub currency: Currency,
    /// Billing period quoted.
    pub period: Period,
}

impl PriceSpec {
    /// Monthly price in EUR — the normalization §4.2 applies before
    /// comparing sites.
    pub fn monthly_eur(&self) -> f64 {
        let amount = self.amount_cents as f64 / 100.0 * self.currency.eur_rate();
        match self.period {
            Period::Month => amount,
            Period::Year => amount / 12.0,
        }
    }
}

/// Per-mode cookie quantities for a site (expected values; each visit adds
/// deterministic per-repetition noise).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CookieCounts {
    /// First-party cookies after this mode's steady state.
    pub first_party: u32,
    /// Third-party cookies from *non-listed* domains (CDNs, widgets).
    pub benign_third_party: u32,
    /// Third-party cookies from justdomains-listed tracker domains.
    pub tracking: u32,
}

/// The site's full cookie behaviour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CookieProfile {
    /// Before any consent interaction (banner still showing).
    pub pre_consent: CookieCounts,
    /// After clicking accept.
    pub accepted: CookieCounts,
    /// When visited with a valid SMP subscription (walls only; equals
    /// `pre_consent` for sites without an SMP).
    pub subscribed: CookieCounts,
}

/// What kind of consent UI a site shows.
#[derive(Debug, Clone, PartialEq)]
pub enum BannerKind {
    /// No banner at all.
    None,
    /// A regular cookie banner.
    Banner(BannerSpec),
    /// An accept-or-pay cookiewall.
    Cookiewall(CookiewallSpec),
    /// A paywall crafted to fool the word classifier — ground truth for the
    /// 5 false positives behind the 98.2% precision figure.
    DecoyPaywall,
}

impl BannerKind {
    /// Ground truth: is this site really a cookiewall?
    pub fn is_cookiewall(&self) -> bool {
        matches!(self, BannerKind::Cookiewall(_))
    }
}

/// A regular cookie banner.
#[derive(Debug, Clone, PartialEq)]
pub struct BannerSpec {
    /// Structural embedding.
    pub embedding: Embedding,
    /// Who serves the markup.
    pub serving: Serving,
    /// Whether a reject button is offered next to accept.
    pub has_reject: bool,
    /// Whether a settings/"manage my cookies" control is offered.
    pub has_settings: bool,
    /// Banner shown only to EU visitors?
    pub eu_only: bool,
}

/// An accept-or-pay cookiewall.
#[derive(Debug, Clone, PartialEq)]
pub struct CookiewallSpec {
    /// Structural embedding (§3's shadow/iframe/main split).
    pub embedding: Embedding,
    /// Who serves the markup (§4.5's blockability split).
    pub serving: Serving,
    /// Geographic targeting (Table 1's EU vs non-EU deltas).
    pub visibility: Visibility,
    /// The subscription offer.
    pub price: PriceSpec,
    /// SMP operating this wall, if any (§4.4).
    pub smp: Option<Smp>,
    /// Site fights back when its wall assets are blocked
    /// (the hausbau-forum case, §4.5 footnote 8).
    pub detects_adblock: bool,
    /// Page scroll stays locked when the wall is blocked
    /// (the promipool case, §4.5 footnote 8).
    pub breaks_scroll_when_blocked: bool,
}

/// The complete ground-truth record of one site.
#[derive(Debug, Clone, PartialEq)]
pub struct SiteSpec {
    /// Registrable domain (also the site id).
    pub domain: String,
    /// Content language.
    pub language: langid::Language,
    /// FortiGuard-style category.
    pub category: categorize::Category,
    /// Which country toplists include the site, and in which bucket.
    pub toplists: Vec<ToplistEntry>,
    /// Consent UI.
    pub banner: BannerKind,
    /// Cookie behaviour.
    pub cookies: CookieProfile,
    /// Hides consent UI from clients whose user agent looks like a bot
    /// (models the §3 limitation).
    pub bot_sensitive: bool,
}

impl SiteSpec {
    /// The site's TLD (last label of the domain).
    pub fn tld(&self) -> &str {
        self.domain.rsplit('.').next().unwrap_or("")
    }

    /// Is the site on `country`'s toplist (any bucket)?
    pub fn on_toplist(&self, country: Country) -> bool {
        self.toplists.iter().any(|t| t.country == country)
    }

    /// The site's bucket on `country`'s toplist, if listed.
    pub fn bucket(&self, country: Country) -> Option<RankBucket> {
        self.toplists
            .iter()
            .find(|t| t.country == country)
            .map(|t| t.bucket)
    }

    /// Ground truth: does this site show its cookiewall to a visitor from
    /// `region`? (Per-region flakiness is applied on top by the server.)
    pub fn wall_targets_region(&self, region: Region) -> bool {
        match &self.banner {
            BannerKind::Cookiewall(cw) => match cw.visibility {
                Visibility::Global => true,
                Visibility::EuOnly => region.is_eu(),
                Visibility::DeOnly => region == Region::Germany,
            },
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn price_normalization() {
        let monthly = PriceSpec {
            amount_cents: 299,
            currency: Currency::Eur,
            period: Period::Month,
        };
        assert!((monthly.monthly_eur() - 2.99).abs() < 1e-9);

        let yearly = PriceSpec {
            amount_cents: 3588,
            currency: Currency::Eur,
            period: Period::Year,
        };
        assert!((yearly.monthly_eur() - 2.99).abs() < 1e-9);

        let usd = PriceSpec {
            amount_cents: 433,
            currency: Currency::Usd,
            period: Period::Month,
        };
        // 4.33 USD ≈ 4.00 EUR, the paper's own example conversion.
        assert!((usd.monthly_eur() - 4.0).abs() < 0.01);
    }

    #[test]
    fn visibility_targeting() {
        let mk = |v| SiteSpec {
            domain: "x.de".into(),
            language: langid::Language::German,
            category: categorize::Category::NewsAndMedia,
            toplists: vec![],
            banner: BannerKind::Cookiewall(CookiewallSpec {
                embedding: Embedding::MainDom,
                serving: Serving::FirstParty,
                visibility: v,
                price: PriceSpec {
                    amount_cents: 299,
                    currency: Currency::Eur,
                    period: Period::Month,
                },
                smp: None,
                detects_adblock: false,
                breaks_scroll_when_blocked: false,
            }),
            cookies: CookieProfile {
                pre_consent: CookieCounts {
                    first_party: 3,
                    benign_third_party: 0,
                    tracking: 0,
                },
                accepted: CookieCounts {
                    first_party: 19,
                    benign_third_party: 7,
                    tracking: 43,
                },
                subscribed: CookieCounts {
                    first_party: 6,
                    benign_third_party: 4,
                    tracking: 0,
                },
            },
            bot_sensitive: false,
        };
        let global = mk(Visibility::Global);
        assert!(global.wall_targets_region(Region::India));
        let eu = mk(Visibility::EuOnly);
        assert!(eu.wall_targets_region(Region::Sweden));
        assert!(!eu.wall_targets_region(Region::UsEast));
        let de = mk(Visibility::DeOnly);
        assert!(de.wall_targets_region(Region::Germany));
        assert!(!de.wall_targets_region(Region::Sweden));
    }

    #[test]
    fn toplist_queries() {
        let s = SiteSpec {
            domain: "beispiel.de".into(),
            language: langid::Language::German,
            category: categorize::Category::Business,
            toplists: vec![
                ToplistEntry {
                    country: Country::De,
                    bucket: RankBucket::Top1k,
                },
                ToplistEntry {
                    country: Country::Se,
                    bucket: RankBucket::Top10k,
                },
            ],
            banner: BannerKind::None,
            cookies: CookieProfile {
                pre_consent: CookieCounts {
                    first_party: 2,
                    benign_third_party: 0,
                    tracking: 0,
                },
                accepted: CookieCounts {
                    first_party: 15,
                    benign_third_party: 6,
                    tracking: 1,
                },
                subscribed: CookieCounts {
                    first_party: 2,
                    benign_third_party: 0,
                    tracking: 0,
                },
            },
            bot_sensitive: false,
        };
        assert!(s.on_toplist(Country::De));
        assert_eq!(s.bucket(Country::De), Some(RankBucket::Top1k));
        assert_eq!(s.bucket(Country::Se), Some(RankBucket::Top10k));
        assert!(!s.on_toplist(Country::Au));
        assert_eq!(s.tld(), "de");
        assert!(!s.banner.is_cookiewall());
    }

    #[test]
    fn smp_metadata() {
        assert_eq!(Smp::Contentpass.name(), "contentpass");
        assert_eq!(Smp::Contentpass.cdn_host(), "cdn.contentpass.net");
        assert_eq!(Smp::Freechoice.account_host(), "account.freechoice.club");
        assert_ne!(
            Smp::Contentpass.session_cookie(),
            Smp::Freechoice.session_cookie()
        );
    }

    #[test]
    fn country_for_region_covers_all() {
        for r in Region::ALL {
            let _ = Country::for_region(r);
        }
        assert_eq!(Country::for_region(Region::UsEast), Country::Us);
        assert_eq!(Country::for_region(Region::UsWest), Country::Us);
    }
}
