//! Origin servers of the synthetic web.
//!
//! [`install`] mounts a generated [`Population`] onto an
//! [`httpsim::Network`]: one geo- and consent-aware server per site, the
//! tracker and benign third-party hosts, the two SMP platforms (CDN +
//! account hosts), and the CMP delivery host. Everything a page does —
//! which banner it embeds and how, which trackers it loads after consent,
//! how many cookies each party sets, how it reacts to bots and blocked
//! bait scripts — is decided here, purely as a function of the request and
//! the site's ground-truth spec.

use crate::content;
use crate::names::rng_for;
use crate::population::Population;
use crate::spec::{BannerKind, Cmp, CookieCounts, Embedding, Serving, SiteSpec, Smp};
use crate::trackers::{plan_benign, plan_trackers};
use httpsim::{Method, Network, Region, Request, Response};
use rand::Rng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Name of the consent cookie sites set after banner interaction.
pub const CONSENT_COOKIE: &str = "cw_consent";
/// Name of the first-party cookie marking a verified SMP subscription.
pub const SUBSCRIPTION_COOKIE: &str = "cw_sub";

/// Install the whole population onto `net`. Returns the shared handle that
/// also serves the infrastructure hosts.
pub fn install(population: Arc<Population>, net: &Network) {
    install_with_faults(population, net, None);
}

/// Like [`install`], but with an optional fault-injection plan wrapped
/// around every *site* origin ([`httpsim::FaultyServer`]). Infrastructure
/// hosts (trackers, SMP/CMP CDNs) stay fault-free: the study's unit of
/// failure is the site visit, and a faulted navigation never reaches
/// subresources anyway. A `None` plan is exactly [`install`].
pub fn install_with_faults(
    population: Arc<Population>,
    net: &Network,
    fault_plan: Option<Arc<httpsim::FaultPlan>>,
) {
    let shared = Arc::new(WebServers {
        population: Arc::clone(&population),
        visits: (0..population.sites().len())
            .map(|_| AtomicU64::new(0))
            .collect(),
    });

    for (idx, site) in population.sites().iter().enumerate() {
        // Dead sites stay unregistered: visiting them fails with a
        // connection error, like a lapsed domain in a real toplist.
        if population.is_dead(&site.domain) {
            continue;
        }
        let server: Arc<dyn httpsim::Server> = Arc::new(SiteHandler {
            shared: Arc::clone(&shared),
            site_index: idx,
        });
        let server = match &fault_plan {
            Some(plan) => Arc::new(httpsim::FaultyServer::new(server, Arc::clone(plan))) as _,
            None => server,
        };
        net.register(&site.domain, server);
    }
    for tracker in crate::trackers::tracker_pool() {
        net.register(tracker, Arc::new(TrackerHandler));
    }
    for benign in crate::trackers::BENIGN_THIRD_PARTIES {
        net.register(benign, Arc::new(BenignHandler));
    }
    for smp in [Smp::Contentpass, Smp::Freechoice] {
        net.register(
            smp.cdn_host(),
            Arc::new(SmpCdnHandler {
                shared: Arc::clone(&shared),
                smp,
            }),
        );
        net.register(smp.account_host(), Arc::new(SmpAccountHandler { smp }));
    }
    for cmp in Cmp::ALL {
        net.register(
            cmp.host(),
            Arc::new(CmpCdnHandler {
                shared: Arc::clone(&shared),
            }),
        );
    }
}

/// State shared by every handler: the population plus per-site visit
/// counters (the only mutable state; it drives per-repetition noise).
struct WebServers {
    population: Arc<Population>,
    visits: Vec<AtomicU64>,
}

/// Consent state a request reveals about the visitor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ConsentState {
    Fresh,
    Accepted,
    Rejected,
    Subscribed,
}

fn consent_state(req: &Request) -> ConsentState {
    if req.cookie(SUBSCRIPTION_COOKIE) == Some("1") {
        ConsentState::Subscribed
    } else {
        match req.cookie(CONSENT_COOKIE) {
            Some("accepted") => ConsentState::Accepted,
            Some("rejected") => ConsentState::Rejected,
            _ => ConsentState::Fresh,
        }
    }
}

/// Does the UA look like an automation tool? Sites with bot detection hide
/// their consent UI from such clients (§3's measurement limitation).
fn looks_like_bot(user_agent: &str) -> bool {
    let ua = user_agent.to_ascii_lowercase();
    [
        "bot",
        "crawler",
        "spider",
        "headless",
        "python-requests",
        "curl",
    ]
    .iter()
    .any(|m| ua.contains(m))
}

/// Per-repetition multiplicative noise on cookie counts (advertising
/// variability; the reason the paper averages five repetitions).
// lint:allow(r9) — the simulated origin renders page HTML per request — the String is the payload itself; buffer reuse is scoped in ROADMAP item 1
fn noisy(base: u32, domain: &str, visit: u64, lane: u64) -> u32 {
    if base == 0 {
        return 0;
    }
    let mut rng = rng_for(&format!("noise/{domain}/{visit}"), lane);
    let factor: f64 = rng.random_range(0.85..1.15);
    ((base as f64) * factor).round().max(0.0) as u32
}

fn noisy_counts(c: CookieCounts, domain: &str, visit: u64) -> CookieCounts {
    CookieCounts {
        first_party: noisy(c.first_party, domain, visit, 1),
        benign_third_party: noisy(c.benign_third_party, domain, visit, 2),
        tracking: noisy(c.tracking, domain, visit, 3),
    }
}

/// Should this site's wall/banner be shown to a visitor from `region` right
/// now? Applies ground-truth targeting plus the small per-(site, region)
/// flakiness that makes non-EU detection counts vary between 190 and 199
/// across vantage points (Table 1).
// lint:allow(r9) — the simulated origin renders page HTML per request — the String is the payload itself; buffer reuse is scoped in ROADMAP item 1
fn ui_visible(site: &SiteSpec, region: Region) -> bool {
    match &site.banner {
        BannerKind::None => false,
        BannerKind::DecoyPaywall => true,
        BannerKind::Banner(b) => !b.eu_only || region.is_eu(),
        BannerKind::Cookiewall(_) => {
            if !site.wall_targets_region(region) {
                return false;
            }
            if region.is_eu() {
                return true;
            }
            // Sites on the visitor's own country list are always stable
            // (the five Australian walls must show from Australia).
            if site.on_toplist(crate::spec::Country::for_region(region)) {
                return true;
            }
            // ~3% per-(site, region) dropout: geo-CDN quirks.
            crate::names::stable_hash(&format!("flaky/{}/{}", site.domain, region.label())) % 1000
                >= 30
        }
    }
}

// ------------------------------------------------------------------ sites

struct SiteHandler {
    shared: Arc<WebServers>,
    site_index: usize,
}

impl httpsim::Server for SiteHandler {
    fn handle(&self, req: &Request) -> Response {
        let site = &self.shared.population.sites()[self.site_index];
        match req.url.path() {
            "/static/app.js" => Response::script("/* site application bundle */"),
            path if path.starts_with("/ads/") => Response::script("/* ad slot loader */"),
            "/privacy" | "/datenschutz" => {
                Response::html("<html><body><h1>Privacy</h1></body></html>")
            }
            "/abo" | "/subscribe" => Response::html(
                "<html><body><h1>Subscription checkout</h1><form>…</form></body></html>",
            ),
            _ => {
                let visit = self.shared.visits[self.site_index].fetch_add(1, Ordering::Relaxed);
                render_main_page(site, req, visit)
            }
        }
    }
}

/// Render a site's main page for one request.
// lint:allow(r9) — the simulated origin renders page HTML per request — the String is the payload itself; buffer reuse is scoped in ROADMAP item 1
fn render_main_page(site: &SiteSpec, req: &Request, visit: u64) -> Response {
    let state = consent_state(req);
    let lang = site.language;
    let domain = &site.domain;
    let bot = site.bot_sensitive && looks_like_bot(&req.user_agent);
    let show_ui = !bot && state == ConsentState::Fresh && ui_visible(site, req.region);

    // Which cookie quantities apply in this state.
    let base = match state {
        ConsentState::Accepted => site.cookies.accepted,
        ConsentState::Subscribed => site.cookies.subscribed,
        ConsentState::Fresh | ConsentState::Rejected => site.cookies.pre_consent,
    };
    let counts = noisy_counts(base, domain, visit);

    let mut body = String::with_capacity(4096);
    body.push_str("<html><head><title>");
    body.push_str(domain);
    body.push_str("</title></head>");

    // Scroll lock: inline when the wall markup itself is inline (first
    // party), or when the site is the scroll-breaker special case whose
    // inline style outlives a blocked wall. Remote-served walls normally
    // manage the lock from their own (blockable) script, so nothing is
    // emitted for them here.
    let wall_inline_lock = match &site.banner {
        BannerKind::Cookiewall(cw) if show_ui => {
            cw.serving == Serving::FirstParty || cw.breaks_scroll_when_blocked
        }
        _ => false,
    };
    if wall_inline_lock {
        body.push_str("<body style=\"overflow:hidden\">");
    } else {
        body.push_str("<body>");
    }

    body.push_str("<header><h1>");
    body.push_str(domain);
    body.push_str("</h1><nav><a href=\"/privacy\">Privacy</a></nav></header><main>");
    let sentences = content::body_sentences(lang);
    let offset = crate::names::stable_hash(domain) as usize;
    for i in 0..4 {
        body.push_str("<p>");
        body.push_str(sentences[(offset + i) % sentences.len()]);
        body.push_str("</p>");
    }
    body.push_str("</main>");

    // Essential first-party script, always present.
    body.push_str("<script src=\"/static/app.js\"></script>");

    // Adblock bait + detector shell (special-case site).
    if let BannerKind::Cookiewall(cw) = &site.banner {
        if cw.detects_adblock {
            body.push_str(
                "<script src=\"/ads/ad-delivery/bait.js\"></script>\
                 <div data-detect-adblock data-message=\"",
            );
            body.push_str(content::adblock_message(lang));
            body.push_str("\"></div>");
        }
    }

    // Consent UI.
    if show_ui {
        render_consent_ui(&mut body, site);
    }

    // Post-consent third parties.
    if state == ConsentState::Accepted {
        for plan in plan_trackers(domain, visit, counts.tracking) {
            body.push_str(&format!(
                "<script src=\"https://{}/t.js?n={}&o={}&site={}{}\"></script>",
                plan.host,
                plan.cookies,
                plan.name_offset,
                domain,
                plan.sync_with
                    .map(|s| format!("&sync={s}"))
                    .unwrap_or_default(),
            ));
        }
    }
    if matches!(state, ConsentState::Accepted | ConsentState::Subscribed) {
        for (i, host) in plan_benign(domain, visit, counts.benign_third_party)
            .into_iter()
            .enumerate()
        {
            body.push_str(&format!(
                "<script src=\"https://{host}/c.js?site={domain}&slot={i}\"></script>"
            ));
        }
    }

    body.push_str("<footer>© ");
    body.push_str(domain);
    body.push_str("</footer></body></html>");

    // First-party cookies.
    let mut resp = Response::html(body);
    resp.set_cookies.push(format!("sid={visit}; Path=/"));
    for i in 1..counts.first_party {
        resp.set_cookies
            .push(format!("fp{i}=v{visit}; Path=/; Max-Age=31536000"));
    }
    resp
}

/// Emit the consent UI (banner, wall, or decoy paywall) for a fresh visit.
// lint:allow(r9) — the simulated origin renders page HTML per request — the String is the payload itself; buffer reuse is scoped in ROADMAP item 1
fn render_consent_ui(body: &mut String, site: &SiteSpec) {
    let lang = site.language;
    let domain = &site.domain;
    match &site.banner {
        BannerKind::None => {}
        BannerKind::DecoyPaywall => {
            // Inline hard paywall whose copy trips the word classifier.
            body.push_str(
                "<div id=\"premium-gate\" class=\"paywall-overlay\" \
                 style=\"position:fixed;top:0;z-index:99999\"><p>",
            );
            // Decoy price is stored in the roster; the population keeps
            // decoys simple, so derive a stable price from the domain.
            let price = crate::spec::PriceSpec {
                amount_cents: 499 + (crate::names::stable_hash(domain) % 5) as u32 * 100,
                currency: crate::spec::Currency::Eur,
                period: crate::spec::Period::Month,
            };
            body.push_str(&content::decoy_paywall_text(lang, domain, &price));
            body.push_str("</p><a href=\"/subscribe\" class=\"paywall-cta\">");
            body.push_str(content::subscribe_label(lang));
            body.push_str("</a></div>");
        }
        BannerKind::Banner(b) => {
            let fragment = banner_fragment(site, b.has_reject, b.has_settings);
            match (b.embedding, b.serving) {
                (Embedding::Iframe, _) => {
                    body.push_str(&format!(
                        "<iframe id=\"cmp-frame\" title=\"consent\" \
                         src=\"https://{}/banner?site={}\" \
                         style=\"position:fixed;bottom:0;z-index:9999;width:100%;height:220px\">\
                         </iframe>",
                        Cmp::for_domain(domain).host(),
                        domain
                    ));
                }
                (emb, Serving::CmpScript) => {
                    body.push_str(&format!(
                        "<div id=\"cmp-mount\" data-cmp-shell></div>\
                         <script src=\"https://{}/banner.js?site={}&shadow={}\" \
                         data-cw-inject=\"cmp-mount\"></script>",
                        Cmp::for_domain(domain).host(),
                        domain,
                        shadow_param(emb)
                    ));
                }
                (emb, _) => body.push_str(&wrap_embedding(emb, "cmp-host", &fragment)),
            }
        }
        BannerKind::Cookiewall(cw) => {
            let fragment = wall_fragment(site, cw);
            match (cw.embedding, cw.serving) {
                (Embedding::Iframe, Serving::SmpCdn) => {
                    let cdn = cw.smp.expect("SmpCdn serving implies an SMP").cdn_host();
                    body.push_str(&format!(
                        "<iframe id=\"cw-frame\" title=\"consent-or-pay\" \
                         src=\"https://{cdn}/wall?site={domain}\" \
                         style=\"position:fixed;top:0;z-index:100000;width:100%;height:100%\">\
                         </iframe>"
                    ));
                }
                (Embedding::Iframe, _) => {
                    body.push_str(&format!(
                        "<iframe id=\"cw-frame\" title=\"consent-or-pay\" \
                         src=\"https://{}/wall?site={}\" \
                         style=\"position:fixed;top:0;z-index:100000;width:100%;height:100%\">\
                         </iframe>",
                        Cmp::for_domain(domain).host(),
                        domain
                    ));
                }
                (emb, Serving::SmpCdn) => {
                    let cdn = cw.smp.expect("SmpCdn serving implies an SMP").cdn_host();
                    body.push_str(&format!(
                        "<div id=\"cw-mount\" data-cmp-shell></div>\
                         <script src=\"https://{cdn}/wall.js?site={domain}&shadow={}\" \
                         data-cw-inject=\"cw-mount\"></script>",
                        shadow_param(emb)
                    ));
                }
                (emb, Serving::CmpScript) => {
                    body.push_str(&format!(
                        "<div id=\"cw-mount\" data-cmp-shell></div>\
                         <script src=\"https://{}/wall.js?site={}&shadow={}\" \
                         data-cw-inject=\"cw-mount\"></script>",
                        Cmp::for_domain(domain).host(),
                        domain,
                        shadow_param(emb)
                    ));
                }
                (emb, Serving::FirstParty) => {
                    body.push_str(&wrap_embedding(emb, "cw-host", &fragment));
                }
            }
        }
    }
}

fn shadow_param(emb: Embedding) -> &'static str {
    match emb {
        Embedding::ShadowOpen => "open",
        Embedding::ShadowClosed => "closed",
        _ => "none",
    }
}

/// Wrap a fragment according to its embedding: plain (main DOM) or behind a
/// declarative shadow root.
// lint:allow(r9) — the simulated origin renders page HTML per request — the String is the payload itself; buffer reuse is scoped in ROADMAP item 1
fn wrap_embedding(emb: Embedding, host_id: &str, fragment: &str) -> String {
    match emb {
        Embedding::ShadowOpen => format!(
            "<div id=\"{host_id}\"><template shadowrootmode=\"open\">{fragment}</template></div>"
        ),
        Embedding::ShadowClosed => format!(
            "<div id=\"{host_id}\"><template shadowrootmode=\"closed\">{fragment}</template></div>"
        ),
        _ => fragment.to_string(),
    }
}

/// The markup of a regular cookie banner.
// lint:allow(r9) — the simulated origin renders page HTML per request — the String is the payload itself; buffer reuse is scoped in ROADMAP item 1
fn banner_fragment(site: &SiteSpec, has_reject: bool, has_settings: bool) -> String {
    let lang = site.language;
    let mut s = format!(
        "<div id=\"cmp-banner\" class=\"cmp-container cookie-consent\" \
         style=\"position:fixed;bottom:0;z-index:9999\"><p>{}</p>\
         <button class=\"cmp-accept\" data-cw-action=\"accept\">{}</button>",
        content::banner_text(lang),
        content::accept_label(lang),
    );
    if has_reject {
        s.push_str(&format!(
            "<button class=\"cmp-reject\" data-cw-action=\"reject\">{}</button>",
            content::reject_label(lang)
        ));
    }
    if has_settings {
        s.push_str(&format!(
            "<a class=\"cmp-settings\" data-cw-action=\"settings\" href=\"/privacy\">{}</a>",
            content::settings_label(lang)
        ));
    }
    s.push_str("<a href=\"/privacy\">·</a></div>");
    s
}

/// The markup of a cookiewall (no reject — accept or pay).
// lint:allow(r9) — the simulated origin renders page HTML per request — the String is the payload itself; buffer reuse is scoped in ROADMAP item 1
fn wall_fragment(site: &SiteSpec, cw: &crate::spec::CookiewallSpec) -> String {
    let lang = site.language;
    let text = content::wall_text(lang, &site.domain, &cw.price, cw.smp.map(Smp::name));
    let subscribe_href = match cw.smp {
        Some(smp) => format!(
            "https://{}/subscribe?site={}",
            smp.account_host(),
            site.domain
        ),
        None => "/abo".to_string(),
    };
    let mut s = format!(
        "<div id=\"cw-wall\" class=\"consent-wall purabo\" \
         style=\"position:fixed;top:0;z-index:100000\"><h2>{}</h2><p>{}</p>\
         <button class=\"cw-accept\" data-cw-action=\"accept\">{}</button>\
         <a class=\"cw-subscribe\" data-cw-action=\"subscribe\" href=\"{}\">{}</a>",
        site.domain,
        text,
        content::accept_label(lang),
        subscribe_href,
        content::subscribe_label(lang),
    );
    if let Some(smp) = cw.smp {
        // Entitlement probe: runs against the SMP account host where the
        // login session cookie lives. The browser reacts to the response.
        s.push_str(&format!(
            "<script src=\"https://{}/check.js?site={}\" data-smp-check=\"{}\"></script>",
            smp.account_host(),
            site.domain,
            smp.name()
        ));
    }
    s.push_str("</div>");
    s
}

// --------------------------------------------------------------- trackers

struct TrackerHandler;

impl httpsim::Server for TrackerHandler {
    // lint:allow(r9) — the simulated origin renders page HTML per request — the String is the payload itself; buffer reuse is scoped in ROADMAP item 1
    fn handle(&self, req: &Request) -> Response {
        let q = query_map(req);
        let site = q.get("site").cloned().unwrap_or_default();
        if req.url.path() == "/s.gif" {
            // Cookie-sync endpoint: one distinctly named cookie.
            return Response::no_content().with_cookie(format!(
                "sync_{site}=1; Path=/; Max-Age=31536000; SameSite=None; Secure"
            ));
        }
        let n: u32 = q.get("n").and_then(|v| v.parse().ok()).unwrap_or(1);
        let o: u32 = q.get("o").and_then(|v| v.parse().ok()).unwrap_or(0);
        let mut resp = Response::script("/* tracking tag */");
        if let Some(sync) = q.get("sync") {
            // Classic cookie syncing: bounce to the partner, which sets one
            // cookie under its own domain. The sync cookie name is distinct
            // from the partner's regular `uid_…` cookies so the jar's
            // (name, domain, path) replacement cannot silently merge them.
            resp = Response::redirect(format!("https://{sync}/s.gif?site={site}"));
        }
        for i in 0..n {
            let k = o + i;
            resp.set_cookies.push(format!(
                "uid_{site}_{k}=u{}; Path=/; Max-Age=31536000; SameSite=None; Secure",
                crate::names::stable_hash(&format!("{}/{site}/{k}", req.url.host()))
            ));
        }
        resp
    }
}

struct BenignHandler;

impl httpsim::Server for BenignHandler {
    // lint:allow(r9) — the simulated origin renders page HTML per request — the String is the payload itself; buffer reuse is scoped in ROADMAP item 1
    fn handle(&self, req: &Request) -> Response {
        let q = query_map(req);
        let site = q.get("site").cloned().unwrap_or_default();
        let slot = q.get("slot").cloned().unwrap_or_default();
        Response::script("/* cdn asset */")
            .with_cookie(format!("pref_{site}_{slot}=1; Path=/; Max-Age=604800"))
    }
}

// ------------------------------------------------------------------- SMPs

struct SmpCdnHandler {
    shared: Arc<WebServers>,
    smp: Smp,
}

impl httpsim::Server for SmpCdnHandler {
    // lint:allow(r9) — the simulated origin renders page HTML per request — the String is the payload itself; buffer reuse is scoped in ROADMAP item 1
    fn handle(&self, req: &Request) -> Response {
        let q = query_map(req);
        let Some(site_domain) = q.get("site") else {
            return Response::not_found();
        };
        let Some(site) = self.shared.population.site(site_domain) else {
            return Response::not_found();
        };
        let BannerKind::Cookiewall(cw) = &site.banner else {
            return Response::not_found();
        };
        match req.url.path() {
            "/wall" => {
                // Full document for iframe embedding.
                let fragment = wall_fragment(site, cw);
                Response::html(format!(
                    "<html><head><title>{} consent</title></head><body>{fragment}</body></html>",
                    self.smp.name()
                ))
            }
            "/wall.js" => {
                // Injectable fragment; shadow wrapping decided by query.
                let fragment = wall_fragment(site, cw);
                let wrapped = match q.get("shadow").map(String::as_str) {
                    Some("open") => wrap_embedding(Embedding::ShadowOpen, "cw-inner", &fragment),
                    Some("closed") => {
                        wrap_embedding(Embedding::ShadowClosed, "cw-inner", &fragment)
                    }
                    _ => fragment,
                };
                Response {
                    content_type: "application/javascript".to_string(),
                    ..Response::html(wrapped)
                }
            }
            _ => Response::not_found(),
        }
    }
}

struct SmpAccountHandler {
    smp: Smp,
}

impl httpsim::Server for SmpAccountHandler {
    // lint:allow(r9) — the simulated origin renders page HTML per request — the String is the payload itself; buffer reuse is scoped in ROADMAP item 1
    fn handle(&self, req: &Request) -> Response {
        match req.url.path() {
            "/login" if req.method == Method::Post => {
                let ok = req
                    .body_params
                    .iter()
                    .any(|(k, v)| k == "user" && !v.is_empty());
                if ok {
                    Response::html("<html><body>Welcome back</body></html>").with_cookie(format!(
                        "{}=tok-{}; Path=/; Secure; HttpOnly; SameSite=None; Max-Age=2592000",
                        self.smp.session_cookie(),
                        crate::names::stable_hash(self.smp.name())
                    ))
                } else {
                    Response::html("<html><body>Login failed</body></html>")
                }
            }
            "/check.js" => {
                // Entitlement probe: valid session cookie ⇒ entitled.
                let entitled = req
                    .cookie(self.smp.session_cookie())
                    .is_some_and(|v| v.starts_with("tok-"));
                Response::script(if entitled { "entitled" } else { "anon" })
            }
            "/subscribe" => Response::html(format!(
                "<html><body><h1>{} — 2,99 € pro Monat</h1><form>…</form></body></html>",
                self.smp.name()
            )),
            _ => Response::not_found(),
        }
    }
}

// -------------------------------------------------------------------- CMP

struct CmpCdnHandler {
    shared: Arc<WebServers>,
}

impl httpsim::Server for CmpCdnHandler {
    // lint:allow(r9) — the simulated origin renders page HTML per request — the String is the payload itself; buffer reuse is scoped in ROADMAP item 1
    fn handle(&self, req: &Request) -> Response {
        let q = query_map(req);
        let Some(site_domain) = q.get("site") else {
            return Response::not_found();
        };
        let Some(site) = self.shared.population.site(site_domain) else {
            return Response::not_found();
        };
        let shadow = q.get("shadow").map(String::as_str);
        let wrap = |fragment: String| match shadow {
            Some("open") => wrap_embedding(Embedding::ShadowOpen, "cmp-inner", &fragment),
            Some("closed") => wrap_embedding(Embedding::ShadowClosed, "cmp-inner", &fragment),
            _ => fragment,
        };
        match (req.url.path(), &site.banner) {
            ("/banner", BannerKind::Banner(b)) => {
                let fragment = banner_fragment(site, b.has_reject, b.has_settings);
                Response::html(format!("<html><body>{fragment}</body></html>"))
            }
            ("/banner.js", BannerKind::Banner(b)) => Response {
                content_type: "application/javascript".to_string(),
                ..Response::html(wrap(banner_fragment(site, b.has_reject, b.has_settings)))
            },
            ("/wall", BannerKind::Cookiewall(cw)) => {
                let fragment = wall_fragment(site, cw);
                Response::html(format!("<html><body>{fragment}</body></html>"))
            }
            ("/wall.js", BannerKind::Cookiewall(cw)) => Response {
                content_type: "application/javascript".to_string(),
                ..Response::html(wrap(wall_fragment(site, cw)))
            },
            _ => Response::not_found(),
        }
    }
}

/// Parse the query string into a map (simple `k=v&k=v`, no percent
/// decoding — the generator never emits reserved characters).
// lint:allow(r9) — the simulated origin renders page HTML per request — the String is the payload itself; buffer reuse is scoped in ROADMAP item 1
fn query_map(req: &Request) -> std::collections::HashMap<String, String> {
    req.url
        .query()
        .unwrap_or("")
        .split('&')
        .filter_map(|pair| {
            let (k, v) = pair.split_once('=')?;
            Some((k.to_string(), v.to_string()))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::{Population, PopulationConfig};
    use httpsim::Url;

    fn setup() -> (Arc<Population>, Network) {
        let pop = Arc::new(Population::generate(PopulationConfig::tiny()));
        let net = Network::new();
        install(Arc::clone(&pop), &net);
        (pop, net)
    }

    fn get(net: &Network, url: &str, region: Region) -> Response {
        net.dispatch(&Request::navigation(Url::parse(url).unwrap(), region))
    }

    #[test]
    fn every_site_serves_a_page() {
        let (pop, net) = setup();
        for domain in pop.merged_targets() {
            let resp = get(&net, &format!("https://{domain}/"), Region::Germany);
            assert_eq!(resp.status, 200, "{domain}");
            assert!(
                resp.body_text().contains(&domain),
                "{domain} page mentions itself"
            );
            assert!(
                !resp.set_cookies.is_empty(),
                "{domain} sets a session cookie"
            );
        }
    }

    #[test]
    fn wall_site_shows_wall_to_eu_not_when_accepted() {
        let (pop, net) = setup();
        let wall = pop.ground_truth_walls()[0].domain.clone();
        let url = format!("https://{wall}/");
        let fresh = get(&net, &url, Region::Germany);
        let body = fresh.body_text();
        assert!(
            body.contains("cw-wall") || body.contains("cw-frame") || body.contains("cw-mount"),
            "wall UI present for fresh EU visit: {body}"
        );
        // With the consent cookie, trackers load and no wall shows.
        let mut req = Request::navigation(Url::parse(&url).unwrap(), Region::Germany);
        req.cookie_header = Some(format!("{CONSENT_COOKIE}=accepted"));
        let accepted = net.dispatch(&req);
        let body = accepted.body_text();
        assert!(!body.contains("cw-wall") && !body.contains("cw-frame"));
        assert!(body.contains("/t.js?"), "tracker tags present after accept");
    }

    #[test]
    fn eu_only_wall_hidden_from_us() {
        let (pop, net) = setup();
        let eu_only = pop
            .ground_truth_walls()
            .into_iter()
            .find(|s| matches!(&s.banner, BannerKind::Cookiewall(c) if c.visibility == crate::spec::Visibility::EuOnly));
        if let Some(site) = eu_only {
            let url = format!("https://{}/", site.domain);
            let us = get(&net, &url, Region::UsEast).body_text();
            assert!(
                !us.contains("cw-wall") && !us.contains("cw-frame") && !us.contains("cw-mount")
            );
            let de = get(&net, &url, Region::Germany).body_text();
            assert!(de.contains("cw-wall") || de.contains("cw-frame") || de.contains("cw-mount"));
        }
    }

    #[test]
    fn tracker_host_sets_requested_cookies() {
        let (_pop, net) = setup();
        let resp = get(
            &net,
            "https://doubleclick.net/t.js?n=4&site=zeitung.de",
            Region::Germany,
        );
        assert_eq!(resp.set_cookies.len(), 4);
        assert!(resp.set_cookies[0].starts_with("uid_zeitung.de_0="));
    }

    #[test]
    fn tracker_sync_redirects() {
        let (_pop, net) = setup();
        let resp = get(
            &net,
            "https://doubleclick.net/t.js?n=3&site=x.de&sync=criteo.com",
            Region::Germany,
        );
        assert!(resp.is_redirect());
        assert!(resp.location.as_deref().unwrap().contains("criteo.com"));
        assert!(!resp.set_cookies.is_empty());
    }

    #[test]
    fn smp_login_and_entitlement() {
        let (_pop, net) = setup();
        let account = Smp::Contentpass.account_host();
        // Anonymous check.
        let anon = get(
            &net,
            &format!("https://{account}/check.js?site=x.de"),
            Region::Germany,
        );
        assert_eq!(anon.body_text(), "anon");
        // Login.
        let mut login = Request::navigation(
            Url::parse(&format!("https://{account}/login")).unwrap(),
            Region::Germany,
        );
        login.method = Method::Post;
        login.body_params = vec![
            ("user".into(), "alice".into()),
            ("pass".into(), "pw".into()),
        ];
        let resp = net.dispatch(&login);
        assert!(resp
            .set_cookies
            .iter()
            .any(|c| c.starts_with("cp_session=tok-")));
        // Entitled check with the session cookie.
        let mut check = Request::navigation(
            Url::parse(&format!("https://{account}/check.js?site=x.de")).unwrap(),
            Region::Germany,
        );
        check.cookie_header = Some("cp_session=tok-1".to_string());
        assert_eq!(net.dispatch(&check).body_text(), "entitled");
    }

    #[test]
    fn smp_cdn_serves_wall_for_partner() {
        let (pop, net) = setup();
        let partner = pop.smp_partners(Smp::Contentpass).first().cloned();
        if let Some(partner) = partner {
            let cdn = Smp::Contentpass.cdn_host();
            let resp = get(
                &net,
                &format!("https://{cdn}/wall?site={partner}"),
                Region::Germany,
            );
            assert_eq!(resp.status, 200);
            let body = resp.body_text();
            assert!(body.contains("cw-wall"));
            assert!(body.contains("2,99"));
            assert!(body.contains("check.js"), "entitlement probe embedded");
        }
    }

    #[test]
    fn bot_sensitive_site_hides_ui_from_bots() {
        let (pop, net) = setup();
        // Find any bot-sensitive site with some consent UI.
        let candidate = pop
            .sites()
            .iter()
            .find(|s| s.bot_sensitive && !matches!(s.banner, BannerKind::None));
        if let Some(site) = candidate {
            let url = Url::parse(&format!("https://{}/", site.domain)).unwrap();
            let mut req = Request::navigation(url, Region::Germany);
            req.user_agent = "SuperCrawler bot/1.0".to_string();
            let body = net.dispatch(&req).body_text();
            assert!(
                !body.contains("cmp-banner")
                    && !body.contains("cw-wall")
                    && !body.contains("cw-mount")
                    && !body.contains("cmp-mount")
                    && !body.contains("cmp-frame")
                    && !body.contains("cw-frame"),
                "bot visit must hide consent UI on {}",
                site.domain
            );
        }
    }

    #[test]
    fn noise_varies_between_visits_but_is_bounded() {
        let (pop, net) = setup();
        let wall = pop
            .ground_truth_walls()
            .into_iter()
            .find(|s| s.cookies.accepted.first_party >= 10)
            .expect("a wall with enough fp cookies");
        let url = format!("https://{}/", wall.domain);
        let mut counts = Vec::new();
        for _ in 0..5 {
            let mut req = Request::navigation(Url::parse(&url).unwrap(), Region::Germany);
            req.cookie_header = Some(format!("{CONSENT_COOKIE}=accepted"));
            counts.push(net.dispatch(&req).set_cookies.len() as f64);
        }
        let base = wall.cookies.accepted.first_party as f64;
        for c in &counts {
            assert!(
                (c - base).abs() / base < 0.25,
                "noise bounded: {c} vs {base}"
            );
        }
        assert!(
            counts.iter().any(|c| (c - counts[0]).abs() > 0.5),
            "repetitions differ: {counts:?}"
        );
    }

    /// The shared-fetch cache keys on `(domain, body hash)` and assumes a
    /// fresh-profile (cookie-less) main document never changes across
    /// visits: per-visit noise must stay in the Set-Cookie headers, never
    /// the markup. This pins that invariant down.
    #[test]
    fn fresh_main_page_body_is_visit_invariant() {
        let (pop, net) = setup();
        for domain in pop.merged_targets().into_iter().take(40) {
            let url = format!("https://{domain}/");
            let first = get(&net, &url, Region::Germany).body_text();
            for _ in 0..3 {
                let again = get(&net, &url, Region::Germany).body_text();
                assert_eq!(first, again, "{domain} fresh body must not vary per visit");
            }
        }
    }

    /// Page generation must be idempotent under concurrent requests from
    /// different vantage points: each region always sees its own stable
    /// document, regardless of interleaving with the other regions.
    #[test]
    fn page_generation_idempotent_under_concurrent_regions() {
        let (pop, net) = setup();
        let domains: Vec<String> = pop.merged_targets().into_iter().take(12).collect();
        // Reference bodies, fetched serially region by region.
        let mut reference = Vec::new();
        for region in Region::ALL {
            for domain in &domains {
                reference.push(get(&net, &format!("https://{domain}/"), region).body_text());
            }
        }
        // The same matrix fetched with every region hammering concurrently.
        let concurrent: Vec<Vec<String>> = std::thread::scope(|scope| {
            let handles: Vec<_> = Region::ALL
                .iter()
                .map(|&region| {
                    let net = net.clone();
                    let domains = &domains;
                    scope.spawn(move || {
                        domains
                            .iter()
                            .map(|d| get(&net, &format!("https://{d}/"), region).body_text())
                            .collect()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("region fetcher"))
                .collect()
        });
        let flat: Vec<String> = concurrent.into_iter().flatten().collect();
        assert_eq!(reference, flat, "concurrent generation must match serial");
    }
}
